#!/usr/bin/env bash
# Tier-1 verification, guaranteed offline.
#
# 1. Hermeticity guard: `cargo metadata` must report only in-repo path
#    dependencies. Any registry/git source means an external crate crept
#    back into a manifest — fail before building anything.
# 2. Tier-1 proper: release build + full workspace test suite, with
#    cargo's network access disabled so a regression in (1) can never be
#    papered over by a warm registry cache.
# 3. Format gate: `cargo fmt --check` keeps the tree rustfmt-clean.
# 4. Lint gate: `cargo clippy --workspace -- -D warnings` keeps the tree
#    warning-free.
# 5. Doc gate: `cargo doc` with warnings denied keeps rustdoc (broken
#    intra-doc links, missing docs per crate policy) clean.
# 6. Golden digest: the first 56 lines of the quick summary matrix — the
#    default 4-CPU configuration rows — must be byte-identical to the
#    checked-in golden file. Refactors may add geometry rows after the
#    prefix but may never change a default row's digest.
# 7. Sentinel pass: the quick digest matrix runs with CMPSIM_SENTINEL=1
#    and must produce byte-identical lines to the sentinel-off run (the
#    invariant checker may never change results); any violation panics the
#    matrix runner, so "identical output" also means "zero violations".
# 8. Replay equivalence: the quick digest matrix runs again with
#    CMPSIM_MATRIX_REPLAY=1 — every case captured to a reference trace
#    and replayed through a fresh memory system — and must produce
#    byte-identical lines to the execution-driven run, at
#    CMPSIM_REPLAY_JOBS=1 and =4. The replay-checked matrix decodes each
#    trace both serially and through the parallel chunk decoder and
#    replays through the batched replay_matrix driver, so this gate pins
#    the whole parallel trace pipeline to the execution-driven digests.
#    This is the capture/replay fidelity contract: a trace carries
#    everything the memory system ever sees, at any job count.
# 6b. Kill-and-resume: the quick matrix runs with CMPSIM_RESUME pointing
#    at a fresh journal and CMPSIM_KILL_AFTER=28 — the sweep SIGKILLs
#    itself after journaling its 28th row. A second run with only
#    CMPSIM_RESUME set must report exactly 28 resumed rows and emit
#    stdout byte-identical to the uninterrupted sweep: a crashed host
#    loses no completed work and changes no bytes.
# 6c. Quarantine: the quick matrix runs with CMPSIM_MATRIX_PANIC
#    poisoning one case (mp3d:shared-L2:mipsy) to panic on every
#    attempt. The sweep must exit nonzero, report the quarantined case
#    on stderr, and emit every OTHER row byte-identical to the clean
#    sweep — one poisoned job never takes the sweep down with it.
# 8b. Trace-format migration: a run captured in the legacy v1 format
#    (CMPSIM_TRACE_FORMAT=1) is rewritten to v2 with `cmpsim replay
#    --rewrite`, and replaying the original and the rewrite must print
#    identical reports (MemStats, ports, stream profile) — the v1→v2
#    round-trip changes bytes, never results.
# 8c. Trace salvage: the v2 capture from (8b) is truncated at 60%, 85%
#    and 99% of its length. Strict replay must reject every torn file;
#    `cmpsim replay --salvage` must recover every intact chunk, and
#    replaying the salvaged records must match `--salvage --head N` on
#    the intact file (N = the salvaged record count) byte for byte — a
#    torn capture degrades to a clean prefix, never to wrong results.
# 8d. Mesh replay smoke: a 16-CPU mesh fft run captured to a v2 trace
#    must replay through a fresh mesh system (same grid) with the
#    replayed reference count and per-link port rows intact, and the
#    replay report must be byte-identical at CMPSIM_REPLAY_JOBS=1 and
#    =4 — the mesh topology rides the same capture/replay contract as
#    the crossbar machines. (The mesh rows of the extended matrix also
#    pass through gate 8's digest-equality replay check.)
# 9. Shard identity: the quick digest matrix runs again with
#    CMPSIM_SHARDS=4 — the sharded machine loop staging instructions
#    ahead on worker threads (DESIGN.md §12) — and must produce
#    byte-identical lines to the serial run, with the sentinel off and
#    on. Shard count is a host-time knob, never a results knob.
# 10. Quick simulator-speed check: the sim_throughput, shard_sweep,
#    replay_sweep, extension_mesh_scaling and explore_sweep benches in
#    quick mode (CMPSIM_BENCH_QUICK=1) appended to BENCH_pr10.json, so
#    every verification leaves a dated throughput record (sentinel
#    overhead, supervised-vs-plain sweep overhead, geometry rows, the
#    trace-replay sweep, the shard-scaling sweep, the parallel
#    decode/batched-replay sweep, the mesh 4->16->64 scaling study, and
#    the explore points/s + cache-hit speedup) next to the pre/post-PR
#    entries.
# 11. Explore smoke: a seeded 64-point `cmpsim explore` search over a
#    4-dimensional memory sweep must (a) emit byte-identical JSON at
#    --jobs 1 and --jobs 4, (b) report replayed points > 0 on stderr
#    (memory-only sweeps route through the trace-replay fast path),
#    (c) re-emit byte-identical JSON from a 100%-cached rerun, and
#    (d) survive a CMPSIM_EXPLORE_KILL_AFTER SIGKILL mid-run — the
#    resumed search completes from the torn cache with clean diffs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== hermeticity: all dependencies must be in-repo path deps =="
metadata=$(cargo metadata --format-version 1 --offline)
if printf '%s' "$metadata" | grep -qE '"source": *"(registry|git)\+'; then
    echo "ERROR: non-path dependency detected in cargo metadata:" >&2
    printf '%s' "$metadata" | grep -oE '"name": *"[^"]+","version": *"[^"]+","id": *"[^"]*(registry|git)\+[^"]*"' >&2 || true
    exit 1
fi
echo "ok: cargo metadata lists path-only dependencies"

echo "== tier-1: cargo build --release && cargo test -q (offline) =="
cargo build --release
cargo test -q

echo "== format gate: cargo fmt --check =="
cargo fmt --check
echo "ok: rustfmt is clean"

echo "== lint gate: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings
echo "ok: clippy is clean"

echo "== doc gate: cargo doc --no-deps with warnings denied =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
echo "ok: rustdoc is clean"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== sentinel pass + golden digest: quick matrix, checker on vs off =="
matrix_off=$(CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
matrix_on=$(CMPSIM_SENTINEL=1 CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
if [ "$matrix_off" != "$matrix_on" ]; then
    echo "ERROR: sentinel-on digest matrix differs from sentinel-off:" >&2
    diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_on") >&2 || true
    exit 1
fi
echo "ok: sentinel-on matrix is bit-identical (zero violations)"

golden=crates/bench/golden/matrix_scale0.02.txt
if ! printf '%s\n' "$matrix_off" | head -n "$(wc -l < "$golden")" | diff -q - "$golden" >/dev/null; then
    echo "ERROR: default-row digest prefix differs from $golden:" >&2
    printf '%s\n' "$matrix_off" | head -n "$(wc -l < "$golden")" | diff - "$golden" >&2 || true
    exit 1
fi
echo "ok: default-row digests match the golden file"

echo "== kill-and-resume: SIGKILL mid-sweep, CMPSIM_RESUME replays the journal =="
journal="$tmpdir/matrix.jrnl"
set +e
CMPSIM_RESUME="$journal" CMPSIM_KILL_AFTER=28 CMPSIM_MATRIX_SCALE=0.02 \
    cargo bench -q -p cmpsim-bench --bench summary_matrix \
    > "$tmpdir/killed.out" 2> "$tmpdir/killed.err"
killed_rc=$?
set -e
if [ "$killed_rc" -eq 0 ]; then
    echo "ERROR: CMPSIM_KILL_AFTER=28 sweep exited cleanly instead of dying" >&2
    exit 1
fi
matrix_resumed=$(CMPSIM_RESUME="$journal" CMPSIM_MATRIX_SCALE=0.02 \
    cargo bench -q -p cmpsim-bench --bench summary_matrix 2> "$tmpdir/resume.err" | grep '^{')
if ! grep -q 'resumed 28 rows' "$tmpdir/resume.err"; then
    echo "ERROR: resumed sweep did not report exactly 28 journaled rows:" >&2
    cat "$tmpdir/resume.err" >&2
    exit 1
fi
if [ "$matrix_off" != "$matrix_resumed" ]; then
    echo "ERROR: resumed digest matrix differs from the uninterrupted sweep:" >&2
    diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_resumed") >&2 || true
    exit 1
fi
echo "ok: killed sweep resumed 28 rows and reproduced the artifact byte-for-byte"

echo "== quarantine: one poisoned case, every other row survives =="
set +e
CMPSIM_MATRIX_PANIC=mp3d:shared-L2:mipsy CMPSIM_RETRY=1 CMPSIM_MATRIX_SCALE=0.02 \
    cargo bench -q -p cmpsim-bench --bench summary_matrix \
    > "$tmpdir/poison.out" 2> "$tmpdir/poison.err"
poison_rc=$?
set -e
if [ "$poison_rc" -eq 0 ]; then
    echo "ERROR: poisoned sweep exited cleanly instead of signalling quarantine" >&2
    exit 1
fi
if ! grep -q 'quarantined' "$tmpdir/poison.err"; then
    echo "ERROR: poisoned sweep never reported a quarantine on stderr:" >&2
    cat "$tmpdir/poison.err" >&2
    exit 1
fi
if ! diff <(grep '^{' "$tmpdir/poison.out") \
          <(printf '%s\n' "$matrix_off" | grep -v '"workload":"mp3d","arch":"shared-L2","cpu":"mipsy"'); then
    echo "ERROR: quarantining one case perturbed other rows" >&2
    exit 1
fi
echo "ok: poisoned case quarantined, every other row byte-identical"

echo "== replay equivalence: quick matrix, trace replay vs execution =="
for replay_jobs in 1 4; do
    matrix_replay=$(CMPSIM_REPLAY_JOBS=$replay_jobs CMPSIM_MATRIX_REPLAY=1 CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
    if [ "$matrix_off" != "$matrix_replay" ]; then
        echo "ERROR: trace-replay digest matrix (CMPSIM_REPLAY_JOBS=$replay_jobs) differs from execution-driven:" >&2
        diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_replay") >&2 || true
        exit 1
    fi
    echo "ok: trace-replay matrix is bit-identical to execution-driven (CMPSIM_REPLAY_JOBS=$replay_jobs)"
done

echo "== trace-format migration: v1 capture -> --rewrite v2 -> identical replay =="
CMPSIM_TRACE_FORMAT=1 CMPSIM_TRACE_OUT="$tmpdir/v1.trace" \
    target/release/cmpsim run --workload eqntott --scale 0.05 >/dev/null
target/release/cmpsim replay --file "$tmpdir/v1.trace" --rewrite "$tmpdir/v2.trace" \
    > "$tmpdir/replay_v1.txt"
target/release/cmpsim replay --file "$tmpdir/v2.trace" > "$tmpdir/replay_v2.txt"
# Drop the trace-path and rewrite-report lines; every result line
# (replayed counts, miss rates, latencies, ports, stream profile) must
# be byte-identical between the v1 original and its v2 rewrite.
if ! diff <(grep -vE '^(trace|rewrote)' "$tmpdir/replay_v1.txt") \
          <(grep -vE '^(trace|rewrote)' "$tmpdir/replay_v2.txt"); then
    echo "ERROR: v1 trace and its --rewrite v2 migration replay differently" >&2
    exit 1
fi
echo "ok: v1 -> v2 rewrite round-trips to identical replay results"

echo "== trace salvage: torn v2 capture recovers every intact chunk =="
v2size=$(wc -c < "$tmpdir/v2.trace")
for pct in 60 85 99; do
    head -c $(( v2size * pct / 100 )) "$tmpdir/v2.trace" > "$tmpdir/torn.trace"
    if target/release/cmpsim replay --file "$tmpdir/torn.trace" >/dev/null 2>&1; then
        echo "ERROR: strict replay accepted a trace torn at ${pct}%" >&2
        exit 1
    fi
    target/release/cmpsim replay --salvage --file "$tmpdir/torn.trace" > "$tmpdir/salv.txt"
    n=$(sed -n 's/^salvaged.*(\([0-9][0-9]*\) records).*/\1/p' "$tmpdir/salv.txt")
    if [ -z "$n" ] || [ "$n" -eq 0 ]; then
        echo "ERROR: salvage of the ${pct}% torn trace recovered no records:" >&2
        cat "$tmpdir/salv.txt" >&2
        exit 1
    fi
    target/release/cmpsim replay --salvage --head "$n" --file "$tmpdir/v2.trace" \
        > "$tmpdir/intact_head.txt"
    # The salvaged torn file must replay exactly like the same-length
    # prefix of the intact file — only the trace-path and salvage-report
    # lines may differ.
    if ! diff <(grep -vE '^(trace|salvaged)' "$tmpdir/salv.txt") \
              <(grep -vE '^(trace|salvaged)' "$tmpdir/intact_head.txt"); then
        echo "ERROR: salvage of the ${pct}% torn trace diverges from the intact prefix" >&2
        exit 1
    fi
    echo "ok: torn at ${pct}% -> salvaged ${n} records replay identically to the intact prefix"
done

echo "== mesh replay smoke: 16-CPU mesh capture -> byte-identical replay =="
CMPSIM_TRACE_OUT="$tmpdir/mesh.trace" \
    target/release/cmpsim run --arch mesh --workload fft --cpus 16 --scale 0.05 >/dev/null
CMPSIM_REPLAY_JOBS=1 target/release/cmpsim replay --file "$tmpdir/mesh.trace" \
    --arch mesh --cpus 16 > "$tmpdir/mesh_replay_j1.txt"
CMPSIM_REPLAY_JOBS=4 target/release/cmpsim replay --file "$tmpdir/mesh.trace" \
    --arch mesh --cpus 16 > "$tmpdir/mesh_replay_j4.txt"
if ! grep -q '^port mesh-link' "$tmpdir/mesh_replay_j1.txt"; then
    echo "ERROR: mesh replay report lost the mesh-link port row:" >&2
    cat "$tmpdir/mesh_replay_j1.txt" >&2
    exit 1
fi
if ! diff "$tmpdir/mesh_replay_j1.txt" "$tmpdir/mesh_replay_j4.txt"; then
    echo "ERROR: mesh replay differs between CMPSIM_REPLAY_JOBS=1 and =4" >&2
    exit 1
fi
echo "ok: mesh trace replays byte-identically (jobs 1 vs 4, link stats intact)"

echo "== shard identity: quick matrix at CMPSIM_SHARDS=4 vs serial =="
matrix_sharded=$(CMPSIM_SHARDS=4 CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
if [ "$matrix_off" != "$matrix_sharded" ]; then
    echo "ERROR: CMPSIM_SHARDS=4 digest matrix differs from serial:" >&2
    diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_sharded") >&2 || true
    exit 1
fi
matrix_sharded_on=$(CMPSIM_SHARDS=4 CMPSIM_SENTINEL=1 CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
if [ "$matrix_off" != "$matrix_sharded_on" ]; then
    echo "ERROR: CMPSIM_SHARDS=4 sentinel-on digest matrix differs from serial:" >&2
    diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_sharded_on") >&2 || true
    exit 1
fi
echo "ok: sharded matrix is bit-identical to serial (sentinel off and on)"

echo "== explore smoke: seeded 64-point search, jobs/cache/kill invariance =="
explore_args=(explore --workload eqntott --scale 0.02 --seed 7 --points 64
    --dim arch=shared-l2,shared-mem,mesh --dim cpus=2,4
    --dim l2-kb=512,1024,2048,4096 --dim l2-assoc=1,2 --dim l2-width=64,128)
target/release/cmpsim "${explore_args[@]}" --jobs 1 --cache "$tmpdir/exploreA.jrnl" \
    > "$tmpdir/explore_j1.json" 2> "$tmpdir/explore_j1.err"
target/release/cmpsim "${explore_args[@]}" --jobs 4 --cache "$tmpdir/exploreB.jrnl" \
    > "$tmpdir/explore_j4.json" 2>/dev/null
if ! diff "$tmpdir/explore_j1.json" "$tmpdir/explore_j4.json"; then
    echo "ERROR: explore output differs between --jobs 1 and --jobs 4" >&2
    exit 1
fi
if ! grep -qE '[1-9][0-9]* replayed' "$tmpdir/explore_j1.err"; then
    echo "ERROR: memory-only explore sweep did not route through trace replay:" >&2
    cat "$tmpdir/explore_j1.err" >&2
    exit 1
fi
target/release/cmpsim "${explore_args[@]}" --jobs 4 --cache "$tmpdir/exploreB.jrnl" \
    > "$tmpdir/explore_cached.json" 2> "$tmpdir/explore_cached.err"
if ! diff "$tmpdir/explore_j4.json" "$tmpdir/explore_cached.json"; then
    echo "ERROR: cache-hit explore rerun is not byte-identical" >&2
    exit 1
fi
if ! grep -q '0 exec runs, 0 replayed, 64 cached' "$tmpdir/explore_cached.err"; then
    echo "ERROR: explore rerun was not answered 100% from the cache:" >&2
    cat "$tmpdir/explore_cached.err" >&2
    exit 1
fi
set +e
CMPSIM_EXPLORE_KILL_AFTER=20 target/release/cmpsim "${explore_args[@]}" --jobs 4 \
    --cache "$tmpdir/exploreK.jrnl" > /dev/null 2>&1
explore_killed_rc=$?
set -e
if [ "$explore_killed_rc" -eq 0 ]; then
    echo "ERROR: CMPSIM_EXPLORE_KILL_AFTER=20 search exited cleanly instead of dying" >&2
    exit 1
fi
target/release/cmpsim "${explore_args[@]}" --jobs 4 --cache "$tmpdir/exploreK.jrnl" \
    > "$tmpdir/explore_resumed.json" 2> "$tmpdir/explore_resumed.err"
if ! diff "$tmpdir/explore_j4.json" "$tmpdir/explore_resumed.json"; then
    echo "ERROR: explore search resumed from a torn cache diverges from the clean run" >&2
    exit 1
fi
if ! grep -qE '[1-9][0-9]* cached' "$tmpdir/explore_resumed.err"; then
    echo "ERROR: resumed explore search reused nothing from the torn cache:" >&2
    cat "$tmpdir/explore_resumed.err" >&2
    exit 1
fi
echo "ok: explore search byte-identical across jobs, cache reruns and a mid-run SIGKILL"

echo "== quick simulator-speed record -> BENCH_pr10.json =="
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
for bench in sim_throughput shard_sweep replay_sweep extension_mesh_scaling explore_sweep; do
    CMPSIM_BENCH_QUICK=1 cargo bench -q -p cmpsim-bench --bench "$bench" 2>/dev/null \
        | grep '^{' \
        | sed "s/^{/{\"phase\":\"verify\",\"utc\":\"${stamp}\",/" \
        >> BENCH_pr10.json
done
echo "ok: appended quick sim_throughput, shard_sweep, replay_sweep, mesh-scaling and explore records"

echo "verify.sh: all checks passed"

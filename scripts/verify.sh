#!/usr/bin/env bash
# Tier-1 verification, guaranteed offline.
#
# 1. Hermeticity guard: `cargo metadata` must report only in-repo path
#    dependencies. Any registry/git source means an external crate crept
#    back into a manifest — fail before building anything.
# 2. Tier-1 proper: release build + full workspace test suite, with
#    cargo's network access disabled so a regression in (1) can never be
#    papered over by a warm registry cache.
# 3. Format gate: `cargo fmt --check` keeps the tree rustfmt-clean.
# 4. Lint gate: `cargo clippy --workspace -- -D warnings` keeps the tree
#    warning-free.
# 5. Doc gate: `cargo doc` with warnings denied keeps rustdoc (broken
#    intra-doc links, missing docs per crate policy) clean.
# 6. Golden digest: the first 56 lines of the quick summary matrix — the
#    default 4-CPU configuration rows — must be byte-identical to the
#    checked-in golden file. Refactors may add geometry rows after the
#    prefix but may never change a default row's digest.
# 7. Sentinel pass: the quick digest matrix runs with CMPSIM_SENTINEL=1
#    and must produce byte-identical lines to the sentinel-off run (the
#    invariant checker may never change results); any violation panics the
#    matrix runner, so "identical output" also means "zero violations".
# 8. Replay equivalence: the quick digest matrix runs again with
#    CMPSIM_MATRIX_REPLAY=1 — every case captured to a reference trace
#    and replayed through a fresh memory system — and must produce
#    byte-identical lines to the execution-driven run, at
#    CMPSIM_REPLAY_JOBS=1 and =4. The replay-checked matrix decodes each
#    trace both serially and through the parallel chunk decoder and
#    replays through the batched replay_matrix driver, so this gate pins
#    the whole parallel trace pipeline to the execution-driven digests.
#    This is the capture/replay fidelity contract: a trace carries
#    everything the memory system ever sees, at any job count.
# 8b. Trace-format migration: a run captured in the legacy v1 format
#    (CMPSIM_TRACE_FORMAT=1) is rewritten to v2 with `cmpsim replay
#    --rewrite`, and replaying the original and the rewrite must print
#    identical reports (MemStats, ports, stream profile) — the v1→v2
#    round-trip changes bytes, never results.
# 9. Shard identity: the quick digest matrix runs again with
#    CMPSIM_SHARDS=4 — the sharded machine loop staging instructions
#    ahead on worker threads (DESIGN.md §12) — and must produce
#    byte-identical lines to the serial run, with the sentinel off and
#    on. Shard count is a host-time knob, never a results knob.
# 10. Quick simulator-speed check: the sim_throughput, shard_sweep and
#    replay_sweep benches in quick mode (CMPSIM_BENCH_QUICK=1) appended
#    to BENCH_pr7.json, so every verification leaves a dated throughput
#    record (sentinel overhead, geometry rows, the trace-replay sweep,
#    the shard-scaling sweep, and the parallel decode/batched-replay
#    sweep included) next to the pre/post-PR entries.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== hermeticity: all dependencies must be in-repo path deps =="
metadata=$(cargo metadata --format-version 1 --offline)
if printf '%s' "$metadata" | grep -qE '"source": *"(registry|git)\+'; then
    echo "ERROR: non-path dependency detected in cargo metadata:" >&2
    printf '%s' "$metadata" | grep -oE '"name": *"[^"]+","version": *"[^"]+","id": *"[^"]*(registry|git)\+[^"]*"' >&2 || true
    exit 1
fi
echo "ok: cargo metadata lists path-only dependencies"

echo "== tier-1: cargo build --release && cargo test -q (offline) =="
cargo build --release
cargo test -q

echo "== format gate: cargo fmt --check =="
cargo fmt --check
echo "ok: rustfmt is clean"

echo "== lint gate: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings
echo "ok: clippy is clean"

echo "== doc gate: cargo doc --no-deps with warnings denied =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
echo "ok: rustdoc is clean"

echo "== sentinel pass + golden digest: quick matrix, checker on vs off =="
matrix_off=$(CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
matrix_on=$(CMPSIM_SENTINEL=1 CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
if [ "$matrix_off" != "$matrix_on" ]; then
    echo "ERROR: sentinel-on digest matrix differs from sentinel-off:" >&2
    diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_on") >&2 || true
    exit 1
fi
echo "ok: sentinel-on matrix is bit-identical (zero violations)"

golden=crates/bench/golden/matrix_scale0.02.txt
if ! printf '%s\n' "$matrix_off" | head -n "$(wc -l < "$golden")" | diff -q - "$golden" >/dev/null; then
    echo "ERROR: default-row digest prefix differs from $golden:" >&2
    printf '%s\n' "$matrix_off" | head -n "$(wc -l < "$golden")" | diff - "$golden" >&2 || true
    exit 1
fi
echo "ok: default-row digests match the golden file"

echo "== replay equivalence: quick matrix, trace replay vs execution =="
for replay_jobs in 1 4; do
    matrix_replay=$(CMPSIM_REPLAY_JOBS=$replay_jobs CMPSIM_MATRIX_REPLAY=1 CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
    if [ "$matrix_off" != "$matrix_replay" ]; then
        echo "ERROR: trace-replay digest matrix (CMPSIM_REPLAY_JOBS=$replay_jobs) differs from execution-driven:" >&2
        diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_replay") >&2 || true
        exit 1
    fi
    echo "ok: trace-replay matrix is bit-identical to execution-driven (CMPSIM_REPLAY_JOBS=$replay_jobs)"
done

echo "== trace-format migration: v1 capture -> --rewrite v2 -> identical replay =="
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
CMPSIM_TRACE_FORMAT=1 CMPSIM_TRACE_OUT="$tracedir/v1.trace" \
    target/release/cmpsim run --workload eqntott --scale 0.05 >/dev/null
target/release/cmpsim replay --file "$tracedir/v1.trace" --rewrite "$tracedir/v2.trace" \
    > "$tracedir/replay_v1.txt"
target/release/cmpsim replay --file "$tracedir/v2.trace" > "$tracedir/replay_v2.txt"
# Drop the trace-path and rewrite-report lines; every result line
# (replayed counts, miss rates, latencies, ports, stream profile) must
# be byte-identical between the v1 original and its v2 rewrite.
if ! diff <(grep -vE '^(trace|rewrote)' "$tracedir/replay_v1.txt") \
          <(grep -vE '^(trace|rewrote)' "$tracedir/replay_v2.txt"); then
    echo "ERROR: v1 trace and its --rewrite v2 migration replay differently" >&2
    exit 1
fi
echo "ok: v1 -> v2 rewrite round-trips to identical replay results"

echo "== shard identity: quick matrix at CMPSIM_SHARDS=4 vs serial =="
matrix_sharded=$(CMPSIM_SHARDS=4 CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
if [ "$matrix_off" != "$matrix_sharded" ]; then
    echo "ERROR: CMPSIM_SHARDS=4 digest matrix differs from serial:" >&2
    diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_sharded") >&2 || true
    exit 1
fi
matrix_sharded_on=$(CMPSIM_SHARDS=4 CMPSIM_SENTINEL=1 CMPSIM_MATRIX_SCALE=0.02 cargo bench -q -p cmpsim-bench --bench summary_matrix 2>/dev/null | grep '^{')
if [ "$matrix_off" != "$matrix_sharded_on" ]; then
    echo "ERROR: CMPSIM_SHARDS=4 sentinel-on digest matrix differs from serial:" >&2
    diff <(printf '%s\n' "$matrix_off") <(printf '%s\n' "$matrix_sharded_on") >&2 || true
    exit 1
fi
echo "ok: sharded matrix is bit-identical to serial (sentinel off and on)"

echo "== quick simulator-speed record -> BENCH_pr7.json =="
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
for bench in sim_throughput shard_sweep replay_sweep; do
    CMPSIM_BENCH_QUICK=1 cargo bench -q -p cmpsim-bench --bench "$bench" 2>/dev/null \
        | grep '^{' \
        | sed "s/^{/{\"phase\":\"verify\",\"utc\":\"${stamp}\",/" \
        >> BENCH_pr7.json
done
echo "ok: appended quick sim_throughput, shard_sweep and replay_sweep records"

echo "verify.sh: all checks passed"

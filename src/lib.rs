//! `cmpsim` — a reproduction of *"Evaluation of Design Alternatives for a
//! Multiprocessor Microprocessor"* (Nayfeh, Hammond & Olukotun, ISCA 1996).
//!
//! This facade crate re-exports the whole stack; see the README for the
//! architecture overview and `EXPERIMENTS.md` for paper-vs-measured
//! results. The sub-crates:
//!
//! * [`engine`] — discrete-event core (cycles, ports,
//!   queues, statistics).
//! * [`isa`] — the MIPS-like instruction set, assembler and
//!   disassembler.
//! * [`mem`] — physical memory, caches, and the four memory
//!   systems (the paper's three plus the clustered extension).
//! * [`cpu`] — the functional core and the Mipsy / MXS timing
//!   models.
//! * [`kernels`] — the synchronization runtime and the
//!   workload generators.
//! * [`trace`] — reference-trace capture at the CPU/memory
//!   boundary, the compact binary codec, trace-driven replay and the
//!   sharing/reuse analysis passes.
//! * [`core`] — machine assembly, the experiment runner and
//!   the paper's metrics.
//!
//! # Examples
//!
//! Run a workload on one of the paper's architectures:
//!
//! ```
//! use cmpsim::core::machine::run_workload;
//! use cmpsim::core::{ArchKind, CpuKind, MachineConfig};
//! use cmpsim::kernels::build_by_name;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = build_by_name("eqntott", 4, 0.05)?;
//! let cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mipsy);
//! let summary = run_workload(&cfg, &workload, 100_000_000)?;
//! assert!(summary.wall_cycles > 0);
//! # Ok(())
//! # }
//! ```

pub use cmpsim_core as core;
pub use cmpsim_cpu as cpu;
pub use cmpsim_engine as engine;
pub use cmpsim_explore as explore;
pub use cmpsim_isa as isa;
pub use cmpsim_kernels as kernels;
pub use cmpsim_mem as mem;
pub use cmpsim_trace as trace;

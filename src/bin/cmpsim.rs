//! `cmpsim` command-line driver: run any workload on any architecture
//! under either CPU model and print the paper's metrics.
//!
//! ```sh
//! cmpsim run --workload ocean --arch shared-l1 --cpu mipsy --scale 1.0
//! cmpsim sweep --workload ear --cpu mxs
//! cmpsim probe
//! cmpsim list
//! ```

use cmpsim::core::machine::run_workload;
use cmpsim::core::report::IpcBreakdown;
use cmpsim::core::{
    probe_latencies, ArchKind, Breakdown, CpuKind, MachineConfig, MissRates, RunSummary,
    TraceProfile, ENV_TRACE_IN,
};
use cmpsim::engine::journal::{Journal, JournalKey};
use cmpsim::trace::codec::fnv1a;
use cmpsim::trace::{
    analyze_bytes, decode_parallel_with_header, encode_with_version, replay_jobs, replay_matrix,
    salvage, ConfigReplay,
};
use cmpsim_kernels::synth::{build as build_synth, SynthParams};
use cmpsim_kernels::{build_by_name, ALL_WORKLOADS};
use std::process::ExitCode;

const USAGE: &str = "\
cmpsim — ISCA'96 multiprocessor-microprocessor design-space simulator

USAGE:
    cmpsim run   --workload <NAME> [--arch <ARCH>] [--cpu <MODEL>]
                 [--scale <F>] [--cpus <N>] [--l2-assoc <N>]
                 [--l1-latency <N>] [--l1-banks <N>] [--budget <CYCLES>]
                 [--mesh-rows <N> --mesh-cols <N>]
    cmpsim sweep --workload <NAME> [--cpu <MODEL>] [--scale <F>]
    cmpsim synth [--rounds N] [--grain N] [--ws KB] [--stores PCT]
                 [--shared PCT] [--shared-kb KB] [--cpu <MODEL>]
                                 sweep a parameterized synthetic workload
                                 across all three architectures
    cmpsim replay [--file <TRACE>] [--arch <ARCH>]... [--cpus <N>]
                 [--l2-assoc <N>] [--l1-latency <N>] [--l1-banks <N>]
                 [--mesh-rows <N> --mesh-cols <N>]
                 [--rewrite <OUT>] [--salvage] [--head <N>]
                                 replay a captured reference trace into
                                 freshly built memory systems (no CPU
                                 model); repeat --arch to batch several
                                 architectures over one decode, --rewrite
                                 to migrate the trace to format v2,
                                 --salvage to recover every intact chunk
                                 of a torn/corrupted trace instead of
                                 rejecting it, --head N to replay only
                                 the first N records
    cmpsim explore --workload <NAME> [--scale <F>] [--budget <CYCLES>]
                 [--driver exhaustive|random|hill|evolve] [--seed <N>]
                 [--dim <name>=<v1,v2,...>]... [--points <N>]
                 [--starts <N>] [--steps <N>] [--pop <N>] [--gens <N>]
                 [--cache <PATH>] [--exec] [--dry-run] [--jobs <N>]
                                 seeded design-space search: JSON-lines
                                 points + Pareto frontier on stdout,
                                 byte-identical at any job count; --cache
                                 persists every evaluated point so
                                 overlapping or interrupted searches
                                 never recompute; --dry-run plans the
                                 search (cardinality, exec/replay split,
                                 cache hits) without simulating.
                                 Dimensions: arch, cpu, cpus, l1-kb,
                                 l2-kb, l2-assoc, l2-banks, l1-banks,
                                 l2-width (128|64 bits), rob
    cmpsim probe                 measure Table 2 latencies
    cmpsim list                  list workloads and architectures

ARCH:   shared-l1 | shared-l2 | shared-mem | clustered | mesh
                                             (default shared-mem)
MODEL:  mipsy | mxs                          (default mipsy)
NAME:   eqntott mp3d ocean volpack ear fft multiprog

The mesh architecture tiles the CPUs on a near-square 2D grid by default;
--mesh-rows/--mesh-cols pin the grid (rows x cols must equal --cpus).

Set CMPSIM_TRACE_OUT=<path> on any `run` to capture its reference trace
crash-safely (bytes land at <path>.tmp and rename onto <path> when the
footer is written; CMPSIM_TRACE_FORMAT=1 pins the legacy v1 format);
`replay` reads --file or CMPSIM_TRACE_IN, decodes chunks in parallel,
and fans a multi-arch batch across CMPSIM_REPLAY_JOBS threads (default:
host parallelism). CMPSIM_RESUME=<path> journals each replayed
configuration's block so an interrupted multi-arch replay restarts where
it died with identical output.
";

#[derive(Debug)]
struct Args {
    workload: String,
    arch: ArchKind,
    cpu: CpuKind,
    scale: f64,
    cpus: usize,
    l2_assoc: Option<usize>,
    l1_latency: Option<u64>,
    l1_banks: Option<usize>,
    mesh_rows: Option<usize>,
    mesh_cols: Option<usize>,
    budget: u64,
}

/// Resolves the `--mesh-rows`/`--mesh-cols` pair: both or neither.
fn mesh_dims_of(
    rows: Option<usize>,
    cols: Option<usize>,
) -> Result<Option<(usize, usize)>, String> {
    match (rows, cols) {
        (Some(r), Some(c)) => Ok(Some((r, c))),
        (None, None) => Ok(None),
        _ => Err("--mesh-rows and --mesh-cols must be given together".into()),
    }
}

fn parse_arch(s: &str) -> Result<ArchKind, String> {
    match s {
        "shared-l1" | "l1" => Ok(ArchKind::SharedL1),
        "shared-l2" | "l2" => Ok(ArchKind::SharedL2),
        "shared-mem" | "shared-memory" | "mem" => Ok(ArchKind::SharedMem),
        "clustered" => Ok(ArchKind::Clustered),
        "mesh" => Ok(ArchKind::Mesh),
        other => Err(format!("unknown architecture `{other}`")),
    }
}

fn parse_cpu(s: &str) -> Result<CpuKind, String> {
    match s {
        "mipsy" => Ok(CpuKind::Mipsy),
        "mxs" => Ok(CpuKind::Mxs),
        other => Err(format!("unknown CPU model `{other}`")),
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workload: String::new(),
        arch: ArchKind::SharedMem,
        cpu: CpuKind::Mipsy,
        scale: 1.0,
        cpus: 4,
        l2_assoc: None,
        l1_latency: None,
        l1_banks: None,
        mesh_rows: None,
        mesh_cols: None,
        budget: 40_000_000_000,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--workload" | "-w" => args.workload = val()?,
            "--arch" | "-a" => args.arch = parse_arch(&val()?)?,
            "--cpu" | "-c" => args.cpu = parse_cpu(&val()?)?,
            "--scale" | "-s" => {
                args.scale = val()?.parse().map_err(|e| format!("bad scale: {e}"))?
            }
            "--cpus" | "-n" => args.cpus = val()?.parse().map_err(|e| format!("bad cpus: {e}"))?,
            "--l2-assoc" => {
                args.l2_assoc = Some(val()?.parse().map_err(|e| format!("bad assoc: {e}"))?)
            }
            "--l1-latency" => {
                args.l1_latency = Some(val()?.parse().map_err(|e| format!("bad latency: {e}"))?)
            }
            "--l1-banks" => {
                args.l1_banks = Some(val()?.parse().map_err(|e| format!("bad banks: {e}"))?)
            }
            "--mesh-rows" => {
                args.mesh_rows = Some(val()?.parse().map_err(|e| format!("bad rows: {e}"))?)
            }
            "--mesh-cols" => {
                args.mesh_cols = Some(val()?.parse().map_err(|e| format!("bad cols: {e}"))?)
            }
            "--budget" => args.budget = val()?.parse().map_err(|e| format!("bad budget: {e}"))?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.workload.is_empty() {
        return Err("--workload is required".into());
    }
    // Per-workload CPU-count constraints (power-of-two FFT grids, …) are
    // reported by the workload builders; the memory system validates its
    // own ceiling. Here only reject the degenerate zero.
    if args.cpus == 0 {
        return Err("--cpus must be at least 1".into());
    }
    mesh_dims_of(args.mesh_rows, args.mesh_cols)?;
    Ok(args)
}

fn print_summary(cpu: CpuKind, s: &RunSummary) {
    println!("architecture : {}", s.arch.name());
    println!("wall cycles  : {}", s.wall_cycles);
    println!("instructions : {}", s.total.instructions);
    println!(
        "loads/stores : {} / {} ({} failed SC)",
        s.total.loads, s.total.stores, s.total.sc_failures
    );
    match cpu {
        CpuKind::Mipsy => println!("breakdown    : {}", Breakdown::from_summary(s)),
        _ => {
            println!("ipc          : {}", IpcBreakdown::from_summary(s));
            println!(
                "pipeline     : avg window {:.1}/32, {} rob-full + {} no-preg dispatch stalls, {} mispredicts / {} branches",
                s.total.avg_window_occupancy(),
                s.total.dispatch_stall_rob,
                s.total.dispatch_stall_preg,
                s.total.mispredicts,
                s.total.branches
            );
        }
    }
    println!("miss rates   : {}", MissRates::from_mem(&s.mem));
    println!("access lat.  : {}", s.mem.latency);
    for u in &s.port_util {
        // busy_cycles aggregates over a group's banks, so it can exceed
        // the wall clock; report raw cycle counts.
        println!(
            "port {:<12}: {:>9} grants, {:>9} busy cyc, {:>9} wait cyc",
            u.name, u.grants, u.busy_cycles, u.wait_cycles
        );
    }
    if !s.violations.is_empty() {
        println!(
            "sentinel     : {} violations detected; first: {}",
            s.violations.len(),
            s.violations[0]
        );
    }
}

/// Renders one replayed configuration's report block — built as a string
/// (rather than printed directly) so the replay journal can store and
/// re-emit it byte-identically on resume.
fn render_replay_block(cr: &ConfigReplay, cpus: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "system       : {} ({cpus} CPUs)", cr.name).expect("string write");
    writeln!(
        out,
        "replayed     : {} accesses, {} ROI resets",
        cr.replay.accesses, cr.replay.resets
    )
    .expect("string write");
    writeln!(out, "miss rates   : {}", MissRates::from_mem(&cr.stats)).expect("string write");
    writeln!(out, "access lat.  : {}", cr.stats.latency).expect("string write");
    for u in &cr.ports {
        writeln!(
            out,
            "port {:<12}: {:>9} grants, {:>9} busy cyc, {:>9} wait cyc",
            u.name, u.grants, u.busy_cycles, u.wait_cycles
        )
        .expect("string write");
    }
    out
}

fn run_one(a: &Args, arch: ArchKind) -> Result<RunSummary, String> {
    let w = build_by_name(&a.workload, a.cpus, a.scale)?;
    let mut cfg = MachineConfig::new(arch, a.cpu);
    cfg.n_cpus = a.cpus;
    cfg.l2_assoc = a.l2_assoc;
    cfg.l1_latency = a.l1_latency;
    cfg.l1_banks = a.l1_banks;
    cfg.mesh_dims = mesh_dims_of(a.mesh_rows, a.mesh_cols)?;
    // Validate up front so a bad geometry is a CLI error, not a panic out
    // of the machine builder.
    cfg.system_config().validate().map_err(|e| e.to_string())?;
    run_workload(&cfg, &w, a.budget).map_err(|e| e.to_string())
}

/// `cmpsim explore`: seeded design-space search with cached batch
/// evaluation and Pareto frontier extraction (DESIGN.md §15).
///
/// Points go to stdout as JSON lines — a pure function of (space, spec,
/// driver, seed), byte-identical at any job count and across cache-hit
/// reruns. Run-variant facts (cache hits, capture counts) go to stderr.
fn cmd_explore(rest: &[String]) -> Result<(), String> {
    use cmpsim::explore::search::dry_run;
    use cmpsim::explore::{render_lines, run_search, DesignSpace, Driver, EvalMode, EvalSpec};

    let mut space = DesignSpace::paper();
    let mut workload: Option<String> = None;
    let mut scale = 0.05f64;
    let mut budget = 10_000_000_000u64;
    let mut seed = 1u64;
    let mut driver_name = "random".to_string();
    let mut points = 64usize;
    let mut starts = 4usize;
    let mut steps = 8usize;
    let mut pop = 16usize;
    let mut gens = 8usize;
    let mut cache: Option<std::path::PathBuf> = None;
    let mut exec = false;
    let mut dry = false;
    let mut jobs = cmpsim::engine::pool::env_jobs("CMPSIM_EXPLORE_JOBS");
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--workload" | "-w" => workload = Some(val()?),
            "--scale" | "-s" => scale = val()?.parse().map_err(|e| format!("bad scale: {e}"))?,
            "--budget" => budget = val()?.parse().map_err(|e| format!("bad budget: {e}"))?,
            "--seed" => seed = val()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--driver" => driver_name = val()?,
            "--points" => points = val()?.parse().map_err(|e| format!("bad points: {e}"))?,
            "--starts" => starts = val()?.parse().map_err(|e| format!("bad starts: {e}"))?,
            "--steps" => steps = val()?.parse().map_err(|e| format!("bad steps: {e}"))?,
            "--pop" => pop = val()?.parse().map_err(|e| format!("bad pop: {e}"))?,
            "--gens" => gens = val()?.parse().map_err(|e| format!("bad gens: {e}"))?,
            "--jobs" | "-j" => jobs = val()?.parse().map_err(|e| format!("bad jobs: {e}"))?,
            "--cache" => cache = Some(val()?.into()),
            "--exec" => exec = true,
            "--dry-run" => dry = true,
            "--dim" | "-d" => {
                let v = val()?;
                let (name, levels) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--dim wants name=v1,v2,... (got `{v}`)"))?;
                space
                    .set_dim(name.trim(), levels)
                    .map_err(|e| e.to_string())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let driver = match driver_name.as_str() {
        "exhaustive" => Driver::Exhaustive,
        "random" => Driver::Random { points },
        "hill" => Driver::HillClimb { starts, steps },
        "evolve" => Driver::Evolve {
            population: pop,
            generations: gens,
        },
        other => {
            return Err(format!(
                "unknown driver `{other}` (exhaustive, random, hill, evolve)"
            ))
        }
    };
    let spec = EvalSpec {
        workload: workload.ok_or("--workload is required")?,
        scale,
        budget,
        mode: if exec {
            EvalMode::Exec
        } else {
            EvalMode::Replay
        },
        jobs,
    };
    if dry {
        let plan =
            dry_run(&space, &spec, driver, seed, cache.as_deref()).map_err(|e| e.to_string())?;
        println!("space cardinality : {}", plan.cardinality);
        println!("planned points    : {}", plan.planned);
        println!("exec runs         : {}", plan.exec_captures);
        println!("replay points     : {}", plan.replay_points);
        println!("cache hits        : {}", plan.cache_hits);
        return Ok(());
    }
    let outcome = run_search(&space, spec.clone(), driver, seed, cache.as_deref())
        .map_err(|e| e.to_string())?;
    for line in render_lines(&space, &spec, driver, seed, &outcome).map_err(|e| e.to_string())? {
        println!("{line}");
    }
    eprintln!(
        "explore: cardinality {}, evaluated {} points ({} exec runs, {} replayed, {} cached), frontier {}",
        outcome.cardinality,
        outcome.points.len(),
        outcome.exec_runs,
        outcome.replay_points,
        outcome.cache_hits,
        outcome.frontier.len()
    );
    if outcome.cache_recovered > 0 {
        eprintln!(
            "explore: cache recovered {} rows from disk",
            outcome.cache_recovered
        );
    }
    if outcome.quarantined > 0 {
        eprintln!(
            "explore: {} points quarantined and dropped",
            outcome.quarantined
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &argv[1..];
    let result = match cmd.as_str() {
        "list" => {
            println!("workloads:     {}", ALL_WORKLOADS.join(" "));
            println!("architectures: shared-l1 shared-l2 shared-mem clustered mesh");
            println!("cpu models:    mipsy mxs");
            Ok(())
        }
        "probe" => {
            println!(
                "{:<14} {:>5} {:>5} {:>5} {:>5} {:>7} {:>8}",
                "system", "L1", "L2", "mem", "c2c", "L2 occ", "mem occ"
            );
            for arch in ArchKind::ALL {
                let p = probe_latencies(arch, false);
                println!(
                    "{:<14} {:>5} {:>5} {:>5} {:>5} {:>7} {:>8}",
                    arch.name(),
                    p.l1_hit,
                    p.l2_hit,
                    p.memory,
                    p.cache_to_cache.map_or("-".into(), |v| v.to_string()),
                    p.l2_occupancy,
                    p.mem_occupancy
                );
            }
            Ok(())
        }
        "run" => parse_args(rest).and_then(|a| {
            let s = run_one(&a, a.arch)?;
            print_summary(a.cpu, &s);
            Ok(())
        }),
        "sweep" => parse_args(rest).and_then(|a| {
            let mut base = None;
            println!(
                "{:<14} {:>12} {:>8}  breakdown",
                "architecture", "cycles", "norm"
            );
            for arch in ArchKind::ALL {
                let s = run_one(&a, arch)?;
                let b = *base.get_or_insert(s.wall_cycles);
                let detail = match a.cpu {
                    CpuKind::Mipsy => Breakdown::from_summary(&s).to_string(),
                    _ => IpcBreakdown::from_summary(&s).to_string(),
                };
                println!(
                    "{:<14} {:>12} {:>8.3}  {}",
                    arch.name(),
                    s.wall_cycles,
                    s.wall_cycles as f64 / b as f64,
                    detail
                );
            }
            Ok(())
        }),
        "replay" => (|| {
            let mut file = std::env::var(ENV_TRACE_IN).ok();
            let mut archs: Vec<ArchKind> = Vec::new();
            let mut cpus = 4usize;
            let mut l2_assoc = None;
            let mut l1_latency = None;
            let mut l1_banks = None;
            let mut mesh_rows = None;
            let mut mesh_cols = None;
            let mut rewrite: Option<String> = None;
            let mut do_salvage = false;
            let mut head: Option<usize> = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut val = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("flag {flag} needs a value"))
                };
                match flag.as_str() {
                    "--file" | "-f" => file = Some(val()?),
                    "--arch" | "-a" => archs.push(parse_arch(&val()?)?),
                    "--cpus" | "-n" => {
                        cpus = val()?.parse().map_err(|e| format!("bad cpus: {e}"))?
                    }
                    "--l2-assoc" => {
                        l2_assoc = Some(val()?.parse().map_err(|e| format!("bad assoc: {e}"))?)
                    }
                    "--l1-latency" => {
                        l1_latency = Some(val()?.parse().map_err(|e| format!("bad latency: {e}"))?)
                    }
                    "--l1-banks" => {
                        l1_banks = Some(val()?.parse().map_err(|e| format!("bad banks: {e}"))?)
                    }
                    "--mesh-rows" => {
                        mesh_rows = Some(val()?.parse().map_err(|e| format!("bad rows: {e}"))?)
                    }
                    "--mesh-cols" => {
                        mesh_cols = Some(val()?.parse().map_err(|e| format!("bad cols: {e}"))?)
                    }
                    "--rewrite" => rewrite = Some(val()?),
                    "--salvage" => do_salvage = true,
                    "--head" => head = Some(val()?.parse().map_err(|e| format!("bad head: {e}"))?),
                    other => return Err(format!("unknown flag `{other}`")),
                }
            }
            if archs.is_empty() {
                archs.push(ArchKind::SharedMem);
            }
            let mesh_dims = mesh_dims_of(mesh_rows, mesh_cols)?;
            let path = file.ok_or(format!("--file or {ENV_TRACE_IN} is required"))?;
            let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
            let jobs = replay_jobs();
            // Decode once; every configuration replays from this arena.
            // Strict mode rejects any framing or payload fault and fans
            // chunk decode across the job pool; --salvage walks leniently
            // and keeps every chunk that verifies.
            let (header, mut records) = if do_salvage {
                let s = salvage(&bytes).map_err(|e| e.to_string())?;
                println!(
                    "salvaged     : {} chunks ({} records), {} skipped, {} bytes dropped, {}",
                    s.chunks_recovered,
                    s.records.len(),
                    s.chunks_skipped,
                    s.bytes_dropped,
                    if s.clean_eof { "clean eof" } else { "torn eof" }
                );
                (s.header, s.records)
            } else {
                decode_parallel_with_header(&bytes, jobs).map_err(|e| e.to_string())?
            };
            if let Some(n) = head {
                records.truncate(n);
            }
            println!("trace        : {path}");
            if let Some(out) = rewrite {
                let v2 = encode_with_version(
                    &records,
                    usize::from(header.n_cpus),
                    u32::from(header.line_bytes),
                    cmpsim::trace::VERSION,
                )
                .map_err(|e| e.to_string())?;
                std::fs::write(&out, &v2).map_err(|e| format!("{out}: {e}"))?;
                println!(
                    "rewrote      : {out} (v{} -> v{}, {} bytes)",
                    header.version,
                    cmpsim::trace::VERSION,
                    v2.len()
                );
            }
            // Validate every configuration before fanning out, so a bad
            // geometry is a CLI error rather than a worker panic.
            let cfgs: Vec<_> = archs
                .iter()
                .map(|&arch| {
                    let mut cfg = MachineConfig::new(arch, CpuKind::Mipsy);
                    cfg.n_cpus = cpus;
                    cfg.l2_assoc = l2_assoc;
                    cfg.l1_latency = l1_latency;
                    cfg.l1_banks = l1_banks;
                    cfg.mesh_dims = mesh_dims;
                    let sc = cfg.system_config();
                    arch.try_build(&sc).map(|_| (arch, sc))
                })
                .collect::<Result<_, _>>()
                .map_err(|e| e.to_string())?;
            // With CMPSIM_RESUME set, each configuration's rendered block
            // is journaled under (config digest, record-stream digest);
            // a restarted replay re-emits journaled blocks verbatim and
            // only replays the configurations that are missing.
            let mut journal = Journal::from_env().map_err(|e| e.to_string())?;
            let stream = format!(
                "cmpsim-replay-trace-v1|{:016x}|{}",
                fnv1a(&bytes),
                records.len()
            );
            // v3: keys now come from the shared JournalKey::digest helper
            // (journal-side FNV), so rows journaled by older binaries are
            // recomputed rather than misread.
            let keys: Vec<JournalKey> = cfgs
                .iter()
                .map(|&(arch, _)| {
                    JournalKey::digest(
                        "cmpsim-replay-row-v3",
                        &format!(
                            "{}|{cpus}|{l2_assoc:?}|{l1_latency:?}|{l1_banks:?}|{mesh_dims:?}",
                            arch.name()
                        ),
                        &stream,
                    )
                })
                .collect();
            let todo: Vec<usize> = (0..cfgs.len())
                .filter(|&i| journal.as_ref().is_none_or(|j| !j.contains(keys[i])))
                .collect();
            if let Some(j) = &journal {
                let hits = cfgs.len() - todo.len();
                if hits > 0 {
                    eprintln!("replay: resumed {hits} rows from {}", j.path().display());
                }
            }
            let results = replay_matrix(&records, todo.len(), jobs, |i| {
                let (arch, ref sc) = cfgs[todo[i]];
                arch.try_build(sc).expect("configuration validated above")
            });
            let mut fresh = results.iter();
            for (i, key) in keys.iter().enumerate() {
                let block = if todo.contains(&i) {
                    let cr = fresh.next().expect("one result per missing row");
                    let block = render_replay_block(cr, cpus);
                    if let Some(j) = journal.as_mut() {
                        j.put(*key, block.as_bytes())
                            .map_err(|e| format!("journaling replay row: {e}"))?;
                    }
                    block
                } else {
                    let j = journal
                        .as_ref()
                        .expect("todo excludes rows only when journaled");
                    String::from_utf8(j.get(*key).expect("checked above").to_vec())
                        .map_err(|e| format!("journaled replay row not UTF-8: {e}"))?
                };
                print!("{block}");
            }
            // The stream profile decodes strictly from the raw bytes, so
            // it has no meaning for a torn --salvage input; the replayed
            // statistics above are the recovery product.
            if !do_salvage {
                let a = analyze_bytes(&bytes).map_err(|e| e.to_string())?;
                println!("stream       : {}", TraceProfile::from_analysis(&a));
            }
            Ok(())
        })(),
        "synth" => (|| {
            let mut p = SynthParams::default();
            let mut cpu = CpuKind::Mipsy;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut val = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("flag {flag} needs a value"))
                };
                let parse = |v: String| v.parse::<usize>().map_err(|e| format!("bad number: {e}"));
                match flag.as_str() {
                    "--rounds" => p.rounds = parse(val()?)?,
                    "--grain" => p.grain = parse(val()?)?,
                    "--ws" => p.working_set_kb = parse(val()?)?,
                    "--stores" => p.store_pct = parse(val()?)? as u8,
                    "--shared" => p.shared_pct = parse(val()?)? as u8,
                    "--shared-kb" => p.shared_kb = parse(val()?)?,
                    "--cpu" => cpu = parse_cpu(&val()?)?,
                    other => return Err(format!("unknown flag `{other}`")),
                }
            }
            // Validate up front so bad knobs produce CLI errors, not the
            // library's panics.
            if !(p.working_set_kb * 1024).is_power_of_two() {
                return Err(format!("--ws {} is not a power of two", p.working_set_kb));
            }
            if !(p.shared_kb * 1024).is_power_of_two() {
                return Err(format!("--shared-kb {} is not a power of two", p.shared_kb));
            }
            if p.store_pct > 100 || p.shared_pct > 100 {
                return Err("--stores/--shared are percentages (0-100)".into());
            }
            println!("synth: {p:?}\n");
            println!(
                "{:<14} {:>12} {:>8}  breakdown",
                "architecture", "cycles", "norm"
            );
            let mut base = None;
            for arch in ArchKind::ALL {
                let w = build_synth(&p).map_err(|e| e.to_string())?;
                let mut cfg = MachineConfig::new(arch, cpu);
                cfg.n_cpus = p.n_cpus;
                let s = run_workload(&cfg, &w, 40_000_000_000).map_err(|e| e.to_string())?;
                let b = *base.get_or_insert(s.wall_cycles);
                let detail = match cpu {
                    CpuKind::Mipsy => Breakdown::from_summary(&s).to_string(),
                    _ => IpcBreakdown::from_summary(&s).to_string(),
                };
                println!(
                    "{:<14} {:>12} {:>8.3}  {}",
                    arch.name(),
                    s.wall_cycles,
                    s.wall_cycles as f64 / b as f64,
                    detail
                );
            }
            Ok(())
        })(),
        "explore" => cmd_explore(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

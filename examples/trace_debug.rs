//! Debugging workflow: disassemble a generated program and flight-record
//! its execution.
//!
//! ```sh
//! cargo run --release --example trace_debug
//! ```
//!
//! Shows the two tools a workload author reaches for when a kernel
//! misbehaves: the listing (with labels and branch targets) and the Mipsy
//! flight recorder (the last N executed instructions with addresses).

use cmpsim_cpu::{CpuModel, MipsyCpu};
use cmpsim_engine::Cycle;
use cmpsim_isa::disasm::listing;
use cmpsim_isa::{Asm, Reg};
use cmpsim_mem::{AddrSpace, PhysMem, SharedMemSystem, SystemConfig};

fn main() {
    // A small program with a data-dependent loop and a memory access.
    let mut a = Asm::new(0x1000);
    a.label("entry");
    a.li(Reg::T0, 5);
    a.la_abs(Reg::A0, 0x8000);
    a.label("loop");
    a.lw(Reg::T1, Reg::A0, 0);
    a.add(Reg::T1, Reg::T1, Reg::T0);
    a.sw(Reg::T1, Reg::A0, 0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.label("done");
    a.halt();
    let prog = a.assemble().expect("assembles");

    println!("=== listing ===\n{}", listing(&prog));

    let mut phys = PhysMem::new(1);
    phys.load_words(prog.base, &prog.words);
    let mut mem = SharedMemSystem::new(&SystemConfig::paper_shared_mem(1));
    let mut cpu = MipsyCpu::new(0, prog.base, AddrSpace::identity());
    cpu.enable_trace(12);
    let mut now = Cycle(0);
    while !cpu.halted() {
        let (next, _) = cpu.step(now, &mut mem, &mut phys);
        now = next;
    }

    println!("=== flight recorder (last 12 instructions) ===");
    for e in cpu.trace() {
        let mem_note = e
            .mem
            .map(|(kind, pa)| format!("  [{kind:?} @{pa:#x}]"))
            .unwrap_or_default();
        println!(
            "cycle {:>5}  {:#06x}: {}{}",
            e.cycle, e.pc, e.instr, mem_note
        );
    }
    println!("\nfinal word at 0x8000: {}", phys.read_u32(0x8000));
    assert_eq!(phys.read_u32(0x8000), 5 + 4 + 3 + 2 + 1);
}

//! Debugging workflow: disassemble a generated program, capture its
//! reference trace, and replay it.
//!
//! ```sh
//! cargo run --release --example trace_debug
//! ```
//!
//! Shows the two tools a workload author reaches for when a kernel
//! misbehaves: the listing (with labels and branch targets) and the
//! captured reference stream — every memory access the CPU issued, in
//! issue order, straight out of the `cmpsim-trace` capture hook. The same
//! capture then replays into a fresh memory system and reproduces the
//! original statistics bit for bit.

use cmpsim_cpu::{CpuModel, MipsyCpu};
use cmpsim_engine::Cycle;
use cmpsim_isa::disasm::listing;
use cmpsim_isa::{Asm, Reg};
use cmpsim_mem::{AddrSpace, MemorySystem, PhysMem, SharedMemSystem, SystemConfig};
use cmpsim_trace::{decode, replay_bytes, sink_to, SharedBuf, TracingSystem};
use std::rc::Rc;

fn main() {
    // A small program with a data-dependent loop and a memory access.
    let mut a = Asm::new(0x1000);
    a.label("entry");
    a.li(Reg::T0, 5);
    a.la_abs(Reg::A0, 0x8000);
    a.label("loop");
    a.lw(Reg::T1, Reg::A0, 0);
    a.add(Reg::T1, Reg::T1, Reg::T0);
    a.sw(Reg::T1, Reg::A0, 0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.label("done");
    a.halt();
    let prog = a.assemble().expect("assembles");

    println!("=== listing ===\n{}", listing(&prog));

    // Run the program with the capture decorator wrapped around the
    // memory system: every ifetch/load/store lands in `buf`.
    let cfg = SystemConfig::paper_shared_mem(1);
    let mut phys = PhysMem::new(1);
    phys.load_words(prog.base, &prog.words);
    let buf = SharedBuf::new();
    let sink = sink_to(Box::new(buf.clone()), 1, cfg.l1d.line_bytes).expect("sink");
    let mut mem = TracingSystem::new(Box::new(SharedMemSystem::new(&cfg)), Rc::clone(&sink));
    let mut cpu = MipsyCpu::new(0, prog.base, AddrSpace::identity());
    let mut now = Cycle(0);
    while !cpu.halted() {
        let (next, _) = cpu.step(now, &mut mem, &mut phys);
        now = next;
    }
    sink.borrow_mut().finish().expect("finishes");
    let bytes = buf.take();

    let records = decode(&bytes).expect("decodes");
    println!(
        "=== captured reference stream (last 12 of {} records, {} bytes) ===",
        records.len(),
        bytes.len()
    );
    for r in records.iter().rev().take(12).rev() {
        println!(
            "cycle {:>5}  cpu {}  {:?} @{:#06x}",
            r.cycle, r.cpu, r.kind, r.addr
        );
    }

    // Replay the capture into a fresh, identically configured system: the
    // memory statistics come out bit-identical to the traced run's.
    let mut fresh = SharedMemSystem::new(&cfg);
    let rs = replay_bytes(&bytes, &mut fresh).expect("replays");
    let identical = format!("{:?}", fresh.stats()) == format!("{:?}", mem.stats());
    println!(
        "\n=== replay ===\n{} accesses re-issued; stats bit-identical: {identical}",
        rs.accesses
    );
    assert!(identical, "replay must reproduce the captured run's stats");

    println!("\nfinal word at 0x8000: {}", phys.read_u32(0x8000));
    assert_eq!(phys.read_u32(0x8000), 5 + 4 + 3 + 2 + 1);
}

//! Sharing analysis from captured reference traces: ocean (true data
//! sharing through the grid borders) versus multiprog (independent
//! processes — no sharing at all).
//!
//! ```sh
//! cargo run --release --example trace_analyze
//! # or analyze a trace captured earlier with CMPSIM_TRACE_OUT:
//! CMPSIM_TRACE_IN=/tmp/run.trace cargo run --release --example trace_analyze
//! ```
//!
//! For each workload this captures the reference stream once, then
//! computes everything from the trace alone: footprint, per-line sharing
//! degree, the producer→consumer communication matrix and the
//! reuse-distance profile. The contrast is the point — ocean's border
//! exchanges make over a third of its data lines shared, while multiprog's
//! independent processes share almost nothing.

use cmpsim_core::{capture_run, ArchKind, CpuKind, MachineConfig, TraceProfile, ENV_TRACE_IN};
use cmpsim_kernels::build_by_name;
use cmpsim_trace::{analyze_bytes, comm_matrix, TraceAnalysis};

fn show(name: &str, bytes: &[u8]) -> TraceAnalysis {
    let a = analyze_bytes(bytes).expect("analyzes");
    println!(
        "--- {name} ({} refs, {} trace bytes) ---",
        a.refs(),
        bytes.len()
    );
    println!("{}", TraceProfile::from_analysis(&a));
    println!("{}", comm_matrix(&a.comm));
    a
}

fn main() {
    if let Ok(path) = std::env::var(ENV_TRACE_IN) {
        let bytes = std::fs::read(&path).unwrap_or_else(|e| panic!("{ENV_TRACE_IN}={path}: {e}"));
        show(&path, &bytes);
        return;
    }

    let cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
    let frac_of = |name: &str| {
        let w = build_by_name(name, 4, 0.05).expect("builds");
        let (_, bytes) = capture_run(&cfg, &w, 1_000_000_000).expect("captures");
        let a = show(name, &bytes);
        a.shared_lines() as f64 / a.data_lines.max(1) as f64
    };
    let (ocean, multiprog) = (frac_of("ocean"), frac_of("multiprog"));
    println!(
        "shared data-line fraction: ocean {:.1}%, multiprog {:.1}%",
        ocean * 100.0,
        multiprog * 100.0
    );
    assert!(
        ocean > 3.0 * multiprog,
        "ocean shares through borders; multiprog processes are (nearly) independent"
    );
}

//! Reproduce the paper's Mipsy figures (4-10) in one run.
//!
//! ```sh
//! cargo run --release --example paper_figures [scale]
//! ```
//!
//! `scale` defaults to 1.0 (the paper-equivalent workload sizes); smaller
//! values run faster but overweight cold misses.

use cmpsim::core::machine::run_workload;
use cmpsim::core::report::IpcBreakdown;
use cmpsim::core::{ArchKind, Breakdown, CpuKind, MachineConfig, MissRates};
use cmpsim_kernels::{build_by_name, ALL_WORKLOADS};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("Workload scale {scale} (1.0 = paper-equivalent sizes)");

    for (i, name) in ALL_WORKLOADS.iter().enumerate() {
        println!("\n--- Figure {}: {name} (Mipsy) ---", i + 4);
        let mut base = None;
        for arch in ArchKind::ALL {
            let w = build_by_name(name, 4, scale).expect("workload builds");
            let cfg = MachineConfig::new(arch, CpuKind::Mipsy);
            let s = run_workload(&cfg, &w, 40_000_000_000).expect("validates");
            let b = *base.get_or_insert(s.wall_cycles);
            // The paper normalizes to the shared-memory architecture, which
            // is printed last here; renormalize at the end of the row group
            // by printing ratios against the first run instead.
            println!(
                "  {:<14} {:>10} cycles ({:>6.3}x first)  {}",
                arch.name(),
                s.wall_cycles,
                s.wall_cycles as f64 / b as f64,
                Breakdown::from_summary(&s)
            );
            println!("     {}", MissRates::from_mem(&s.mem));
        }
    }

    println!("\n--- Figure 11: MXS IPC breakdowns ---");
    for name in ["eqntott", "ear", "multiprog"] {
        println!("  {name}:");
        for arch in ArchKind::ALL {
            let w = build_by_name(name, 4, scale).expect("workload builds");
            let cfg = MachineConfig::new(arch, CpuKind::Mxs);
            let s = run_workload(&cfg, &w, 40_000_000_000).expect("validates");
            println!("    {:<14} {}", arch.name(), IpcBreakdown::from_summary(&s));
        }
    }
}

//! Demonstrate false sharing — a scenario the paper's shared-L1
//! architecture is immune to by construction.
//!
//! ```sh
//! cargo run --release --example false_sharing
//! ```
//!
//! Four CPUs each increment a private counter. In the "packed" layout all
//! four counters share one 32-byte line; in the "padded" layout each gets
//! its own line. On the coherence-based architectures the packed layout
//! ping-pongs the line; the shared-L1 architecture has no coherence at all,
//! so both layouts cost the same.

use cmpsim::core::machine::run_workload;
use cmpsim::core::{ArchKind, CpuKind, MachineConfig};
use cmpsim_isa::{Asm, Reg};
use cmpsim_kernels::{BuiltWorkload, Layout, ProcessInit, Runtime};
use cmpsim_mem::AddrSpace;

const ITERS: i64 = 2000;
const COUNTERS: u32 = Layout::DATA;

fn build(stride: u32) -> BuiltWorkload {
    let mut rt = Runtime::new();
    let mut a = Asm::new(Layout::CODE);
    rt.preamble(&mut a);
    // counter address = COUNTERS + cpu * stride
    a.la_abs(Reg::S0, COUNTERS);
    a.li(Reg::T0, i64::from(stride));
    a.mul(Reg::T0, Reg::S7, Reg::T0);
    a.add(Reg::S0, Reg::S0, Reg::T0);
    a.li(Reg::S1, ITERS);
    a.label("loop");
    a.lw(Reg::T0, Reg::S0, 0);
    a.addi(Reg::T0, Reg::T0, 1);
    a.sw(Reg::T0, Reg::S0, 0);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, "loop");
    a.halt();
    let prog = a.assemble().expect("assembles");
    BuiltWorkload {
        name: "false-sharing",
        image: vec![(prog.base, prog.words)],
        entries: (0..4)
            .map(|_| ProcessInit {
                entry: Layout::CODE,
                space: AddrSpace::identity(),
            })
            .collect(),
        extra_processes: vec![Vec::new(); 4],
        init: Box::new(|_| {}),
        check: Box::new(move |phys| {
            for c in 0..4u32 {
                let v = phys.read_u32(COUNTERS + c * stride);
                if v != ITERS as u32 {
                    return Err(format!("cpu {c}: counter {v} != {ITERS}"));
                }
            }
            Ok(())
        }),
    }
}

fn main() {
    println!("Four CPUs increment private counters {ITERS} times each.\n");
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "architecture", "packed (4B)", "padded (32B)", "slowdown"
    );
    for arch in ArchKind::ALL {
        let mut cycles = [0u64; 2];
        for (k, stride) in [(0usize, 4u32), (1, 32)] {
            let w = build(stride);
            let cfg = MachineConfig::new(arch, CpuKind::Mipsy);
            cycles[k] = run_workload(&cfg, &w, 1_000_000_000)
                .expect("validates")
                .wall_cycles;
        }
        println!(
            "{:<14} {:>14} {:>14} {:>9.1}x",
            arch.name(),
            cycles[0],
            cycles[1],
            cycles[0] as f64 / cycles[1] as f64
        );
    }
    println!("\nThe shared-L1 machine is immune: there is no coherence to ping-pong.");
}

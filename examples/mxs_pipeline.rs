//! Watch the MXS core at work: run the same dependence-heavy kernel under
//! Mipsy and MXS and compare cycle counts, then show how speculation
//! recovers from a data-dependent branch pattern.
//!
//! ```sh
//! cargo run --release --example mxs_pipeline
//! ```

use cmpsim::core::machine::run_workload;
use cmpsim::core::report::IpcBreakdown;
use cmpsim::core::{ArchKind, CpuKind, MachineConfig};
use cmpsim_isa::{Asm, Reg};
use cmpsim_kernels::{BuiltWorkload, Layout, ProcessInit};
use cmpsim_mem::AddrSpace;

/// A kernel with instruction-level parallelism: two independent chains the
/// 2-way MXS core can run side by side, plus a data-dependent branch.
fn build(independent: bool) -> BuiltWorkload {
    let mut a = Asm::new(Layout::CODE);
    a.li(Reg::S0, 20_000);
    a.li(Reg::T0, 1);
    a.li(Reg::T1, 1);
    a.label("loop");
    if independent {
        // Two independent chains: IPC can approach 2.
        a.addi(Reg::T0, Reg::T0, 3);
        a.addi(Reg::T1, Reg::T1, 5);
        a.xori(Reg::T0, Reg::T0, 0x11);
        a.xori(Reg::T1, Reg::T1, 0x22);
    } else {
        // One serial chain: every op waits for the previous.
        a.addi(Reg::T0, Reg::T0, 3);
        a.xori(Reg::T0, Reg::T0, 0x11);
        a.addi(Reg::T0, Reg::T0, 5);
        a.xori(Reg::T0, Reg::T0, 0x22);
    }
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, "loop");
    a.la_abs(Reg::A0, Layout::CHECK);
    a.sw(Reg::T0, Reg::A0, 0);
    a.halt();
    let prog = a.assemble().expect("assembles");
    BuiltWorkload {
        name: "pipeline-demo",
        image: vec![(prog.base, prog.words)],
        entries: vec![ProcessInit {
            entry: Layout::CODE,
            space: AddrSpace::identity(),
        }],
        extra_processes: vec![Vec::new()],
        init: Box::new(|_| {}),
        check: Box::new(|phys| {
            (phys.read_u32(Layout::CHECK) != 0)
                .then_some(())
                .ok_or_else(|| "kernel produced nothing".to_string())
        }),
    }
}

fn run(cpu: CpuKind, independent: bool) -> (u64, Option<IpcBreakdown>) {
    let w = build(independent);
    let mut cfg = MachineConfig::new(ArchKind::SharedMem, cpu);
    cfg.n_cpus = 1;
    let s = run_workload(&cfg, &w, 10_000_000_000).expect("validates");
    let ipc = (!matches!(cpu, CpuKind::Mipsy)).then(|| IpcBreakdown::from_summary(&s));
    (s.wall_cycles, ipc)
}

fn main() {
    println!("The same kernels under the in-order Mipsy and the 2-way OoO MXS:\n");
    for (label, ind) in [("independent chains", true), ("serial chain", false)] {
        let (mipsy, _) = run(CpuKind::Mipsy, ind);
        let (mxs, ipc) = run(CpuKind::Mxs, ind);
        println!("{label}:");
        println!("  Mipsy: {mipsy} cycles");
        println!(
            "  MXS:   {mxs} cycles ({:.2}x speedup)  {}",
            mipsy as f64 / mxs as f64,
            ipc.expect("mxs run")
        );
    }
    println!("\nDynamic scheduling only pays when independent work exists —");
    println!("the serial chain shows almost no speedup, exactly Table 1's point");
    println!("about latency hiding in the paper's MXS results.");
}

//! Measure Table 2 from the three memory systems with latency probes.
//!
//! ```sh
//! cargo run --release --example latency_probe
//! ```
//!
//! Every number is *measured* by issuing accesses against the event-driven
//! memory systems, not read out of a configuration struct.

use cmpsim::core::{probe_latencies, ArchKind};

fn main() {
    println!("Measured contention-free latencies (CPU cycles; 1 cycle = 5 ns at 200 MHz)\n");
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "system", "L1", "L2", "mem", "c2c", "L2 occ", "mem occ"
    );
    for arch in ArchKind::ALL {
        let p = probe_latencies(arch, false);
        println!(
            "{:<14} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
            arch.name(),
            p.l1_hit,
            p.l2_hit,
            p.memory,
            p.cache_to_cache.map_or("-".into(), |v| v.to_string()),
            p.l2_occupancy,
            p.mem_occupancy
        );
    }
    let ideal = probe_latencies(ArchKind::SharedL1, true);
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}   (Mipsy idealization)",
        "shared-L1*",
        ideal.l1_hit,
        ideal.l2_hit,
        ideal.memory,
        "-",
        ideal.l2_occupancy,
        ideal.mem_occupancy
    );
    println!(
        "\nPaper's Table 2: shared-L1 3/10/50, shared-L2 1/14/50, shared-mem 1/10/50, c2c > 50."
    );
}

//! Quickstart: write a small parallel program in the simulator's ISA, run
//! it on all three multiprocessor architectures, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The program is a four-CPU parallel sum: each CPU adds up a quarter of an
//! array, takes a lock, and folds its partial sum into a shared total.

use cmpsim::core::machine::run_workload;
use cmpsim::core::{ArchKind, Breakdown, CpuKind, MachineConfig};
use cmpsim_isa::{Asm, Reg};
use cmpsim_kernels::{BuiltWorkload, Layout, ProcessInit, Runtime};
use cmpsim_mem::AddrSpace;

const N: u32 = 4096; // array elements
const ARRAY: u32 = Layout::DATA;
const TOTAL: u32 = Layout::sync_word(4);
const LOCK: u32 = Layout::sync_word(6);

/// Builds the parallel-sum program: every CPU runs the same code and picks
/// its quarter with `CPUID`.
fn build_parallel_sum() -> BuiltWorkload {
    let mut rt = Runtime::new();
    let mut a = Asm::new(Layout::CODE);
    rt.preamble(&mut a); // $s7 = cpu id, stack, barrier sense

    // base = ARRAY + cpu * (N/4) * 4 ; count = N/4
    a.la_abs(Reg::S0, ARRAY);
    a.li(Reg::T0, i64::from(N) / 4 * 4);
    a.mul(Reg::T0, Reg::S7, Reg::T0);
    a.add(Reg::S0, Reg::S0, Reg::T0);
    a.li(Reg::S1, i64::from(N) / 4);
    a.li(Reg::S2, 0); // partial sum

    a.label("loop");
    a.lw(Reg::T0, Reg::S0, 0);
    a.add(Reg::S2, Reg::S2, Reg::T0);
    a.addi(Reg::S0, Reg::S0, 4);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, "loop");

    // total += partial, under a spin lock.
    a.la_abs(Reg::A0, LOCK);
    rt.lock_acquire(&mut a, Reg::A0);
    a.la_abs(Reg::A1, TOTAL);
    a.lw(Reg::T0, Reg::A1, 0);
    a.add(Reg::T0, Reg::T0, Reg::S2);
    a.sw(Reg::T0, Reg::A1, 0);
    rt.lock_release(&mut a, Reg::A0);
    a.halt();

    let prog = a.assemble().expect("program assembles");
    let expected: u32 = (0..N).map(|i| i.wrapping_mul(3)).fold(0, u32::wrapping_add);
    BuiltWorkload {
        name: "parallel-sum",
        image: vec![(prog.base, prog.words)],
        entries: (0..4)
            .map(|_| ProcessInit {
                entry: Layout::CODE,
                space: AddrSpace::identity(),
            })
            .collect(),
        extra_processes: vec![Vec::new(); 4],
        init: Box::new(|phys| {
            for i in 0..N {
                phys.write_u32(ARRAY + i * 4, i.wrapping_mul(3));
            }
        }),
        check: Box::new(move |phys| {
            let got = phys.read_u32(TOTAL);
            (got == expected)
                .then_some(())
                .ok_or_else(|| format!("sum {got} != expected {expected}"))
        }),
    }
}

fn main() {
    println!("Parallel sum of {N} elements on 4 CPUs, Mipsy CPU model\n");
    println!(
        "{:<14} {:>10} {:>10}   breakdown",
        "architecture", "cycles", "norm"
    );
    let mut baseline = None;
    for arch in ArchKind::ALL {
        let w = build_parallel_sum();
        let cfg = MachineConfig::new(arch, CpuKind::Mipsy);
        let summary = run_workload(&cfg, &w, 100_000_000).expect("runs and validates");
        let base = *baseline.get_or_insert(summary.wall_cycles);
        println!(
            "{:<14} {:>10} {:>10.3}   {}",
            arch.name(),
            summary.wall_cycles,
            summary.wall_cycles as f64 / base as f64,
            Breakdown::from_summary(&summary),
        );
    }
    println!("\n(The sum validates against a Rust reference on every run.)");
}

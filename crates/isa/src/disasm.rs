//! Disassembler: formatted program listings with resolved branch targets.
//!
//! The assembler produces binary [`Program`]s; this module turns them (or
//! raw word slices fished out of simulated memory) back into readable
//! listings, resolving branch/jump targets to addresses and, when a symbol
//! table is available, to label names. Used by the debugging examples and
//! handy when a generated workload misbehaves.

use crate::asm::Program;
use crate::encode::decode;
use crate::instr::Instr;
use crate::Addr;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct DisasmLine {
    /// Byte address of the instruction.
    pub addr: Addr,
    /// The raw word.
    pub word: u32,
    /// Decoded form, if the word decodes.
    pub instr: Option<Instr>,
    /// Resolved control-flow target (byte address), for branches and
    /// direct jumps.
    pub target: Option<Addr>,
}

impl DisasmLine {
    fn new(addr: Addr, word: u32) -> DisasmLine {
        let instr = decode(word).ok();
        let target = instr.as_ref().and_then(|i| control_target(addr, i));
        DisasmLine {
            addr,
            word,
            instr,
            target,
        }
    }
}

/// The statically known target of a control instruction at `addr`, if any
/// (indirect jumps have none).
pub fn control_target(addr: Addr, instr: &Instr) -> Option<Addr> {
    match *instr {
        Instr::Branch { off, .. } => Some(
            addr.wrapping_add(4)
                .wrapping_add((off as i32 as u32).wrapping_mul(4)),
        ),
        Instr::J { target } | Instr::Jal { target } => Some(target * 4),
        _ => None,
    }
}

/// Disassembles `words` starting at byte address `base`.
pub fn disassemble(base: Addr, words: &[u32]) -> Vec<DisasmLine> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| DisasmLine::new(base + (i as Addr) * 4, w))
        .collect()
}

/// Renders a program listing with label annotations from its symbol table.
///
/// # Examples
///
/// ```
/// use cmpsim_isa::{Asm, Reg};
/// use cmpsim_isa::disasm::listing;
///
/// # fn main() -> Result<(), cmpsim_isa::AsmError> {
/// let mut a = Asm::new(0x1000);
/// a.label("entry");
/// a.li(Reg::T0, 3);
/// a.label("spin");
/// a.bnez(Reg::T0, "spin");
/// a.halt();
/// let text = listing(&a.assemble()?);
/// assert!(text.contains("entry:"));
/// assert!(text.contains("-> spin"));
/// # Ok(())
/// # }
/// ```
pub fn listing(prog: &Program) -> String {
    let by_addr: HashMap<Addr, &str> = prog
        .symbols
        .iter()
        .map(|(name, &addr)| (addr, name.as_str()))
        .collect();
    let mut out = String::new();
    for line in disassemble(prog.base, &prog.words) {
        if let Some(label) = by_addr.get(&line.addr) {
            let _ = writeln!(out, "{label}:");
        }
        let text = line
            .instr
            .map_or_else(|| format!(".word {:#010x}", line.word), |i| i.to_string());
        let _ = write!(out, "  {:#08x}:  {:<30}", line.addr, text);
        if let Some(t) = line.target {
            match by_addr.get(&t) {
                Some(label) => {
                    let _ = write!(out, " -> {label}");
                }
                None => {
                    let _ = write!(out, " -> {t:#x}");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut a = Asm::new(0x2000);
        a.label("start");
        a.li(Reg::T0, 2);
        a.label("loop");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "loop");
        a.j("end");
        a.nop();
        a.label("end");
        a.halt();
        a.assemble().expect("assembles")
    }

    #[test]
    fn lines_carry_addresses_and_targets() {
        let p = sample();
        let lines = disassemble(p.base, &p.words);
        assert_eq!(lines[0].addr, 0x2000);
        assert!(lines.iter().all(|l| l.instr.is_some()));
        // The bnez targets the loop label's address.
        let loop_addr = p.addr_of("loop").unwrap();
        let bnez = lines.iter().find(|l| l.target == Some(loop_addr));
        assert!(bnez.is_some(), "backward branch target resolved");
        // The j targets "end".
        let end_addr = p.addr_of("end").unwrap();
        assert!(lines.iter().any(|l| l.target == Some(end_addr)));
    }

    #[test]
    fn listing_renders_labels_and_targets() {
        let text = listing(&sample());
        assert!(text.contains("start:"));
        assert!(text.contains("loop:"));
        assert!(text.contains("-> loop"));
        assert!(text.contains("-> end"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn undecodable_words_render_as_data() {
        let lines = disassemble(0, &[0xffff_ffff]);
        assert!(lines[0].instr.is_none());
        let p = Program {
            base: 0,
            words: vec![0xffff_ffff],
            symbols: HashMap::new(),
        };
        assert!(listing(&p).contains(".word 0xffffffff"));
    }

    #[test]
    fn indirect_jumps_have_no_static_target() {
        use crate::instr::Instr;
        assert_eq!(control_target(0x100, &Instr::Jr { rs: Reg::RA }), None);
        assert_eq!(
            control_target(0x100, &Instr::J { target: 0x40 }),
            Some(0x100)
        );
    }
}

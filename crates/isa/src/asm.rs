//! A small assembler with labels, used by the workload generators.
//!
//! The assembler is a builder: emit instructions through convenience methods,
//! drop labels with [`Asm::label`], and call [`Asm::assemble`] to resolve
//! forward references and produce a [`Program`] (binary words plus a symbol
//! table) that the machine loads into simulated memory.

use crate::encode::encode;
use crate::instr::{AluOp, BranchCond, FpCmp, FpOp, HcallNo, Instr};
use crate::reg::{FReg, Reg};
use crate::{Addr, INSTR_BYTES};
use std::collections::HashMap;
use std::fmt;

/// Errors produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A branch to `label` is further than a 16-bit word offset can reach.
    BranchOutOfRange { label: String, distance: i64 },
    /// The program base address is not 4-byte aligned.
    UnalignedBase(Addr),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, distance } => {
                write!(f, "branch to `{label}` out of range ({distance} words)")
            }
            AsmError::UnalignedBase(a) => write!(f, "program base {a:#x} not 4-byte aligned"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An assembled program: binary words at `base`, plus the symbol table.
#[derive(Debug, Clone)]
pub struct Program {
    /// Byte address of the first word.
    pub base: Addr,
    /// Encoded instructions/data.
    pub words: Vec<u32>,
    /// Label → byte address.
    pub symbols: HashMap<String, Addr>,
}

impl Program {
    /// Byte address of a label.
    pub fn addr_of(&self, label: &str) -> Option<Addr> {
        self.symbols.get(label).copied()
    }

    /// One past the last byte of the program.
    pub fn end_addr(&self) -> Addr {
        self.base + (self.words.len() as u32) * INSTR_BYTES
    }

    /// Program size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.words.len() as u32 * INSTR_BYTES
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Done(Instr),
    /// Conditional branch to a label (offset patched at assemble time).
    BranchTo {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        label: String,
    },
    /// `j`/`jal` to a label.
    JumpTo {
        link: bool,
        label: String,
    },
    /// First word of a two-word `la` expansion (`lui` + `ori`).
    LaHi {
        rt: Reg,
        label: String,
    },
    /// Second word of `la`.
    LaLo {
        rt: Reg,
        label: String,
    },
    /// Raw data word.
    Raw(u32),
}

/// Assembler builder. See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct Asm {
    base: Addr,
    slots: Vec<Slot>,
    labels: HashMap<String, u32>, // word index
    duplicate: Option<String>,
}

impl Asm {
    /// Starts a program at byte address `base`.
    pub fn new(base: Addr) -> Asm {
        Asm {
            base,
            slots: Vec::new(),
            labels: HashMap::new(),
            duplicate: None,
        }
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: &str) -> &mut Asm {
        let idx = self.slots.len() as u32;
        if self.labels.insert(label.to_string(), idx).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(label.to_string());
        }
        self
    }

    /// Byte address of the next emitted word.
    pub fn here(&self) -> Addr {
        self.base + self.slots.len() as u32 * INSTR_BYTES
    }

    /// Number of words emitted so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Emits a pre-built instruction.
    pub fn instr(&mut self, i: Instr) -> &mut Asm {
        self.slots.push(Slot::Done(i));
        self
    }

    /// Emits a raw data word (for embedding constants in the text segment).
    pub fn word(&mut self, w: u32) -> &mut Asm {
        self.slots.push(Slot::Raw(w));
        self
    }

    // ----- integer ALU -----

    pub fn alu(&mut self, op: AluOp, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.instr(Instr::Alu { op, rd, rs, rt })
    }
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::Add, rd, rs, rt)
    }
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::Sub, rd, rs, rt)
    }
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::And, rd, rs, rt)
    }
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::Or, rd, rs, rt)
    }
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::Xor, rd, rs, rt)
    }
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::Slt, rd, rs, rt)
    }
    pub fn sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::Sltu, rd, rs, rt)
    }
    pub fn sllv(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::Sll, rd, rs, rt)
    }
    pub fn srlv(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.alu(AluOp::Srl, rd, rs, rt)
    }

    pub fn alui(&mut self, op: AluOp, rt: Reg, rs: Reg, imm: i16) -> &mut Asm {
        self.instr(Instr::AluI { op, rt, rs, imm })
    }
    pub fn addi(&mut self, rt: Reg, rs: Reg, imm: i16) -> &mut Asm {
        self.alui(AluOp::Add, rt, rs, imm)
    }
    pub fn andi(&mut self, rt: Reg, rs: Reg, imm: i16) -> &mut Asm {
        self.alui(AluOp::And, rt, rs, imm)
    }
    pub fn ori(&mut self, rt: Reg, rs: Reg, imm: i16) -> &mut Asm {
        self.alui(AluOp::Or, rt, rs, imm)
    }
    pub fn xori(&mut self, rt: Reg, rs: Reg, imm: i16) -> &mut Asm {
        self.alui(AluOp::Xor, rt, rs, imm)
    }
    pub fn slti(&mut self, rt: Reg, rs: Reg, imm: i16) -> &mut Asm {
        self.alui(AluOp::Slt, rt, rs, imm)
    }
    pub fn slli(&mut self, rt: Reg, rs: Reg, sh: i16) -> &mut Asm {
        self.alui(AluOp::Sll, rt, rs, sh)
    }
    pub fn srli(&mut self, rt: Reg, rs: Reg, sh: i16) -> &mut Asm {
        self.alui(AluOp::Srl, rt, rs, sh)
    }
    pub fn srai(&mut self, rt: Reg, rs: Reg, sh: i16) -> &mut Asm {
        self.alui(AluOp::Sra, rt, rs, sh)
    }
    pub fn lui(&mut self, rt: Reg, imm: u16) -> &mut Asm {
        self.instr(Instr::Lui { rt, imm })
    }
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.instr(Instr::Mul { rd, rs, rt })
    }
    pub fn div(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.instr(Instr::Div { rd, rs, rt })
    }
    pub fn rem(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Asm {
        self.instr(Instr::Rem { rd, rs, rt })
    }

    // ----- floating point -----

    pub fn fp(&mut self, op: FpOp, fd: FReg, fs: FReg, ft: FReg) -> &mut Asm {
        self.instr(Instr::Fp { op, fd, fs, ft })
    }
    pub fn fadd_d(&mut self, fd: FReg, fs: FReg, ft: FReg) -> &mut Asm {
        self.fp(FpOp::AddD, fd, fs, ft)
    }
    pub fn fsub_d(&mut self, fd: FReg, fs: FReg, ft: FReg) -> &mut Asm {
        self.fp(FpOp::SubD, fd, fs, ft)
    }
    pub fn fmul_d(&mut self, fd: FReg, fs: FReg, ft: FReg) -> &mut Asm {
        self.fp(FpOp::MulD, fd, fs, ft)
    }
    pub fn fdiv_d(&mut self, fd: FReg, fs: FReg, ft: FReg) -> &mut Asm {
        self.fp(FpOp::DivD, fd, fs, ft)
    }
    pub fn fadd_s(&mut self, fd: FReg, fs: FReg, ft: FReg) -> &mut Asm {
        self.fp(FpOp::AddS, fd, fs, ft)
    }
    pub fn fmul_s(&mut self, fd: FReg, fs: FReg, ft: FReg) -> &mut Asm {
        self.fp(FpOp::MulS, fd, fs, ft)
    }
    pub fn fcmp(&mut self, cmp: FpCmp, rd: Reg, fs: FReg, ft: FReg) -> &mut Asm {
        self.instr(Instr::Fcmp { cmp, rd, fs, ft })
    }
    pub fn fmov(&mut self, fd: FReg, fs: FReg) -> &mut Asm {
        self.instr(Instr::Fmov { fd, fs })
    }
    pub fn cvt_if(&mut self, fd: FReg, rs: Reg) -> &mut Asm {
        self.instr(Instr::CvtIf { fd, rs })
    }
    pub fn cvt_fi(&mut self, rd: Reg, fs: FReg) -> &mut Asm {
        self.instr(Instr::CvtFi { rd, fs })
    }

    // ----- memory -----

    pub fn lb(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Lb { rt, base, off })
    }
    pub fn lbu(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Lbu { rt, base, off })
    }
    pub fn lw(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Lw { rt, base, off })
    }
    pub fn sb(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Sb { rt, base, off })
    }
    pub fn sw(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Sw { rt, base, off })
    }
    pub fn ll(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Ll { rt, base, off })
    }
    pub fn sc(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Sc { rt, base, off })
    }
    pub fn fls(&mut self, ft: FReg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Fls { ft, base, off })
    }
    pub fn fss(&mut self, ft: FReg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Fss { ft, base, off })
    }
    pub fn fld(&mut self, ft: FReg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Fld { ft, base, off })
    }
    pub fn fsd(&mut self, ft: FReg, base: Reg, off: i16) -> &mut Asm {
        self.instr(Instr::Fsd { ft, base, off })
    }

    // ----- control flow -----

    fn branch(&mut self, cond: BranchCond, rs: Reg, rt: Reg, label: &str) -> &mut Asm {
        self.slots.push(Slot::BranchTo {
            cond,
            rs,
            rt,
            label: label.to_string(),
        });
        self
    }
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Eq, rs, rt, label)
    }
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Ne, rs, rt, label)
    }
    pub fn blt(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Lt, rs, rt, label)
    }
    pub fn bge(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Ge, rs, rt, label)
    }
    pub fn bltu(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Ltu, rs, rt, label)
    }
    pub fn bgeu(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Geu, rs, rt, label)
    }
    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: Reg, label: &str) -> &mut Asm {
        self.beq(rs, Reg::ZERO, label)
    }
    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: Reg, label: &str) -> &mut Asm {
        self.bne(rs, Reg::ZERO, label)
    }

    /// Unconditional jump to a label.
    pub fn j(&mut self, label: &str) -> &mut Asm {
        self.slots.push(Slot::JumpTo {
            link: false,
            label: label.to_string(),
        });
        self
    }
    /// Call a label (`jal`).
    pub fn jal(&mut self, label: &str) -> &mut Asm {
        self.slots.push(Slot::JumpTo {
            link: true,
            label: label.to_string(),
        });
        self
    }
    /// Jump to an absolute byte address.
    pub fn j_abs(&mut self, addr: Addr) -> &mut Asm {
        self.instr(Instr::J {
            target: addr / INSTR_BYTES,
        })
    }
    /// Call an absolute byte address.
    pub fn jal_abs(&mut self, addr: Addr) -> &mut Asm {
        self.instr(Instr::Jal {
            target: addr / INSTR_BYTES,
        })
    }
    pub fn jr(&mut self, rs: Reg) -> &mut Asm {
        self.instr(Instr::Jr { rs })
    }
    pub fn jalr(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.instr(Instr::Jalr { rd, rs })
    }
    /// Return (`jr $ra`).
    pub fn ret(&mut self) -> &mut Asm {
        self.jr(Reg::RA)
    }

    // ----- misc -----

    pub fn sync(&mut self) -> &mut Asm {
        self.instr(Instr::Sync)
    }
    pub fn cpuid(&mut self, rd: Reg) -> &mut Asm {
        self.instr(Instr::Cpuid { rd })
    }
    pub fn hcall(&mut self, no: HcallNo) -> &mut Asm {
        self.instr(Instr::Hcall { no })
    }
    pub fn halt(&mut self) -> &mut Asm {
        self.instr(Instr::Halt)
    }
    pub fn nop(&mut self) -> &mut Asm {
        self.instr(Instr::Nop)
    }

    // ----- pseudo-instructions -----

    /// Loads a 32-bit constant (one or two instructions).
    pub fn li(&mut self, rt: Reg, value: i64) -> &mut Asm {
        let v = value as i32 as u32;
        if (-32768..=32767).contains(&value) {
            self.addi(rt, Reg::ZERO, value as i16)
        } else if v & 0xffff == 0 {
            self.lui(rt, (v >> 16) as u16)
        } else {
            self.lui(rt, (v >> 16) as u16);
            self.ori(rt, rt, (v & 0xffff) as u16 as i16)
        }
    }

    /// Loads the address of a label (always two instructions).
    pub fn la(&mut self, rt: Reg, label: &str) -> &mut Asm {
        self.slots.push(Slot::LaHi {
            rt,
            label: label.to_string(),
        });
        self.slots.push(Slot::LaLo {
            rt,
            label: label.to_string(),
        });
        self
    }

    /// Loads an absolute address constant.
    pub fn la_abs(&mut self, rt: Reg, addr: Addr) -> &mut Asm {
        self.li(rt, addr as i64)
    }

    /// `move rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.add(rd, rs, Reg::ZERO)
    }

    /// Finalizes the program, resolving label references.
    ///
    /// # Errors
    ///
    /// Returns an error for duplicate or undefined labels, out-of-range
    /// branches, or an unaligned base address.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if !self.base.is_multiple_of(INSTR_BYTES) {
            return Err(AsmError::UnalignedBase(self.base));
        }
        if let Some(dup) = &self.duplicate {
            return Err(AsmError::DuplicateLabel(dup.clone()));
        }
        let lookup = |label: &str| -> Result<u32, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))
        };
        let mut words = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let word = match slot {
                Slot::Done(i) => encode(i),
                Slot::Raw(w) => *w,
                Slot::BranchTo {
                    cond,
                    rs,
                    rt,
                    label,
                } => {
                    let target = lookup(label)?;
                    let distance = i64::from(target) - (idx as i64 + 1);
                    let off = i16::try_from(distance).map_err(|_| AsmError::BranchOutOfRange {
                        label: label.clone(),
                        distance,
                    })?;
                    encode(&Instr::Branch {
                        cond: *cond,
                        rs: *rs,
                        rt: *rt,
                        off,
                    })
                }
                Slot::JumpTo { link, label } => {
                    let target_word = (self.base / INSTR_BYTES) + lookup(label)?;
                    if *link {
                        encode(&Instr::Jal {
                            target: target_word,
                        })
                    } else {
                        encode(&Instr::J {
                            target: target_word,
                        })
                    }
                }
                Slot::LaHi { rt, label } => {
                    let addr = self.base + lookup(label)? * INSTR_BYTES;
                    encode(&Instr::Lui {
                        rt: *rt,
                        imm: (addr >> 16) as u16,
                    })
                }
                Slot::LaLo { rt, label } => {
                    let addr = self.base + lookup(label)? * INSTR_BYTES;
                    encode(&Instr::AluI {
                        op: AluOp::Or,
                        rt: *rt,
                        rs: *rt,
                        imm: (addr & 0xffff) as u16 as i16,
                    })
                }
            };
            words.push(word);
        }
        let symbols = self
            .labels
            .iter()
            .map(|(name, &idx)| (name.clone(), self.base + idx * INSTR_BYTES))
            .collect();
        Ok(Program {
            base: self.base,
            words,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(0);
        a.label("top");
        a.addi(Reg::T0, Reg::T0, 1);
        a.beq(Reg::T0, Reg::T1, "done"); // forward
        a.bne(Reg::T0, Reg::T1, "top"); // backward
        a.label("done");
        a.halt();
        let p = a.assemble().unwrap();
        // beq is at word 1; "done" at word 3; offset = 3 - 2 = 1.
        match decode(p.words[1]).unwrap() {
            Instr::Branch { off, .. } => assert_eq!(off, 1),
            other => panic!("{other}"),
        }
        // bne at word 2; "top" at 0; offset = 0 - 3 = -3.
        match decode(p.words[2]).unwrap() {
            Instr::Branch { off, .. } => assert_eq!(off, -3),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn jump_targets_are_absolute_words() {
        let mut a = Asm::new(0x1000);
        a.j("end");
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        match decode(p.words[0]).unwrap() {
            Instr::J { target } => assert_eq!(target, (0x1000 / 4) + 1),
            other => panic!("{other}"),
        }
        assert_eq!(p.addr_of("end"), Some(0x1004));
    }

    #[test]
    fn la_materializes_full_address() {
        let mut a = Asm::new(0x0012_0000);
        a.la(Reg::T0, "data");
        a.halt();
        a.label("data");
        a.word(0xdeadbeef);
        let p = a.assemble().unwrap();
        let data_addr = p.addr_of("data").unwrap();
        match decode(p.words[0]).unwrap() {
            Instr::Lui { imm, .. } => assert_eq!(u32::from(imm), data_addr >> 16),
            other => panic!("{other}"),
        }
        match decode(p.words[1]).unwrap() {
            Instr::AluI {
                op: AluOp::Or, imm, ..
            } => {
                assert_eq!((imm as u16) as u32, data_addr & 0xffff)
            }
            other => panic!("{other}"),
        }
        assert_eq!(p.words[3], 0xdeadbeef);
    }

    #[test]
    fn li_small_and_large() {
        let mut a = Asm::new(0);
        a.li(Reg::T0, 5); // 1 instr
        a.li(Reg::T1, -5); // 1 instr
        a.li(Reg::T2, 0x12345678); // 2 instrs
        a.li(Reg::T3, 0x70000); // lui only would not work (0x7_0000 low 16 = 0)
        let p = a.assemble().unwrap();
        assert_eq!(p.words.len(), 1 + 1 + 2 + 1);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new(0);
        a.j("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Asm::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn unaligned_base_is_an_error() {
        let a = Asm::new(2);
        assert_eq!(a.assemble().unwrap_err(), AsmError::UnalignedBase(2));
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut a = Asm::new(0);
        a.label("top");
        for _ in 0..40_000 {
            a.nop();
        }
        a.beq(Reg::T0, Reg::T1, "top");
        match a.assemble().unwrap_err() {
            AsmError::BranchOutOfRange { label, .. } => assert_eq!(label, "top"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new(0x100);
        assert_eq!(a.here(), 0x100);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 0x108);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}

//! Binary instruction format.
//!
//! Fixed 32-bit instructions with the primary opcode in bits 31..26, MIPS
//! style. Register fields: `rs` bits 25..21, `rt` bits 20..16, `rd` bits
//! 15..11, R/F-type function code in bits 5..0, 16-bit immediates in bits
//! 15..0, 26-bit jump targets (word addresses) in bits 25..0.

use crate::instr::{AluOp, BranchCond, FpCmp, FpOp, HcallNo, Instr};
use crate::reg::{FReg, Reg};
use std::fmt;

/// Error returned by [`decode`] for words that are not valid instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OP_RTYPE: u32 = 0;
const OP_FTYPE: u32 = 1;
const OP_ALUI_BASE: u32 = 2; // 2..=12 follow AluOp order
const OP_LUI: u32 = 13;
const OP_LB: u32 = 14;
const OP_LBU: u32 = 15;
const OP_LW: u32 = 16;
const OP_SB: u32 = 17;
const OP_SW: u32 = 18;
const OP_LL: u32 = 19;
const OP_SC: u32 = 20;
const OP_FLS: u32 = 21;
const OP_FSS: u32 = 22;
const OP_FLD: u32 = 23;
const OP_FSD: u32 = 24;
const OP_BRANCH_BASE: u32 = 25; // 25..=30 follow BranchCond order
const OP_J: u32 = 31;
const OP_JAL: u32 = 32;
const OP_HCALL: u32 = 33;

const FN_ALU_BASE: u32 = 0; // 0..=10 follow AluOp order
const FN_MUL: u32 = 11;
const FN_DIV: u32 = 12;
const FN_REM: u32 = 13;
const FN_JR: u32 = 14;
const FN_JALR: u32 = 15;
const FN_SYNC: u32 = 16;
const FN_CPUID: u32 = 17;
const FN_HALT: u32 = 18;
const FN_NOP: u32 = 19;

const FFN_FP_BASE: u32 = 0; // 0..=7 follow FpOp order
const FFN_FCMP_BASE: u32 = 8; // 8..=10: Eq, Lt, Le
const FFN_FMOV: u32 = 11;
const FFN_CVT_IF: u32 = 12;
const FFN_CVT_FI: u32 = 13;

fn alu_op_code(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Nor => 5,
        AluOp::Slt => 6,
        AluOp::Sltu => 7,
        AluOp::Sll => 8,
        AluOp::Srl => 9,
        AluOp::Sra => 10,
    }
}

fn alu_op_from(code: u32) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Nor,
        6 => AluOp::Slt,
        7 => AluOp::Sltu,
        8 => AluOp::Sll,
        9 => AluOp::Srl,
        10 => AluOp::Sra,
        _ => return None,
    })
}

fn fp_op_code(op: FpOp) -> u32 {
    match op {
        FpOp::AddS => 0,
        FpOp::SubS => 1,
        FpOp::MulS => 2,
        FpOp::DivS => 3,
        FpOp::AddD => 4,
        FpOp::SubD => 5,
        FpOp::MulD => 6,
        FpOp::DivD => 7,
    }
}

fn fp_op_from(code: u32) -> Option<FpOp> {
    Some(match code {
        0 => FpOp::AddS,
        1 => FpOp::SubS,
        2 => FpOp::MulS,
        3 => FpOp::DivS,
        4 => FpOp::AddD,
        5 => FpOp::SubD,
        6 => FpOp::MulD,
        7 => FpOp::DivD,
        _ => return None,
    })
}

fn branch_cond_code(c: BranchCond) -> u32 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn branch_cond_from(code: u32) -> Option<BranchCond> {
    Some(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        _ => return None,
    })
}

fn rtype(op: u32, rs: u32, rt: u32, rd: u32, funct: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (rd << 11) | funct
}

fn itype(op: u32, rs: u32, rt: u32, imm: u16) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | u32::from(imm)
}

/// Encodes a decoded instruction into its 32-bit binary form.
///
/// # Panics
///
/// Panics if a jump target does not fit in 26 bits.
pub fn encode(instr: &Instr) -> u32 {
    use Instr::*;
    let r = |r: Reg| r.index() as u32;
    let fr = |f: FReg| f.index() as u32;
    match *instr {
        Alu { op, rd, rs, rt } => {
            rtype(OP_RTYPE, r(rs), r(rt), r(rd), FN_ALU_BASE + alu_op_code(op))
        }
        Mul { rd, rs, rt } => rtype(OP_RTYPE, r(rs), r(rt), r(rd), FN_MUL),
        Div { rd, rs, rt } => rtype(OP_RTYPE, r(rs), r(rt), r(rd), FN_DIV),
        Rem { rd, rs, rt } => rtype(OP_RTYPE, r(rs), r(rt), r(rd), FN_REM),
        Jr { rs } => rtype(OP_RTYPE, r(rs), 0, 0, FN_JR),
        Jalr { rd, rs } => rtype(OP_RTYPE, r(rs), 0, r(rd), FN_JALR),
        Sync => rtype(OP_RTYPE, 0, 0, 0, FN_SYNC),
        Cpuid { rd } => rtype(OP_RTYPE, 0, 0, r(rd), FN_CPUID),
        Halt => rtype(OP_RTYPE, 0, 0, 0, FN_HALT),
        Nop => rtype(OP_RTYPE, 0, 0, 0, FN_NOP),
        Fp { op, fd, fs, ft } => rtype(
            OP_FTYPE,
            fr(fs),
            fr(ft),
            fr(fd),
            FFN_FP_BASE + fp_op_code(op),
        ),
        Fcmp { cmp, rd, fs, ft } => {
            let c = match cmp {
                FpCmp::Eq => 0,
                FpCmp::Lt => 1,
                FpCmp::Le => 2,
            };
            rtype(OP_FTYPE, fr(fs), fr(ft), r(rd), FFN_FCMP_BASE + c)
        }
        Fmov { fd, fs } => rtype(OP_FTYPE, fr(fs), 0, fr(fd), FFN_FMOV),
        CvtIf { fd, rs } => rtype(OP_FTYPE, r(rs), 0, fr(fd), FFN_CVT_IF),
        CvtFi { rd, fs } => rtype(OP_FTYPE, fr(fs), 0, r(rd), FFN_CVT_FI),
        AluI { op, rt, rs, imm } => itype(OP_ALUI_BASE + alu_op_code(op), r(rs), r(rt), imm as u16),
        Lui { rt, imm } => itype(OP_LUI, 0, r(rt), imm),
        Lb { rt, base, off } => itype(OP_LB, r(base), r(rt), off as u16),
        Lbu { rt, base, off } => itype(OP_LBU, r(base), r(rt), off as u16),
        Lw { rt, base, off } => itype(OP_LW, r(base), r(rt), off as u16),
        Sb { rt, base, off } => itype(OP_SB, r(base), r(rt), off as u16),
        Sw { rt, base, off } => itype(OP_SW, r(base), r(rt), off as u16),
        Ll { rt, base, off } => itype(OP_LL, r(base), r(rt), off as u16),
        Sc { rt, base, off } => itype(OP_SC, r(base), r(rt), off as u16),
        Fls { ft, base, off } => itype(OP_FLS, r(base), fr(ft), off as u16),
        Fss { ft, base, off } => itype(OP_FSS, r(base), fr(ft), off as u16),
        Fld { ft, base, off } => itype(OP_FLD, r(base), fr(ft), off as u16),
        Fsd { ft, base, off } => itype(OP_FSD, r(base), fr(ft), off as u16),
        Branch { cond, rs, rt, off } => itype(
            OP_BRANCH_BASE + branch_cond_code(cond),
            r(rs),
            r(rt),
            off as u16,
        ),
        J { target } => {
            assert!(target < (1 << 26), "jump target {target:#x} out of range");
            (OP_J << 26) | target
        }
        Jal { target } => {
            assert!(target < (1 << 26), "jump target {target:#x} out of range");
            (OP_JAL << 26) | target
        }
        Hcall { no } => itype(OP_HCALL, 0, 0, no.to_imm()),
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid encoding (undefined
/// opcode or function code).
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    use Instr::*;
    let op = word >> 26;
    let rs_f = (word >> 21) & 0x1f;
    let rt_f = (word >> 16) & 0x1f;
    let rd_f = (word >> 11) & 0x1f;
    let funct = word & 0x3f;
    let imm = (word & 0xffff) as u16;
    let err = Err(DecodeError { word });

    let rs = Reg::new(rs_f as u8);
    let rt = Reg::new(rt_f as u8);
    let rd = Reg::new(rd_f as u8);
    let fs = FReg::new(rs_f as u8);
    let ft = FReg::new(rt_f as u8);
    let fd = FReg::new(rd_f as u8);

    Ok(match op {
        OP_RTYPE => match funct {
            f if (FN_ALU_BASE..FN_ALU_BASE + 11).contains(&f) => Alu {
                op: alu_op_from(f - FN_ALU_BASE)
                    .expect("funct matched FN_ALU_BASE..+11, which alu_op_from covers"),
                rd,
                rs,
                rt,
            },
            FN_MUL => Mul { rd, rs, rt },
            FN_DIV => Div { rd, rs, rt },
            FN_REM => Rem { rd, rs, rt },
            FN_JR => Jr { rs },
            FN_JALR => Jalr { rd, rs },
            FN_SYNC => Sync,
            FN_CPUID => Cpuid { rd },
            FN_HALT => Halt,
            FN_NOP => Nop,
            _ => return err,
        },
        OP_FTYPE => match funct {
            f if f < 8 => Fp {
                op: fp_op_from(f).expect("funct matched 0..8, which fp_op_from covers"),
                fd,
                fs,
                ft,
            },
            FFN_FCMP_BASE => Fcmp {
                cmp: FpCmp::Eq,
                rd,
                fs,
                ft,
            },
            f if f == FFN_FCMP_BASE + 1 => Fcmp {
                cmp: FpCmp::Lt,
                rd,
                fs,
                ft,
            },
            f if f == FFN_FCMP_BASE + 2 => Fcmp {
                cmp: FpCmp::Le,
                rd,
                fs,
                ft,
            },
            FFN_FMOV => Fmov { fd, fs },
            FFN_CVT_IF => CvtIf { fd, rs },
            FFN_CVT_FI => CvtFi { rd, fs },
            _ => return err,
        },
        o if (OP_ALUI_BASE..OP_ALUI_BASE + 11).contains(&o) => AluI {
            op: alu_op_from(o - OP_ALUI_BASE)
                .expect("opcode matched OP_ALUI_BASE..+11, which alu_op_from covers"),
            rt,
            rs,
            imm: imm as i16,
        },
        OP_LUI => Lui { rt, imm },
        OP_LB => Lb {
            rt,
            base: rs,
            off: imm as i16,
        },
        OP_LBU => Lbu {
            rt,
            base: rs,
            off: imm as i16,
        },
        OP_LW => Lw {
            rt,
            base: rs,
            off: imm as i16,
        },
        OP_SB => Sb {
            rt,
            base: rs,
            off: imm as i16,
        },
        OP_SW => Sw {
            rt,
            base: rs,
            off: imm as i16,
        },
        OP_LL => Ll {
            rt,
            base: rs,
            off: imm as i16,
        },
        OP_SC => Sc {
            rt,
            base: rs,
            off: imm as i16,
        },
        OP_FLS => Fls {
            ft,
            base: rs,
            off: imm as i16,
        },
        OP_FSS => Fss {
            ft,
            base: rs,
            off: imm as i16,
        },
        OP_FLD => Fld {
            ft,
            base: rs,
            off: imm as i16,
        },
        OP_FSD => Fsd {
            ft,
            base: rs,
            off: imm as i16,
        },
        o if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&o) => Branch {
            cond: branch_cond_from(o - OP_BRANCH_BASE)
                .expect("opcode matched OP_BRANCH_BASE..+6, which branch_cond_from covers"),
            rs,
            rt,
            off: imm as i16,
        },
        OP_J => J {
            target: word & 0x03ff_ffff,
        },
        OP_JAL => Jal {
            target: word & 0x03ff_ffff,
        },
        OP_HCALL => Hcall {
            no: HcallNo::from_imm(imm).ok_or(DecodeError { word })?,
        },
        _ => return err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, BranchCond, FpCmp, FpOp, HcallNo, Instr};
    use crate::reg::{FReg, Reg};

    fn sample_instrs() -> Vec<Instr> {
        use Instr::*;
        vec![
            Alu {
                op: AluOp::Add,
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Alu {
                op: AluOp::Sra,
                rd: Reg::S0,
                rs: Reg::S1,
                rt: Reg::S2,
            },
            AluI {
                op: AluOp::Add,
                rt: Reg::T0,
                rs: Reg::SP,
                imm: -32,
            },
            AluI {
                op: AluOp::Sltu,
                rt: Reg::V0,
                rs: Reg::A0,
                imm: 100,
            },
            Lui {
                rt: Reg::GP,
                imm: 0xdead,
            },
            Mul {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Div {
                rd: Reg::T3,
                rs: Reg::T4,
                rt: Reg::T5,
            },
            Rem {
                rd: Reg::T6,
                rs: Reg::T7,
                rt: Reg::T8,
            },
            Fp {
                op: FpOp::MulD,
                fd: FReg::F0,
                fs: FReg::F1,
                ft: FReg::F2,
            },
            Fp {
                op: FpOp::DivS,
                fd: FReg::F3,
                fs: FReg::F4,
                ft: FReg::F5,
            },
            Fcmp {
                cmp: FpCmp::Le,
                rd: Reg::T0,
                fs: FReg::F1,
                ft: FReg::F2,
            },
            Fmov {
                fd: FReg::F7,
                fs: FReg::F8,
            },
            CvtIf {
                fd: FReg::F1,
                rs: Reg::A0,
            },
            CvtFi {
                rd: Reg::V0,
                fs: FReg::F1,
            },
            Lb {
                rt: Reg::T0,
                base: Reg::A0,
                off: -1,
            },
            Lbu {
                rt: Reg::T0,
                base: Reg::A0,
                off: 255,
            },
            Lw {
                rt: Reg::T1,
                base: Reg::GP,
                off: 0x7ff0,
            },
            Sb {
                rt: Reg::T2,
                base: Reg::A1,
                off: 3,
            },
            Sw {
                rt: Reg::T3,
                base: Reg::SP,
                off: -4,
            },
            Ll {
                rt: Reg::T4,
                base: Reg::A2,
                off: 0,
            },
            Sc {
                rt: Reg::T5,
                base: Reg::A2,
                off: 0,
            },
            Fls {
                ft: FReg::F0,
                base: Reg::A3,
                off: 8,
            },
            Fss {
                ft: FReg::F1,
                base: Reg::A3,
                off: 12,
            },
            Fld {
                ft: FReg::F2,
                base: Reg::S0,
                off: 16,
            },
            Fsd {
                ft: FReg::F3,
                base: Reg::S0,
                off: 24,
            },
            Branch {
                cond: BranchCond::Eq,
                rs: Reg::T0,
                rt: Reg::ZERO,
                off: -5,
            },
            Branch {
                cond: BranchCond::Geu,
                rs: Reg::A0,
                rt: Reg::A1,
                off: 100,
            },
            J { target: 0x123456 },
            Jal { target: 0x1 },
            Jr { rs: Reg::RA },
            Jalr {
                rd: Reg::RA,
                rs: Reg::T9,
            },
            Sync,
            Cpuid { rd: Reg::V0 },
            Hcall {
                no: HcallNo::ResetStats,
            },
            Hcall {
                no: HcallNo::Phase(42),
            },
            Halt,
            Nop,
        ]
    }

    #[test]
    fn roundtrip_all_sample_instrs() {
        for i in sample_instrs() {
            let w = encode(&i);
            let back = decode(w).unwrap_or_else(|e| panic!("{i}: {e}"));
            assert_eq!(back, i, "word {w:#010x}");
        }
    }

    #[test]
    fn distinct_instrs_distinct_words() {
        let instrs = sample_instrs();
        let words: Vec<u32> = instrs.iter().map(encode).collect();
        for i in 0..words.len() {
            for j in (i + 1)..words.len() {
                assert_ne!(words[i], words[j], "{} vs {}", instrs[i], instrs[j]);
            }
        }
    }

    #[test]
    fn invalid_words_rejected() {
        // Undefined primary opcode.
        assert!(decode(0x3f << 26).is_err());
        // Undefined R-type funct.
        assert!(decode(0x0000_003f).is_err());
        // Undefined F-type funct.
        assert!(decode((1 << 26) | 0x3f).is_err());
        // Undefined hcall number.
        assert!(decode((OP_HCALL << 26) | 0xffff).is_err());
    }

    #[test]
    fn negative_immediates_sign_preserved() {
        let i = Instr::AluI {
            op: AluOp::Add,
            rt: Reg::T0,
            rs: Reg::T0,
            imm: -1,
        };
        match decode(encode(&i)).unwrap() {
            Instr::AluI { imm, .. } => assert_eq!(imm, -1),
            other => panic!("wrong decode: {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_jump_target_panics() {
        let _ = encode(&Instr::J { target: 1 << 26 });
    }
}

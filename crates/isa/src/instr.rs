//! Decoded instruction form and instruction-class metadata.

use crate::reg::{FReg, Reg};
use std::fmt;

/// Integer ALU operations (1-cycle latency class, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    /// Set-if-less-than, signed.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
}

/// Floating-point arithmetic operations. Single (`*S`) and double (`*D`)
/// precision are separate latency classes in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    AddS,
    SubS,
    MulS,
    DivS,
    AddD,
    SubD,
    MulD,
    DivD,
}

/// Floating-point comparisons; the boolean result lands in an integer
/// register so it can feed a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmp {
    Eq,
    Lt,
    Le,
}

/// Branch conditions for the conditional-branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Harness calls — simulator services invoked by workloads, analogous to
/// SimOS "magic" instructions. They execute in one cycle and have effects on
/// the *harness*, never on architectural state other than `pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HcallNo {
    /// Reset all statistics: marks the start of the region of interest
    /// (equivalent to the paper's post-boot checkpoints).
    ResetStats,
    /// Yield this CPU to the next runnable process (multiprogramming
    /// workload; the machine performs the context switch).
    Yield,
    /// Record a phase marker with the immediate's upper bits as the tag.
    Phase(u8),
    /// Mark this CPU's current process as finished with its work-loop
    /// (distinct from `Halt`, which stops the CPU itself).
    Exit,
}

impl HcallNo {
    /// Encodes the harness call as a 16-bit immediate.
    pub fn to_imm(self) -> u16 {
        match self {
            HcallNo::ResetStats => 0,
            HcallNo::Yield => 1,
            HcallNo::Exit => 2,
            HcallNo::Phase(tag) => 0x100 | u16::from(tag),
        }
    }

    /// Decodes a 16-bit immediate back into a harness call, if valid.
    pub fn from_imm(imm: u16) -> Option<HcallNo> {
        match imm {
            0 => Some(HcallNo::ResetStats),
            1 => Some(HcallNo::Yield),
            2 => Some(HcallNo::Exit),
            x if (0x100..0x200).contains(&x) => Some(HcallNo::Phase((x & 0xff) as u8)),
            _ => None,
        }
    }
}

/// A decoded instruction.
///
/// Branch and jump offsets/targets are in *instructions* (words); the CPU
/// models convert to byte addresses. There are no branch delay slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `rd = rs <op> rt` (shifts use the low 5 bits of `rt`).
    Alu {
        op: AluOp,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `rt = rs <op> imm`. Arithmetic/comparison ops sign-extend `imm`;
    /// logical ops zero-extend; shifts use the low 5 bits.
    AluI {
        op: AluOp,
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    /// `rt = imm << 16`.
    Lui { rt: Reg, imm: u16 },
    /// `rd = rs * rt` (low 32 bits).
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs / rt` signed; division by zero yields 0 (total semantics,
    /// required for harmless wrong-path execution under MXS).
    Div { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs % rt` signed; modulo by zero yields 0.
    Rem { rd: Reg, rs: Reg, rt: Reg },
    /// `fd = fs <op> ft`.
    Fp {
        op: FpOp,
        fd: FReg,
        fs: FReg,
        ft: FReg,
    },
    /// `rd = (fs <cmp> ft) ? 1 : 0`.
    Fcmp {
        cmp: FpCmp,
        rd: Reg,
        fs: FReg,
        ft: FReg,
    },
    /// `fd = fs`.
    Fmov { fd: FReg, fs: FReg },
    /// `fd = (f64) (i32) rs`.
    CvtIf { fd: FReg, rs: Reg },
    /// `rd = (i32) fs` (truncating; saturates on overflow, 0 on NaN).
    CvtFi { rd: Reg, fs: FReg },
    /// `rt = sign_extend(mem8[rs + off])`.
    Lb { rt: Reg, base: Reg, off: i16 },
    /// `rt = zero_extend(mem8[rs + off])`.
    Lbu { rt: Reg, base: Reg, off: i16 },
    /// `rt = mem32[rs + off]`.
    Lw { rt: Reg, base: Reg, off: i16 },
    /// `mem8[rs + off] = rt & 0xff`.
    Sb { rt: Reg, base: Reg, off: i16 },
    /// `mem32[rs + off] = rt`.
    Sw { rt: Reg, base: Reg, off: i16 },
    /// Load-linked word.
    Ll { rt: Reg, base: Reg, off: i16 },
    /// Store-conditional word: stores `rt` if the link is intact and writes
    /// 1/0 success into `rt`.
    Sc { rt: Reg, base: Reg, off: i16 },
    /// `ft = f32 mem[rs + off]` (widened to f64).
    Fls { ft: FReg, base: Reg, off: i16 },
    /// `mem[rs + off] = (f32) ft`.
    Fss { ft: FReg, base: Reg, off: i16 },
    /// `ft = f64 mem[rs + off]` (8 bytes).
    Fld { ft: FReg, base: Reg, off: i16 },
    /// `mem[rs + off] = ft` (8 bytes).
    Fsd { ft: FReg, base: Reg, off: i16 },
    /// Conditional branch; `off` is a signed word offset from the *next*
    /// instruction.
    Branch {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        off: i16,
    },
    /// Unconditional jump to absolute word address `target`.
    J { target: u32 },
    /// Jump-and-link: `ra = pc + 4`, then jump.
    Jal { target: u32 },
    /// Jump to the address in `rs`.
    Jr { rs: Reg },
    /// `rd = pc + 4`, jump to the address in `rs`.
    Jalr { rd: Reg, rs: Reg },
    /// Memory fence: completes only when all earlier memory operations have.
    Sync,
    /// `rd =` this CPU's id.
    Cpuid { rd: Reg },
    /// Harness call (simulator service).
    Hcall { no: HcallNo },
    /// Stops this CPU.
    Halt,
    /// No operation.
    Nop,
}

/// Functional-unit classes; latencies per class come from Table 1 of the
/// paper and live in the CPU crate's `FuLatencies`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    IntAlu,
    IntMul,
    IntDiv,
    Branch,
    Load,
    Store,
    FpAddSubSp,
    FpMulSp,
    FpDivSp,
    FpAddSubDp,
    FpMulDp,
    FpDivDp,
}

/// Register operands of an instruction, as needed by the renamer and the
/// dependence-based scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegOps {
    pub int_uses: [Option<Reg>; 2],
    pub int_def: Option<Reg>,
    pub fp_uses: [Option<FReg>; 2],
    pub fp_def: Option<FReg>,
}

impl Instr {
    /// The functional-unit class this instruction executes on.
    pub fn fu_class(&self) -> FuClass {
        use Instr::*;
        match self {
            Alu { .. } | AluI { .. } | Lui { .. } | Cpuid { .. } | Nop | Hcall { .. } | Halt => {
                FuClass::IntAlu
            }
            Mul { .. } => FuClass::IntMul,
            Div { .. } | Rem { .. } => FuClass::IntDiv,
            Fp { op, .. } => match op {
                FpOp::AddS | FpOp::SubS => FuClass::FpAddSubSp,
                FpOp::MulS => FuClass::FpMulSp,
                FpOp::DivS => FuClass::FpDivSp,
                FpOp::AddD | FpOp::SubD => FuClass::FpAddSubDp,
                FpOp::MulD => FuClass::FpMulDp,
                FpOp::DivD => FuClass::FpDivDp,
            },
            Fcmp { .. } | Fmov { .. } | CvtIf { .. } | CvtFi { .. } => FuClass::FpAddSubDp,
            Lb { .. } | Lbu { .. } | Lw { .. } | Ll { .. } | Fls { .. } | Fld { .. } => {
                FuClass::Load
            }
            Sb { .. } | Sw { .. } | Sc { .. } | Fss { .. } | Fsd { .. } => FuClass::Store,
            Branch { .. } | J { .. } | Jal { .. } | Jr { .. } | Jalr { .. } => FuClass::Branch,
            Sync => FuClass::IntAlu,
        }
    }

    /// Whether the instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Instr::Lb { .. }
                | Instr::Lbu { .. }
                | Instr::Lw { .. }
                | Instr::Ll { .. }
                | Instr::Fls { .. }
                | Instr::Fld { .. }
        )
    }

    /// Whether the instruction writes memory (SC counts: it may write).
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Instr::Sb { .. }
                | Instr::Sw { .. }
                | Instr::Sc { .. }
                | Instr::Fss { .. }
                | Instr::Fsd { .. }
        )
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::J { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Jalr { .. }
        )
    }

    /// Whether this is an unconditional direct jump (always taken, target
    /// known at decode).
    pub fn is_direct_jump(&self) -> bool {
        matches!(self, Instr::J { .. } | Instr::Jal { .. })
    }

    /// Memory access size in bytes, if this is a memory operation.
    pub fn mem_bytes(&self) -> Option<u32> {
        use Instr::*;
        match self {
            Lb { .. } | Lbu { .. } | Sb { .. } => Some(1),
            Lw { .. } | Sw { .. } | Ll { .. } | Sc { .. } | Fls { .. } | Fss { .. } => Some(4),
            Fld { .. } | Fsd { .. } => Some(8),
            _ => None,
        }
    }

    /// Register reads and writes, for renaming and scoreboarding.
    pub fn reg_ops(&self) -> RegOps {
        use Instr::*;
        let mut ops = RegOps::default();
        match *self {
            Alu { rd, rs, rt, .. }
            | Mul { rd, rs, rt }
            | Div { rd, rs, rt }
            | Rem { rd, rs, rt } => {
                ops.int_uses = [Some(rs), Some(rt)];
                ops.int_def = Some(rd);
            }
            AluI { rt, rs, .. } => {
                ops.int_uses = [Some(rs), None];
                ops.int_def = Some(rt);
            }
            Lui { rt, .. } => ops.int_def = Some(rt),
            Fp { fd, fs, ft, .. } => {
                ops.fp_uses = [Some(fs), Some(ft)];
                ops.fp_def = Some(fd);
            }
            Fcmp { rd, fs, ft, .. } => {
                ops.fp_uses = [Some(fs), Some(ft)];
                ops.int_def = Some(rd);
            }
            Fmov { fd, fs } => {
                ops.fp_uses = [Some(fs), None];
                ops.fp_def = Some(fd);
            }
            CvtIf { fd, rs } => {
                ops.int_uses = [Some(rs), None];
                ops.fp_def = Some(fd);
            }
            CvtFi { rd, fs } => {
                ops.fp_uses = [Some(fs), None];
                ops.int_def = Some(rd);
            }
            Lb { rt, base, .. }
            | Lbu { rt, base, .. }
            | Lw { rt, base, .. }
            | Ll { rt, base, .. } => {
                ops.int_uses = [Some(base), None];
                ops.int_def = Some(rt);
            }
            Sb { rt, base, .. } | Sw { rt, base, .. } => {
                ops.int_uses = [Some(base), Some(rt)];
            }
            Sc { rt, base, .. } => {
                ops.int_uses = [Some(base), Some(rt)];
                ops.int_def = Some(rt);
            }
            Fls { ft, base, .. } | Fld { ft, base, .. } => {
                ops.int_uses = [Some(base), None];
                ops.fp_def = Some(ft);
            }
            Fss { ft, base, .. } | Fsd { ft, base, .. } => {
                ops.int_uses = [Some(base), None];
                ops.fp_uses = [Some(ft), None];
            }
            Branch { rs, rt, .. } => ops.int_uses = [Some(rs), Some(rt)],
            Jal { .. } => ops.int_def = Some(Reg::RA),
            Jr { rs } => ops.int_uses = [Some(rs), None],
            Jalr { rd, rs } => {
                ops.int_uses = [Some(rs), None];
                ops.int_def = Some(rd);
            }
            Cpuid { rd } => ops.int_def = Some(rd),
            J { .. } | Sync | Hcall { .. } | Halt | Nop => {}
        }
        // Writes to the zero register are discarded everywhere; normalize so
        // the renamer never allocates for them.
        if ops.int_def == Some(Reg::ZERO) {
            ops.int_def = None;
        }
        ops
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Nor => "nor",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
    }
}

fn fp_name(op: FpOp) -> &'static str {
    match op {
        FpOp::AddS => "add.s",
        FpOp::SubS => "sub.s",
        FpOp::MulS => "mul.s",
        FpOp::DivS => "div.s",
        FpOp::AddD => "add.d",
        FpOp::SubD => "sub.d",
        FpOp::MulD => "mul.d",
        FpOp::DivD => "div.d",
    }
}

fn branch_name(cond: BranchCond) -> &'static str {
    match cond {
        BranchCond::Eq => "beq",
        BranchCond::Ne => "bne",
        BranchCond::Lt => "blt",
        BranchCond::Ge => "bge",
        BranchCond::Ltu => "bltu",
        BranchCond::Geu => "bgeu",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Alu { op, rd, rs, rt } => write!(f, "{} {rd}, {rs}, {rt}", alu_name(op)),
            AluI { op, rt, rs, imm } => write!(f, "{}i {rt}, {rs}, {imm}", alu_name(op)),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Mul { rd, rs, rt } => write!(f, "mul {rd}, {rs}, {rt}"),
            Div { rd, rs, rt } => write!(f, "div {rd}, {rs}, {rt}"),
            Rem { rd, rs, rt } => write!(f, "rem {rd}, {rs}, {rt}"),
            Fp { op, fd, fs, ft } => write!(f, "{} {fd}, {fs}, {ft}", fp_name(op)),
            Fcmp { cmp, rd, fs, ft } => {
                let c = match cmp {
                    FpCmp::Eq => "eq",
                    FpCmp::Lt => "lt",
                    FpCmp::Le => "le",
                };
                write!(f, "fcmp.{c} {rd}, {fs}, {ft}")
            }
            Fmov { fd, fs } => write!(f, "fmov {fd}, {fs}"),
            CvtIf { fd, rs } => write!(f, "cvt.if {fd}, {rs}"),
            CvtFi { rd, fs } => write!(f, "cvt.fi {rd}, {fs}"),
            Lb { rt, base, off } => write!(f, "lb {rt}, {off}({base})"),
            Lbu { rt, base, off } => write!(f, "lbu {rt}, {off}({base})"),
            Lw { rt, base, off } => write!(f, "lw {rt}, {off}({base})"),
            Sb { rt, base, off } => write!(f, "sb {rt}, {off}({base})"),
            Sw { rt, base, off } => write!(f, "sw {rt}, {off}({base})"),
            Ll { rt, base, off } => write!(f, "ll {rt}, {off}({base})"),
            Sc { rt, base, off } => write!(f, "sc {rt}, {off}({base})"),
            Fls { ft, base, off } => write!(f, "fls {ft}, {off}({base})"),
            Fss { ft, base, off } => write!(f, "fss {ft}, {off}({base})"),
            Fld { ft, base, off } => write!(f, "fld {ft}, {off}({base})"),
            Fsd { ft, base, off } => write!(f, "fsd {ft}, {off}({base})"),
            Branch { cond, rs, rt, off } => {
                write!(f, "{} {rs}, {rt}, {off}", branch_name(cond))
            }
            J { target } => write!(f, "j {:#x}", target * 4),
            Jal { target } => write!(f, "jal {:#x}", target * 4),
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Sync => write!(f, "sync"),
            Cpuid { rd } => write!(f, "cpuid {rd}"),
            Hcall { no } => write!(f, "hcall {:?}", no),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_classes_match_table1() {
        assert_eq!(
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2
            }
            .fu_class(),
            FuClass::IntAlu
        );
        assert_eq!(
            Instr::Div {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2
            }
            .fu_class(),
            FuClass::IntDiv
        );
        assert_eq!(
            Instr::Fp {
                op: FpOp::DivD,
                fd: FReg::F0,
                fs: FReg::F1,
                ft: FReg::F2
            }
            .fu_class(),
            FuClass::FpDivDp
        );
        assert_eq!(
            Instr::Lw {
                rt: Reg::T0,
                base: Reg::SP,
                off: 0
            }
            .fu_class(),
            FuClass::Load
        );
    }

    #[test]
    fn classification_predicates() {
        let lw = Instr::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            off: 4,
        };
        let sw = Instr::Sw {
            rt: Reg::T0,
            base: Reg::SP,
            off: 4,
        };
        let beq = Instr::Branch {
            cond: BranchCond::Eq,
            rs: Reg::T0,
            rt: Reg::T1,
            off: -1,
        };
        assert!(lw.is_load() && !lw.is_store() && !lw.is_control());
        assert!(sw.is_store() && !sw.is_load());
        assert!(beq.is_control() && !beq.is_direct_jump());
        assert!(Instr::J { target: 0 }.is_direct_jump());
        assert_eq!(lw.mem_bytes(), Some(4));
        assert_eq!(
            Instr::Fld {
                ft: FReg::F0,
                base: Reg::SP,
                off: 0
            }
            .mem_bytes(),
            Some(8)
        );
        assert_eq!(Instr::Nop.mem_bytes(), None);
    }

    #[test]
    fn sc_both_uses_and_defs_rt() {
        let sc = Instr::Sc {
            rt: Reg::T3,
            base: Reg::A0,
            off: 0,
        };
        let ops = sc.reg_ops();
        assert_eq!(ops.int_uses, [Some(Reg::A0), Some(Reg::T3)]);
        assert_eq!(ops.int_def, Some(Reg::T3));
    }

    #[test]
    fn zero_register_def_is_discarded() {
        let add = Instr::AluI {
            op: AluOp::Add,
            rt: Reg::ZERO,
            rs: Reg::T0,
            imm: 1,
        };
        assert_eq!(add.reg_ops().int_def, None);
    }

    #[test]
    fn jal_defines_ra() {
        assert_eq!(Instr::Jal { target: 5 }.reg_ops().int_def, Some(Reg::RA));
    }

    #[test]
    fn hcall_imm_roundtrip() {
        for no in [
            HcallNo::ResetStats,
            HcallNo::Yield,
            HcallNo::Exit,
            HcallNo::Phase(0),
            HcallNo::Phase(200),
        ] {
            assert_eq!(HcallNo::from_imm(no.to_imm()), Some(no));
        }
        assert_eq!(HcallNo::from_imm(0xffff), None);
    }

    #[test]
    fn display_is_nonempty() {
        let i = Instr::Lw {
            rt: Reg::T0,
            base: Reg::GP,
            off: -8,
        };
        assert_eq!(i.to_string(), "lw $t0, -8($gp)");
    }
}

//! Integer and floating-point register names.
//!
//! The integer file follows MIPS o32 conventions loosely: `ZERO` is hardwired
//! to zero, `SP` is the stack pointer, `RA` the return address. Workload
//! generators use the symbolic names; the encoder uses the 5-bit indices.

use std::fmt;

/// One of the 32 integer registers. `Reg::ZERO` always reads as 0 and
/// ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary / scratch.
    pub const AT: Reg = Reg(1);
    /// Function results / first temporaries.
    pub const V0: Reg = Reg(2);
    pub const V1: Reg = Reg(3);
    /// Argument registers.
    pub const A0: Reg = Reg(4);
    pub const A1: Reg = Reg(5);
    pub const A2: Reg = Reg(6);
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporaries.
    pub const T0: Reg = Reg(8);
    pub const T1: Reg = Reg(9);
    pub const T2: Reg = Reg(10);
    pub const T3: Reg = Reg(11);
    pub const T4: Reg = Reg(12);
    pub const T5: Reg = Reg(13);
    pub const T6: Reg = Reg(14);
    pub const T7: Reg = Reg(15);
    /// Callee-saved registers.
    pub const S0: Reg = Reg(16);
    pub const S1: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    /// More temporaries.
    pub const T8: Reg = Reg(24);
    pub const T9: Reg = Reg(25);
    /// Reserved for the simulated kernel runtime.
    pub const K0: Reg = Reg(26);
    pub const K1: Reg = Reg(27);
    /// Global pointer.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn new(idx: u8) -> Reg {
        assert!(idx < 32, "integer register index {idx} out of range");
        Reg(idx)
    }

    /// The 5-bit register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        write!(f, "${}", NAMES[self.0 as usize])
    }
}

/// One of the 32 floating-point registers. Each holds an `f64`;
/// single-precision opcodes round their results to `f32` precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates an FP register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn new(idx: u8) -> FReg {
        assert!(idx < 32, "fp register index {idx} out of range");
        FReg(idx)
    }

    /// The 5-bit register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub const F0: FReg = FReg(0);
    pub const F1: FReg = FReg(1);
    pub const F2: FReg = FReg(2);
    pub const F3: FReg = FReg(3);
    pub const F4: FReg = FReg(4);
    pub const F5: FReg = FReg(5);
    pub const F6: FReg = FReg(6);
    pub const F7: FReg = FReg(7);
    pub const F8: FReg = FReg(8);
    pub const F9: FReg = FReg(9);
    pub const F10: FReg = FReg(10);
    pub const F11: FReg = FReg(11);
    pub const F12: FReg = FReg(12);
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::RA.index(), 31);
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::T0.is_zero());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::T0.to_string(), "$t0");
        assert_eq!(Reg::ZERO.to_string(), "$zero");
        assert_eq!(FReg::F3.to_string(), "$f3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_bound() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_index_bound() {
        let _ = FReg::new(32);
    }
}

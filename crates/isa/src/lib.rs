//! The `cmpsim` instruction set.
//!
//! The paper's simulation environment (SimOS + Mipsy/MXS) executes the MIPS-2
//! instruction set. We reproduce the parts of that ISA the study exercises as
//! a clean 32-bit RISC: 32 integer registers, 32 floating-point registers,
//! fixed 4-byte instructions, load/store architecture, `LL`/`SC` for
//! synchronization and a `SYNC` memory fence. Single- and double-precision
//! arithmetic are distinct opcodes because they occupy different
//! functional-unit latency classes (Table 1 of the paper).
//!
//! The crate provides:
//!
//! * [`Reg`]/[`FReg`] — register names,
//! * [`Instr`] — the decoded instruction form executed by the CPU models,
//! * [`encode()`](encode())/[`decode()`](decode()) — the binary format stored in simulated memory,
//! * [`Asm`] — an assembler with labels used by the workload generators.
//!
//! # Examples
//!
//! Assemble and disassemble a counting loop:
//!
//! ```
//! use cmpsim_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), cmpsim_isa::AsmError> {
//! let mut a = Asm::new(0x1000);
//! a.li(Reg::T0, 10);
//! a.label("loop");
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bne(Reg::T0, Reg::ZERO, "loop");
//! a.halt();
//! let prog = a.assemble()?;
//! assert_eq!(prog.base, 0x1000);
//! assert!(prog.words.len() >= 4);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod instr;
pub mod reg;

pub use asm::{Asm, AsmError, Program};
pub use encode::{decode, encode, DecodeError};
pub use instr::{AluOp, BranchCond, FpCmp, FpOp, FuClass, HcallNo, Instr, RegOps};
pub use reg::{FReg, Reg};

/// Byte address type used throughout the simulator (32-bit physical space).
pub type Addr = u32;

/// Size of one instruction in bytes.
pub const INSTR_BYTES: u32 = 4;

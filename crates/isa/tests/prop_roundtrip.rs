//! Property tests: the binary encoding is a lossless bijection on valid
//! instructions, and the assembler resolves arbitrary label graphs.
//! Runs on `cmpsim_engine::prop`.

use cmpsim_engine::prop::{self, Source};
use cmpsim_isa::{decode, encode, AluOp, Asm, BranchCond, FReg, FpCmp, FpOp, HcallNo, Instr, Reg};

fn any_reg(src: &mut Source) -> Reg {
    Reg::new(src.u8(0..32))
}
fn any_freg(src: &mut Source) -> FReg {
    FReg::new(src.u8(0..32))
}
fn any_alu_op(src: &mut Source) -> AluOp {
    src.choice(&[
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
    ])
}
fn any_fp_op(src: &mut Source) -> FpOp {
    src.choice(&[
        FpOp::AddS,
        FpOp::SubS,
        FpOp::MulS,
        FpOp::DivS,
        FpOp::AddD,
        FpOp::SubD,
        FpOp::MulD,
        FpOp::DivD,
    ])
}

/// Every valid instruction the assembler can emit.
fn any_instr(src: &mut Source) -> Instr {
    match src.index(33) {
        0 => Instr::Alu {
            op: any_alu_op(src),
            rd: any_reg(src),
            rs: any_reg(src),
            rt: any_reg(src),
        },
        1 => Instr::AluI {
            op: any_alu_op(src),
            rt: any_reg(src),
            rs: any_reg(src),
            imm: src.i16_any(),
        },
        2 => Instr::Lui {
            rt: any_reg(src),
            imm: src.u16_any(),
        },
        3 => Instr::Mul {
            rd: any_reg(src),
            rs: any_reg(src),
            rt: any_reg(src),
        },
        4 => Instr::Div {
            rd: any_reg(src),
            rs: any_reg(src),
            rt: any_reg(src),
        },
        5 => Instr::Rem {
            rd: any_reg(src),
            rs: any_reg(src),
            rt: any_reg(src),
        },
        6 => Instr::Fp {
            op: any_fp_op(src),
            fd: any_freg(src),
            fs: any_freg(src),
            ft: any_freg(src),
        },
        7 => Instr::Fcmp {
            cmp: src.choice(&[FpCmp::Eq, FpCmp::Lt, FpCmp::Le]),
            rd: any_reg(src),
            fs: any_freg(src),
            ft: any_freg(src),
        },
        8 => Instr::Fmov {
            fd: any_freg(src),
            fs: any_freg(src),
        },
        9 => Instr::CvtIf {
            fd: any_freg(src),
            rs: any_reg(src),
        },
        10 => Instr::CvtFi {
            rd: any_reg(src),
            fs: any_freg(src),
        },
        11 => Instr::Lb {
            rt: any_reg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        12 => Instr::Lbu {
            rt: any_reg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        13 => Instr::Lw {
            rt: any_reg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        14 => Instr::Sb {
            rt: any_reg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        15 => Instr::Sw {
            rt: any_reg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        16 => Instr::Ll {
            rt: any_reg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        17 => Instr::Sc {
            rt: any_reg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        18 => Instr::Fls {
            ft: any_freg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        19 => Instr::Fss {
            ft: any_freg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        20 => Instr::Fld {
            ft: any_freg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        21 => Instr::Fsd {
            ft: any_freg(src),
            base: any_reg(src),
            off: src.i16_any(),
        },
        22 => Instr::Branch {
            cond: src.choice(&[
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
                BranchCond::Ltu,
                BranchCond::Geu,
            ]),
            rs: any_reg(src),
            rt: any_reg(src),
            off: src.i16_any(),
        },
        23 => Instr::J {
            target: src.u32(0..1 << 26),
        },
        24 => Instr::Jal {
            target: src.u32(0..1 << 26),
        },
        25 => Instr::Jr { rs: any_reg(src) },
        26 => Instr::Jalr {
            rd: any_reg(src),
            rs: any_reg(src),
        },
        27 => Instr::Sync,
        28 => Instr::Cpuid { rd: any_reg(src) },
        29 => Instr::Hcall {
            no: match src.index(4) {
                0 => HcallNo::ResetStats,
                1 => HcallNo::Yield,
                2 => HcallNo::Exit,
                _ => HcallNo::Phase(src.u64(0..256) as u8),
            },
        },
        30 => Instr::Halt,
        31 => Instr::Nop,
        _ => Instr::Sync,
    }
}

/// decode(encode(i)) == i for every valid instruction.
#[test]
fn encode_decode_roundtrip() {
    prop::check("encode_decode_roundtrip", |src| {
        let i = any_instr(src);
        let word = encode(&i);
        let back = decode(word).expect("valid instruction decodes");
        assert_eq!(back, i);
    });
}

/// decode tolerates non-canonical padding in ignored fields, but must be
/// idempotent through a re-encode: decode(encode(decode(w))) == decode(w).
#[test]
fn decode_encode_idempotent() {
    prop::check("decode_encode_idempotent", |src| {
        let word = src.u32_any();
        if let Ok(i) = decode(word) {
            let canonical = encode(&i);
            assert_eq!(decode(canonical).expect("canonical decodes"), i);
            // And canonical forms are a fixpoint.
            assert_eq!(encode(&decode(canonical).unwrap()), canonical);
        }
    });
}

/// Pinned regression (found by the idempotency property in the seed
/// repo's proptest era): word 874512384 decodes to an instruction whose
/// re-encode once disagreed in a padding field.
#[test]
fn regression_decode_idempotent_word_874512384() {
    let word: u32 = 874_512_384;
    if let Ok(i) = decode(word) {
        let canonical = encode(&i);
        assert_eq!(decode(canonical).expect("canonical decodes"), i);
        assert_eq!(encode(&decode(canonical).unwrap()), canonical);
    }
}

/// The assembler resolves arbitrary forward/backward branch graphs.
#[test]
fn assembler_resolves_random_label_graphs() {
    prop::check("assembler_resolves_random_label_graphs", |src| {
        let jumps = src.vec(1..20, |s| s.usize(0..20));
        let n = jumps.len();
        let mut a = Asm::new(0x1000);
        for (i, &target) in jumps.iter().enumerate() {
            a.label(&format!("L{i}"));
            a.nop();
            a.beq(Reg::T0, Reg::T1, &format!("L{}", target % n));
        }
        a.halt();
        let prog = a.assemble().expect("assembles");
        assert_eq!(prog.words.len(), 2 * n + 1);
        // Every emitted word decodes.
        for &w in &prog.words {
            assert!(decode(w).is_ok());
        }
    });
}

/// `li` materializes any 32-bit constant.
#[test]
fn li_materializes_any_constant() {
    prop::check("li_materializes_any_constant", |src| {
        let v = src.i32_any();
        let mut a = Asm::new(0);
        a.li(Reg::T0, i64::from(v));
        a.halt();
        let prog = a.assemble().expect("assembles");
        // Emulate the 1-2 instruction expansion by hand.
        let mut t0 = 0u32;
        for &w in &prog.words {
            match decode(w).expect("valid") {
                Instr::AluI {
                    op: AluOp::Add,
                    imm,
                    ..
                } => t0 = imm as i32 as u32,
                Instr::AluI {
                    op: AluOp::Or, imm, ..
                } => t0 |= (imm as u16) as u32,
                Instr::Lui { imm, .. } => t0 = u32::from(imm) << 16,
                Instr::Halt => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(t0, v as u32);
    });
}

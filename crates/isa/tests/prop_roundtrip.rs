//! Property tests: the binary encoding is a lossless bijection on valid
//! instructions, and the assembler resolves arbitrary label graphs.

use cmpsim_isa::{decode, encode, AluOp, Asm, BranchCond, FpCmp, FpOp, FReg, HcallNo, Instr, Reg};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}
fn any_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}
fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add), Just(AluOp::Sub), Just(AluOp::And), Just(AluOp::Or),
        Just(AluOp::Xor), Just(AluOp::Nor), Just(AluOp::Slt), Just(AluOp::Sltu),
        Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra),
    ]
}
fn any_fp_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![
        Just(FpOp::AddS), Just(FpOp::SubS), Just(FpOp::MulS), Just(FpOp::DivS),
        Just(FpOp::AddD), Just(FpOp::SubD), Just(FpOp::MulD), Just(FpOp::DivD),
    ]
}

/// Every valid instruction the assembler can emit.
fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs, rt)| Instr::Alu { op, rd, rs, rt }),
        (any_alu_op(), any_reg(), any_reg(), any::<i16>())
            .prop_map(|(op, rt, rs, imm)| Instr::AluI { op, rt, rs, imm }),
        (any_reg(), any::<u16>()).prop_map(|(rt, imm)| Instr::Lui { rt, imm }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs, rt)| Instr::Mul { rd, rs, rt }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs, rt)| Instr::Div { rd, rs, rt }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs, rt)| Instr::Rem { rd, rs, rt }),
        (any_fp_op(), any_freg(), any_freg(), any_freg())
            .prop_map(|(op, fd, fs, ft)| Instr::Fp { op, fd, fs, ft }),
        (prop_oneof![Just(FpCmp::Eq), Just(FpCmp::Lt), Just(FpCmp::Le)], any_reg(), any_freg(), any_freg())
            .prop_map(|(cmp, rd, fs, ft)| Instr::Fcmp { cmp, rd, fs, ft }),
        (any_freg(), any_freg()).prop_map(|(fd, fs)| Instr::Fmov { fd, fs }),
        (any_freg(), any_reg()).prop_map(|(fd, rs)| Instr::CvtIf { fd, rs }),
        (any_reg(), any_freg()).prop_map(|(rd, fs)| Instr::CvtFi { rd, fs }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rt, base, off)| Instr::Lb { rt, base, off }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rt, base, off)| Instr::Lbu { rt, base, off }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rt, base, off)| Instr::Lw { rt, base, off }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rt, base, off)| Instr::Sb { rt, base, off }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rt, base, off)| Instr::Sw { rt, base, off }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rt, base, off)| Instr::Ll { rt, base, off }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rt, base, off)| Instr::Sc { rt, base, off }),
        (any_freg(), any_reg(), any::<i16>()).prop_map(|(ft, base, off)| Instr::Fls { ft, base, off }),
        (any_freg(), any_reg(), any::<i16>()).prop_map(|(ft, base, off)| Instr::Fss { ft, base, off }),
        (any_freg(), any_reg(), any::<i16>()).prop_map(|(ft, base, off)| Instr::Fld { ft, base, off }),
        (any_freg(), any_reg(), any::<i16>()).prop_map(|(ft, base, off)| Instr::Fsd { ft, base, off }),
        (prop_oneof![
            Just(BranchCond::Eq), Just(BranchCond::Ne), Just(BranchCond::Lt),
            Just(BranchCond::Ge), Just(BranchCond::Ltu), Just(BranchCond::Geu)
        ], any_reg(), any_reg(), any::<i16>())
            .prop_map(|(cond, rs, rt, off)| Instr::Branch { cond, rs, rt, off }),
        (0u32..(1 << 26)).prop_map(|target| Instr::J { target }),
        (0u32..(1 << 26)).prop_map(|target| Instr::Jal { target }),
        any_reg().prop_map(|rs| Instr::Jr { rs }),
        (any_reg(), any_reg()).prop_map(|(rd, rs)| Instr::Jalr { rd, rs }),
        Just(Instr::Sync),
        any_reg().prop_map(|rd| Instr::Cpuid { rd }),
        prop_oneof![
            Just(HcallNo::ResetStats), Just(HcallNo::Yield), Just(HcallNo::Exit),
            (0u8..=255).prop_map(HcallNo::Phase)
        ].prop_map(|no| Instr::Hcall { no }),
        Just(Instr::Halt),
        Just(Instr::Nop),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every valid instruction.
    #[test]
    fn encode_decode_roundtrip(i in any_instr()) {
        let word = encode(&i);
        let back = decode(word).expect("valid instruction decodes");
        prop_assert_eq!(back, i);
    }

    /// decode tolerates non-canonical padding in ignored fields, but must
    /// be idempotent through a re-encode: decode(encode(decode(w))) ==
    /// decode(w).
    #[test]
    fn decode_encode_idempotent(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            let canonical = encode(&i);
            prop_assert_eq!(decode(canonical).expect("canonical decodes"), i);
            // And canonical forms are a fixpoint.
            prop_assert_eq!(encode(&decode(canonical).unwrap()), canonical);
        }
    }

    /// The assembler resolves arbitrary forward/backward branch graphs.
    #[test]
    fn assembler_resolves_random_label_graphs(
        jumps in prop::collection::vec(0usize..20, 1..20)
    ) {
        let n = jumps.len();
        let mut a = Asm::new(0x1000);
        for (i, &target) in jumps.iter().enumerate() {
            a.label(&format!("L{i}"));
            a.nop();
            a.beq(Reg::T0, Reg::T1, &format!("L{}", target % n));
        }
        a.halt();
        let prog = a.assemble().expect("assembles");
        prop_assert_eq!(prog.words.len(), 2 * n + 1);
        // Every emitted word decodes.
        for &w in &prog.words {
            prop_assert!(decode(w).is_ok());
        }
    }

    /// `li` materializes any 32-bit constant.
    #[test]
    fn li_materializes_any_constant(v in any::<i32>()) {
        let mut a = Asm::new(0);
        a.li(Reg::T0, i64::from(v));
        a.halt();
        let prog = a.assemble().expect("assembles");
        // Emulate the 1-2 instruction expansion by hand.
        let mut t0 = 0u32;
        for &w in &prog.words {
            match decode(w).expect("valid") {
                Instr::AluI { op: AluOp::Add, imm, .. } => t0 = imm as i32 as u32,
                Instr::AluI { op: AluOp::Or, imm, .. } => t0 |= (imm as u16) as u32,
                Instr::Lui { imm, .. } => t0 = u32::from(imm) << 16,
                Instr::Halt => break,
                other => prop_assert!(false, "unexpected {other}"),
            }
        }
        prop_assert_eq!(t0, v as u32);
    }
}

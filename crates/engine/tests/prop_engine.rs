//! Property tests for the simulation core.

use cmpsim_engine::{Cycle, EventQueue, Port, Rng64};
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order, FIFO within a cycle.
    #[test]
    fn event_queue_is_stable_priority(times in prop::collection::vec(0u64..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop_due(Cycle(u64::MAX)) {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO within a cycle");
            }
        }
    }

    /// A port never grants before the request arrives, never overlaps
    /// grants, and accumulates wait exactly as grant - arrival.
    #[test]
    fn port_grants_are_serialized(
        reqs in prop::collection::vec((0u64..1000, 1u64..10), 1..100)
    ) {
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|r| r.0);
        let mut p = Port::new("t");
        let mut last_end = 0u64;
        let mut total_wait = 0u64;
        for (at, occ) in sorted {
            let g = p.reserve(Cycle(at), occ);
            prop_assert!(g.0 >= at, "grant at or after arrival");
            prop_assert!(g.0 >= last_end, "no overlap");
            total_wait += g.0 - at;
            last_end = g.0 + occ;
        }
        prop_assert_eq!(p.wait_cycles(), total_wait);
        prop_assert_eq!(p.free_at().0, last_end);
    }

    /// The RNG's range() respects its bound for arbitrary seeds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng64::new(seed);
        for _ in 0..50 {
            prop_assert!(r.range(n) < n);
        }
    }

    /// Shuffle produces a permutation.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), len in 0usize..64) {
        let mut r = Rng64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        r.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        prop_assert_eq!(s, (0..len).collect::<Vec<_>>());
    }
}

//! Property tests for the simulation core, running on the engine's own
//! deterministic `prop` framework.

use cmpsim_engine::{prop, Cycle, EventQueue, Port, Rng64};

/// Events pop in nondecreasing time order, FIFO within a cycle.
#[test]
fn event_queue_is_stable_priority() {
    prop::check("event_queue_is_stable_priority", |src| {
        let times = src.vec(1..200, |s| s.u64(0..100));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop_due(Cycle(u64::MAX)) {
            popped.push(e);
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO within a cycle");
            }
        }
    });
}

/// A port never grants before the request arrives, never overlaps grants,
/// and accumulates wait exactly as grant - arrival.
#[test]
fn port_grants_are_serialized() {
    prop::check("port_grants_are_serialized", |src| {
        let reqs = src.vec(1..100, |s| (s.u64(0..1000), s.u64(1..10)));
        let mut sorted = reqs;
        sorted.sort_by_key(|r| r.0);
        let mut p = Port::new("t");
        let mut last_end = 0u64;
        let mut total_wait = 0u64;
        for (at, occ) in sorted {
            let g = p.reserve(Cycle(at), occ);
            assert!(g.0 >= at, "grant at or after arrival");
            assert!(g.0 >= last_end, "no overlap");
            total_wait += g.0 - at;
            last_end = g.0 + occ;
        }
        assert_eq!(p.wait_cycles(), total_wait);
        assert_eq!(p.free_at().0, last_end);
    });
}

/// The RNG's range() respects its bound for arbitrary seeds.
#[test]
fn rng_range_in_bounds() {
    prop::check("rng_range_in_bounds", |src| {
        let seed = src.u64_any();
        let n = src.u64(1..1_000_000);
        let mut r = Rng64::new(seed);
        for _ in 0..50 {
            assert!(r.range(n) < n);
        }
    });
}

/// Shuffle produces a permutation.
#[test]
fn shuffle_permutes() {
    prop::check("shuffle_permutes", |src| {
        let seed = src.u64_any();
        let len = src.usize(0..64);
        let mut r = Rng64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        r.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..len).collect::<Vec<_>>());
    });
}

//! Deterministic fault-injection suite for the supervised execution
//! layer: seeded panicking / slow / flaky fixtures at fixed job indices,
//! exercised across worker counts 1/2/4/7.
//!
//! Every test in this binary injects panics on purpose, so a filtering
//! panic hook suppresses the known fixture payloads and forwards
//! anything else (a real test failure) to stderr untouched.

use cmpsim_engine::supervise::{run_indexed_supervised, JobOutcome, Quarantine, SuperviseSpec};
use cmpsim_engine::{pool, prop};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Once;
use std::time::Duration;

/// Job indices every fixture poisons (from the issue spec).
const POISONED: [usize; 4] = [1, 2, 4, 7];

/// Worker counts every test sweeps.
const JOB_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Payload marker shared by all intentional fixture panics.
const FIXTURE_MARK: &str = "[fixture]";

fn quiet_fixture_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !payload.contains(FIXTURE_MARK) {
                default(info);
            }
        }));
    });
}

/// The reference workload: a pure function of the job index.
fn value_of(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xabcd
}

#[test]
fn zero_failures_merge_byte_identical_to_unsupervised() {
    quiet_fixture_panics();
    let n = 23;
    let reference = pool::run_indexed(1, n, value_of);
    for jobs in JOB_COUNTS {
        let plain = pool::run_indexed(jobs, n, value_of);
        let run = run_indexed_supervised(&SuperviseSpec::new().with_retries(3), jobs, n, value_of);
        assert!(run.is_clean());
        let supervised = run.expect_clean("identity sweep");
        // Byte-identity of the merged artifact: serialize both and diff.
        let bytes = |v: &[u64]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
        assert_eq!(bytes(&supervised), bytes(&plain), "jobs={jobs}");
        assert_eq!(bytes(&supervised), bytes(&reference), "jobs={jobs}");
    }
}

#[test]
fn panicking_fixture_quarantines_only_the_poisoned_jobs() {
    quiet_fixture_panics();
    let n = 10;
    for jobs in JOB_COUNTS {
        let spec = SuperviseSpec::new().with_retries(1);
        let run = run_indexed_supervised(&spec, jobs, n, |i| {
            assert!(!POISONED.contains(&i), "{FIXTURE_MARK} poisoned job {i}");
            value_of(i)
        });
        let ids: Vec<usize> = run.quarantined.iter().map(|q| q.job_id).collect();
        assert_eq!(ids, POISONED.to_vec(), "jobs={jobs}");
        for q in &run.quarantined {
            assert_eq!(q.attempts, 2, "retries=1 means two attempts");
            assert!(q.reason.contains("poisoned job"), "{}", q.reason);
        }
        let (vals, _) = run.into_parts();
        for (i, v) in vals.iter().enumerate() {
            if POISONED.contains(&i) {
                assert!(v.is_none(), "jobs={jobs} i={i}");
            } else {
                assert_eq!(*v, Some(value_of(i)), "jobs={jobs} i={i}");
            }
        }
    }
}

#[test]
fn flaky_fixture_recovers_under_sufficient_retry() {
    quiet_fixture_panics();
    let n = 10;
    for jobs in JOB_COUNTS {
        // Each poisoned job fails its first two attempts, then succeeds.
        let attempts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let flaky = |i: usize| {
            let k = attempts[i].fetch_add(1, Ordering::Relaxed);
            assert!(
                !(POISONED.contains(&i) && k < 2),
                "{FIXTURE_MARK} flaky job {i} attempt {k}"
            );
            value_of(i)
        };
        let run = run_indexed_supervised(&SuperviseSpec::new().with_retries(2), jobs, n, flaky);
        assert!(run.is_clean(), "jobs={jobs}: 2 retries cover 2 failures");
        let vals = run.expect_clean("flaky sweep");
        assert_eq!(vals, (0..n).map(value_of).collect::<Vec<_>>());
    }
    // Insufficient retry budget: the same fixture quarantines.
    let attempts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let run = run_indexed_supervised(&SuperviseSpec::new().with_retries(1), 4, n, |i| {
        let k = attempts[i].fetch_add(1, Ordering::Relaxed);
        assert!(
            !(POISONED.contains(&i) && k < 2),
            "{FIXTURE_MARK} flaky job {i} attempt {k}"
        );
        value_of(i)
    });
    let ids: Vec<usize> = run.quarantined.iter().map(|q| q.job_id).collect();
    assert_eq!(ids, POISONED.to_vec());
}

#[test]
fn slow_fixture_times_out_without_losing_fast_jobs() {
    quiet_fixture_panics();
    let n = 10;
    let spec = SuperviseSpec::new().with_deadline_ms(20);
    for jobs in JOB_COUNTS {
        let run = run_indexed_supervised(&spec, jobs, n, |i| {
            if POISONED.contains(&i) {
                std::thread::sleep(Duration::from_millis(150));
            }
            value_of(i)
        });
        let ids: Vec<usize> = run.quarantined.iter().map(|q| q.job_id).collect();
        assert_eq!(ids, POISONED.to_vec(), "jobs={jobs}");
        for (i, o) in run.outcomes.iter().enumerate() {
            if POISONED.contains(&i) {
                match o {
                    JobOutcome::TimedOut {
                        job_id,
                        deadline_ms,
                        elapsed_ms,
                        attempts,
                    } => {
                        assert_eq!(*job_id, i);
                        assert_eq!(*deadline_ms, 20);
                        assert!(*elapsed_ms >= 20, "jobs={jobs} i={i} elapsed={elapsed_ms}");
                        assert_eq!(*attempts, 1);
                    }
                    other => panic!("jobs={jobs} i={i}: expected TimedOut, got {other:?}"),
                }
            } else {
                assert!(o.is_done(), "jobs={jobs} i={i}");
            }
        }
    }
}

#[test]
fn quarantine_order_is_index_order_not_completion_order() {
    quiet_fixture_panics();
    // Later poisoned jobs fail fast, earlier ones fail slowly, so
    // completion order inverts index order; the quarantine list must
    // still come out index-sorted.
    let run = run_indexed_supervised(&SuperviseSpec::new(), 4, 8, |i| {
        if POISONED.contains(&i) {
            std::thread::sleep(Duration::from_millis(40u64.saturating_sub(5 * i as u64)));
            panic!("{FIXTURE_MARK} ordered failure {i}");
        }
        value_of(i)
    });
    let ids: Vec<usize> = run.quarantined.iter().map(|q| q.job_id).collect();
    assert_eq!(ids, POISONED.to_vec());
}

#[test]
fn random_poison_sets_quarantine_exactly() {
    quiet_fixture_panics();
    prop::check("random_poison_sets_quarantine_exactly", |src| {
        let n = src.usize(1..24);
        let poison: Vec<bool> = (0..n).map(|_| src.u64(0..4) == 0).collect();
        let jobs = JOB_COUNTS[src.usize(0..JOB_COUNTS.len())];
        let retries = src.u64(0..3) as u32;
        let run =
            run_indexed_supervised(&SuperviseSpec::new().with_retries(retries), jobs, n, |i| {
                assert!(!poison[i], "{FIXTURE_MARK} random poison {i}");
                value_of(i)
            });
        let want: Vec<usize> = (0..n).filter(|&i| poison[i]).collect();
        let got: Vec<usize> = run.quarantined.iter().map(|q| q.job_id).collect();
        assert_eq!(got, want);
        for q in &run.quarantined {
            assert_eq!(q.attempts, retries + 1);
        }
        let (vals, quarantined) = run.into_parts();
        assert_eq!(quarantined.len(), want.len());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(v.is_none(), poison[i], "slot {i}");
        }
    });
}

#[test]
fn quarantine_display_is_actionable() {
    let q = Quarantine {
        job_id: 4,
        attempts: 3,
        reason: "panicked: boom".to_string(),
    };
    let s = q.to_string();
    assert!(s.contains("job 4"), "{s}");
    assert!(s.contains("3 attempts"), "{s}");
    assert!(s.contains("boom"), "{s}");
}

//! The property-testing framework tested as a subject itself: shrinking
//! must converge to a minimal counterexample, generation must be a pure
//! function of the seed, and the env-var overrides must be honored.

use cmpsim_engine::prop::{self, Config, Source};
use std::cell::RefCell;

fn quick(cases: u32) -> Config {
    Config {
        cases,
        ..Config::default()
    }
}

/// A failing property whose unique minimal counterexample is the vector
/// `[500]`: "no element is ever >= 500". Block deletion must strip every
/// innocent element and value minimization must walk the survivor down to
/// the boundary.
#[test]
fn shrinking_converges_to_minimal_counterexample() {
    let gen = |src: &mut Source| src.vec(0..100, |s| s.u64(0..1000));
    let failure = prop::check_result(&quick(200), "no_big_elements", |src| {
        let v = gen(src);
        assert!(v.iter().all(|&x| x < 500), "big element in {v:?}");
    })
    .expect_err("property must fail");

    let minimal = gen(&mut Source::replay(failure.choices.clone()));
    assert_eq!(
        minimal,
        vec![500],
        "expected the boundary singleton, got {minimal:?} (choices {:?})",
        failure.choices
    );
    // The reported message is the one produced by the *minimized* case.
    assert!(failure.message.contains("[500]"), "{}", failure.message);
}

/// Shrinking a scalar converges to the exact boundary value.
#[test]
fn shrinking_minimizes_scalars_to_the_boundary() {
    let failure = prop::check_result(&quick(200), "small_sum", |src| {
        let a = src.u64(0..10_000);
        let b = src.u64(0..10_000);
        assert!(a + b < 1000);
    })
    .expect_err("property must fail");

    let mut src = Source::replay(failure.choices.clone());
    let (a, b) = (src.u64(0..10_000), src.u64(0..10_000));
    assert_eq!(a + b, 1000, "minimal failing sum, got {a} + {b}");
}

/// Same seed, same config → the exact same sequence of generated cases.
#[test]
fn same_seed_generates_same_cases() {
    let collect = |seed: u64| {
        let log = RefCell::new(Vec::new());
        let cfg = Config {
            cases: 40,
            seed,
            ..Config::default()
        };
        prop::check_with(&cfg, "collector", |src| {
            let v = src.vec(1..10, |s| s.i16_any());
            let f = src.f64(0.0..1.0);
            log.borrow_mut().push((v, f));
        });
        log.into_inner()
    };
    assert_eq!(collect(1), collect(1));
    assert_ne!(collect(1), collect(2), "different seeds must diverge");
}

/// A reported failure seed regenerates the failing inputs as case 0 —
/// the contract behind the `CMPSIM_PROP_SEED=...` reproduction line.
#[test]
fn reported_seed_reproduces_as_case_zero() {
    let prop_fn = |src: &mut Source| {
        let x = src.u64(0..1_000_000);
        assert!(!x.is_multiple_of(97), "x = {x} is divisible");
    };
    let failure = prop::check_result(&quick(5000), "mod_prime", prop_fn)
        .expect_err("property must fail eventually");

    let repro = Config {
        cases: 1,
        seed: failure.seed,
        ..Config::default()
    };
    let again =
        prop::check_result(&repro, "mod_prime", prop_fn).expect_err("reported seed must reproduce");
    assert_eq!(again.case, 0);
}

/// Env overrides parse through the same code `from_env` uses.
#[test]
fn env_overrides_respected_via_lookup() {
    let base = Config::default();
    let over = base.clone().with_lookup(|key| match key {
        "CMPSIM_PROP_SEED" => Some("0xDEAD".to_string()),
        "CMPSIM_PROP_CASES" => Some("17".to_string()),
        _ => None,
    });
    assert_eq!(over.seed, 0xDEAD);
    assert_eq!(over.cases, 17);

    // Absent / malformed values leave the defaults untouched.
    let keep = base.clone().with_lookup(|_| None);
    assert_eq!(keep.seed, base.seed);
    assert_eq!(keep.cases, base.cases);
    let bad = base.clone().with_lookup(|_| Some("not-a-number".into()));
    assert_eq!(bad.seed, base.seed);
    assert_eq!(bad.cases, base.cases);
}

/// The real process environment reaches `Config::from_env`. Kept in this
/// dedicated integration binary: no other test here reads the env, so
/// mutating it cannot race.
#[test]
fn env_overrides_respected_from_process_env() {
    std::env::set_var("CMPSIM_PROP_SEED", "424242");
    std::env::set_var("CMPSIM_PROP_CASES", "3");
    let cfg = Config::from_env();
    std::env::remove_var("CMPSIM_PROP_SEED");
    std::env::remove_var("CMPSIM_PROP_CASES");
    assert_eq!(cfg.seed, 424242);
    assert_eq!(cfg.cases, 3);

    // And the count is actually obeyed by the runner.
    let runs = RefCell::new(0u32);
    prop::check_with(&cfg, "count_runs", |_src| {
        *runs.borrow_mut() += 1;
    });
    assert_eq!(runs.into_inner(), 3);
}

/// `from_env_or_cases` lets an expensive suite lower the default while
/// still yielding to an explicit `CMPSIM_PROP_CASES`.
#[test]
fn suite_specific_case_default() {
    let cfg = Config::from_env_or_cases(48)
        .with_lookup(|key| (key == "CMPSIM_PROP_CASES").then(|| "96".to_string()));
    assert_eq!(cfg.cases, 96);
}

/// A failing case that happens to be already minimal survives shrinking
/// untouched and its Display report carries the reproduction seed.
#[test]
fn failure_report_is_complete() {
    let failure = prop::check_result(&quick(10), "always_fails", |src| {
        let _ = src.bool();
        panic!("intentional");
    })
    .expect_err("fails");
    let report = failure.to_string();
    assert!(report.contains("always_fails"), "{report}");
    assert!(report.contains("CMPSIM_PROP_SEED="), "{report}");
    assert!(report.contains("intentional"), "{report}");
}

//! Scoped-thread fan-out primitives shared by the bench harness and the
//! sharded run loop.
//!
//! Two shapes of parallelism live here, both built on `std::thread::scope`
//! with zero external dependencies:
//!
//! * [`run_indexed`] / [`map_jobs`] — an atomic-cursor job pool for
//!   independent work items whose results are always returned **in index
//!   order**, so callers produce byte-identical output whatever the thread
//!   count or scheduling. The bench matrix fans out over this.
//! * [`barrier_rounds`] — a persistent worker team alternating parallel
//!   *stage* phases with serial *commit* phases, the skeleton of the
//!   sharded machine runner (DESIGN.md §12). Workers are spawned once and
//!   reused every round; round boundaries are full barriers, so the stage
//!   closure may freely read state the commit closure mutates between
//!   rounds.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Worker count from the environment variable `var`: a positive integer
/// is taken literally, a zero/unparsable value means "run serially", and
/// an unset variable falls back to the host's available parallelism.
/// Shared by the bench harness (`CMPSIM_BENCH_JOBS`) and the explore
/// drivers so every fan-out answers the same knob the same way.
pub fn env_jobs(var: &str) -> usize {
    match std::env::var(var) {
        Ok(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Runs `f(0..n)` on up to `jobs` scoped threads and returns the results in
/// index order. With `jobs <= 1` (or a single item) everything runs inline
/// on the calling thread — same results, no thread machinery.
///
/// # Panics
///
/// Propagates a panic from any worker closure.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.max(1).min(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let fref = &f;
    let nextref = &next;
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let i = nextref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        got.push((i, fref(i)));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("pool worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("the cursor visits every index exactly once"))
        .collect()
}

/// Maps `f` over `items` on up to `jobs` threads, results in item order.
pub fn map_jobs<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_indexed(jobs, items.len(), |i| f(&items[i]))
}

/// Alternates parallel stage phases with serial commit phases over a
/// persistent team of `shards` participants until `commit` returns `false`.
///
/// Each round every participant `0..shards` runs `stage(i)` concurrently
/// (the calling thread doubles as participant 0, so `shards` participants
/// cost `shards - 1` spawned threads); once all have finished, the calling
/// thread alone runs `commit()`. Returning `false` from `commit` ends the
/// loop after releasing the workers.
///
/// Full barriers separate the phases, so `commit` may mutate state that
/// `stage` reads (e.g. behind an `RwLock` whose writer side only the commit
/// phase takes) without any per-access synchronization. With `shards <= 1`
/// the loop runs inline with no threads or barriers.
///
/// # Panics
///
/// Propagates a panic from any worker's `stage` call (the scope unwinds).
pub fn barrier_rounds<S, C>(shards: usize, stage: S, mut commit: C)
where
    S: Fn(usize) + Sync,
    C: FnMut() -> bool,
{
    if shards <= 1 {
        loop {
            stage(0);
            if !commit() {
                return;
            }
        }
    }
    let start = Barrier::new(shards);
    let end = Barrier::new(shards);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 1..shards {
            let (stage, start, end, done) = (&stage, &start, &end, &done);
            s.spawn(move || loop {
                start.wait();
                if done.load(Ordering::Acquire) {
                    return;
                }
                stage(w);
                end.wait();
            });
        }
        loop {
            start.wait();
            stage(0);
            end.wait();
            if !commit() {
                // One more release lets every worker observe `done`.
                done.store(true, Ordering::Release);
                start.wait();
                return;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn results_come_back_in_index_order() {
        // Stagger completion so late indices finish first under real
        // threading; index order must hold regardless.
        let out = run_indexed(4, 16, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 50) as u64));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize| (i as u64).wrapping_mul(2_654_435_761) % 1013;
        let serial = run_indexed(1, 64, work);
        let parallel = run_indexed(8, 64, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_single_and_zero_jobs_inputs() {
        assert_eq!(run_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(8, 1, |i| i + 7), vec![7]);
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_jobs_preserves_item_order() {
        let items = ["a", "bb", "ccc"];
        assert_eq!(map_jobs(3, &items, |s| s.len()), vec![1, 2, 3]);
    }

    /// Every participant stages once per round, and commit sees all of the
    /// round's contributions — for each team size, including the inline
    /// `shards = 1` path.
    #[test]
    fn barrier_rounds_stage_then_commit() {
        for shards in [1usize, 2, 4] {
            let staged: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let mut rounds = 0usize;
            barrier_rounds(
                shards,
                |w| staged.lock().unwrap().push(w),
                || {
                    let mut s = staged.lock().unwrap();
                    // All participants contributed exactly once this round.
                    let mut got = std::mem::take(&mut *s);
                    got.sort_unstable();
                    assert_eq!(got, (0..shards).collect::<Vec<_>>());
                    rounds += 1;
                    rounds < 5
                },
            );
            assert_eq!(rounds, 5);
        }
    }
}

//! Discrete-event simulation core for `cmpsim`.
//!
//! This crate provides the low-level machinery shared by every timing model in
//! the simulator:
//!
//! * [`Cycle`] — a strongly typed simulated-time stamp.
//! * [`Port`] and [`BankedResource`] — occupancy-based contention models for
//!   cache ports, buses and DRAM banks.
//! * [`EventQueue`] — a deterministic time-ordered event queue.
//! * [`ReadyHeap`] — an indexed min-heap over `(Cycle, index)` keys, the
//!   earliest-ready order the machine run loops use.
//! * [`pool`] — scoped-thread fan-out: the index-ordered job pool the bench
//!   harness uses and the stage/commit barrier rounds the sharded machine
//!   runner is built on.
//! * [`hash`] — deterministic fixed-function hashing ([`FastMap`],
//!   [`FastSet`]) for the simulators' internal line-address maps.
//! * [`stats`] — counters and histograms used for the paper's
//!   execution-time breakdowns and miss-rate tables.
//! * [`Rng64`] — a small deterministic PRNG so every simulation is exactly
//!   reproducible from its seed.
//! * [`prop`] — a deterministic property-testing framework built on
//!   [`Rng64`], so the whole workspace tests itself without any external
//!   dependency.
//! * [`supervise`] — panic isolation, wall-clock deadlines and
//!   deterministic retry over the [`pool`] fan-out, with a quarantine
//!   list instead of sweep-killing panics.
//! * [`journal`] — an append-only, crash-tolerant resume journal so
//!   interrupted sweeps skip completed rows on restart.
//!
//! # Examples
//!
//! ```
//! use cmpsim_engine::{Cycle, Port};
//!
//! // A bus with a 6-cycle occupancy per transfer.
//! let mut bus = Port::new("bus");
//! let first = bus.reserve(Cycle(10), 6);
//! let second = bus.reserve(Cycle(11), 6);
//! assert_eq!(first, Cycle(10));
//! // The second request arrives while the bus is busy and waits.
//! assert_eq!(second, Cycle(16));
//! ```

pub mod hash;
pub mod journal;
pub mod pool;
pub mod prop;
pub mod queue;
pub mod ready;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod supervise;

pub use hash::{BuildFastHasher, FastHasher, FastMap, FastSet};
pub use journal::{Journal, JournalKey};
pub use pool::{barrier_rounds, map_jobs, run_indexed};
pub use queue::EventQueue;
pub use ready::ReadyHeap;
pub use resource::{BankedResource, Port};
pub use rng::Rng64;
pub use stats::{Counter, Histogram};
pub use supervise::{
    map_jobs_supervised, run_indexed_supervised, JobOutcome, Quarantine, SuperviseSpec,
    SupervisedRun,
};

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in CPU clock cycles.
///
/// The paper assumes a 200 MHz clock (1 cycle = 5 ns); all latencies in
/// Table 2 are expressed in these cycles.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::Cycle;
/// let t = Cycle(100) + 50;
/// assert_eq!(t, Cycle(150));
/// assert_eq!(t - Cycle(100), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// The latest representable time; used as "never".
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the later of two timestamps.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Number of cycles from `earlier` to `self`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Sum<u64> for Cycle {
    fn sum<I: Iterator<Item = u64>>(iter: I) -> Cycle {
        Cycle(iter.sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(5);
        assert_eq!(a + 3, Cycle(8));
        assert_eq!(Cycle(8) - a, 3);
        assert_eq!(a.max(Cycle(2)), a);
        assert_eq!(a.min(Cycle(2)), Cycle(2));
        assert_eq!(Cycle(3).since(Cycle(10)), 0);
        assert_eq!(Cycle(10).since(Cycle(3)), 7);
    }

    #[test]
    fn cycle_display_and_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(format!("{}", Cycle(42)), "42");
    }

    #[test]
    fn cycle_ordering() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle::MAX.max(Cycle(5)), Cycle::MAX);
    }
}

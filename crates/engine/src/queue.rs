//! A deterministic time-ordered event queue.
//!
//! Events scheduled for the same cycle are delivered in the order they were
//! scheduled (FIFO), which keeps multi-CPU simulations fully deterministic.

use crate::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // cycle, the first-scheduled) event surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of events keyed by [`Cycle`], FIFO within a cycle.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::{Cycle, EventQueue};
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(5), "b");
/// q.schedule(Cycle(3), "a");
/// q.schedule(Cycle(5), "c");
/// assert_eq!(q.pop_due(Cycle(4)), Some("a"));
/// assert_eq!(q.pop_due(Cycle(4)), None);
/// assert_eq!(q.pop_due(Cycle(5)), Some("b"));
/// assert_eq!(q.pop_due(Cycle(5)), Some("c"));
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at cycle `at`.
    pub fn schedule(&mut self, at: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pops the next event due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            Some(self.heap.pop().expect("peeked entry exists").payload)
        } else {
            None
        }
    }

    /// The cycle of the earliest pending event.
    pub fn next_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_cycle() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), 1);
        q.schedule(Cycle(2), 2);
        q.schedule(Cycle(7), 3);
        assert_eq!(q.next_at(), Some(Cycle(2)));
        assert_eq!(q.pop_due(Cycle(100)), Some(2));
        assert_eq!(q.pop_due(Cycle(100)), Some(3));
        assert_eq!(q.pop_due(Cycle(100)), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_within_a_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(1), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_due(Cycle(1)), Some(i));
        }
    }

    #[test]
    fn nothing_due_before_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), ());
        assert_eq!(q.pop_due(Cycle(4)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(Cycle(5)), Some(()));
    }
}

//! Append-only resume journal for batch sweeps.
//!
//! A sweep driver (matrix bench, figure runner, replay driver) journals
//! each completed row as a CRC-framed record keyed by `(config digest,
//! workload digest)`. After a crash — including `kill -9` mid-write —
//! reopening the same path recovers every fully written record, the
//! driver skips completed keys, and the final artifact comes out
//! byte-identical to an uninterrupted run.
//!
//! Crash-consistency argument: the file is opened `O_APPEND` and every
//! record is a single `write_all` of one contiguous frame, so concurrent
//! writers interleave at frame granularity and a killed writer leaves at
//! most one torn frame — at the tail. The reader walks frames strictly
//! (length, then checksum over key+payload) and stops at the first frame
//! that is short or fails its checksum; everything before it is intact
//! by construction. No `fsync` is needed for the kill-and-resume story:
//! the data survives in the page cache across process death, and a
//! machine-level crash merely loses rows, which resume recomputes.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! len: u32       # bytes after the checksum = 16 (key) + payload len
//! crc: u64       # fnv1a64 over the key bytes ++ payload bytes
//! config: u64    # JournalKey.config
//! workload: u64  # JournalKey.workload
//! payload        # caller-defined bytes (a JSON line, a snapshot, ...)
//! ```
//!
//! Duplicate keys are legal (a retried row re-journals); the last frame
//! wins, matching "latest completion is authoritative".

use crate::hash::FastMap;
use std::fs::OpenOptions;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Environment knob: path of the resume journal. When set, sweep
/// drivers journal completed rows there and skip keys already present.
pub const ENV_RESUME: &str = "CMPSIM_RESUME";

/// File magic for journal files (version 1).
pub const JOURNAL_MAGIC: [u8; 8] = *b"CMPJRNL1";

/// FNV-1a 64-bit over `bytes` — the frame checksum. Same function as the
/// trace codec's chunk checksum; duplicated here because the engine sits
/// below the trace crate in the dependency order.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identity of one sweep row: a digest of the machine configuration and
/// a digest of the workload. What exactly each digest covers is the
/// caller's contract; the journal only requires that equal keys mean
/// "this row's artifact is interchangeable".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JournalKey {
    /// Digest of the machine/run configuration.
    pub config: u64,
    /// Digest of the workload (name, scale, input).
    pub workload: u64,
}

impl JournalKey {
    /// Builds a key the way every sweep driver does: the config digest is
    /// FNV-1a over `"{namespace}|{config}"` — the namespace versions the
    /// row format, so two drivers can never collide even when their
    /// config strings happen to match — and the workload digest is FNV-1a
    /// over the workload string alone.
    pub fn digest(namespace: &str, config: &str, workload: &str) -> JournalKey {
        JournalKey {
            config: fnv1a64(format!("{namespace}|{config}").as_bytes()),
            workload: fnv1a64(workload.as_bytes()),
        }
    }
}

/// An append-only, crash-tolerant results journal.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    rows: FastMap<(u64, u64), Vec<u8>>,
    recovered: usize,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` and recovers
    /// every intact frame. A torn or corrupt tail — the signature of a
    /// killed writer — is truncated away so this generation's appends
    /// land on a clean frame boundary and stay recoverable; rows lost to
    /// the tear are simply recomputed.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut rows: FastMap<(u64, u64), Vec<u8>> = FastMap::default();
        if bytes.is_empty() {
            file.write_all(&JOURNAL_MAGIC)?;
            file.flush()?;
        } else {
            if bytes.len() < JOURNAL_MAGIC.len() || bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: not a cmpsim resume journal", path.display()),
                ));
            }
            let mut pos = JOURNAL_MAGIC.len();
            while bytes.len() - pos >= 4 + 8 + 16 {
                let len =
                    u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                let crc = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
                let body_at = pos + 12;
                if len < 16 || bytes.len() - body_at < len {
                    break; // torn tail: length field or body incomplete
                }
                let body = &bytes[body_at..body_at + len];
                if fnv1a64(body) != crc {
                    break; // torn tail: frame only partially written
                }
                let config = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
                let workload = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
                rows.insert((config, workload), body[16..].to_vec());
                pos = body_at + len;
            }
            if pos < bytes.len() {
                file.set_len(pos as u64)?;
            }
        }
        let recovered = rows.len();
        Ok(Journal {
            file,
            path,
            rows,
            recovered,
        })
    }

    /// Opens a journal iff `CMPSIM_RESUME` is set; `None` otherwise.
    pub fn from_env() -> io::Result<Option<Journal>> {
        match std::env::var(ENV_RESUME) {
            Ok(path) if !path.trim().is_empty() => Journal::open(path.trim()).map(Some),
            _ => Ok(None),
        }
    }

    /// The payload journaled for `key`, if any.
    pub fn get(&self, key: JournalKey) -> Option<&[u8]> {
        self.rows
            .get(&(key.config, key.workload))
            .map(Vec::as_slice)
    }

    /// Whether `key` has a journaled payload.
    pub fn contains(&self, key: JournalKey) -> bool {
        self.rows.contains_key(&(key.config, key.workload))
    }

    /// Number of distinct keys currently recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the journal holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows recovered from disk when the journal was opened (before any
    /// `put` in this process) — the "resumed N rows" number.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed row: a single `O_APPEND` write of the whole
    /// frame, flushed, then recorded in memory (last write wins).
    pub fn put(&mut self, key: JournalKey, payload: &[u8]) -> io::Result<()> {
        let len = 16 + payload.len();
        assert!(len <= u32::MAX as usize, "journal payload too large");
        let mut frame = Vec::with_capacity(12 + len);
        frame.extend_from_slice(&(len as u32).to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]); // checksum backfilled below
        frame.extend_from_slice(&key.config.to_le_bytes());
        frame.extend_from_slice(&key.workload.to_le_bytes());
        frame.extend_from_slice(payload);
        let crc = fnv1a64(&frame[12..]);
        frame[4..12].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.rows
            .insert((key.config, key.workload), payload.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cmpsim-journal-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn fnv1a64_known_vectors() {
        // Canonical FNV-1a test vectors (same as the trace codec's).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn put_get_and_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let k1 = JournalKey {
            config: 1,
            workload: 2,
        };
        let k2 = JournalKey {
            config: 3,
            workload: 4,
        };
        {
            let mut j = Journal::open(&path).expect("open");
            assert!(j.is_empty());
            assert_eq!(j.recovered(), 0);
            j.put(k1, b"row one").expect("put");
            j.put(k2, b"row two").expect("put");
            j.put(k1, b"row one v2").expect("put"); // last write wins
            assert_eq!(j.get(k1), Some(&b"row one v2"[..]));
            assert_eq!(j.len(), 2);
        }
        let j = Journal::open(&path).expect("reopen");
        assert_eq!(j.recovered(), 2);
        assert_eq!(j.get(k1), Some(&b"row one v2"[..]));
        assert_eq!(j.get(k2), Some(&b"row two"[..]));
        assert!(!j.contains(JournalKey {
            config: 9,
            workload: 9
        }));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_ignored_and_appendable() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let k1 = JournalKey {
            config: 10,
            workload: 20,
        };
        let k2 = JournalKey {
            config: 30,
            workload: 40,
        };
        {
            let mut j = Journal::open(&path).expect("open");
            j.put(k1, b"intact").expect("put");
            j.put(k2, b"to be torn").expect("put");
        }
        // Tear the final frame: drop its last 3 bytes (a killed writer).
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        {
            let mut j = Journal::open(&path).expect("reopen torn");
            assert_eq!(j.recovered(), 1, "only the intact frame survives");
            assert_eq!(j.get(k1), Some(&b"intact"[..]));
            assert!(!j.contains(k2));
            j.put(k2, b"recomputed").expect("re-put");
        }
        // The torn bytes were truncated on open, so the recomputed row
        // survives a further reopen generation.
        let j = Journal::open(&path).expect("third open");
        assert_eq!(j.recovered(), 2);
        assert_eq!(j.get(k2), Some(&b"recomputed"[..]));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn corrupt_checksum_stops_recovery() {
        let path = temp_path("crc");
        let _ = std::fs::remove_file(&path);
        let k = JournalKey {
            config: 7,
            workload: 8,
        };
        {
            let mut j = Journal::open(&path).expect("open");
            j.put(k, b"payload").expect("put");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        let flip = bytes.len() - 1;
        bytes[flip] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt");
        let j = Journal::open(&path).expect("reopen");
        assert!(j.is_empty(), "corrupt frame must not be resurrected");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_foreign_files() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"not a journal at all").expect("write");
        let err = Journal::open(&path).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).expect("cleanup");
    }
}

//! Statistics primitives used for the paper's tables and figures.
//!
//! The reproduction reports two families of numbers:
//! execution-time breakdowns (Figures 4–10), where every CPU cycle is
//! attributed to exactly one category, and cache miss-rate breakdowns
//! (replacement vs. invalidation misses). [`Counter`] and [`Histogram`] are
//! the building blocks for both.

use std::fmt;

/// A named monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::Counter;
/// let mut c = Counter::new("l1d.miss");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter labelled `name`.
    pub fn new(name: &'static str) -> Counter {
        Counter { name, value: 0 }
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one event.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Counter label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets the counter to zero (used when entering the region of
    /// interest, mirroring the paper's checkpoint methodology).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Ratio helper that renders `0/0` as zero instead of NaN.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::stats::ratio;
/// assert_eq!(ratio(1, 4), 0.25);
/// assert_eq!(ratio(0, 0), 0.0);
/// ```
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A fixed-bucket histogram of `u64` samples (e.g. memory latencies).
///
/// Buckets are `[bounds[0], bounds[1])`, …, plus an implicit overflow bucket.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::Histogram;
/// let mut h = Histogram::new("lat", &[1, 4, 16, 64]);
/// h.record(0);
/// h.record(5);
/// h.record(500);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.mean(), (0.0 + 5.0 + 500.0) / 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    name: &'static str,
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket lower `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(name: &'static str, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            name,
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. Runs once per memory access: the dominant
    /// first bucket (L1 hits) is one compare, everything else a
    /// branchless count of bounds `<= sample` (equal to the index of the
    /// first greater bound, since bounds ascend) rather than an
    /// early-exit scan whose cost varies with the latency mix.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        let idx = if sample < self.bounds[0] {
            0
        } else {
            let mut idx = 1usize;
            for &b in &self.bounds[1..] {
                idx += usize::from(sample >= b);
            }
            idx
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += sample;
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        ratio(self.sum, self.total)
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Histogram label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Raw accumulator state `(bounds, counts, total, sum, max)`, for
    /// serializing a histogram into a resume snapshot.
    pub fn raw_parts(&self) -> (&[u64], &[u64], u64, u64, u64) {
        (&self.bounds, &self.counts, self.total, self.sum, self.max)
    }

    /// Restores accumulator state captured by [`Histogram::raw_parts`]
    /// into a histogram built with the same bounds.
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not match this histogram's bucket count
    /// (bounds drifted between snapshot and restore).
    pub fn restore(&mut self, counts: &[u64], total: u64, sum: u64, max: u64) {
        assert_eq!(
            counts.len(),
            self.counts.len(),
            "histogram '{}': snapshot has {} buckets, layout has {}",
            self.name,
            counts.len(),
            self.counts.len()
        );
        self.counts.copy_from_slice(counts);
        self.total = total;
        self.sum = sum;
        self.max = max;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.2} max={}",
            self.name,
            self.total,
            self.mean(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(1, 2), 0.5);
    }

    #[test]
    fn histogram_buckets_samples() {
        let mut h = Histogram::new("h", &[10, 100]);
        h.record(9); // bucket 0
        h.record(10); // bucket 1
        h.record(99); // bucket 1
        h.record(100); // overflow
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max(), 100);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.counts(), &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new("h", &[10, 10]);
    }

    #[test]
    fn raw_parts_round_trips_through_restore() {
        let mut h = Histogram::new("h", &[10, 100]);
        h.record(9);
        h.record(55);
        h.record(400);
        let (bounds, counts, total, sum, max) = h.raw_parts();
        assert_eq!(bounds, &[10, 100]);
        let (counts, total, sum, max) = (counts.to_vec(), total, sum, max);
        let mut fresh = Histogram::new("h", &[10, 100]);
        fresh.restore(&counts, total, sum, max);
        assert_eq!(fresh.counts(), h.counts());
        assert_eq!(fresh.total(), 3);
        assert_eq!(fresh.mean(), h.mean());
        assert_eq!(fresh.max(), 400);
    }

    #[test]
    #[should_panic(expected = "buckets")]
    fn restore_rejects_bucket_drift() {
        let mut h = Histogram::new("h", &[10, 100]);
        h.restore(&[1, 2], 3, 4, 5);
    }
}

//! Greedy minimization of a failing choice buffer.
//!
//! The shrinker knows nothing about the values a property generated; it
//! edits the raw `Vec<u64>` choice buffer recorded by a live
//! [`Source`](super::Source) run and replays the property after every
//! edit. Three kinds of edit, each strictly simplifying:
//!
//! 1. **Delete a span** — shortens the buffer (drops vector elements,
//!    trailing operations, whole sub-structures).
//! 2. **Zero a span** — turns values into each generator's simplest
//!    output (first enum variant, range minimum, `false`, stop-flag).
//! 3. **Halve / decrement one value** — binary-searches an individual
//!    choice down toward 0 while the failure persists.
//!
//! Passes repeat greedily — any accepted edit restarts the cycle — until
//! a full cycle makes no progress or the attempt budget is exhausted.
//! The result is the shortest, pointwise-smallest buffer found that still
//! fails the property.

/// Outcome of one shrink run.
pub struct Shrunk {
    /// The minimized failing choice buffer.
    pub choices: Vec<u64>,
    /// Panic message produced by the minimized buffer.
    pub message: String,
    /// Property executions spent shrinking.
    pub attempts: u32,
}

/// Minimizes `choices` (which must currently fail) against `test`.
///
/// `test` replays the property on a candidate buffer and returns
/// `Some(panic message)` if the property still fails, `None` if it now
/// passes. At most `budget` candidate executions are spent.
pub fn minimize(
    test: impl Fn(&[u64]) -> Option<String>,
    choices: Vec<u64>,
    message: String,
    budget: u32,
) -> Shrunk {
    let mut best = choices;
    let mut msg = message;
    let mut attempts = 0u32;

    // Runs one candidate; returns true (and adopts it) if it still fails.
    let try_candidate =
        |cand: Vec<u64>, best: &mut Vec<u64>, msg: &mut String, attempts: &mut u32| -> bool {
            if *attempts >= budget {
                return false;
            }
            *attempts += 1;
            if let Some(m) = test(&cand) {
                *best = cand;
                *msg = m;
                true
            } else {
                false
            }
        };

    loop {
        let mut improved = false;

        // Pass 1: delete spans, largest first.
        let mut size = best.len().max(1).next_power_of_two();
        while size >= 1 {
            let mut start = 0;
            while start < best.len() {
                if attempts >= budget {
                    break;
                }
                let end = (start + size).min(best.len());
                let mut cand = best.clone();
                cand.drain(start..end);
                if try_candidate(cand, &mut best, &mut msg, &mut attempts) {
                    improved = true;
                    // Buffer shrank under us; retry the same start index.
                } else {
                    start += size;
                }
            }
            size /= 2;
        }

        // Pass 2: zero spans, largest first.
        let mut size = best.len().max(1).next_power_of_two();
        while size >= 1 {
            for start in 0..best.len() {
                if attempts >= budget {
                    break;
                }
                let end = (start + size).min(best.len());
                if best[start..end].iter().all(|&c| c == 0) {
                    continue;
                }
                let mut cand = best.clone();
                cand[start..end].iter_mut().for_each(|c| *c = 0);
                if try_candidate(cand, &mut best, &mut msg, &mut attempts) {
                    improved = true;
                }
            }
            size /= 2;
        }

        // Pass 3: minimize individual values toward 0.
        for i in 0..best.len() {
            while best[i] > 0 && attempts < budget {
                let v = best[i];
                // Try the big step first, then creep.
                let mut cand = best.clone();
                cand[i] = v / 2;
                if try_candidate(cand, &mut best, &mut msg, &mut attempts) {
                    improved = true;
                    continue;
                }
                let mut cand = best.clone();
                cand[i] = v - 1;
                if try_candidate(cand, &mut best, &mut msg, &mut attempts) {
                    improved = true;
                    continue;
                }
                break;
            }
        }

        if !improved || attempts >= budget {
            break;
        }
    }

    Shrunk {
        choices: best,
        message: msg,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// "Fails" whenever any choice is >= 10; minimal failing buffer is a
    /// single value 10.
    fn has_big(cand: &[u64]) -> Option<String> {
        cand.iter()
            .any(|&c| c >= 10)
            .then(|| "big value present".to_string())
    }

    #[test]
    fn minimizes_to_single_boundary_value() {
        let start = vec![3, 99, 0, 57, 12, 4];
        let out = minimize(has_big, start, "seed msg".into(), 10_000);
        assert_eq!(out.choices, vec![10]);
    }

    #[test]
    fn respects_budget() {
        let start = vec![99; 64];
        let out = minimize(has_big, start, "m".into(), 3);
        assert!(out.attempts <= 3);
        // Whatever remains must still fail.
        assert!(has_big(&out.choices).is_some());
    }

    #[test]
    fn already_minimal_is_stable() {
        let out = minimize(has_big, vec![10], "m".into(), 1000);
        assert_eq!(out.choices, vec![10]);
    }
}

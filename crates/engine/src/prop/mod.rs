//! A small deterministic property-testing framework built on
//! [`Rng64`](crate::Rng64).
//!
//! The simulator's verification stack must build and run fully offline,
//! so instead of an external property-testing crate the workspace carries
//! this ~500-line framework. A property is a closure that draws arbitrary
//! inputs from a [`Source`] and asserts with the standard `assert!`
//! macros; [`check`] runs it over many seeded cases, and on failure
//! greedily shrinks the recorded choice stream to a minimal
//! counterexample (see [`shrink`]) before panicking with the reproducing
//! seed.
//!
//! ```
//! use cmpsim_engine::prop;
//!
//! prop::check("reverse_is_involutive", |src| {
//!     let v = src.vec(1..50, |s| s.u64(0..1000));
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     assert_eq!(v, w);
//! });
//! ```
//!
//! Reproduction: every failure report prints a `CMPSIM_PROP_SEED=...`
//! line; exporting that variable makes case 0 of the next run regenerate
//! the failing inputs exactly. `CMPSIM_PROP_CASES=N` overrides the case
//! count of every suite (e.g. `CMPSIM_PROP_CASES=10000` for a soak run).

pub mod shrink;
mod source;

pub use source::Source;

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 256;
/// Default run seed (changed only by `CMPSIM_PROP_SEED`).
pub const DEFAULT_SEED: u64 = 0x5EED_CA5E_2026_0001;
/// Default budget of property executions spent shrinking a failure.
pub const DEFAULT_SHRINK_ATTEMPTS: u32 = 4096;

/// Environment variable overriding the run seed.
pub const ENV_SEED: &str = "CMPSIM_PROP_SEED";
/// Environment variable overriding the per-property case count.
pub const ENV_CASES: &str = "CMPSIM_PROP_CASES";

/// Tuning knobs for one property run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Run seed; case `i` derives its own seed from it (case 0 uses it
    /// verbatim, which is what makes `CMPSIM_PROP_SEED` reproduction
    /// work).
    pub seed: u64,
    /// Max property executions spent shrinking a failure.
    pub max_shrink_attempts: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_attempts: DEFAULT_SHRINK_ATTEMPTS,
        }
    }
}

impl Config {
    /// Applies `CMPSIM_PROP_SEED` / `CMPSIM_PROP_CASES` on top of `self`.
    #[must_use]
    pub fn with_env(self) -> Config {
        self.with_lookup(|key| std::env::var(key).ok())
    }

    /// Like [`Config::with_env`] but reading from an arbitrary lookup —
    /// this is the testable core of the env handling. Unparsable values
    /// are ignored. Seeds accept decimal or `0x` hex.
    #[must_use]
    pub fn with_lookup(mut self, lookup: impl Fn(&str) -> Option<String>) -> Config {
        if let Some(seed) = lookup(ENV_SEED).as_deref().and_then(parse_u64) {
            self.seed = seed;
        }
        if let Some(cases) = lookup(ENV_CASES).and_then(|v| v.trim().parse().ok()) {
            self.cases = cases;
        }
        self
    }

    /// The default configuration with env overrides applied.
    pub fn from_env() -> Config {
        Config::default().with_env()
    }

    /// Same, but with a suite-specific default case count (still
    /// overridden by `CMPSIM_PROP_CASES` when set). Use for expensive
    /// properties that cannot afford the global default.
    pub fn from_env_or_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
        .with_env()
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// A property failure: which case failed, how to reproduce it, and the
/// minimized counterexample's choice buffer.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Property name as passed to [`check`].
    pub name: String,
    /// Index of the failing case.
    pub case: u32,
    /// Seed that regenerates the original (unshrunk) failing inputs.
    pub seed: u64,
    /// Minimized failing choice buffer; replay with [`Source::replay`].
    pub choices: Vec<u64>,
    /// Panic message of the minimized counterexample.
    pub message: String,
    /// Property executions spent shrinking.
    pub shrink_attempts: u32,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "property '{}' failed at case {}", self.name, self.case)?;
        writeln!(
            f,
            "  reproduce: {ENV_SEED}={:#x} cargo test (regenerates the unshrunk case as case 0)",
            self.seed
        )?;
        writeln!(
            f,
            "  minimal counterexample after {} shrink runs, choices {:?}",
            self.shrink_attempts, self.choices
        )?;
        write!(f, "  failure: {}", self.message)
    }
}

/// Seed for case `i` of a run seeded with `run_seed`. Case 0 uses the run
/// seed itself so a reported seed reproduces directly.
fn case_seed(run_seed: u64, i: u32) -> u64 {
    if i == 0 {
        run_seed
    } else {
        // One splitmix64 scramble keeps successive cases uncorrelated.
        let mut z = run_seed ^ (u64::from(i)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

thread_local! {
    /// True while this thread is intentionally panicking inside
    /// `catch_unwind` (case execution and shrink replays); the hook stays
    /// quiet so a shrink session doesn't print hundreds of backtraces.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Runs `prop` on one choice source, converting a panic into its message.
fn run_case(prop: &impl Fn(&mut Source), src: &mut Source) -> Option<String> {
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(src)));
    QUIET.with(|q| q.set(false));
    match result {
        Ok(()) => None,
        Err(payload) => Some(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `prop` for `cfg.cases` cases and returns the shrunk failure, if
/// any, instead of panicking. The building block for [`check`]; test code
/// that wants to inspect counterexamples calls this directly.
pub fn check_result(cfg: &Config, name: &str, prop: impl Fn(&mut Source)) -> Result<(), Failure> {
    for i in 0..cfg.cases {
        let seed = case_seed(cfg.seed, i);
        let mut src = Source::live(seed);
        if let Some(message) = run_case(&prop, &mut src) {
            let shrunk = shrink::minimize(
                |cand| {
                    let mut replay = Source::replay(cand.to_vec());
                    run_case(&prop, &mut replay)
                },
                src.into_choices(),
                message,
                cfg.max_shrink_attempts,
            );
            return Err(Failure {
                name: name.to_string(),
                case: i,
                seed,
                choices: shrunk.choices,
                message: shrunk.message,
                shrink_attempts: shrunk.attempts,
            });
        }
    }
    Ok(())
}

/// Runs `prop` under `cfg`, panicking with a full report (reproducing
/// seed, minimal counterexample, original assertion message) on failure.
pub fn check_with(cfg: &Config, name: &str, prop: impl Fn(&mut Source)) {
    if let Err(failure) = check_result(cfg, name, prop) {
        panic!("{failure}");
    }
}

/// Runs `prop` with the default configuration plus env overrides — the
/// standard entry point for test suites.
pub fn check(name: &str, prop: impl Fn(&mut Source)) {
    check_with(&Config::from_env(), name, prop);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_is_ok() {
        let cfg = Config {
            cases: 50,
            ..Config::default()
        };
        assert!(check_result(&cfg, "tautology", |src| {
            let x = src.u64(0..100);
            assert!(x < 100);
        })
        .is_ok());
    }

    #[test]
    fn case_zero_uses_run_seed_verbatim() {
        assert_eq!(case_seed(1234, 0), 1234);
        assert_ne!(case_seed(1234, 1), case_seed(1234, 2));
    }

    #[test]
    fn parse_u64_accepts_hex_and_decimal() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64(" 0x2A "), Some(42));
        assert_eq!(parse_u64("0Xff"), Some(255));
        assert_eq!(parse_u64("nope"), None);
    }

    #[test]
    fn display_includes_reproduction_line() {
        let f = Failure {
            name: "p".into(),
            case: 3,
            seed: 0xABC,
            choices: vec![1, 2],
            message: "boom".into(),
            shrink_attempts: 7,
        };
        let s = f.to_string();
        assert!(s.contains("CMPSIM_PROP_SEED=0xabc"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }
}

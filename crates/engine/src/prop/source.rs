//! The choice stream a property draws its random inputs from.
//!
//! A [`Source`] has two modes. In *live* mode it draws fresh values from a
//! seeded [`Rng64`] and records every draw into a flat `Vec<u64>` choice
//! buffer. In *replay* mode it ignores the RNG and answers draws from a
//! previously recorded (possibly shrunken) buffer, returning 0 once the
//! buffer is exhausted.
//!
//! Recording at the level of raw choices — rather than typed values — is
//! what makes shrinking generic: the shrinker never needs to know *what*
//! was generated, it just edits the buffer (delete spans, zero spans,
//! halve values) and replays the property. Every draw maps an arbitrary
//! `u64` onto a valid value (`raw % span`), so any edited buffer is still
//! a valid input, and because smaller raw choices map to "simpler" values
//! (shorter vectors, values nearer a range's low end, earlier variants),
//! minimizing the buffer minimizes the counterexample.

use crate::Rng64;
use std::ops::Range;

enum Mode {
    /// Drawing fresh values and recording them.
    Live(Rng64),
    /// Replaying a recorded buffer; exhausted positions read as 0.
    Replay,
}

/// A recorded or replayed stream of random choices; the single argument
/// every property receives.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::prop::Source;
/// let mut a = Source::live(7);
/// let x = a.u64(0..100);
/// assert!(x < 100);
/// // Replaying the recorded choices reproduces the same value.
/// let mut b = Source::replay(a.into_choices());
/// assert_eq!(b.u64(0..100), x);
/// ```
pub struct Source {
    mode: Mode,
    choices: Vec<u64>,
    pos: usize,
}

impl Source {
    /// A live source seeded from `seed`; draws are recorded for replay.
    pub fn live(seed: u64) -> Source {
        Source {
            mode: Mode::Live(Rng64::new(seed)),
            choices: Vec::new(),
            pos: 0,
        }
    }

    /// A replay source that answers draws from `choices`.
    pub fn replay(choices: Vec<u64>) -> Source {
        Source {
            mode: Mode::Replay,
            choices,
            pos: 0,
        }
    }

    /// The recorded choice buffer (live) or the replay buffer (replay).
    pub fn into_choices(self) -> Vec<u64> {
        self.choices
    }

    /// Raw draw in `[0, span)`. Live: uniform from the RNG, recorded.
    /// Replay: next buffered value reduced `% span` (0 when exhausted).
    fn draw(&mut self, span: u64) -> u64 {
        assert!(span > 0, "draw span must be positive");
        match &mut self.mode {
            Mode::Live(rng) => {
                let raw = rng.range(span);
                self.choices.push(raw);
                raw
            }
            Mode::Replay => {
                let raw = self.choices.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                raw % span
            }
        }
    }

    /// Raw full-width 64-bit draw.
    fn draw_full(&mut self) -> u64 {
        match &mut self.mode {
            Mode::Live(rng) => {
                let raw = rng.next_u64();
                self.choices.push(raw);
                raw
            }
            Mode::Replay => {
                let raw = self.choices.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                raw
            }
        }
    }

    /// Records a value the generator decided itself (live mode only);
    /// used for the vector continue-flags so they land in the buffer and
    /// stay editable by the shrinker.
    fn emit(&mut self, value: u64) {
        debug_assert!(matches!(self.mode, Mode::Live(_)));
        self.choices.push(value);
    }

    // ---- typed draws ----------------------------------------------------

    /// Uniform `u64` in `range` (half-open); shrinks toward `range.start`.
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.draw(range.end - range.start)
    }

    /// Any `u64`; shrinks toward 0.
    pub fn u64_any(&mut self) -> u64 {
        self.draw_full()
    }

    /// Uniform `u32` in `range`; shrinks toward `range.start`.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.u64(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// Any `u32`; shrinks toward 0.
    pub fn u32_any(&mut self) -> u32 {
        self.draw(1 << 32) as u32
    }

    /// Any `u16`; shrinks toward 0.
    pub fn u16_any(&mut self) -> u16 {
        self.draw(1 << 16) as u16
    }

    /// Uniform `u8` in `range`; shrinks toward `range.start`.
    pub fn u8(&mut self, range: Range<u8>) -> u8 {
        self.u64(u64::from(range.start)..u64::from(range.end)) as u8
    }

    /// Uniform `usize` in `range`; shrinks toward `range.start`.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `i64` in `range` (half-open); shrinks toward `range.start`.
    pub fn i64(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.draw(span) as i64)
    }

    /// Any `i16`, zigzag-coded so it shrinks toward 0 (0, -1, 1, -2, ...).
    pub fn i16_any(&mut self) -> i16 {
        let k = self.draw(1 << 16);
        if k & 1 == 0 {
            (k >> 1) as i16
        } else {
            -(((k >> 1) + 1) as i64) as i16
        }
    }

    /// Any `i32`, zigzag-coded so it shrinks toward 0.
    pub fn i32_any(&mut self) -> i32 {
        let k = self.draw(1 << 32);
        if k & 1 == 0 {
            (k >> 1) as i32
        } else {
            -(((k >> 1) + 1) as i64) as i32
        }
    }

    /// Uniform `f64` in `range` (53-bit resolution); shrinks toward
    /// `range.start`.
    pub fn f64(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        let unit = self.draw(1 << 53) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }

    /// A boolean; shrinks toward `false`.
    pub fn bool(&mut self) -> bool {
        self.draw(2) == 1
    }

    /// Uniform index in `[0, n)`; shrinks toward 0. The variant-selection
    /// primitive: put the simplest alternative first.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot choose among zero alternatives");
        self.draw(n as u64) as usize
    }

    /// One of `items`, cloned; shrinks toward the first.
    pub fn choice<T: Clone>(&mut self, items: &[T]) -> T {
        items[self.index(items.len())].clone()
    }

    /// A vector with length in `len` (half-open, like proptest's
    /// `vec(strategy, a..b)`) whose elements come from `element`.
    ///
    /// Internally each element beyond the minimum length is preceded by a
    /// recorded continue-flag (nonzero = keep going), so the shrinker can
    /// truncate the vector by zeroing a flag or delete one element by
    /// removing its flag+draws span. The length itself is chosen uniformly
    /// in live mode.
    pub fn vec<T>(
        &mut self,
        len: Range<usize>,
        mut element: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        assert!(len.start < len.end, "empty length range");
        let (min, max) = (len.start, len.end - 1);
        let target = match &mut self.mode {
            // The target length is drawn directly from the RNG without
            // being recorded: only the per-element flags below go into the
            // buffer, so replay depends on them alone.
            Mode::Live(rng) => min + rng.range((max - min + 1) as u64) as usize,
            Mode::Replay => usize::MAX,
        };
        let mut v = Vec::new();
        loop {
            if v.len() >= max {
                break;
            }
            if v.len() >= min {
                let cont = match self.mode {
                    Mode::Live(_) => {
                        let c = u64::from(v.len() < target);
                        self.emit(c);
                        c
                    }
                    Mode::Replay => self.draw_full(),
                };
                if cont == 0 {
                    break;
                }
            }
            v.push(element(self));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_replay_agree() {
        let mut live = Source::live(99);
        let a = (
            live.u64(5..50),
            live.i16_any(),
            live.bool(),
            live.f64(0.0..2.0),
            live.vec(1..10, |s| s.u32(0..7)),
        );
        let mut rep = Source::replay(live.into_choices());
        let b = (
            rep.u64(5..50),
            rep.i16_any(),
            rep.bool(),
            rep.f64(0.0..2.0),
            rep.vec(1..10, |s| s.u32(0..7)),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_replay_yields_minimal_values() {
        let mut s = Source::replay(Vec::new());
        assert_eq!(s.u64(3..30), 3);
        assert_eq!(s.i16_any(), 0);
        assert!(!s.bool());
        assert_eq!(s.vec(2..9, |s| s.u8(0..10)), vec![0, 0]);
    }

    #[test]
    fn vec_respects_length_range() {
        let mut s = Source::live(1234);
        for _ in 0..200 {
            let v = s.vec(1..8, |s| s.u64(0..10));
            assert!((1..8).contains(&v.len()), "len {} out of range", v.len());
        }
    }

    #[test]
    fn zigzag_covers_extremes() {
        // k = 65534 -> 32767, k = 65535 -> -32768.
        let mut s = Source::replay(vec![65534, 65535]);
        assert_eq!(s.i16_any(), i16::MAX);
        assert_eq!(s.i16_any(), i16::MIN);
    }
}

//! Supervised job fan-out: panic isolation, wall-clock deadlines and
//! deterministic retry on top of the [`pool`] primitives.
//!
//! The plain pool propagates the first worker panic, which is the right
//! default for unit tests but fatal for long batch sweeps: one poisoned
//! configuration out of thousands throws away every other result. This
//! module wraps each job in `catch_unwind`, classifies what happened as a
//! typed [`JobOutcome`], retries failed attempts a bounded number of
//! times (seeded, jittered backoff — no external dependencies), and
//! collects jobs that failed every attempt into an index-ordered
//! quarantine list instead of aborting the sweep.
//!
//! Two invariants the tests pin:
//!
//! * **Byte-identity when nothing fails** — the merged output of a
//!   supervised run with zero failures is exactly the output of the
//!   unsupervised pool at any job count (index-ordered, same values).
//! * **Determinism of the supervision machinery** — retry counts and
//!   backoff delays derive from [`Rng64`] seeded by `(spec.seed,
//!   job_id, attempt)`, never from wall-clock entropy. (Deadline
//!   *classification* is inherently wall-clock; deadlines are off by
//!   default and meant for hung-job detection in unattended sweeps.)
//!
//! A job that exceeds its deadline cannot be preempted — scoped threads
//! forbid abandoning a running closure — so the deadline thread flags it,
//! the attempt runs to completion, and the completed result is discarded
//! and the attempt classified [`JobOutcome::TimedOut`]. The supervisor
//! therefore never leaks threads and never tears shared state.

use crate::pool;
use crate::rng::Rng64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment knob: how many times a failed (panicked or timed-out) job
/// is retried before it is quarantined. Unset means 0: one attempt.
pub const ENV_RETRY: &str = "CMPSIM_RETRY";

/// Environment knob: per-job wall-clock deadline in milliseconds. Unset
/// means no deadline.
pub const ENV_JOB_DEADLINE_MS: &str = "CMPSIM_JOB_DEADLINE_MS";

/// Supervision policy for one fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseSpec {
    /// Retries after the first attempt (total attempts = `retries + 1`).
    pub retries: u32,
    /// Per-job wall-clock deadline in milliseconds; `None` disables the
    /// deadline thread entirely.
    pub deadline_ms: Option<u64>,
    /// Base backoff before a retry, in milliseconds. Attempt `k` sleeps
    /// `backoff_ms << k` plus a jitter in `[0, backoff_ms)`, capped at
    /// one second.
    pub backoff_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl SuperviseSpec {
    /// No retries, no deadline — supervision reduces to panic isolation.
    pub fn new() -> SuperviseSpec {
        SuperviseSpec {
            retries: 0,
            deadline_ms: None,
            backoff_ms: 5,
            seed: 0x5eed_0fc0_ffee,
        }
    }

    /// Policy from the environment: `CMPSIM_RETRY` retries and a
    /// `CMPSIM_JOB_DEADLINE_MS` deadline (both optional).
    pub fn from_env() -> SuperviseSpec {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        SuperviseSpec {
            retries: parse(ENV_RETRY).map_or(0, |v| v.min(u64::from(u32::MAX)) as u32),
            deadline_ms: parse(ENV_JOB_DEADLINE_MS).filter(|&ms| ms > 0),
            ..SuperviseSpec::new()
        }
    }

    /// This policy with `retries` retries.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> SuperviseSpec {
        self.retries = retries;
        self
    }

    /// This policy with a deadline of `ms` milliseconds.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> SuperviseSpec {
        self.deadline_ms = Some(ms);
        self
    }
}

impl Default for SuperviseSpec {
    fn default() -> SuperviseSpec {
        SuperviseSpec::new()
    }
}

/// What happened to one supervised job, after all attempts.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job produced a result (possibly after retries).
    Done(T),
    /// Every attempt panicked; `payload` is the final panic message.
    Panicked {
        /// Index of the job in the fan-out.
        job_id: usize,
        /// Stringified payload of the last panic.
        payload: String,
        /// Attempts made (`retries + 1` unless the spec changed).
        attempts: u32,
    },
    /// Every attempt blew its wall-clock deadline.
    TimedOut {
        /// Index of the job in the fan-out.
        job_id: usize,
        /// Configured deadline in milliseconds.
        deadline_ms: u64,
        /// Wall-clock milliseconds the final attempt actually took.
        elapsed_ms: u64,
        /// Attempts made.
        attempts: u32,
    },
}

impl<T> JobOutcome<T> {
    /// Whether the job completed.
    pub fn is_done(&self) -> bool {
        matches!(self, JobOutcome::Done(_))
    }

    /// The result, if the job completed.
    pub fn into_done(self) -> Option<T> {
        match self {
            JobOutcome::Done(v) => Some(v),
            _ => None,
        }
    }

    /// The quarantine record for a failed job (`None` when done).
    pub fn quarantine(&self) -> Option<Quarantine> {
        match self {
            JobOutcome::Done(_) => None,
            JobOutcome::Panicked {
                job_id,
                payload,
                attempts,
            } => Some(Quarantine {
                job_id: *job_id,
                attempts: *attempts,
                reason: format!("panicked: {payload}"),
            }),
            JobOutcome::TimedOut {
                job_id,
                deadline_ms,
                elapsed_ms,
                attempts,
            } => Some(Quarantine {
                job_id: *job_id,
                attempts: *attempts,
                reason: format!("timed out: {elapsed_ms} ms against a {deadline_ms} ms deadline"),
            }),
        }
    }
}

/// One quarantined job: it failed every attempt and its slot in the
/// merged output is empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Index of the job in the fan-out.
    pub job_id: usize,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Human-readable failure description (panic payload or deadline
    /// report — a stalled run's `WatchdogReport` text surfaces here).
    pub reason: String,
}

impl std::fmt::Display for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} quarantined after {} attempt{}: {}",
            self.job_id,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.reason
        )
    }
}

/// Result of a supervised fan-out: one outcome per job in index order,
/// plus the quarantine list (also index-ordered).
#[derive(Debug)]
pub struct SupervisedRun<T> {
    /// One outcome per job, in job-index order.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Jobs that failed every attempt, in job-index order.
    pub quarantined: Vec<Quarantine>,
}

impl<T> SupervisedRun<T> {
    /// Whether every job completed.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Splits into per-index results (`None` for quarantined slots) and
    /// the quarantine list.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (Vec<Option<T>>, Vec<Quarantine>) {
        (
            self.outcomes
                .into_iter()
                .map(JobOutcome::into_done)
                .collect(),
            self.quarantined,
        )
    }

    /// Unwraps a clean run into its index-ordered results.
    ///
    /// # Panics
    ///
    /// Panics with the quarantine list if any job failed — callers that
    /// cannot tolerate missing rows (figure sweeps) use this to keep the
    /// old fail-fast contract while still getting retry and isolation.
    pub fn expect_clean(self, what: &str) -> Vec<T> {
        if !self.is_clean() {
            let reasons: Vec<String> = self.quarantined.iter().map(Quarantine::to_string).collect();
            panic!(
                "{what}: {} of {} jobs quarantined; {}",
                self.quarantined.len(),
                self.outcomes.len(),
                reasons.join("; ")
            );
        }
        self.outcomes
            .into_iter()
            .map(|o| o.into_done().expect("clean run has only Done outcomes"))
            .collect()
    }
}

/// Renders a panic payload (the usual `&str` / `String` shapes) for the
/// quarantine record.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt of a job under `catch_unwind`, with an optional
/// deadline thread watching a completion flag. Returns the result and
/// whether the deadline expired before completion, or the panic message.
fn run_attempt<T>(
    f: impl FnOnce() -> T,
    deadline_ms: Option<u64>,
) -> Result<(T, u64, bool), String> {
    let start = Instant::now();
    let Some(ms) = deadline_ms else {
        // No deadline: just the unwind boundary.
        return catch_unwind(AssertUnwindSafe(f))
            .map(|v| (v, start.elapsed().as_millis() as u64, false))
            .map_err(panic_message);
    };
    let deadline = Duration::from_millis(ms);
    let done = Mutex::new(false);
    let cv = Condvar::new();
    let expired = AtomicBool::new(false);
    let result = std::thread::scope(|s| {
        // Deadline thread: sleeps on the completion flag with a timeout;
        // if the flag is still unset when the deadline passes, it marks
        // the attempt expired and exits. A fast job notifies it awake
        // early, so short jobs never pay the full deadline.
        s.spawn(|| {
            let mut flag = done.lock().expect("deadline mutex");
            while !*flag {
                let elapsed = start.elapsed();
                if elapsed >= deadline {
                    expired.store(true, Ordering::Release);
                    return;
                }
                let (next, _) = cv
                    .wait_timeout(flag, deadline - elapsed)
                    .expect("deadline mutex");
                flag = next;
            }
        });
        let r = catch_unwind(AssertUnwindSafe(f));
        *done.lock().expect("deadline mutex") = true;
        cv.notify_all();
        r
    });
    match result {
        Ok(v) => Ok((
            v,
            start.elapsed().as_millis() as u64,
            expired.load(Ordering::Acquire) || start.elapsed() >= deadline,
        )),
        Err(p) => Err(panic_message(p)),
    }
}

/// Supervises one job through the retry loop.
fn supervise_job<T>(spec: &SuperviseSpec, job_id: usize, f: impl Fn() -> T) -> JobOutcome<T> {
    // Seed the jitter stream per job so the backoff schedule is a pure
    // function of (spec.seed, job_id, attempt) — reproducible whatever
    // the thread interleaving.
    let mut rng = Rng64::new(
        spec.seed ^ (job_id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6b79_2d6e_6a5c_3f21,
    );
    let mut last: Option<JobOutcome<T>> = None;
    for attempt in 0..=spec.retries {
        if attempt > 0 {
            let base = spec.backoff_ms << (attempt - 1).min(7);
            let jitter = if spec.backoff_ms > 0 {
                rng.range(spec.backoff_ms)
            } else {
                0
            };
            std::thread::sleep(Duration::from_millis((base + jitter).min(1_000)));
        }
        match run_attempt(&f, spec.deadline_ms) {
            Ok((v, _, false)) => return JobOutcome::Done(v),
            Ok((_, elapsed_ms, true)) => {
                last = Some(JobOutcome::TimedOut {
                    job_id,
                    deadline_ms: spec.deadline_ms.unwrap_or(0),
                    elapsed_ms,
                    attempts: attempt + 1,
                });
            }
            Err(payload) => {
                last = Some(JobOutcome::Panicked {
                    job_id,
                    payload,
                    attempts: attempt + 1,
                });
            }
        }
    }
    last.expect("at least one attempt ran")
}

/// Supervised [`pool::run_indexed`]: runs `f(0..n)` on up to `jobs`
/// threads under `spec`, returning typed outcomes in index order. A
/// clean run's `Done` values are byte-identical to the unsupervised
/// pool's output.
pub fn run_indexed_supervised<T, F>(
    spec: &SuperviseSpec,
    jobs: usize,
    n: usize,
    f: F,
) -> SupervisedRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let outcomes = pool::run_indexed(jobs, n, |i| supervise_job(spec, i, || f(i)));
    let quarantined = outcomes.iter().filter_map(JobOutcome::quarantine).collect();
    SupervisedRun {
        outcomes,
        quarantined,
    }
}

/// Supervised [`pool::map_jobs`]: maps `f` over `items` under `spec`,
/// outcomes in item order.
pub fn map_jobs_supervised<I, T, F>(
    spec: &SuperviseSpec,
    jobs: usize,
    items: &[I],
    f: F,
) -> SupervisedRun<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_indexed_supervised(spec, jobs, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_matches_unsupervised_pool() {
        let work = |i: usize| (i as u64).wrapping_mul(2_654_435_761) % 1013;
        let plain = pool::run_indexed(4, 32, work);
        let run = run_indexed_supervised(&SuperviseSpec::new().with_retries(2), 4, 32, work);
        assert!(run.is_clean());
        let (vals, q) = run.into_parts();
        assert!(q.is_empty());
        let vals: Vec<u64> = vals.into_iter().map(|v| v.expect("clean")).collect();
        assert_eq!(vals, plain);
    }

    #[test]
    fn panicking_job_is_quarantined_without_killing_the_sweep() {
        let run = run_indexed_supervised(&SuperviseSpec::new(), 4, 8, |i| {
            assert!(i != 3, "poisoned job {i}");
            i * 2
        });
        assert_eq!(run.quarantined.len(), 1);
        let q = &run.quarantined[0];
        assert_eq!(q.job_id, 3);
        assert_eq!(q.attempts, 1);
        assert!(q.reason.contains("poisoned job 3"), "{}", q.reason);
        let (vals, _) = run.into_parts();
        for (i, v) in vals.iter().enumerate() {
            if i == 3 {
                assert!(v.is_none());
            } else {
                assert_eq!(*v, Some(i * 2));
            }
        }
    }

    #[test]
    fn retry_recovers_a_flaky_job() {
        use std::sync::atomic::AtomicU32;
        let tries = AtomicU32::new(0);
        let run = run_indexed_supervised(&SuperviseSpec::new().with_retries(2), 1, 3, |i| {
            if i == 1 && tries.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("flaky");
            }
            i
        });
        assert!(run.is_clean(), "two retries cover two failures");
        match &run.outcomes[1] {
            JobOutcome::Done(v) => assert_eq!(*v, 1),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn expect_clean_panics_with_the_quarantine_report() {
        let r = std::panic::catch_unwind(|| {
            run_indexed_supervised(&SuperviseSpec::new(), 2, 4, |i| {
                assert!(i != 2, "bad row");
                i
            })
            .expect_clean("test sweep")
        });
        let msg = panic_message(r.expect_err("must propagate"));
        assert!(msg.contains("test sweep"), "{msg}");
        assert!(msg.contains("1 of 4 jobs quarantined"), "{msg}");
        assert!(msg.contains("bad row"), "{msg}");
    }

    #[test]
    fn deadline_classifies_a_slow_job() {
        let spec = SuperviseSpec::new().with_deadline_ms(10);
        let run = run_indexed_supervised(&spec, 2, 3, |i| {
            if i == 1 {
                std::thread::sleep(Duration::from_millis(200));
            }
            i
        });
        assert_eq!(run.quarantined.len(), 1);
        assert_eq!(run.quarantined[0].job_id, 1);
        assert!(
            run.quarantined[0].reason.contains("timed out"),
            "{}",
            run.quarantined[0].reason
        );
        assert!(matches!(
            run.outcomes[1],
            JobOutcome::TimedOut {
                job_id: 1,
                deadline_ms: 10,
                ..
            }
        ));
        assert!(run.outcomes[0].is_done() && run.outcomes[2].is_done());
    }

    #[test]
    fn spec_env_parsing_defaults() {
        // Only shape-level checks that avoid touching the environment
        // (tests run in parallel): the default spec retries nothing.
        let spec = SuperviseSpec::new();
        assert_eq!(spec.retries, 0);
        assert_eq!(spec.deadline_ms, None);
    }
}

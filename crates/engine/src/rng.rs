//! A small deterministic PRNG (splitmix64 / xorshift*-style).
//!
//! Workload generators need randomness (particle positions, task orders,
//! pointer-chase permutations) that is exactly reproducible across runs and
//! platforms, so the simulator uses its own fixed algorithm rather than an
//! external generator whose stream might change between versions.

/// A 64-bit deterministic pseudo-random generator (splitmix64).
///
/// # Examples
///
/// ```
/// use cmpsim_engine::Rng64;
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let r = a.range(10);
/// assert!(r < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range upper bound must be positive");
        // Lemire-style multiply-shift; bias is negligible for simulation use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bound() {
        let mut r = Rng64::new(42);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.range(n) < n);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn range_distribution_roughly_uniform() {
        let mut r = Rng64::new(77);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.range(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} out of range");
        }
    }
}

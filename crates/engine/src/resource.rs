//! Occupancy-based contention models.
//!
//! Every shared hardware resource in the simulated memory systems — cache
//! banks, the crossbar, the system bus, DRAM banks — is modelled as a
//! pipelined unit that can accept a new transaction every *occupancy* cycles.
//! A request that arrives while the resource is still occupied waits until
//! the resource frees up; the wait is the contention delay.
//!
//! This "reservation" style model is how the paper describes its own
//! event-driven memory simulator: "cycle accurate measures of contention and
//! resource usage throughout the system".

use crate::Cycle;

/// A single pipelined port: accepts one new transaction every `occupancy`
/// cycles (the occupancy is supplied per reservation, since e.g. the system
/// bus has different occupancies for address-only and data transactions).
///
/// # Examples
///
/// ```
/// use cmpsim_engine::{Cycle, Port};
/// let mut p = Port::new("l2-bank0");
/// assert_eq!(p.reserve(Cycle(0), 2), Cycle(0));
/// assert_eq!(p.reserve(Cycle(0), 2), Cycle(2));
/// assert_eq!(p.reserve(Cycle(10), 2), Cycle(10));
/// ```
#[derive(Debug, Clone)]
pub struct Port {
    name: &'static str,
    free_at: Cycle,
    grants: u64,
    wait_cycles: u64,
    busy_cycles: u64,
}

impl Port {
    /// Creates an idle port. `name` labels the port in statistics output.
    pub fn new(name: &'static str) -> Port {
        Port {
            name,
            free_at: Cycle::ZERO,
            grants: 0,
            wait_cycles: 0,
            busy_cycles: 0,
        }
    }

    /// Reserves the port for a transaction arriving at `at` that occupies the
    /// port for `occupancy` cycles. Returns the cycle at which the
    /// transaction is actually granted the port (`>= at`).
    #[inline]
    pub fn reserve(&mut self, at: Cycle, occupancy: u64) -> Cycle {
        let grant = at.max(self.free_at);
        self.free_at = grant + occupancy;
        self.grants += 1;
        self.wait_cycles += grant - at;
        self.busy_cycles += occupancy;
        grant
    }

    /// The first cycle at which a new transaction could be granted.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Whether a transaction arriving at `at` would have to wait.
    pub fn busy_at(&self, at: Cycle) -> bool {
        self.free_at > at
    }

    /// Port label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total transactions granted.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total cycles transactions spent waiting for this port.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Total cycles the port was occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

/// An address-interleaved group of [`Port`]s, e.g. the 4 banks of the shared
/// L1 or L2 cache. Lines are interleaved across banks by line address.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::{BankedResource, Cycle};
/// // 4 banks, 32-byte lines.
/// let mut banks = BankedResource::new("l1", 4, 32);
/// // Same line twice: second access waits for the bank.
/// assert_eq!(banks.reserve(0x40, Cycle(0), 1), Cycle(0));
/// assert_eq!(banks.reserve(0x40, Cycle(0), 1), Cycle(1));
/// // A different bank is free.
/// assert_eq!(banks.reserve(0x60, Cycle(0), 1), Cycle(0));
/// ```
#[derive(Debug, Clone)]
pub struct BankedResource {
    label: &'static str,
    banks: Vec<Port>,
    /// `log2(line_bytes)` — lines are a power of two, so interleaving is a
    /// shift, not a division.
    line_shift: u32,
    /// `n_banks - 1` when the bank count is a power of two (the common
    /// case), else `u64::MAX` as the "use modulo" sentinel.
    bank_mask: u64,
}

impl BankedResource {
    /// Creates `n_banks` idle banks interleaved at `line_bytes` granularity.
    /// `name` labels both the group and every individual bank.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks` is zero or `line_bytes` is not a power of two.
    pub fn new(name: &'static str, n_banks: usize, line_bytes: u64) -> BankedResource {
        assert!(n_banks > 0, "banked resource needs at least one bank");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        BankedResource {
            label: name,
            banks: (0..n_banks).map(|_| Port::new(name)).collect(),
            line_shift: line_bytes.trailing_zeros(),
            bank_mask: if n_banks.is_power_of_two() {
                n_banks as u64 - 1
            } else {
                u64::MAX
            },
        }
    }

    /// Group label (statistics aggregated over the banks report this name).
    pub fn name(&self) -> &'static str {
        self.label
    }

    /// Index of the bank that services `addr`. Sits on every store and
    /// every L1-miss path, so the common power-of-two geometry pays a
    /// shift and a mask rather than a divide.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        let line = addr >> self.line_shift;
        if self.bank_mask != u64::MAX {
            (line & self.bank_mask) as usize
        } else {
            (line % self.banks.len() as u64) as usize
        }
    }

    /// Reserves the bank servicing `addr`; see [`Port::reserve`].
    #[inline]
    pub fn reserve(&mut self, addr: u64, at: Cycle, occupancy: u64) -> Cycle {
        let bank = self.bank_of(addr);
        self.banks[bank].reserve(at, occupancy)
    }

    /// Whether the bank servicing `addr` is busy at `at`.
    pub fn busy_at(&self, addr: u64, at: Cycle) -> bool {
        let bank = self.bank_of(addr);
        self.banks[bank].busy_at(at)
    }

    /// Number of banks.
    pub fn n_banks(&self) -> usize {
        self.banks.len()
    }

    /// Total cycles requests waited across all banks (bank-conflict cost).
    pub fn total_wait_cycles(&self) -> u64 {
        self.banks.iter().map(Port::wait_cycles).sum()
    }

    /// Total transactions granted across all banks.
    pub fn total_grants(&self) -> u64 {
        self.banks.iter().map(Port::grants).sum()
    }

    /// Access to an individual bank's port, for fine-grained statistics.
    pub fn bank(&self, idx: usize) -> &Port {
        &self.banks[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_serializes_overlapping_requests() {
        let mut p = Port::new("t");
        assert_eq!(p.reserve(Cycle(0), 6), Cycle(0));
        assert_eq!(p.reserve(Cycle(1), 6), Cycle(6));
        assert_eq!(p.reserve(Cycle(2), 6), Cycle(12));
        assert_eq!(p.grants(), 3);
        assert_eq!(p.wait_cycles(), (6 - 1) + (12 - 2));
        assert_eq!(p.busy_cycles(), 18);
    }

    #[test]
    fn port_idle_gap_resets_wait() {
        let mut p = Port::new("t");
        p.reserve(Cycle(0), 2);
        assert_eq!(p.reserve(Cycle(100), 2), Cycle(100));
        assert_eq!(p.wait_cycles(), 0);
    }

    #[test]
    fn port_busy_query() {
        let mut p = Port::new("t");
        p.reserve(Cycle(5), 3);
        assert!(p.busy_at(Cycle(6)));
        assert!(p.busy_at(Cycle(7)));
        assert!(!p.busy_at(Cycle(8)));
        assert_eq!(p.free_at(), Cycle(8));
    }

    #[test]
    fn banks_interleave_by_line() {
        let b = BankedResource::new("t", 4, 32);
        assert_eq!(b.bank_of(0x00), 0);
        assert_eq!(b.bank_of(0x1f), 0);
        assert_eq!(b.bank_of(0x20), 1);
        assert_eq!(b.bank_of(0x40), 2);
        assert_eq!(b.bank_of(0x60), 3);
        assert_eq!(b.bank_of(0x80), 0);
    }

    #[test]
    fn bank_conflicts_only_within_bank() {
        let mut b = BankedResource::new("t", 2, 32);
        assert_eq!(b.reserve(0x00, Cycle(0), 4), Cycle(0));
        // Different bank: no conflict.
        assert_eq!(b.reserve(0x20, Cycle(0), 4), Cycle(0));
        // Same bank as first: conflict.
        assert_eq!(b.reserve(0x40, Cycle(0), 4), Cycle(4));
        assert_eq!(b.total_wait_cycles(), 4);
        assert_eq!(b.total_grants(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankedResource::new("t", 0, 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_rejected() {
        let _ = BankedResource::new("t", 4, 33);
    }
}

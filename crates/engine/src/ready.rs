//! A ready-heap over a fixed set of indexed actors.
//!
//! The simulator's run loops repeatedly ask "which CPU is ready earliest?"
//! with ties broken by the lowest CPU index — that tie-break is part of the
//! simulator's determinism contract, so [`ReadyHeap`] bakes it into the key
//! order: entries compare by `(Cycle, index)`. The heap is indexed (each
//! actor has a stable `usize` id and at most one entry), so a ready-time
//! update is `set` rather than a lazy-deletion push.
//!
//! Operations are `O(log n)`; with the small `n` of a simulated machine the
//! win over the previous `O(n)` scan is modest per step but is paid on every
//! step of every run, and the same structure orders the commit spine of the
//! sharded runner.

use crate::Cycle;

/// Sentinel for "not in the heap" in the position table.
const ABSENT: usize = usize::MAX;

/// An indexed binary min-heap of `(Cycle, index)` keys.
///
/// Each index in `0..capacity` holds at most one entry; [`ReadyHeap::set`]
/// inserts or updates it, [`ReadyHeap::remove`] drops it, and
/// [`ReadyHeap::peek`] returns the entry with the earliest cycle, ties
/// broken by the lowest index — exactly the order of a linear
/// earliest-ready scan.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::{Cycle, ReadyHeap};
///
/// let mut h = ReadyHeap::new(4);
/// h.set(2, Cycle(10));
/// h.set(0, Cycle(10));
/// h.set(1, Cycle(5));
/// assert_eq!(h.peek(), Some((Cycle(5), 1)));
/// h.set(1, Cycle(20)); // update reorders
/// assert_eq!(h.peek(), Some((Cycle(10), 0))); // tie -> lowest index
/// h.remove(0);
/// assert_eq!(h.peek(), Some((Cycle(10), 2)));
/// ```
#[derive(Debug, Clone)]
pub struct ReadyHeap {
    /// Heap array of `(key, index)` entries, min at the root.
    heap: Vec<(Cycle, usize)>,
    /// `pos[index]` = position of that index's entry in `heap`, or
    /// [`ABSENT`].
    pos: Vec<usize>,
}

impl ReadyHeap {
    /// Creates an empty heap for indices `0..capacity`.
    pub fn new(capacity: usize) -> ReadyHeap {
        ReadyHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
        }
    }

    /// Number of entries currently in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap has no entries.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `idx` currently has an entry.
    pub fn contains(&self, idx: usize) -> bool {
        self.pos[idx] != ABSENT
    }

    /// The earliest `(key, index)` entry, ties broken by lowest index.
    pub fn peek(&self) -> Option<(Cycle, usize)> {
        self.heap.first().copied()
    }

    /// Inserts `idx` with `key`, or updates its key if already present.
    pub fn set(&mut self, idx: usize, key: Cycle) {
        let p = self.pos[idx];
        if p == ABSENT {
            self.heap.push((key, idx));
            let p = self.heap.len() - 1;
            self.pos[idx] = p;
            self.sift_up(p);
        } else {
            let old = self.heap[p].0;
            self.heap[p].0 = key;
            if (key, idx) < (old, idx) {
                self.sift_up(p);
            } else {
                self.sift_down(p);
            }
        }
    }

    /// Removes `idx`'s entry if present.
    pub fn remove(&mut self, idx: usize) {
        let p = self.pos[idx];
        if p == ABSENT {
            return;
        }
        self.pos[idx] = ABSENT;
        let last = self.heap.len() - 1;
        if p == last {
            self.heap.pop();
            return;
        }
        let moved = self.heap[last];
        self.heap[p] = moved;
        self.heap.pop();
        self.pos[moved.1] = p;
        // The moved entry may need to travel either direction.
        self.sift_up(p);
        self.sift_down(self.pos[moved.1]);
    }

    fn sift_up(&mut self, mut p: usize) {
        while p > 0 {
            let parent = (p - 1) / 2;
            if self.heap[p] < self.heap[parent] {
                self.swap(p, parent);
                p = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut p: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * p + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child = if r < n && self.heap[r] < self.heap[l] {
                r
            } else {
                l
            };
            if self.heap[child] < self.heap[p] {
                self.swap(p, child);
                p = child;
            } else {
                break;
            }
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1] = a;
        self.pos[self.heap[b].1] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    /// Reference implementation: the linear earliest-ready scan the heap
    /// replaces.
    fn scan_min(entries: &[Option<Cycle>]) -> Option<(Cycle, usize)> {
        let mut best: Option<(Cycle, usize)> = None;
        for (i, e) in entries.iter().enumerate() {
            if let Some(c) = e {
                if best.is_none_or(|(bc, _)| *c < bc) {
                    best = Some((*c, i));
                }
            }
        }
        best
    }

    #[test]
    fn basic_order_and_ties() {
        let mut h = ReadyHeap::new(4);
        h.set(3, Cycle(7));
        h.set(1, Cycle(7));
        h.set(2, Cycle(9));
        assert_eq!(h.peek(), Some((Cycle(7), 1)));
        h.remove(1);
        assert_eq!(h.peek(), Some((Cycle(7), 3)));
        h.set(0, Cycle(0));
        assert_eq!(h.peek(), Some((Cycle(0), 0)));
        assert_eq!(h.len(), 3);
        assert!(h.contains(2));
        assert!(!h.contains(1));
    }

    #[test]
    fn update_moves_both_directions() {
        let mut h = ReadyHeap::new(3);
        h.set(0, Cycle(10));
        h.set(1, Cycle(20));
        h.set(2, Cycle(30));
        h.set(2, Cycle(1)); // up
        assert_eq!(h.peek(), Some((Cycle(1), 2)));
        h.set(2, Cycle(40)); // down
        assert_eq!(h.peek(), Some((Cycle(10), 0)));
    }

    #[test]
    fn remove_missing_is_a_noop() {
        let mut h = ReadyHeap::new(2);
        h.remove(1);
        assert!(h.is_empty());
        h.set(0, Cycle(5));
        h.remove(1);
        assert_eq!(h.peek(), Some((Cycle(5), 0)));
    }

    #[test]
    fn matches_linear_scan_under_random_ops() {
        let mut rng = Rng64::new(0x4ead_4eab);
        let n = 16;
        let mut h = ReadyHeap::new(n);
        let mut model: Vec<Option<Cycle>> = vec![None; n];
        for _ in 0..10_000 {
            let idx = rng.range(n as u64) as usize;
            match rng.range(4) {
                0 => {
                    h.remove(idx);
                    model[idx] = None;
                }
                _ => {
                    // Small key range to force plenty of ties.
                    let key = Cycle(rng.range(50));
                    h.set(idx, key);
                    model[idx] = Some(key);
                }
            }
            assert_eq!(h.peek(), scan_min(&model));
            assert_eq!(h.len(), model.iter().flatten().count());
        }
    }
}

//! Deterministic fixed-function hashing for simulator-internal maps.
//!
//! std's default `HashMap` hasher is SipHash keyed per process — HashDoS
//! hardening that buys nothing for a simulator hashing its own line
//! addresses, and whose cost shows up on the access fast path (the
//! shared-L2 directory consults its presence map on every store). These
//! aliases swap in a multiply-fold hasher in the FxHash family: one
//! rotate-xor-multiply per 8-byte word, no per-process key, so map
//! behaviour is identical across runs and the hash of a line address
//! costs less than the cache lookup next to it.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-fold hasher (FxHash-style): `h = rotl(h, 5) ^ w) * SEED` per
/// word. Not HashDoS-resistant by design — keys here are simulator line
/// addresses, not attacker input.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

/// Odd multiplier from the FxHash lineage (truncated golden-ratio word).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            self.fold(u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(u64::from(n));
    }
}

/// `BuildHasher` for [`FastHasher`] (no per-process state).
pub type BuildFastHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` keyed by the deterministic [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildFastHasher>;

/// `HashSet` keyed by the deterministic [`FastHasher`].
pub type FastSet<T> = std::collections::HashSet<T, BuildFastHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_addresses() {
        let h = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        // Line addresses differ in low bits; the hash must spread them.
        assert_ne!(h(0x1000), h(0x1020));
        assert_ne!(h(0x1000) & 0xfff, h(0x1020) & 0xfff);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_whole_words() {
        let mut a = FastHasher::default();
        a.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        m.insert(0x40, 1);
        assert_eq!(m.get(&0x40), Some(&1));
        let mut s: FastSet<u64> = FastSet::default();
        s.insert(0x40);
        assert!(s.contains(&0x40));
    }
}

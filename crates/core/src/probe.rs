//! Latency probes: measure Table 2 from the running memory systems.
//!
//! Rather than trusting the configuration constants, these probes issue
//! real access sequences against each architecture and report the measured
//! contention-free latencies and occupancies — the `table2_latency` bench
//! prints paper-vs-measured rows from this.

use crate::machine::{ArchKind, Machine, MachineConfig, RunError, RunSummary};
use cmpsim_engine::Cycle;
use cmpsim_kernels::BuiltWorkload;
use cmpsim_mem::{MemRequest, MemorySystem};
use cmpsim_trace::SharedBuf;

/// Measured latencies (in cycles) for one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// L1 load hit.
    pub l1_hit: u64,
    /// L1 miss serviced by the L2.
    pub l2_hit: u64,
    /// Miss serviced by main memory.
    pub memory: u64,
    /// Dirty-remote load (shared-memory architecture only).
    pub cache_to_cache: Option<u64>,
    /// Back-to-back L2 accesses' spacing (occupancy).
    pub l2_occupancy: u64,
    /// Back-to-back memory accesses' spacing (occupancy).
    pub mem_occupancy: u64,
}

fn lat(sys: &mut dyn MemorySystem, at: Cycle, req: MemRequest) -> u64 {
    sys.access(at, req).finish - at
}

/// Probes one architecture's memory system with paper-default geometry.
/// `ideal_shared_l1` selects the Mipsy-mode idealization.
pub fn probe_latencies(arch: ArchKind, ideal_shared_l1: bool) -> ProbeResult {
    let cfg = arch
        .config(4)
        .with_ideal_shared_l1(ideal_shared_l1 && arch == ArchKind::SharedL1);
    let mut sys = arch.build(&cfg);
    let s = sys.as_mut();
    let l1_spec = cfg.l1d;
    // Way stride: lines that conflict in the L1.
    let l1_stride = l1_spec.size_bytes / l1_spec.assoc as u32;

    let base: u32 = 0x10_0000;
    let mut t = Cycle(0);

    // Warm the line, then measure an L1 hit.
    s.access(t, MemRequest::load(0, base));
    t = Cycle(10_000);
    let l1_hit = lat(s, t, MemRequest::load(0, base));

    // Evict `base` from the L1 (fill the set), keep it in the L2; measure.
    t = Cycle(20_000);
    for w in 1..=l1_spec.assoc as u32 {
        s.access(t, MemRequest::load(0, base + w * l1_stride));
        t += 1_000;
    }
    t = Cycle(40_000);
    let l2_hit = lat(s, t, MemRequest::load(0, base));

    // Cold line: memory latency.
    t = Cycle(60_000);
    let memory = lat(s, t, MemRequest::load(0, 0x77_0000));

    // Cache-to-cache: CPU 0 dirties a line, CPU 1 reads it.
    let cache_to_cache = if arch == ArchKind::SharedMem {
        t = Cycle(80_000);
        s.access(t, MemRequest::store(0, 0x88_0000));
        t = Cycle(90_000);
        Some(lat(s, t, MemRequest::load(1, 0x88_0000)))
    } else {
        None
    };

    // L2 occupancy: two L1-missing loads to the same L2 bank back to back;
    // the second's extra wait is the occupancy.
    t = Cycle(100_000);
    let line = cfg.l1d.line_bytes;
    // Two distinct lines in the same L2 bank (bank interleave is by line;
    // banks * line apart) that both miss the L1 but hit the L2.
    let stride_same_bank = line * (cfg.l2_banks.max(1) as u32);
    let (p1, p2) = (0xa0_0000, 0xa0_0000 + stride_same_bank);
    s.access(t, MemRequest::load(0, p1)); // warm L2
    s.access(t + 1_000, MemRequest::load(0, p2)); // warm L2
                                                  // Evict both from CPU 0's L1 again (the occupancy must be measured at
                                                  // the L2, so both probes come from the same CPU and miss its L1).
    let mut tt = t + 2_000;
    for w in 1..=l1_spec.assoc as u32 {
        s.access(tt, MemRequest::load(0, p1 + w * l1_stride));
        s.access(tt + 500, MemRequest::load(0, p2 + w * l1_stride));
        tt += 1_000;
    }
    t = Cycle(150_000);
    let a = sys.access(t, MemRequest::load(0, p1));
    let b = sys.access(t, MemRequest::load(0, p2));
    let l2_occupancy = b.finish - a.finish;

    // Memory occupancy: two cold misses to different L2 sets back to back.
    let s = sys.as_mut();
    t = Cycle(200_000);
    let a = s.access(t, MemRequest::load(0, 0xc0_0000));
    let b = s.access(t, MemRequest::load(1, 0xd0_0000));
    let mem_occupancy = b.finish - a.finish;

    ProbeResult {
        l1_hit,
        l2_hit,
        memory,
        cache_to_cache,
        l2_occupancy,
        mem_occupancy,
    }
}

/// Runs `workload` to completion with reference-trace capture on,
/// returning the run summary together with the encoded trace bytes — the
/// in-process analogue of setting `CMPSIM_TRACE_OUT`, used by the replay
/// benches, the equivalence gate and the examples.
///
/// # Errors
///
/// As [`crate::machine::run_workload`].
pub fn capture_run(
    cfg: &MachineConfig,
    workload: &BuiltWorkload,
    max_cycles: u64,
) -> Result<(RunSummary, Vec<u8>), RunError> {
    let buf = SharedBuf::new();
    let mut m = Machine::new_capturing(cfg, workload, Box::new(buf.clone()));
    let summary = m.run(max_cycles)?;
    (workload.check)(m.phys()).map_err(RunError::CheckFailed)?;
    Ok((summary, buf.take()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_l1_matches_table2() {
        let p = probe_latencies(ArchKind::SharedL1, false);
        assert_eq!(p.l1_hit, 3, "shared-L1 hit = 3 cycles incl. crossbar");
        assert_eq!(p.l2_hit, 10);
        assert_eq!(p.memory, 50);
        assert_eq!(p.cache_to_cache, None);
        assert_eq!(p.l2_occupancy, 2, "128-bit path: 2-cycle occupancy");
        assert_eq!(p.mem_occupancy, 6);
    }

    #[test]
    fn shared_l1_ideal_mode_hits_in_one_cycle() {
        let p = probe_latencies(ArchKind::SharedL1, true);
        assert_eq!(p.l1_hit, 1);
        assert_eq!(p.l2_hit, 10, "idealization only affects the L1");
    }

    #[test]
    fn shared_l2_matches_table2() {
        let p = probe_latencies(ArchKind::SharedL2, false);
        assert_eq!(p.l1_hit, 1);
        assert_eq!(p.l2_hit, 14, "crossbar + chip crossings add 4 cycles");
        assert_eq!(p.memory, 50);
        assert_eq!(p.l2_occupancy, 4, "64-bit path: 4-cycle occupancy");
        assert_eq!(p.mem_occupancy, 6);
    }

    #[test]
    fn shared_mem_matches_table2() {
        let p = probe_latencies(ArchKind::SharedMem, false);
        assert_eq!(p.l1_hit, 1);
        assert_eq!(p.l2_hit, 10);
        assert_eq!(p.memory, 50);
        let c2c = p.cache_to_cache.expect("bus architecture has c2c");
        assert!(c2c > 50, "Table 2: cache-to-cache > 50 cycles");
        assert_eq!(p.l2_occupancy, 2);
        assert_eq!(p.mem_occupancy, 6, "bus occupancy serializes misses");
    }
}

//! Versioned byte codec for [`RunSummary`] — the payload format the
//! figure sweeps journal per completed row (see `cmpsim_engine::journal`).
//!
//! A resumed sweep must re-emit its artifact byte-identically, so the
//! snapshot must round-trip *everything* the renderers read: counters,
//! memory statistics (including the latency histogram's accumulators),
//! port utilization and phase markers. Summaries with sentinel
//! violations refuse to encode — a violating row is a bug report, not a
//! result, and must never be skipped on resume.
//!
//! Layout (all integers little-endian): an 8-byte magic, the arch tag,
//! `wall_cycles`, the per-CPU counter blocks (each a fixed 21-word
//! record), the merged totals, the memory statistics with the histogram's
//! raw parts, the named port-utilization rows, and the phase markers.
//! The magic doubles as the version; any layout change bumps it and old
//! journals simply miss (rows recompute — never misdecode).

use crate::machine::{ArchKind, RunSummary};
use cmpsim_cpu::CpuCounters;
use cmpsim_mem::{LevelStats, MemStats, PortUtil};

/// Magic + version prefix for encoded summaries.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CMPSNAP1";

/// Port labels the memory systems can emit, for interning decoded names
/// back to `&'static str`. An unknown name (a future resource) falls
/// back to a leaked allocation — correct, just not free; per-process
/// cost is bounded by the set of distinct names.
const KNOWN_PORT_NAMES: [&str; 7] = [
    "bus",
    "l2",
    "l2-bank",
    "mem",
    "l1i-bank",
    "l1d-bank",
    "cluster-l1-bank",
];

const CPU_COUNTER_WORDS: usize = 21;

fn counters_to_words(c: &CpuCounters) -> [u64; CPU_COUNTER_WORDS] {
    [
        c.instructions,
        c.busy_cycles,
        c.stall_instruction,
        c.stall_l1_data,
        c.stall_l2,
        c.stall_memory,
        c.stall_c2c,
        c.stall_store_buffer,
        c.stall_fence,
        c.loads,
        c.stores,
        c.branches,
        c.mispredicts,
        c.sc_failures,
        c.mxs_cycles,
        c.slots_icache,
        c.slots_dcache,
        c.slots_pipeline,
        c.dispatch_stall_rob,
        c.dispatch_stall_preg,
        c.window_occupancy_sum,
    ]
}

fn counters_from_words(w: &[u64; CPU_COUNTER_WORDS]) -> CpuCounters {
    let mut c = CpuCounters::new();
    c.instructions = w[0];
    c.busy_cycles = w[1];
    c.stall_instruction = w[2];
    c.stall_l1_data = w[3];
    c.stall_l2 = w[4];
    c.stall_memory = w[5];
    c.stall_c2c = w[6];
    c.stall_store_buffer = w[7];
    c.stall_fence = w[8];
    c.loads = w[9];
    c.stores = w[10];
    c.branches = w[11];
    c.mispredicts = w[12];
    c.sc_failures = w[13];
    c.mxs_cycles = w[14];
    c.slots_icache = w[15];
    c.slots_dcache = w[16];
    c.slots_pipeline = w[17];
    c.dispatch_stall_rob = w[18];
    c.dispatch_stall_preg = w[19];
    c.window_occupancy_sum = w[20];
    c
}

fn arch_tag(a: ArchKind) -> u8 {
    match a {
        ArchKind::SharedL1 => 0,
        ArchKind::SharedL2 => 1,
        ArchKind::SharedMem => 2,
        ArchKind::Clustered => 3,
        ArchKind::Mesh => 4,
    }
}

fn arch_from_tag(t: u8) -> Option<ArchKind> {
    Some(match t {
        0 => ArchKind::SharedL1,
        1 => ArchKind::SharedL2,
        2 => ArchKind::SharedMem,
        3 => ArchKind::Clustered,
        4 => ArchKind::Mesh,
        _ => return None,
    })
}

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn words(&mut self, w: &[u64]) {
        self.u32(w.len() as u32);
        for &v in w {
            self.u64(v);
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn level(&mut self, l: &LevelStats) {
        self.u64(l.accesses);
        self.u64(l.hits);
        self.u64(l.miss_repl);
        self.u64(l.miss_inval);
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(format!(
                "snapshot truncated at byte {} (wanted {n} more)",
                self.pos
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn words(&mut self) -> Result<Vec<u64>, String> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u64()).collect()
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| format!("snapshot string: {e}"))
    }
    fn level(&mut self) -> Result<LevelStats, String> {
        Ok(LevelStats {
            accesses: self.u64()?,
            hits: self.u64()?,
            miss_repl: self.u64()?,
            miss_inval: self.u64()?,
        })
    }
}

/// Encodes a summary for the resume journal. Returns `None` when the
/// summary carries sentinel violations: a violating row must fail the
/// sweep, not be checkpointed past.
pub fn encode_summary(s: &RunSummary) -> Option<Vec<u8>> {
    if !s.violations.is_empty() {
        return None;
    }
    let mut e = Enc(Vec::with_capacity(512));
    e.0.extend_from_slice(&SNAPSHOT_MAGIC);
    e.u8(arch_tag(s.arch));
    e.u64(s.wall_cycles);
    e.u32(s.per_cpu.len() as u32);
    for c in &s.per_cpu {
        for w in counters_to_words(c) {
            e.u64(w);
        }
    }
    for w in counters_to_words(&s.total) {
        e.u64(w);
    }
    e.level(&s.mem.l1d);
    e.level(&s.mem.l1i);
    e.level(&s.mem.l2);
    e.u64(s.mem.mem_accesses);
    e.u64(s.mem.c2c_transfers);
    e.u64(s.mem.upgrades);
    e.u64(s.mem.writebacks);
    e.u64(s.mem.invalidations_sent);
    e.u64(s.mem.l1_bank_wait);
    e.u64(s.mem.l2_bank_wait);
    e.u64(s.mem.mem_wait);
    let (bounds, counts, total, sum, max) = s.mem.latency.raw_parts();
    e.words(bounds);
    e.words(counts);
    e.u64(total);
    e.u64(sum);
    e.u64(max);
    e.u32(s.port_util.len() as u32);
    for p in &s.port_util {
        e.str(p.name);
        e.u64(p.grants);
        e.u64(p.busy_cycles);
        e.u64(p.wait_cycles);
    }
    e.u32(s.phases.len() as u32);
    for &(cycle, cpu, tag) in &s.phases {
        e.u64(cycle);
        e.u32(cpu as u32);
        e.u8(tag);
    }
    Some(e.0)
}

/// Interns a decoded port name back to `&'static str`.
fn intern_name(name: &str) -> &'static str {
    KNOWN_PORT_NAMES
        .iter()
        .find(|&&k| k == name)
        .copied()
        .unwrap_or_else(|| Box::leak(name.to_string().into_boxed_str()))
}

/// Decodes a summary previously produced by [`encode_summary`].
///
/// # Errors
///
/// Returns a description of the first structural problem: wrong magic
/// (foreign or stale-format journal), truncation, an unknown arch tag,
/// or histogram bounds that no longer match the current layout.
pub fn decode_summary(bytes: &[u8]) -> Result<RunSummary, String> {
    let mut d = Dec { bytes, pos: 0 };
    if d.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
        return Err("not a cmpsim run-summary snapshot (bad magic)".to_string());
    }
    let arch = arch_from_tag(d.u8()?).ok_or_else(|| "unknown arch tag".to_string())?;
    let wall_cycles = d.u64()?;
    let n_cpus = d.u32()? as usize;
    let read_counters = |d: &mut Dec| -> Result<CpuCounters, String> {
        let mut w = [0u64; CPU_COUNTER_WORDS];
        for v in &mut w {
            *v = d.u64()?;
        }
        Ok(counters_from_words(&w))
    };
    let per_cpu: Vec<CpuCounters> = (0..n_cpus)
        .map(|_| read_counters(&mut d))
        .collect::<Result<_, _>>()?;
    let total = read_counters(&mut d)?;
    // Struct fields evaluate in source order, which is the wire order.
    let mut mem = MemStats {
        l1d: d.level()?,
        l1i: d.level()?,
        l2: d.level()?,
        mem_accesses: d.u64()?,
        c2c_transfers: d.u64()?,
        upgrades: d.u64()?,
        writebacks: d.u64()?,
        invalidations_sent: d.u64()?,
        l1_bank_wait: d.u64()?,
        l2_bank_wait: d.u64()?,
        mem_wait: d.u64()?,
        ..Default::default()
    };
    let bounds = d.words()?;
    let counts = d.words()?;
    let (h_total, h_sum, h_max) = (d.u64()?, d.u64()?, d.u64()?);
    {
        let (cur_bounds, cur_counts, _, _, _) = mem.latency.raw_parts();
        if bounds != cur_bounds {
            return Err("latency histogram bounds drifted since the snapshot".to_string());
        }
        if counts.len() != cur_counts.len() {
            return Err("latency histogram bucket count drifted".to_string());
        }
    }
    mem.latency.restore(&counts, h_total, h_sum, h_max);
    let n_ports = d.u32()? as usize;
    let mut port_util = Vec::with_capacity(n_ports);
    for _ in 0..n_ports {
        let name = d.str()?;
        port_util.push(PortUtil {
            name: intern_name(&name),
            grants: d.u64()?,
            busy_cycles: d.u64()?,
            wait_cycles: d.u64()?,
        });
    }
    let n_phases = d.u32()? as usize;
    let mut phases = Vec::with_capacity(n_phases);
    for _ in 0..n_phases {
        phases.push((d.u64()?, d.u32()? as usize, d.u8()?));
    }
    if d.pos != d.bytes.len() {
        return Err(format!(
            "snapshot has {} trailing bytes",
            d.bytes.len() - d.pos
        ));
    }
    Ok(RunSummary {
        arch,
        wall_cycles,
        per_cpu,
        total,
        mem,
        port_util,
        phases,
        violations: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{run_workload, CpuKind, MachineConfig};
    use cmpsim_kernels::build_by_name;

    /// The load-bearing property: a real run's summary survives the
    /// codec with Debug-level equality, so a resumed sweep renders the
    /// identical artifact. Debug covers every field — a future field
    /// added to any stats struct fails this test until the codec learns
    /// it.
    #[test]
    fn real_summaries_round_trip_debug_identical() {
        for (arch, cpu) in [
            (ArchKind::SharedL2, CpuKind::Mipsy),
            (ArchKind::SharedMem, CpuKind::Mxs),
        ] {
            let w = build_by_name("eqntott", 4, 0.02).expect("builds");
            let cfg = MachineConfig::new(arch, cpu);
            let s = run_workload(&cfg, &w, 100_000_000).expect("runs");
            let bytes = encode_summary(&s).expect("no violations");
            let back = decode_summary(&bytes).expect("decodes");
            assert_eq!(format!("{s:?}"), format!("{back:?}"), "{arch:?}");
        }
    }

    #[test]
    fn phases_and_clustered_arch_round_trip() {
        let w = build_by_name("mp3d", 4, 0.02).expect("builds");
        let mut cfg = MachineConfig::new(ArchKind::Clustered, CpuKind::Mipsy);
        cfg.cpus_per_cluster = Some(2);
        let s = run_workload(&cfg, &w, 100_000_000).expect("runs");
        let bytes = encode_summary(&s).expect("encodes");
        let back = decode_summary(&bytes).expect("decodes");
        assert_eq!(format!("{s:?}"), format!("{back:?}"));
    }

    #[test]
    fn violating_summaries_refuse_to_encode() {
        let w = build_by_name("eqntott", 4, 0.02).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
        let mut s = run_workload(&cfg, &w, 100_000_000).expect("runs");
        s.violations.push(cmpsim_mem::SentinelViolation {
            cycle: 1,
            cpu: 0,
            addr: 0x40,
            kind: cmpsim_mem::ViolationKind::OracleMismatch,
            detail: "injected".to_string(),
        });
        assert!(encode_summary(&s).is_none());
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(decode_summary(b"definitely not a snapshot").is_err());
        let w = build_by_name("eqntott", 4, 0.02).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
        let s = run_workload(&cfg, &w, 100_000_000).expect("runs");
        let bytes = encode_summary(&s).expect("encodes");
        for cut in [9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_summary(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_summary(&extra).is_err(), "trailing bytes rejected");
    }
}

//! `cmpsim-core`: the paper's experimental apparatus.
//!
//! This crate assembles complete machines — one of the three multiprocessor
//! architectures ([`ArchKind`]) under one of the two CPU models
//! ([`CpuKind`]) — loads a workload from `cmpsim-kernels`, runs it to
//! completion with the multiprogramming process scheduler, and reports the
//! paper's metrics: execution-time breakdowns (Figures 4–10), IPC
//! breakdowns (Figure 11) and cache miss rates split into replacement and
//! invalidation components.
//!
//! # Examples
//!
//! Run Eqntott on all three architectures and compare:
//!
//! ```
//! use cmpsim_core::{ArchKind, CpuKind, Machine, MachineConfig};
//! use cmpsim_kernels::build_by_name;
//!
//! # fn main() -> Result<(), String> {
//! let w = build_by_name("eqntott", 4, 0.02)?;
//! for arch in ArchKind::ALL {
//!     let cfg = MachineConfig::new(arch, CpuKind::Mipsy);
//!     let mut m = Machine::new(&cfg, &w);
//!     let summary = m.run(200_000_000).map_err(|e| e.to_string())?;
//!     assert!(summary.wall_cycles > 0);
//! }
//! # Ok(())
//! # }
//! ```

pub mod machine;
pub mod probe;
pub mod report;
pub mod snapshot;

pub use cmpsim_cpu::MxsConfig;
pub use machine::{
    retry_stalled_serial, run_workload, run_workload_resilient, ArchKind, CpuDiag, CpuKind,
    DemotionReason, Machine, MachineConfig, RunError, RunSummary, ShardStats, Watchdog,
    WatchdogReport, ENV_SHARDS, ENV_SHARD_STATS, ENV_STALL_CYCLES, ENV_TRACE_IN, ENV_TRACE_OUT,
};
pub use probe::{capture_run, probe_latencies, ProbeResult};
pub use report::{Breakdown, IpcBreakdown, MissRates, TraceProfile};
pub use snapshot::{decode_summary, encode_summary};

//! Machine assembly and the simulation run loop.

use cmpsim_cpu::{ArchState, CpuCounters, CpuModel, MipsyCpu, MxsConfig, MxsCpu, StepEvent};
use cmpsim_engine::Cycle;
use cmpsim_isa::HcallNo;
use cmpsim_kernels::BuiltWorkload;
use cmpsim_mem::{
    AddrSpace, ClusteredSystem, MemStats, MemorySystem, PhysMem, SharedL1System, SharedL2System,
    SharedMemSystem, SystemConfig,
};
use std::collections::VecDeque;
use std::fmt;

/// Which of the paper's three architectures to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Figure 1: four CPUs share banked L1 caches through a crossbar.
    SharedL1,
    /// Figure 2: private write-through L1s over a banked shared L2.
    SharedL2,
    /// Figure 3: private L1+L2 per CPU on a snooping MESI bus.
    SharedMem,
    /// Extension (the authors' HPCA'96 follow-up \[16\]): two 2-CPU clusters
    /// each sharing an L1, over the shared L2. Not part of the paper's
    /// three-way comparison, so excluded from [`ArchKind::ALL`].
    Clustered,
}

impl ArchKind {
    /// The paper's three architectures, in its presentation order (the
    /// [`ArchKind::Clustered`] extension is driven explicitly by the
    /// extension benches).
    pub const ALL: [ArchKind; 3] = [ArchKind::SharedL1, ArchKind::SharedL2, ArchKind::SharedMem];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::SharedL1 => "shared-L1",
            ArchKind::SharedL2 => "shared-L2",
            ArchKind::SharedMem => "shared-memory",
            ArchKind::Clustered => "clustered",
        }
    }

    /// The paper's configuration for this architecture.
    pub fn config(self, n_cpus: usize) -> SystemConfig {
        match self {
            ArchKind::SharedL1 => SystemConfig::paper_shared_l1(n_cpus),
            ArchKind::SharedL2 => SystemConfig::paper_shared_l2(n_cpus),
            ArchKind::SharedMem => SystemConfig::paper_shared_mem(n_cpus),
            // The clustered extension shares the shared-L2 substrate.
            ArchKind::Clustered => SystemConfig::paper_shared_l2(n_cpus),
        }
    }

    /// Builds the memory system.
    pub fn build(self, cfg: &SystemConfig) -> Box<dyn MemorySystem> {
        match self {
            ArchKind::SharedL1 => Box::new(SharedL1System::new(cfg)),
            ArchKind::SharedL2 => Box::new(SharedL2System::new(cfg)),
            ArchKind::SharedMem => Box::new(SharedMemSystem::new(cfg)),
            ArchKind::Clustered => Box::new(ClusteredSystem::new(cfg)),
        }
    }
}

impl fmt::Display for ArchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which CPU timing model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuKind {
    /// Simple in-order model; all memory time stalls the CPU.
    Mipsy,
    /// Detailed 2-way dynamic superscalar (paper defaults).
    Mxs,
    /// MXS with a custom configuration (ablations).
    MxsCustom(MxsConfig),
}

impl CpuKind {
    fn is_mipsy(self) -> bool {
        matches!(self, CpuKind::Mipsy)
    }
}

/// Full machine configuration.
///
/// Per the paper's methodology, Mipsy runs idealize the shared L1 (1-cycle
/// hits, no bank contention) while MXS runs model the real 3-cycle hit time
/// and bank conflicts; `ideal_shared_l1` overrides that default for
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    pub arch: ArchKind,
    pub cpu: CpuKind,
    pub n_cpus: usize,
    /// Override the L2 associativity (MP3D ablation).
    pub l2_assoc: Option<usize>,
    /// Override the shared-L1 hit latency.
    pub l1_latency: Option<u64>,
    /// Override the shared-L1 bank count.
    pub l1_banks: Option<usize>,
    /// Override the L2 occupancy (datapath-width ablation).
    pub l2_occupancy: Option<u64>,
    /// Override the L1 capacity in bytes (cache-size extension study).
    pub l1_size: Option<u32>,
    /// Override the Mipsy/MXS idealization default.
    pub ideal_shared_l1: Option<bool>,
}

impl MachineConfig {
    /// A 4-CPU paper-default machine.
    pub fn new(arch: ArchKind, cpu: CpuKind) -> MachineConfig {
        MachineConfig {
            arch,
            cpu,
            n_cpus: 4,
            l2_assoc: None,
            l1_latency: None,
            l1_banks: None,
            l2_occupancy: None,
            l1_size: None,
            ideal_shared_l1: None,
        }
    }

    /// Resolved memory-system configuration.
    pub fn system_config(&self) -> SystemConfig {
        let mut sc = self.arch.config(self.n_cpus);
        if let Some(a) = self.l2_assoc {
            sc = sc.with_l2_assoc(a);
        }
        if let Some(l) = self.l1_latency {
            sc = sc.with_l1_latency(l);
        }
        if let Some(b) = self.l1_banks {
            sc = sc.with_l1_banks(b);
        }
        if let Some(o) = self.l2_occupancy {
            sc = sc.with_l2_occupancy(o);
        }
        if let Some(b) = self.l1_size {
            sc = sc.with_l1_size(b);
        }
        let ideal = self.ideal_shared_l1.unwrap_or_else(|| {
            self.cpu.is_mipsy()
                && matches!(self.arch, ArchKind::SharedL1 | ArchKind::Clustered)
        });
        sc.with_ideal_shared_l1(ideal)
    }
}

/// Why a run stopped without completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle budget expired before every CPU finished.
    Timeout { budget: u64 },
    /// The workload self-check failed after completion.
    CheckFailed(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Timeout { budget } => {
                write!(f, "run exceeded the {budget}-cycle budget")
            }
            RunError::CheckFailed(msg) => write!(f, "workload validation failed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Results of one complete run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Architecture that produced this run.
    pub arch: ArchKind,
    /// Wall-clock cycles from the region-of-interest start (or time zero)
    /// to the last CPU finishing.
    pub wall_cycles: u64,
    /// Per-CPU counters.
    pub per_cpu: Vec<CpuCounters>,
    /// All CPUs merged.
    pub total: CpuCounters,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Per-resource utilization (ports, banks, bus).
    pub port_util: Vec<cmpsim_mem::PortUtil>,
    /// Recorded phase markers: (cycle, cpu, tag).
    pub phases: Vec<(u64, usize, u8)>,
}

impl RunSummary {
    /// Aggregate instructions per cycle across all CPUs (MXS runs).
    pub fn machine_ipc(&self) -> f64 {
        if self.wall_cycles == 0 {
            0.0
        } else {
            self.total.instructions as f64 / self.wall_cycles as f64
        }
    }
}

struct ProcessCtx {
    arch: ArchState,
    space: AddrSpace,
}

/// A complete simulated machine: CPUs, memory system, physical memory and
/// the per-CPU process queues of the multiprogramming scheduler.
pub struct Machine {
    cfg: MachineConfig,
    cpus: Vec<Box<dyn CpuModel>>,
    mem: Box<dyn MemorySystem>,
    phys: PhysMem,
    ready: Vec<Cycle>,
    done: Vec<bool>,
    queues: Vec<VecDeque<ProcessCtx>>,
    roi_start: Cycle,
    phases: Vec<(u64, usize, u8)>,
    workload_name: &'static str,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("arch", &self.cfg.arch)
            .field("workload", &self.workload_name)
            .field("n_cpus", &self.cpus.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine and installs `workload` into it.
    ///
    /// # Panics
    ///
    /// Panics if the workload was built for a different CPU count.
    pub fn new(cfg: &MachineConfig, workload: &BuiltWorkload) -> Machine {
        assert_eq!(
            workload.entries.len(),
            cfg.n_cpus,
            "workload built for a different CPU count"
        );
        let sc = cfg.system_config();
        let mem = cfg.arch.build(&sc);
        let mut phys = PhysMem::new(cfg.n_cpus);
        workload.install(&mut phys);
        let cpus: Vec<Box<dyn CpuModel>> = workload
            .entries
            .iter()
            .enumerate()
            .map(|(c, p)| -> Box<dyn CpuModel> {
                match cfg.cpu {
                    CpuKind::Mipsy => Box::new(MipsyCpu::new(c, p.entry, p.space)),
                    CpuKind::Mxs => Box::new(MxsCpu::new(c, p.entry, p.space)),
                    CpuKind::MxsCustom(mc) => {
                        Box::new(MxsCpu::with_config(c, p.entry, p.space, mc))
                    }
                }
            })
            .collect();
        let queues = workload
            .extra_processes
            .iter()
            .map(|v| {
                v.iter()
                    .map(|p| ProcessCtx {
                        arch: ArchState::new(p.entry),
                        space: p.space,
                    })
                    .collect()
            })
            .collect();
        Machine {
            cfg: *cfg,
            cpus,
            mem,
            phys,
            ready: vec![Cycle::ZERO; workload.entries.len()],
            done: vec![false; workload.entries.len()],
            queues,
            roi_start: Cycle::ZERO,
            phases: Vec::new(),
            workload_name: workload.name,
        }
    }

    /// Switches CPU `c` to `next`, saving the current context. Returns the
    /// saved context.
    fn switch_to(&mut self, c: usize, next: ProcessCtx) -> ProcessCtx {
        let cpu = &mut self.cpus[c];
        let saved = ProcessCtx {
            arch: cpu.arch().clone(),
            space: cpu.space(),
        };
        *cpu.arch_mut() = next.arch;
        cpu.set_space(next.space);
        cpu.flush();
        saved
    }

    /// Index of the not-done CPU with the earliest ready cycle; ties go to
    /// the lowest index (the scheduling order the whole simulation pins).
    /// A plain scan — no iterator refiltering per step — over the handful
    /// of CPUs.
    #[inline]
    fn earliest_ready(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for c in 0..self.cpus.len() {
            if self.done[c] {
                continue;
            }
            match best {
                Some(b) if self.ready[c] >= self.ready[b] => {}
                _ => best = Some(c),
            }
        }
        best
    }

    /// Runs until every CPU finishes or `max_cycles` elapses.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Timeout`] if the budget expires.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, RunError> {
        while let Some(c) = self.earliest_ready() {
            let now = self.ready[c];
            if now.0 > max_cycles {
                return Err(RunError::Timeout { budget: max_cycles });
            }
            let (next, ev) = self.cpus[c].step(now, self.mem.as_mut(), &mut self.phys);
            self.ready[c] = next;
            match ev {
                StepEvent::None => {}
                StepEvent::Halted => self.done[c] = true,
                StepEvent::Hcall(no) => self.handle_hcall(c, now, no),
            }
        }
        Ok(self.summary())
    }

    fn handle_hcall(&mut self, c: usize, now: Cycle, no: HcallNo) {
        match no {
            HcallNo::ResetStats => {
                for cpu in &mut self.cpus {
                    cpu.counters_mut().reset();
                }
                self.mem.stats_mut().reset();
                self.roi_start = now;
            }
            HcallNo::Phase(tag) => self.phases.push((now.0, c, tag)),
            HcallNo::Yield => {
                if let Some(next) = self.queues[c].pop_front() {
                    let saved = self.switch_to(c, next);
                    self.queues[c].push_back(saved);
                }
            }
            HcallNo::Exit => {
                if let Some(next) = self.queues[c].pop_front() {
                    let _ = self.switch_to(c, next);
                } else {
                    self.done[c] = true;
                }
            }
        }
    }

    fn summary(&mut self) -> RunSummary {
        let per_cpu: Vec<CpuCounters> = self.cpus.iter().map(|c| c.counters().clone()).collect();
        let mut total = CpuCounters::new();
        for c in &per_cpu {
            total.merge(c);
        }
        let wall = self
            .ready
            .iter()
            .map(|r| r.0)
            .max()
            .unwrap_or(0)
            .saturating_sub(self.roi_start.0);
        RunSummary {
            arch: self.cfg.arch,
            wall_cycles: wall,
            per_cpu,
            total,
            mem: self.mem.stats().clone(),
            port_util: self.mem.port_utilization(),
            // Hand the recorded markers over instead of cloning them — the
            // machine is finished; a second summary() would start a fresh
            // (empty) list.
            phases: std::mem::take(&mut self.phases),
        }
    }

    /// Read access to physical memory (validation, probes).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }
}

/// Builds, runs and validates `workload` in one call.
///
/// # Errors
///
/// Returns [`RunError::Timeout`] or [`RunError::CheckFailed`].
pub fn run_workload(
    cfg: &MachineConfig,
    workload: &BuiltWorkload,
    max_cycles: u64,
) -> Result<RunSummary, RunError> {
    let mut m = Machine::new(cfg, workload);
    let summary = m.run(max_cycles)?;
    (workload.check)(m.phys()).map_err(RunError::CheckFailed)?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_kernels::build_by_name;

    #[test]
    fn runs_a_parallel_workload_on_all_architectures() {
        let w = build_by_name("eqntott", 4, 0.03).expect("builds");
        for arch in ArchKind::ALL {
            let cfg = MachineConfig::new(arch, CpuKind::Mipsy);
            let s = run_workload(&cfg, &w, 100_000_000)
                .unwrap_or_else(|e| panic!("{arch}: {e}"));
            assert!(s.wall_cycles > 0);
            assert!(s.total.instructions > 100);
        }
    }

    #[test]
    fn multiprog_schedules_processes() {
        let w = build_by_name("multiprog", 4, 0.1).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        let s = run_workload(&cfg, &w, 400_000_000).expect("runs");
        // 8 processes across 4 CPUs: each CPU ran two.
        assert_eq!(s.per_cpu.len(), 4);
        assert!(s.total.stores > 0);
    }

    #[test]
    fn mxs_machine_runs_eqntott() {
        let w = build_by_name("eqntott", 4, 0.02).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mxs);
        let s = run_workload(&cfg, &w, 100_000_000).expect("runs");
        assert!(s.total.mxs_cycles > 0);
        assert!(s.machine_ipc() > 0.0);
    }

    #[test]
    fn mipsy_idealizes_shared_l1_by_default() {
        let cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mipsy);
        assert!(cfg.system_config().ideal_shared_l1);
        let cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mxs);
        assert!(!cfg.system_config().ideal_shared_l1);
        let cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
        assert!(!cfg.system_config().ideal_shared_l1, "only the shared L1 is idealized");
    }

    #[test]
    fn config_overrides_apply() {
        let mut cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mipsy);
        cfg.l2_assoc = Some(4);
        cfg.l1_latency = Some(5);
        cfg.ideal_shared_l1 = Some(false);
        let sc = cfg.system_config();
        assert_eq!(sc.l2.assoc, 4);
        assert_eq!(sc.lat.l1_lat, 5);
        assert!(!sc.ideal_shared_l1);
    }

    #[test]
    fn timeout_is_reported() {
        let w = build_by_name("ocean", 4, 0.2).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        let mut m = Machine::new(&cfg, &w);
        let err = m.run(1_000).expect_err("far too small a budget");
        assert!(matches!(err, RunError::Timeout { budget: 1_000 }));
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn deterministic_across_runs() {
        let w = build_by_name("volpack", 4, 0.05).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
        let a = run_workload(&cfg, &w, 100_000_000).expect("runs");
        let w2 = build_by_name("volpack", 4, 0.05).expect("builds");
        let b = run_workload(&cfg, &w2, 100_000_000).expect("runs");
        assert_eq!(a.wall_cycles, b.wall_cycles, "same seed, same cycles");
        assert_eq!(a.total, b.total);
    }
}

#[cfg(test)]
mod phase_tests {
    use super::*;
    use cmpsim_isa::{Asm, HcallNo, Reg};
    use cmpsim_kernels::{BuiltWorkload, ProcessInit};
    use cmpsim_mem::AddrSpace;

    #[test]
    fn phase_markers_are_recorded_in_order() {
        let mut a = Asm::new(0x1000);
        a.hcall(HcallNo::Phase(1));
        a.li(Reg::T0, 50);
        a.label("work");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "work");
        a.hcall(HcallNo::Phase(2));
        a.halt();
        let prog = a.assemble().expect("assembles");
        let w = BuiltWorkload {
            name: "phases",
            image: vec![(prog.base, prog.words)],
            entries: vec![ProcessInit {
                entry: prog.base,
                space: AddrSpace::identity(),
            }],
            extra_processes: vec![Vec::new()],
            init: Box::new(|_| {}),
            check: Box::new(|_| Ok(())),
        };
        let mut cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        cfg.n_cpus = 1;
        let mut m = Machine::new(&cfg, &w);
        let s = m.run(1_000_000).expect("runs");
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[0].2, 1);
        assert_eq!(s.phases[1].2, 2);
        assert!(s.phases[1].0 > s.phases[0].0 + 100, "work separates the phases");
        assert_eq!(s.phases[0].1, 0, "cpu id recorded");
    }
}

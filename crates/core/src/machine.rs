//! Machine assembly and the simulation run loop.

use cmpsim_cpu::{
    ArchState, CpuCounters, CpuModel, MipsyCpu, MxsConfig, MxsCpu, StagedStep, StepEvent,
};
use cmpsim_engine::{barrier_rounds, Cycle, ReadyHeap};
use cmpsim_isa::HcallNo;
use cmpsim_kernels::BuiltWorkload;
use cmpsim_mem::{
    AddrSpace, ClusteredSystem, ConfigError, MemStats, MemorySystem, MeshSystem, PhysMem,
    SentinelSpec, SentinelViolation, SharedL1System, SharedL2System, SharedMemSystem, SystemConfig,
};
use cmpsim_trace::{sink_to, sink_to_path, SinkHandle, TracingSystem};
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::rc::Rc;
use std::sync::{Mutex, RwLock};

/// Where [`Machine::try_new_inner`] sends the reference trace: a path
/// (from `CMPSIM_TRACE_OUT`) captured crash-safely through an atomic
/// temp-file rename, or a caller-supplied writer (programmatic capture)
/// streamed as-is.
enum TraceDest {
    Path(String),
    Writer(Box<dyn Write>),
}

/// Which of the paper's three architectures to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Figure 1: four CPUs share banked L1 caches through a crossbar.
    SharedL1,
    /// Figure 2: private write-through L1s over a banked shared L2.
    SharedL2,
    /// Figure 3: private L1+L2 per CPU on a snooping MESI bus.
    SharedMem,
    /// Extension (the authors' HPCA'96 follow-up \[16\]): two 2-CPU clusters
    /// each sharing an L1, over the shared L2. Not part of the paper's
    /// three-way comparison, so excluded from [`ArchKind::ALL`].
    Clustered,
    /// Scaling extension: a 2D mesh of tiles (private L1 + router each)
    /// over the directory-kept shared L2, line-interleaved across home
    /// tiles with XY-routed NoC traffic. Not part of the paper's
    /// three-way comparison, so excluded from [`ArchKind::ALL`].
    Mesh,
}

impl ArchKind {
    /// The paper's three architectures, in its presentation order (the
    /// [`ArchKind::Clustered`] extension is driven explicitly by the
    /// extension benches).
    pub const ALL: [ArchKind; 3] = [ArchKind::SharedL1, ArchKind::SharedL2, ArchKind::SharedMem];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::SharedL1 => "shared-L1",
            ArchKind::SharedL2 => "shared-L2",
            ArchKind::SharedMem => "shared-memory",
            ArchKind::Clustered => "clustered",
            ArchKind::Mesh => "mesh",
        }
    }

    /// The paper's configuration for this architecture.
    pub fn config(self, n_cpus: usize) -> SystemConfig {
        match self {
            ArchKind::SharedL1 => SystemConfig::paper_shared_l1(n_cpus),
            ArchKind::SharedL2 => SystemConfig::paper_shared_l2(n_cpus),
            ArchKind::SharedMem => SystemConfig::paper_shared_mem(n_cpus),
            // The clustered extension shares the shared-L2 substrate.
            ArchKind::Clustered => SystemConfig::paper_shared_l2(n_cpus),
            ArchKind::Mesh => SystemConfig::paper_mesh(n_cpus),
        }
    }

    /// Builds the memory system.
    ///
    /// # Panics
    ///
    /// Panics on configurations the architecture rejects (e.g. a cluster
    /// geometry that does not divide the CPU count). Use
    /// [`ArchKind::try_build`] for a fallible variant.
    pub fn build(self, cfg: &SystemConfig) -> Box<dyn MemorySystem> {
        self.try_build(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: surfaces architecture-specific configuration
    /// errors (partial clusters, unrepresentable pooled L1 geometries) as
    /// typed errors instead of panics.
    pub fn try_build(self, cfg: &SystemConfig) -> Result<Box<dyn MemorySystem>, ConfigError> {
        Ok(match self {
            ArchKind::SharedL1 => Box::new(SharedL1System::new(cfg)),
            ArchKind::SharedL2 => Box::new(SharedL2System::new(cfg)),
            ArchKind::SharedMem => Box::new(SharedMemSystem::new(cfg)),
            ArchKind::Clustered => Box::new(ClusteredSystem::try_new(cfg)?),
            ArchKind::Mesh => Box::new(MeshSystem::try_new(cfg)?),
        })
    }
}

impl fmt::Display for ArchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which CPU timing model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuKind {
    /// Simple in-order model; all memory time stalls the CPU.
    Mipsy,
    /// Detailed 2-way dynamic superscalar (paper defaults).
    Mxs,
    /// MXS with a custom configuration (ablations).
    MxsCustom(MxsConfig),
}

impl CpuKind {
    fn is_mipsy(self) -> bool {
        matches!(self, CpuKind::Mipsy)
    }
}

/// Full machine configuration.
///
/// Per the paper's methodology, Mipsy runs idealize the shared L1 (1-cycle
/// hits, no bank contention) while MXS runs model the real 3-cycle hit time
/// and bank conflicts; `ideal_shared_l1` overrides that default for
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    pub arch: ArchKind,
    pub cpu: CpuKind,
    pub n_cpus: usize,
    /// Override the L2 associativity (MP3D ablation).
    pub l2_assoc: Option<usize>,
    /// Override the L2 capacity in bytes (explore size sweeps). Total for
    /// shared configurations, per CPU for shared-memory — the
    /// [`SystemConfig::l2`] convention.
    pub l2_size: Option<u32>,
    /// Override the L2 bank count (explore bank sweeps).
    pub l2_banks: Option<usize>,
    /// Override the shared-L1 hit latency.
    pub l1_latency: Option<u64>,
    /// Override the shared-L1 bank count.
    pub l1_banks: Option<usize>,
    /// Override the L2 occupancy (datapath-width ablation).
    pub l2_occupancy: Option<u64>,
    /// Override the L1 capacity in bytes (cache-size extension study).
    pub l1_size: Option<u32>,
    /// Override the Mipsy/MXS idealization default.
    pub ideal_shared_l1: Option<bool>,
    /// Override the cluster geometry (clustered architecture): CPUs per
    /// cluster-shared L1. `None` keeps the paper default of 2.
    pub cpus_per_cluster: Option<usize>,
    /// Override the tile grid (mesh architecture) as `(rows, cols)`.
    /// `None` keeps the near-square default; rows × cols must equal
    /// `n_cpus` or the build fails validation.
    pub mesh_dims: Option<(usize, usize)>,
    /// Coherence-sentinel specification. `None` resolves from the
    /// environment (`CMPSIM_SENTINEL`, `CMPSIM_FAULT_RATE`,
    /// `CMPSIM_FAULT_SEED`); `Some` pins it regardless of the environment.
    pub sentinel: Option<SentinelSpec>,
    /// Forward-progress watchdog: flag a CPU that graduates nothing for
    /// this many cycles. `None` resolves from `CMPSIM_STALL_CYCLES`
    /// (unset means the watchdog is off).
    pub stall_cycles: Option<u64>,
    /// Shard count for intra-run parallelism (DESIGN.md §12). `None`
    /// resolves from `CMPSIM_SHARDS` (unset means 1: the serial loop).
    /// Results are bit-identical at any shard count; shards only trade
    /// host threads for wall-clock time.
    pub shards: Option<usize>,
}

/// Environment knob naming the forward-progress watchdog limit in cycles.
pub const ENV_STALL_CYCLES: &str = "CMPSIM_STALL_CYCLES";

/// Environment knob naming the shard count for intra-run parallelism
/// (see [`MachineConfig::shards`]).
pub const ENV_SHARDS: &str = "CMPSIM_SHARDS";

/// Environment knob (set to anything) making a sharded run print its
/// stage/commit tallies to stderr when it finishes: rounds run, steps
/// committed from staged records, steps run serially on the spine, and
/// staged tails discarded by read-set validation. Diagnostics only —
/// results are unaffected.
pub const ENV_SHARD_STATS: &str = "CMPSIM_SHARD_STATS";

/// Environment knob naming a file path to capture the reference trace to.
/// Unset (the default) means no capture and exactly zero overhead: the
/// machine runs the raw memory system with no wrapper installed.
pub const ENV_TRACE_OUT: &str = "CMPSIM_TRACE_OUT";

/// Environment knob naming a trace file for replay-driven runs (read by
/// the `cmpsim replay` subcommand and the analysis example, not by
/// [`Machine`] itself).
pub const ENV_TRACE_IN: &str = "CMPSIM_TRACE_IN";

impl MachineConfig {
    /// A 4-CPU paper-default machine.
    pub fn new(arch: ArchKind, cpu: CpuKind) -> MachineConfig {
        MachineConfig {
            arch,
            cpu,
            n_cpus: 4,
            l2_assoc: None,
            l2_size: None,
            l2_banks: None,
            l1_latency: None,
            l1_banks: None,
            l2_occupancy: None,
            l1_size: None,
            ideal_shared_l1: None,
            cpus_per_cluster: None,
            mesh_dims: None,
            sentinel: None,
            stall_cycles: None,
            shards: None,
        }
    }

    /// The shard count this machine will run with: the explicit override
    /// if set, otherwise `CMPSIM_SHARDS` from the environment; 1 (serial)
    /// when neither says otherwise.
    pub fn resolved_shards(&self) -> usize {
        self.shards
            .or_else(|| {
                std::env::var(ENV_SHARDS)
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
            })
            .unwrap_or(1)
            .max(1)
    }

    /// The sentinel spec this machine will run with: the explicit override
    /// if set, otherwise whatever the environment asks for.
    pub fn resolved_sentinel(&self) -> SentinelSpec {
        self.sentinel.unwrap_or_else(SentinelSpec::from_env)
    }

    /// The watchdog stall limit: the explicit override if set, otherwise
    /// `CMPSIM_STALL_CYCLES` from the environment.
    pub fn resolved_stall_cycles(&self) -> Option<u64> {
        self.stall_cycles.or_else(|| {
            std::env::var(ENV_STALL_CYCLES)
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
    }

    /// The trace-capture destination from the environment, if any.
    /// `MachineConfig` is `Copy`, so the path lives in `CMPSIM_TRACE_OUT`
    /// rather than in the config; programmatic capture goes through
    /// [`Machine::try_new_capturing`] instead.
    pub fn resolved_trace_out(&self) -> Option<String> {
        std::env::var(ENV_TRACE_OUT)
            .ok()
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
    }

    /// Resolved memory-system configuration.
    pub fn system_config(&self) -> SystemConfig {
        let mut sc = self.arch.config(self.n_cpus);
        if let Some(a) = self.l2_assoc {
            sc = sc.with_l2_assoc(a);
        }
        if let Some(b) = self.l2_size {
            sc = sc.with_l2_size(b);
        }
        if let Some(b) = self.l2_banks {
            sc = sc.with_l2_banks(b);
        }
        if let Some(l) = self.l1_latency {
            sc = sc.with_l1_latency(l);
        }
        if let Some(b) = self.l1_banks {
            sc = sc.with_l1_banks(b);
        }
        if let Some(o) = self.l2_occupancy {
            sc = sc.with_l2_occupancy(o);
        }
        if let Some(b) = self.l1_size {
            sc = sc.with_l1_size(b);
        }
        if let Some(k) = self.cpus_per_cluster {
            sc = sc.with_cpus_per_cluster(k);
        }
        if let Some((r, c)) = self.mesh_dims {
            sc = sc.with_mesh_dims(r, c);
        }
        let ideal = self.ideal_shared_l1.unwrap_or_else(|| {
            self.cpu.is_mipsy() && matches!(self.arch, ArchKind::SharedL1 | ArchKind::Clustered)
        });
        sc.with_ideal_shared_l1(ideal)
            .with_sentinel(self.resolved_sentinel())
    }
}

/// Per-CPU diagnostic snapshot taken when a run fails to make progress —
/// the payload of the enriched [`RunError::Timeout`] and
/// [`RunError::Stalled`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuDiag {
    /// CPU index.
    pub cpu: usize,
    /// Whether the CPU had already halted.
    pub done: bool,
    /// Architectural program counter at the failure point.
    pub pc: u32,
    /// Cycle at which the CPU would next step.
    pub ready_cycle: u64,
    /// Instructions graduated so far.
    pub instructions: u64,
    /// Outstanding LL reservation (line address), if any.
    pub ll_reservation: Option<u32>,
    /// Cycles since this CPU last graduated an instruction (0 when the
    /// watchdog is off).
    pub stalled_for: u64,
}

impl fmt::Display for CpuDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.done {
            return write!(
                f,
                "cpu {} done ({} instructions)",
                self.cpu, self.instructions
            );
        }
        write!(
            f,
            "cpu {} at pc {:#x}, ready at cycle {}, {} instructions graduated",
            self.cpu, self.pc, self.ready_cycle, self.instructions
        )?;
        if let Some(ll) = self.ll_reservation {
            write!(f, ", LL reservation on line {ll:#x}")?;
        }
        if self.stalled_for > 0 {
            write!(f, ", no progress for {} cycles", self.stalled_for)?;
        }
        Ok(())
    }
}

/// What the machine looked like when the run loop gave up: one
/// [`CpuDiag`] per CPU plus the sentinel's violation count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WatchdogReport {
    /// Per-CPU snapshots, index-ordered.
    pub cpus: Vec<CpuDiag>,
    /// Sentinel violations recorded before the failure (0 with the
    /// sentinel off).
    pub violations: usize,
}

impl WatchdogReport {
    /// The CPUs that had not halted when the run gave up.
    pub fn stuck_cpus(&self) -> impl Iterator<Item = &CpuDiag> {
        self.cpus.iter().filter(|d| !d.done)
    }
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stuck: Vec<&CpuDiag> = self.stuck_cpus().collect();
        if stuck.is_empty() {
            write!(f, "no CPU was stuck")?;
        } else {
            write!(f, "stuck: ")?;
            for (i, d) in stuck.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{d}")?;
            }
        }
        if self.violations > 0 {
            write!(f, " ({} sentinel violations recorded)", self.violations)?;
        }
        Ok(())
    }
}

/// Forward-progress watchdog: per-CPU graduation counts, with the cycle at
/// which each last advanced. Factored out of [`Machine::run`] so the
/// stall-detection arithmetic is unit-testable without building a machine.
#[derive(Debug, Clone)]
pub struct Watchdog {
    limit: u64,
    last_instructions: Vec<u64>,
    last_progress: Vec<u64>,
}

impl Watchdog {
    /// A watchdog flagging any CPU that graduates nothing for more than
    /// `limit` cycles.
    pub fn new(limit: u64, n_cpus: usize) -> Watchdog {
        Watchdog {
            limit,
            last_instructions: vec![0; n_cpus],
            last_progress: vec![0; n_cpus],
        }
    }

    /// The configured stall limit in cycles.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Records `cpu`'s graduation count at `cycle`. Returns
    /// `Some(stalled_for)` when the CPU has gone more than the limit
    /// without graduating anything.
    pub fn observe(&mut self, cpu: usize, cycle: u64, instructions: u64) -> Option<u64> {
        if instructions != self.last_instructions[cpu] {
            self.last_instructions[cpu] = instructions;
            self.last_progress[cpu] = cycle;
            return None;
        }
        let stalled = cycle.saturating_sub(self.last_progress[cpu]);
        (stalled > self.limit).then_some(stalled)
    }

    /// Cycles since `cpu` last made progress, as of `cycle`.
    pub fn stalled_for(&self, cpu: usize, cycle: u64) -> u64 {
        cycle.saturating_sub(self.last_progress[cpu])
    }
}

/// Why a sharded run demoted itself to the serial spine mid-run (see
/// [`ShardStats::demoted`]). Demotion never changes results — staging is
/// pure scheduling — it only gives up the speculative parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemotionReason {
    /// A stage-phase thread panicked. The panicking cell's speculative
    /// buffer was discarded (staging is `&self`, so no CPU state was
    /// touched) and the run finished on the serial spine.
    StagePanic,
    /// Read-set validation discarded staged work faster than it committed
    /// it — a journal-validation storm, the signature of a workload whose
    /// CPUs communicate every few instructions. Staging was costing
    /// wall-clock instead of saving it, so the run demoted.
    ValidationStorm,
}

impl fmt::Display for DemotionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DemotionReason::StagePanic => "stage-thread panic",
            DemotionReason::ValidationStorm => "validation storm",
        })
    }
}

/// Diagnostics from a sharded run: how the commit spine consumed work,
/// and whether (and why) the run demoted itself to serial execution.
/// Purely observational — bit-identity of results holds regardless.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Stage/commit rounds completed.
    pub rounds: u64,
    /// Steps committed from validated staged records.
    pub staged: u64,
    /// Steps executed serially on the spine (drained buffers, spine-only
    /// instructions, or post-demotion execution).
    pub serial: u64,
    /// Staged tails discarded by read-set validation.
    pub invalidated: u64,
    /// Set when the run gave up on staging partway through.
    pub demoted: Option<DemotionReason>,
}

/// Why a run stopped without completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle budget expired before every CPU finished. The report
    /// names the CPUs that never halted, their PCs, graduation counts and
    /// LL reservations.
    Timeout {
        budget: u64,
        report: Box<WatchdogReport>,
    },
    /// The forward-progress watchdog caught a CPU graduating nothing for
    /// more than `limit` cycles (see [`MachineConfig::stall_cycles`]).
    Stalled {
        limit: u64,
        report: Box<WatchdogReport>,
    },
    /// The workload self-check failed after completion.
    CheckFailed(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Timeout { budget, report } => {
                write!(f, "run exceeded the {budget}-cycle budget; {report}")
            }
            RunError::Stalled { limit, report } => {
                write!(
                    f,
                    "forward-progress watchdog fired after {limit} stalled cycles; {report}"
                )
            }
            RunError::CheckFailed(msg) => write!(f, "workload validation failed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Results of one complete run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Architecture that produced this run.
    pub arch: ArchKind,
    /// Wall-clock cycles from the region-of-interest start (or time zero)
    /// to the last CPU finishing.
    pub wall_cycles: u64,
    /// Per-CPU counters.
    pub per_cpu: Vec<CpuCounters>,
    /// All CPUs merged.
    pub total: CpuCounters,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Per-resource utilization (ports, banks, bus).
    pub port_util: Vec<cmpsim_mem::PortUtil>,
    /// Recorded phase markers: (cycle, cpu, tag).
    pub phases: Vec<(u64, usize, u8)>,
    /// Sentinel violations detected during the run (always empty with the
    /// sentinel off; a correct simulator leaves it empty with it on too).
    pub violations: Vec<SentinelViolation>,
}

impl RunSummary {
    /// Aggregate instructions per cycle across all CPUs (MXS runs).
    pub fn machine_ipc(&self) -> f64 {
        if self.wall_cycles == 0 {
            0.0
        } else {
            self.total.instructions as f64 / self.wall_cycles as f64
        }
    }
}

struct ProcessCtx {
    arch: ArchState,
    space: AddrSpace,
}

/// A complete simulated machine: CPUs, memory system, physical memory and
/// the per-CPU process queues of the multiprogramming scheduler.
pub struct Machine {
    cfg: MachineConfig,
    cpus: Vec<Box<dyn CpuModel>>,
    mem: Box<dyn MemorySystem>,
    phys: PhysMem,
    ready: Vec<Cycle>,
    done: Vec<bool>,
    queues: Vec<VecDeque<ProcessCtx>>,
    roi_start: Cycle,
    phases: Vec<(u64, usize, u8)>,
    workload_name: &'static str,
    /// Cached `spec.enabled` so the run loop pays one branch when off.
    sentinel_on: bool,
    /// Resolved watchdog limit (None = watchdog off).
    stall_limit: Option<u64>,
    /// Reference-trace sink when capture is on; the other end is held by
    /// the [`TracingSystem`] wrapped around `mem`. `None` means `mem` is
    /// the raw system — capture off costs exactly zero.
    trace: Option<SinkHandle>,
    /// Diagnostics from the most recent sharded run (`None` until a
    /// sharded run happens).
    shard_stats: Option<ShardStats>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("arch", &self.cfg.arch)
            .field("workload", &self.workload_name)
            .field("n_cpus", &self.cpus.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine and installs `workload` into it.
    ///
    /// # Panics
    ///
    /// Panics if the workload was built for a different CPU count or the
    /// configuration is invalid. Use [`Machine::try_new`] for a fallible
    /// variant.
    pub fn new(cfg: &MachineConfig, workload: &BuiltWorkload) -> Machine {
        Machine::try_new(cfg, workload).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects a workload built for a different CPU
    /// count and invalid system configurations. Honors `CMPSIM_TRACE_OUT`:
    /// when set, the machine captures its reference trace to that path
    /// crash-safely — bytes land at `<path>.tmp` and rename onto the path
    /// only when the footer has been written, so a killed run never
    /// leaves a torn file where a finished trace is expected.
    ///
    /// # Panics
    ///
    /// Panics if `CMPSIM_TRACE_OUT` names a path whose temp file cannot
    /// be created — an environment-knob misuse with no typed-error path.
    pub fn try_new(cfg: &MachineConfig, workload: &BuiltWorkload) -> Result<Machine, ConfigError> {
        let dest = cfg.resolved_trace_out().map(TraceDest::Path);
        Machine::try_new_inner(cfg, workload, dest)
    }

    /// Builds a machine that captures its reference trace into `out`
    /// (ignoring `CMPSIM_TRACE_OUT`), panicking on invalid configurations.
    ///
    /// # Panics
    ///
    /// As [`Machine::new`].
    pub fn new_capturing(
        cfg: &MachineConfig,
        workload: &BuiltWorkload,
        out: Box<dyn Write>,
    ) -> Machine {
        Machine::try_new_capturing(cfg, workload, out).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Machine::new_capturing`]: the programmatic capture entry
    /// point — every memory access the CPUs issue is appended to `out` in
    /// the `cmpsim-trace` binary format, and the trace is finished when
    /// the run completes.
    ///
    /// # Errors
    ///
    /// As [`Machine::try_new`].
    pub fn try_new_capturing(
        cfg: &MachineConfig,
        workload: &BuiltWorkload,
        out: Box<dyn Write>,
    ) -> Result<Machine, ConfigError> {
        Machine::try_new_inner(cfg, workload, Some(TraceDest::Writer(out)))
    }

    fn try_new_inner(
        cfg: &MachineConfig,
        workload: &BuiltWorkload,
        trace_out: Option<TraceDest>,
    ) -> Result<Machine, ConfigError> {
        if workload.entries.len() != cfg.n_cpus {
            return Err(ConfigError::WorkloadCpuMismatch {
                workload: workload.entries.len(),
                machine: cfg.n_cpus,
            });
        }
        let sc = cfg.system_config();
        sc.validate()?;
        if let CpuKind::MxsCustom(mc) = cfg.cpu {
            mc.validate()?;
        }
        let mem = cfg.arch.try_build(&sc)?;
        // Install the capture decorator only when asked: the wrapper
        // forwards everything unchanged (a traced run is bit-identical to
        // an untraced one), and its absence means zero overhead.
        let (mem, trace): (Box<dyn MemorySystem>, Option<SinkHandle>) = match trace_out {
            Some(dest) => {
                let sink = match dest {
                    TraceDest::Path(path) => sink_to_path(&path, cfg.n_cpus, mem.line_bytes())
                        .unwrap_or_else(|e| panic!("{ENV_TRACE_OUT}={path}: {e}")),
                    TraceDest::Writer(out) => sink_to(out, cfg.n_cpus, mem.line_bytes())
                        .unwrap_or_else(|e| panic!("trace capture failed: {e}")),
                };
                (
                    Box::new(TracingSystem::new(mem, Rc::clone(&sink))),
                    Some(sink),
                )
            }
            None => (mem, None),
        };
        let mut phys = PhysMem::new(cfg.n_cpus);
        workload.install(&mut phys);
        // Arm the oracle only after the image is installed so the initial
        // contents are snapshotted.
        phys.enable_sentinel(&sc.sentinel);
        let cpus: Vec<Box<dyn CpuModel>> = workload
            .entries
            .iter()
            .enumerate()
            .map(|(c, p)| -> Box<dyn CpuModel> {
                match cfg.cpu {
                    CpuKind::Mipsy => Box::new(MipsyCpu::new(c, p.entry, p.space)),
                    CpuKind::Mxs => Box::new(MxsCpu::new(c, p.entry, p.space)),
                    CpuKind::MxsCustom(mc) => {
                        Box::new(MxsCpu::with_config(c, p.entry, p.space, mc))
                    }
                }
            })
            .collect();
        let queues = workload
            .extra_processes
            .iter()
            .map(|v| {
                v.iter()
                    .map(|p| ProcessCtx {
                        arch: ArchState::new(p.entry),
                        space: p.space,
                    })
                    .collect()
            })
            .collect();
        Ok(Machine {
            cfg: *cfg,
            cpus,
            mem,
            phys,
            ready: vec![Cycle::ZERO; workload.entries.len()],
            done: vec![false; workload.entries.len()],
            queues,
            roi_start: Cycle::ZERO,
            phases: Vec::new(),
            workload_name: workload.name,
            sentinel_on: sc.sentinel.enabled,
            stall_limit: cfg.resolved_stall_cycles(),
            trace,
            shard_stats: None,
        })
    }

    /// A [`ReadyHeap`] seeded with every not-done CPU at its ready cycle.
    fn ready_heap(&self) -> ReadyHeap {
        let mut heap = ReadyHeap::new(self.cpus.len());
        for c in 0..self.cpus.len() {
            if !self.done[c] {
                heap.set(c, self.ready[c]);
            }
        }
        heap
    }

    /// Runs until every CPU finishes or `max_cycles` elapses.
    ///
    /// With a resolved shard count above 1 (see [`MachineConfig::shards`])
    /// and a machine the sharded loop supports — more than one CPU, every
    /// model stageable, sentinel off — the run executes on the sharded
    /// loop (DESIGN.md §12); results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Timeout`] if the budget expires.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, RunError> {
        let shards = self.cfg.resolved_shards();
        if shards > 1
            && !self.sentinel_on
            && self.cpus.len() > 1
            && self.cpus.iter().all(|c| c.stageable())
        {
            self.run_sharded(max_cycles, shards)
        } else {
            self.run_serial(max_cycles)
        }
    }

    /// The serial run loop: steps the earliest-ready CPU until all halt.
    fn run_serial(&mut self, max_cycles: u64) -> Result<RunSummary, RunError> {
        let mut watchdog = self.stall_limit.map(|l| Watchdog::new(l, self.cpus.len()));
        let mut heap = self.ready_heap();
        while let Some((now, c)) = heap.peek() {
            if now.0 > max_cycles {
                let report = self.diagnose(now.0, watchdog.as_ref());
                return Err(RunError::Timeout {
                    budget: max_cycles,
                    report: Box::new(report),
                });
            }
            if self.sentinel_on {
                self.phys.sentinel_context(c, now.0);
            }
            let (next, ev) = self.cpus[c].step(now, self.mem.as_mut(), &mut self.phys);
            if self.sentinel_on {
                self.phys.sentinel_heal();
            }
            self.ready[c] = next;
            // Handle the event before consulting the watchdog: a step that
            // halts (or exits the last process) must never be reported as
            // stalled, even when it graduated nothing — MXS can spend its
            // final cycles draining without graduation.
            match ev {
                StepEvent::None => {}
                StepEvent::Halted => self.done[c] = true,
                StepEvent::Hcall(no) => self.handle_hcall(c, now, no),
            }
            if let Some(w) = &mut watchdog {
                if !self.done[c]
                    && w.observe(c, next.0, self.cpus[c].counters().instructions)
                        .is_some()
                {
                    let limit = w.limit();
                    let report = self.diagnose(next.0, watchdog.as_ref());
                    return Err(RunError::Stalled {
                        limit,
                        report: Box::new(report),
                    });
                }
            }
            if self.done[c] {
                heap.remove(c);
            } else {
                heap.set(c, next);
            }
        }
        Ok(self.summary())
    }

    /// The sharded run loop (DESIGN.md §12): rounds alternate a parallel
    /// *stage* phase — each of `shards` participants executes its CPUs
    /// ahead of time against a frozen memory snapshot — with a serial
    /// *commit* phase on this thread that replays the staged records in
    /// canonical `(cycle, cpu)` order, validating each step's read words
    /// against the round's store journal and falling back to plain serial
    /// stepping whenever cross-CPU communication invalidated a record.
    /// Every memory-system access, physical-memory write and counter
    /// update happens on the commit spine in exactly the serial order, so
    /// the results are bit-identical to [`Machine::run_serial`].
    fn run_sharded(&mut self, max_cycles: u64, shards: usize) -> Result<RunSummary, RunError> {
        struct StageCell {
            cpu: Box<dyn CpuModel>,
            staged: Vec<StagedStep>,
            cursor: usize,
            active: bool,
        }
        enum Stop {
            Timeout(u64),
            Stalled { limit: u64, now: u64 },
        }

        // How far ahead a shard may run: scaled from the memory system's
        // minimum cross-CPU interaction latency. Correctness never depends
        // on this value (validation catches every conflict); it only trades
        // per-round overhead against the cost of discarded work.
        let budget = (self.mem.cross_cpu_lookahead() * 16).clamp(64, 256) as usize;

        let mut heap = self.ready_heap();
        let mut phys = std::mem::replace(&mut self.phys, PhysMem::new(0));
        phys.arm_slice_journal();
        let phys_lock = RwLock::new(phys);
        let cells: Vec<Mutex<StageCell>> = std::mem::take(&mut self.cpus)
            .into_iter()
            .enumerate()
            .map(|(c, cpu)| {
                Mutex::new(StageCell {
                    cpu,
                    staged: Vec::new(),
                    cursor: 0,
                    active: !self.done[c],
                })
            })
            .collect();
        let mut watchdog = self.stall_limit.map(|l| Watchdog::new(l, cells.len()));
        let mut stop: Option<Stop> = None;

        // Diagnostic tallies, reported on stderr under CMPSIM_SHARD_STATS:
        // how many steps committed from staged records versus running
        // serially on the spine, and how often validation discarded a tail.
        let (mut n_rounds, mut n_staged, mut n_serial, mut n_invalidated) =
            (0u64, 0u64, 0u64, 0u64);
        let (r_rounds, r_staged, r_serial, r_inval) = (
            &mut n_rounds,
            &mut n_staged,
            &mut n_serial,
            &mut n_invalidated,
        );

        // Graceful degradation: instead of aborting, the run demotes
        // itself to the serial spine when staging stops being safe (a
        // stage thread panicked) or stops paying (validation storm).
        // `stage_panic` is the stage→commit signal; `demoted_flag` is the
        // commit→stage signal telling the team to stop staging.
        let mut demotion: Option<DemotionReason> = None;
        let demote_ref = &mut demotion;
        let stage_panic = std::sync::atomic::AtomicBool::new(false);
        let demoted_flag = std::sync::atomic::AtomicBool::new(false);
        // Below this many invalidations the storm detector stays quiet:
        // startup communication bursts are normal and staging recovers.
        const STORM_MIN_INVALIDATIONS: u64 = 10_000;

        let this = &mut *self;
        let watchdog_ref = &mut watchdog;
        let stop_ref = &mut stop;
        barrier_rounds(
            shards,
            |w| {
                // Stage phase: memory is frozen (read lock); each
                // participant speculatively executes its CPUs into
                // per-cell buffers. CPU-to-shard assignment is striped but
                // any assignment yields identical results — staging is
                // per-CPU work against the same snapshot.
                if demoted_flag.load(std::sync::atomic::Ordering::Relaxed) {
                    return; // demoted: the spine does all the work now
                }
                let phys = phys_lock.read().unwrap();
                for i in (w..cells.len()).step_by(shards) {
                    let mut cell = cells[i].lock().unwrap();
                    let cell = &mut *cell;
                    if !cell.active {
                        continue;
                    }
                    debug_assert!(cell.staged.is_empty());
                    // A panicking model must not kill the run: stage() is
                    // `&self`, so unwinding cannot corrupt CPU state — the
                    // half-filled buffer is dropped and the commit spine
                    // demotes the run to serial execution.
                    let staged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cell.cpu.stage(&phys, budget, &mut cell.staged)
                    }));
                    if staged.is_err() {
                        cell.staged.clear();
                        cell.cursor = 0;
                        stage_panic.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            },
            || {
                // Commit phase: exclusive access (the stage team is parked
                // at the barrier). Replays the canonical serial schedule,
                // consuming staged records where valid.
                let mut guards: Vec<_> = cells.iter().map(|c| c.lock().unwrap()).collect();
                let mut phys = phys_lock.write().unwrap();
                phys.slice_journal_mut()
                    .expect("journal armed for the sharded run")
                    .begin_slice();
                if stage_panic.swap(false, std::sync::atomic::Ordering::Relaxed)
                    && demote_ref.is_none()
                {
                    // Discard every cell's speculative work, not just the
                    // panicking cell's: simplest invariant, and the steps
                    // simply recompute serially with identical results.
                    *demote_ref = Some(DemotionReason::StagePanic);
                    demoted_flag.store(true, std::sync::atomic::Ordering::Relaxed);
                    for g in guards.iter_mut() {
                        g.staged.clear();
                        g.cursor = 0;
                    }
                }
                loop {
                    let Some((now, c)) = heap.peek() else {
                        return false; // every CPU finished
                    };
                    if now.0 > max_cycles {
                        *stop_ref = Some(Stop::Timeout(now.0));
                        return false;
                    }
                    phys.slice_journal_mut().expect("journal armed").set_cpu(c);
                    let cell = &mut *guards[c];
                    let (next, ev) = if cell.cursor < cell.staged.len() {
                        let s = cell.staged[cell.cursor];
                        let journal = phys.slice_journal().expect("journal armed");
                        let valid = s
                            .read_words()
                            .iter()
                            .all(|w| !journal.written_by_other(*w, c));
                        if valid {
                            *r_staged += 1;
                            cell.cursor += 1;
                            cell.cpu
                                .commit_staged(now, &s, this.mem.as_mut(), &mut phys)
                        } else {
                            *r_inval += 1;
                            // Another CPU wrote something this step read:
                            // the whole staged tail is stale. Drop it and
                            // run the real step serially.
                            cell.staged.clear();
                            cell.cursor = 0;
                            cell.cpu.step(now, this.mem.as_mut(), &mut phys)
                        }
                    } else {
                        // Nothing staged (drained, or the next instruction
                        // needs the spine: SC, HCALL, HALT).
                        *r_serial += 1;
                        cell.cpu.step(now, this.mem.as_mut(), &mut phys)
                    };
                    this.ready[c] = next;
                    match ev {
                        StepEvent::None => {}
                        StepEvent::Halted => {
                            this.done[c] = true;
                        }
                        StepEvent::Hcall(no) => {
                            let mut refs: Vec<&mut Box<dyn CpuModel>> =
                                guards.iter_mut().map(|g| &mut g.cpu).collect();
                            handle_hcall_parts(
                                c,
                                now,
                                no,
                                &mut refs,
                                this.mem.as_mut(),
                                &mut this.queues,
                                &mut this.phases,
                                this.trace.as_ref(),
                                &mut this.roi_start,
                                &mut this.done,
                            );
                        }
                    }
                    if this.done[c] {
                        let cell = &mut *guards[c];
                        cell.staged.clear();
                        cell.cursor = 0;
                    }
                    if let Some(w) = watchdog_ref {
                        if !this.done[c]
                            && w.observe(c, next.0, guards[c].cpu.counters().instructions)
                                .is_some()
                        {
                            *stop_ref = Some(Stop::Stalled {
                                limit: w.limit(),
                                now: next.0,
                            });
                            return false;
                        }
                    }
                    if this.done[c] {
                        heap.remove(c);
                    } else {
                        heap.set(c, next);
                    }
                    if demote_ref.is_none()
                        && *r_inval >= STORM_MIN_INVALIDATIONS
                        && *r_inval > *r_staged
                    {
                        // Validation is discarding more than it keeps:
                        // staging is pure overhead for this workload.
                        // Demote and let this commit pass run the rest of
                        // the program serially.
                        *demote_ref = Some(DemotionReason::ValidationStorm);
                        demoted_flag.store(true, std::sync::atomic::Ordering::Relaxed);
                        for g in guards.iter_mut() {
                            g.staged.clear();
                            g.cursor = 0;
                        }
                    }
                    // Once demoted there is no next stage phase worth
                    // feeding, so the spine keeps stepping until the run
                    // finishes rather than breaking the round.
                    if demote_ref.is_none() && guards.iter().all(|g| g.cursor >= g.staged.len()) {
                        break; // round fully drained
                    }
                }
                *r_rounds += 1;
                for (i, g) in guards.iter_mut().enumerate() {
                    g.staged.clear();
                    g.cursor = 0;
                    g.active = !this.done[i];
                }
                !heap.is_empty()
            },
        );

        self.shard_stats = Some(ShardStats {
            rounds: n_rounds,
            staged: n_staged,
            serial: n_serial,
            invalidated: n_invalidated,
            demoted: demotion,
        });
        if std::env::var(ENV_SHARD_STATS).is_ok() {
            let demoted = demotion.map_or(String::new(), |r| format!(" demoted={r}"));
            eprintln!(
                "shard stats: rounds={n_rounds} staged={n_staged} serial={n_serial} invalidated={n_invalidated}{demoted}"
            );
        }

        // Reassemble the machine before reporting, so error reports and the
        // summary read the same fields as the serial path.
        let mut phys = phys_lock.into_inner().unwrap();
        phys.disarm_slice_journal();
        self.phys = phys;
        self.cpus = cells
            .into_iter()
            .map(|m| m.into_inner().unwrap().cpu)
            .collect();
        match stop {
            Some(Stop::Timeout(now)) => Err(RunError::Timeout {
                budget: max_cycles,
                report: Box::new(self.diagnose(now, watchdog.as_ref())),
            }),
            Some(Stop::Stalled { limit, now }) => Err(RunError::Stalled {
                limit,
                report: Box::new(self.diagnose(now, watchdog.as_ref())),
            }),
            None => Ok(self.summary()),
        }
    }

    /// Snapshots every CPU for a failure report.
    fn diagnose(&self, now: u64, watchdog: Option<&Watchdog>) -> WatchdogReport {
        let cpus = (0..self.cpus.len())
            .map(|c| CpuDiag {
                cpu: c,
                done: self.done[c],
                pc: self.cpus[c].arch().pc,
                ready_cycle: self.ready[c].0,
                instructions: self.cpus[c].counters().instructions,
                ll_reservation: self.phys.link(c),
                stalled_for: watchdog.map_or(0, |w| w.stalled_for(c, now)),
            })
            .collect();
        WatchdogReport {
            cpus,
            violations: self.mem.violations().len() + self.phys.violations().len(),
        }
    }

    fn handle_hcall(&mut self, c: usize, now: Cycle, no: HcallNo) {
        let mut refs: Vec<&mut Box<dyn CpuModel>> = self.cpus.iter_mut().collect();
        handle_hcall_parts(
            c,
            now,
            no,
            &mut refs,
            self.mem.as_mut(),
            &mut self.queues,
            &mut self.phases,
            self.trace.as_ref(),
            &mut self.roi_start,
            &mut self.done,
        );
    }

    fn summary(&mut self) -> RunSummary {
        // Seal the capture (chunk flush + footer) before reporting; the
        // sink also finishes best-effort on drop for error paths.
        if let Some(t) = &self.trace {
            t.borrow_mut()
                .finish()
                .unwrap_or_else(|e| panic!("trace capture failed: {e}"));
        }
        let per_cpu: Vec<CpuCounters> = self.cpus.iter().map(|c| c.counters().clone()).collect();
        let mut total = CpuCounters::new();
        for c in &per_cpu {
            total.merge(c);
        }
        let wall = self
            .ready
            .iter()
            .map(|r| r.0)
            .max()
            .unwrap_or(0)
            .saturating_sub(self.roi_start.0);
        RunSummary {
            arch: self.cfg.arch,
            wall_cycles: wall,
            per_cpu,
            total,
            mem: self.mem.stats().clone(),
            port_util: self.mem.port_utilization(),
            // Hand the recorded markers over instead of cloning them — the
            // machine is finished; a second summary() would start a fresh
            // (empty) list.
            phases: std::mem::take(&mut self.phases),
            violations: {
                let mut v = self.mem.violations().to_vec();
                v.extend(self.phys.violations());
                v
            },
        }
    }

    /// Read access to physical memory (validation, probes).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Diagnostics from the most recent sharded run: commit tallies and
    /// the demotion record, if the run gave up on staging. `None` until a
    /// sharded run happens (serial runs don't produce shard stats).
    pub fn shard_stats(&self) -> Option<ShardStats> {
        self.shard_stats
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Capture progress when tracing is on: `(records, encoded bytes)`.
    pub fn trace_progress(&self) -> Option<(u64, u64)> {
        self.trace.as_ref().map(|t| {
            let t = t.borrow();
            (t.records(), t.bytes_written())
        })
    }
}

/// Switches `cpu` to the context `next`, returning the saved context.
fn switch_ctx(cpu: &mut dyn CpuModel, next: ProcessCtx) -> ProcessCtx {
    let saved = ProcessCtx {
        arch: cpu.arch().clone(),
        space: cpu.space(),
    };
    *cpu.arch_mut() = next.arch;
    cpu.set_space(next.space);
    cpu.flush();
    saved
}

/// Services a harness call. Free-standing (rather than a [`Machine`]
/// method) so the sharded commit phase, whose CPUs live behind per-cell
/// locks, can call it with the same semantics as the serial loop.
#[allow(clippy::too_many_arguments)]
fn handle_hcall_parts(
    c: usize,
    now: Cycle,
    no: HcallNo,
    cpus: &mut [&mut Box<dyn CpuModel>],
    mem: &mut dyn MemorySystem,
    queues: &mut [VecDeque<ProcessCtx>],
    phases: &mut Vec<(u64, usize, u8)>,
    trace: Option<&SinkHandle>,
    roi_start: &mut Cycle,
    done: &mut [bool],
) {
    match no {
        HcallNo::ResetStats => {
            for cpu in cpus.iter_mut() {
                cpu.counters_mut().reset();
            }
            mem.stats_mut().reset();
            // The reset is invisible at the access boundary, so the
            // trace carries an explicit marker — replay re-applies it
            // to reproduce region-of-interest statistics exactly.
            if let Some(t) = trace {
                t.borrow_mut().record_reset(now.0);
            }
            *roi_start = now;
        }
        HcallNo::Phase(tag) => phases.push((now.0, c, tag)),
        HcallNo::Yield => {
            if let Some(next) = queues[c].pop_front() {
                let saved = switch_ctx(cpus[c].as_mut(), next);
                queues[c].push_back(saved);
            }
        }
        HcallNo::Exit => {
            if let Some(next) = queues[c].pop_front() {
                let _ = switch_ctx(cpus[c].as_mut(), next);
            } else {
                done[c] = true;
            }
        }
    }
}

/// Builds, runs and validates `workload` in one call.
///
/// # Errors
///
/// Returns [`RunError::Timeout`] or [`RunError::CheckFailed`].
pub fn run_workload(
    cfg: &MachineConfig,
    workload: &BuiltWorkload,
    max_cycles: u64,
) -> Result<RunSummary, RunError> {
    let mut m = Machine::new(cfg, workload);
    let summary = m.run(max_cycles)?;
    (workload.check)(m.phys()).map_err(RunError::CheckFailed)?;
    Ok(summary)
}

/// The supervisor's stalled-run policy, factored out of
/// [`run_workload_resilient`] so the decision arithmetic is unit-testable
/// without building a machine: a [`RunError::Stalled`] result from a
/// sharded run (`shards > 1`) is retried exactly once via `serial`; any
/// other outcome — success, timeout, a stall that was already serial —
/// passes through untouched. Returns the final result and whether the
/// serial retry ran.
pub fn retry_stalled_serial<T>(
    shards: usize,
    first: Result<T, RunError>,
    serial: impl FnOnce() -> Result<T, RunError>,
) -> (Result<T, RunError>, bool) {
    match first {
        Err(RunError::Stalled { .. }) if shards > 1 => (serial(), true),
        other => (other, false),
    }
}

/// [`run_workload`] with the supervisor's stalled-run follow-through: a
/// sharded run that trips the forward-progress watchdog is retried once
/// on the serial spine (`shards = 1`), on the theory that the stall may
/// be a scheduling artifact of the host rather than the simulated
/// program. If the serial retry stalls too, the error — whose `Display`
/// embeds the full [`WatchdogReport`] — propagates, so a supervised
/// sweep surfaces the report in its quarantine record.
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_workload_resilient(
    cfg: &MachineConfig,
    workload: &BuiltWorkload,
    max_cycles: u64,
) -> Result<RunSummary, RunError> {
    let shards = cfg.resolved_shards();
    let first = run_workload(cfg, workload, max_cycles);
    let (result, _retried) = retry_stalled_serial(shards, first, || {
        let mut serial_cfg = *cfg;
        serial_cfg.shards = Some(1);
        run_workload(&serial_cfg, workload, max_cycles)
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_kernels::build_by_name;

    #[test]
    fn runs_a_parallel_workload_on_all_architectures() {
        let w = build_by_name("eqntott", 4, 0.03).expect("builds");
        for arch in ArchKind::ALL {
            let cfg = MachineConfig::new(arch, CpuKind::Mipsy);
            let s = run_workload(&cfg, &w, 100_000_000).unwrap_or_else(|e| panic!("{arch}: {e}"));
            assert!(s.wall_cycles > 0);
            assert!(s.total.instructions > 100);
        }
    }

    #[test]
    fn multiprog_schedules_processes() {
        let w = build_by_name("multiprog", 4, 0.1).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        let s = run_workload(&cfg, &w, 400_000_000).expect("runs");
        // 8 processes across 4 CPUs: each CPU ran two.
        assert_eq!(s.per_cpu.len(), 4);
        assert!(s.total.stores > 0);
    }

    #[test]
    fn mxs_machine_runs_eqntott() {
        let w = build_by_name("eqntott", 4, 0.02).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mxs);
        let s = run_workload(&cfg, &w, 100_000_000).expect("runs");
        assert!(s.total.mxs_cycles > 0);
        assert!(s.machine_ipc() > 0.0);
    }

    #[test]
    fn mipsy_idealizes_shared_l1_by_default() {
        let cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mipsy);
        assert!(cfg.system_config().ideal_shared_l1);
        let cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mxs);
        assert!(!cfg.system_config().ideal_shared_l1);
        let cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
        assert!(
            !cfg.system_config().ideal_shared_l1,
            "only the shared L1 is idealized"
        );
    }

    #[test]
    fn config_overrides_apply() {
        let mut cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mipsy);
        cfg.l2_assoc = Some(4);
        cfg.l1_latency = Some(5);
        cfg.ideal_shared_l1 = Some(false);
        let sc = cfg.system_config();
        assert_eq!(sc.l2.assoc, 4);
        assert_eq!(sc.lat.l1_lat, 5);
        assert!(!sc.ideal_shared_l1);
    }

    #[test]
    fn timeout_is_reported() {
        let w = build_by_name("ocean", 4, 0.2).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        let mut m = Machine::new(&cfg, &w);
        let err = m.run(1_000).expect_err("far too small a budget");
        assert!(matches!(err, RunError::Timeout { budget: 1_000, .. }));
        let msg = err.to_string();
        assert!(msg.contains("budget"));
        // The enriched report names the stuck CPUs and their PCs.
        assert!(msg.contains("stuck"), "{msg}");
        assert!(msg.contains("pc 0x"), "{msg}");
        if let RunError::Timeout { report, .. } = err {
            assert_eq!(report.cpus.len(), 4);
            assert!(report.stuck_cpus().count() > 0);
        }
    }

    #[test]
    fn watchdog_flags_a_cpu_that_stops_graduating() {
        let mut w = Watchdog::new(100, 2);
        assert_eq!(w.observe(0, 10, 5), None, "progress resets the clock");
        assert_eq!(w.observe(0, 50, 5), None, "within the limit");
        assert_eq!(w.observe(1, 400, 0), Some(400), "cpu 1 never graduated");
        assert_eq!(
            w.observe(0, 111, 6),
            None,
            "new instructions count as progress"
        );
        assert_eq!(w.stalled_for(0, 200), 89);
    }

    #[test]
    fn try_new_rejects_workload_cpu_mismatch() {
        let w = build_by_name("eqntott", 4, 0.03).expect("builds");
        let mut cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        cfg.n_cpus = 2;
        let err = Machine::try_new(&cfg, &w).expect_err("4-CPU workload on a 2-CPU machine");
        assert!(matches!(
            err,
            cmpsim_mem::ConfigError::WorkloadCpuMismatch {
                workload: 4,
                machine: 2
            }
        ));
        assert!(err.to_string().contains("different CPU count"));
    }

    #[test]
    fn try_new_rejects_bad_mxs_configs() {
        let w = build_by_name("eqntott", 4, 0.03).expect("builds");
        let starved = MxsConfig {
            phys_regs: 40,
            ..MxsConfig::default()
        };
        let cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::MxsCustom(starved));
        let err = Machine::try_new(&cfg, &w).expect_err("starved register file");
        assert!(matches!(
            err,
            cmpsim_mem::ConfigError::TooFewPhysRegs { phys_regs: 40, .. }
        ));
        assert!(err.to_string().contains("32 + rob_entries"));
    }

    /// The trace contract end to end: a traced run is bit-identical to an
    /// untraced one (the wrapper cannot perturb the experiment), and
    /// replaying the capture into a fresh system built from configuration
    /// alone reproduces the memory statistics bit for bit.
    #[test]
    fn captured_trace_replays_to_identical_mem_stats() {
        let cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
        let w = build_by_name("eqntott", 4, 0.03).expect("builds");
        let (summary, bytes) = crate::probe::capture_run(&cfg, &w, 100_000_000).expect("captures");

        let w2 = build_by_name("eqntott", 4, 0.03).expect("builds");
        let plain = run_workload(&cfg, &w2, 100_000_000).expect("runs");
        assert_eq!(
            format!("{:?}", summary.mem),
            format!("{:?}", plain.mem),
            "capture must not perturb the run it observes"
        );

        let mut sys = cfg.arch.build(&cfg.system_config());
        let rs = cmpsim_trace::replay_bytes(&bytes, sys.as_mut()).expect("replays");
        assert!(rs.accesses > 1_000);
        assert_eq!(
            format!("{:?}", sys.stats()),
            format!("{:?}", plain.mem),
            "replay must reproduce MemStats bit-identically"
        );
        assert_eq!(
            format!("{:?}", sys.port_utilization()),
            format!("{:?}", plain.port_util),
        );
    }

    /// A CPU model whose one and only step consumes a long stretch of
    /// simulated time and halts without graduating anything — the shape
    /// that used to trip the watchdog: observing *before* handling
    /// [`StepEvent::Halted`] reported the halting CPU as stalled.
    struct StubCpu {
        arch: ArchState,
        space: AddrSpace,
        counters: CpuCounters,
        halted: bool,
    }

    impl CpuModel for StubCpu {
        fn step(
            &mut self,
            now: Cycle,
            _mem: &mut dyn MemorySystem,
            _phys: &mut PhysMem,
        ) -> (Cycle, StepEvent) {
            self.halted = true;
            (now + 10_000, StepEvent::Halted)
        }
        fn arch(&self) -> &ArchState {
            &self.arch
        }
        fn arch_mut(&mut self) -> &mut ArchState {
            &mut self.arch
        }
        fn set_space(&mut self, space: AddrSpace) {
            self.space = space;
        }
        fn space(&self) -> AddrSpace {
            self.space
        }
        fn flush(&mut self) {}
        fn halted(&self) -> bool {
            self.halted
        }
        fn counters(&self) -> &CpuCounters {
            &self.counters
        }
        fn counters_mut(&mut self) -> &mut CpuCounters {
            &mut self.counters
        }
    }

    #[test]
    fn watchdog_does_not_flag_a_halting_step() {
        let cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        let sc = cfg.system_config();
        let mut m = Machine {
            cfg,
            cpus: vec![Box::new(StubCpu {
                arch: ArchState::new(0x1000),
                space: AddrSpace::identity(),
                counters: CpuCounters::new(),
                halted: false,
            })],
            mem: Box::new(SharedMemSystem::new(&sc)),
            phys: PhysMem::new(1),
            ready: vec![Cycle::ZERO],
            done: vec![false],
            queues: vec![VecDeque::new()],
            roi_start: Cycle::ZERO,
            phases: Vec::new(),
            workload_name: "stub",
            sentinel_on: false,
            // Far below the stub's 10_000-cycle final step: the old
            // observe-before-event order reported this run as Stalled.
            stall_limit: Some(100),
            trace: None,
            shard_stats: None,
        };
        let s = m
            .run(1_000_000)
            .expect("a halting step must never be reported as stalled");
        assert_eq!(s.total.instructions, 0);
    }

    /// The tentpole contract: a sharded run is bit-identical to the serial
    /// one — same cycles, same counters, same memory statistics — for any
    /// shard count.
    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        for name in ["eqntott", "mp3d"] {
            let mut serial_cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
            serial_cfg.shards = Some(1);
            let w = build_by_name(name, 4, 0.03).expect("builds");
            let a = run_workload(&serial_cfg, &w, 200_000_000).expect("serial runs");
            for shards in [2usize, 4, 7] {
                let mut cfg = serial_cfg;
                cfg.shards = Some(shards);
                let w = build_by_name(name, 4, 0.03).expect("builds");
                let b = run_workload(&cfg, &w, 200_000_000).expect("sharded runs");
                assert_eq!(a.wall_cycles, b.wall_cycles, "{name} @ {shards} shards");
                assert_eq!(a.total, b.total, "{name} @ {shards} shards");
                assert_eq!(a.per_cpu, b.per_cpu, "{name} @ {shards} shards");
                assert_eq!(
                    format!("{:?}", a.mem),
                    format!("{:?}", b.mem),
                    "{name} @ {shards} shards"
                );
                assert_eq!(
                    format!("{:?}", a.port_util),
                    format!("{:?}", b.port_util),
                    "{name} @ {shards} shards"
                );
            }
        }
    }

    /// Context switches (multiprogramming hcalls) ride the commit spine;
    /// the scheduler's interleaving must survive sharding bit for bit.
    #[test]
    fn sharded_multiprog_matches_serial() {
        let mut cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
        cfg.shards = Some(1);
        let w = build_by_name("multiprog", 4, 0.1).expect("builds");
        let a = run_workload(&cfg, &w, 400_000_000).expect("serial runs");
        cfg.shards = Some(4);
        let w = build_by_name("multiprog", 4, 0.1).expect("builds");
        let b = run_workload(&cfg, &w, 400_000_000).expect("sharded runs");
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.total, b.total);
        assert_eq!(a.phases, b.phases);
        assert_eq!(format!("{:?}", a.mem), format!("{:?}", b.mem));
    }

    /// MXS models opt out of staging; a sharded config must still run them
    /// (serially) and produce the serial results.
    #[test]
    fn sharded_config_with_mxs_falls_back_to_serial() {
        let mut cfg = MachineConfig::new(ArchKind::SharedL1, CpuKind::Mxs);
        cfg.shards = Some(4);
        let w = build_by_name("eqntott", 4, 0.02).expect("builds");
        let b = run_workload(&cfg, &w, 100_000_000).expect("runs");
        cfg.shards = Some(1);
        let w = build_by_name("eqntott", 4, 0.02).expect("builds");
        let a = run_workload(&cfg, &w, 100_000_000).expect("runs");
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.total, b.total);
    }

    #[test]
    fn deterministic_across_runs() {
        let w = build_by_name("volpack", 4, 0.05).expect("builds");
        let cfg = MachineConfig::new(ArchKind::SharedL2, CpuKind::Mipsy);
        let a = run_workload(&cfg, &w, 100_000_000).expect("runs");
        let w2 = build_by_name("volpack", 4, 0.05).expect("builds");
        let b = run_workload(&cfg, &w2, 100_000_000).expect("runs");
        assert_eq!(a.wall_cycles, b.wall_cycles, "same seed, same cycles");
        assert_eq!(a.total, b.total);
    }

    /// A stageable CPU whose stage() always panics: the fault-injection
    /// fixture for graceful degradation. step() runs a short countdown
    /// so the demoted run still completes on the spine.
    struct PanicStageCpu {
        arch: ArchState,
        space: AddrSpace,
        counters: CpuCounters,
        remaining: u32,
        halted: bool,
    }

    impl CpuModel for PanicStageCpu {
        fn step(
            &mut self,
            now: Cycle,
            _mem: &mut dyn MemorySystem,
            _phys: &mut PhysMem,
        ) -> (Cycle, StepEvent) {
            self.counters.instructions += 1;
            if self.remaining == 0 {
                self.halted = true;
                return (now + 1, StepEvent::Halted);
            }
            self.remaining -= 1;
            (now + 1, StepEvent::None)
        }
        fn arch(&self) -> &ArchState {
            &self.arch
        }
        fn arch_mut(&mut self) -> &mut ArchState {
            &mut self.arch
        }
        fn set_space(&mut self, space: AddrSpace) {
            self.space = space;
        }
        fn space(&self) -> AddrSpace {
            self.space
        }
        fn flush(&mut self) {}
        fn halted(&self) -> bool {
            self.halted
        }
        fn counters(&self) -> &CpuCounters {
            &self.counters
        }
        fn counters_mut(&mut self) -> &mut CpuCounters {
            &mut self.counters
        }
        fn stageable(&self) -> bool {
            true
        }
        fn stage(&self, _phys: &PhysMem, _budget: usize, _out: &mut Vec<StagedStep>) {
            panic!("injected stage fault");
        }
    }

    /// Graceful degradation: a panicking stage thread demotes the sharded
    /// run to the serial spine (recorded in [`ShardStats`]) instead of
    /// aborting it.
    #[test]
    fn stage_panic_demotes_to_serial_instead_of_aborting() {
        let mut cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        cfg.n_cpus = 2;
        cfg.shards = Some(2);
        let sc = cfg.system_config();
        let stub = |c: usize| -> Box<dyn CpuModel> {
            Box::new(PanicStageCpu {
                arch: ArchState::new(0x1000 + c as u32 * 0x100),
                space: AddrSpace::identity(),
                counters: CpuCounters::new(),
                remaining: 500,
                halted: false,
            })
        };
        let mut m = Machine {
            cfg,
            cpus: vec![stub(0), stub(1)],
            mem: Box::new(SharedMemSystem::new(&sc)),
            phys: PhysMem::new(2),
            ready: vec![Cycle::ZERO; 2],
            done: vec![false; 2],
            queues: vec![VecDeque::new(), VecDeque::new()],
            roi_start: Cycle::ZERO,
            phases: Vec::new(),
            workload_name: "stage-panic-stub",
            sentinel_on: false,
            stall_limit: None,
            trace: None,
            shard_stats: None,
        };
        let s = m
            .run(1_000_000)
            .expect("a stage panic must demote, not abort");
        assert_eq!(s.total.instructions, 2 * 501);
        let stats = m.shard_stats().expect("sharded run records stats");
        assert_eq!(stats.demoted, Some(DemotionReason::StagePanic));
        assert_eq!(stats.staged, 0, "no poisoned staged step may commit");
        assert_eq!(stats.serial, 2 * 501, "every step ran on the spine");
    }

    fn stalled_error() -> RunError {
        RunError::Stalled {
            limit: 1_000,
            report: Box::new(WatchdogReport {
                cpus: vec![CpuDiag {
                    cpu: 0,
                    done: false,
                    pc: 0x1234,
                    ready_cycle: 5_000,
                    instructions: 42,
                    ll_reservation: None,
                    stalled_for: 2_000,
                }],
                violations: 0,
            }),
        }
    }

    #[test]
    fn retry_stalled_serial_retries_only_sharded_stalls() {
        // A sharded stall retries serially.
        let (r, retried) = retry_stalled_serial(4, Err(stalled_error()), || Ok(7u32));
        assert!(retried);
        assert_eq!(r.expect("serial retry succeeded"), 7);
        // An already-serial stall passes through: retrying the same thing
        // would just stall again.
        let (r, retried) = retry_stalled_serial(1, Err::<u32, _>(stalled_error()), || {
            panic!("must not retry a serial stall")
        });
        assert!(!retried);
        assert!(matches!(r, Err(RunError::Stalled { .. })));
        // Success and non-stall errors pass through.
        let (r, retried) = retry_stalled_serial(4, Ok(3u32), || panic!("no retry on success"));
        assert!(!retried);
        assert_eq!(r.expect("passthrough"), 3);
        let timeout = RunError::Timeout {
            budget: 10,
            report: Box::new(WatchdogReport::default()),
        };
        let (r, retried) =
            retry_stalled_serial(4, Err::<u32, _>(timeout), || panic!("no retry on timeout"));
        assert!(!retried);
        assert!(matches!(r, Err(RunError::Timeout { .. })));
    }

    /// When the serial retry stalls too, the error that propagates (and
    /// lands in a supervised sweep's quarantine record via `Display`)
    /// carries the full watchdog report.
    #[test]
    fn double_stall_surfaces_the_watchdog_report() {
        let (r, retried) =
            retry_stalled_serial(2, Err::<u32, _>(stalled_error()), || Err(stalled_error()));
        assert!(retried);
        let msg = r.expect_err("both attempts stalled").to_string();
        assert!(msg.contains("watchdog"), "{msg}");
        assert!(msg.contains("pc 0x1234"), "{msg}");
        assert!(msg.contains("no progress for 2000 cycles"), "{msg}");
    }

    /// End of the follow-through chain: a sweep job that dies of a
    /// double stall panics with the error text, and the supervisor's
    /// quarantine record carries the full watchdog report — stuck PC
    /// and stall age included — so the sweep's stderr names the broken
    /// configuration's diagnosis, not just its index.
    #[test]
    fn stalled_job_quarantine_record_carries_the_watchdog_report() {
        use cmpsim_engine::supervise::{run_indexed_supervised, SuperviseSpec};
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let quiet = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|p| p.contains("[stall-fixture]"));
                if !quiet {
                    default(info);
                }
            }));
        });
        let run =
            run_indexed_supervised(&SuperviseSpec::new(), 2, 3, |i| {
                if i == 1 {
                    let err = retry_stalled_serial(2, Err::<u32, _>(stalled_error()), || {
                        Err(stalled_error())
                    })
                    .0
                    .expect_err("both attempts stalled");
                    panic!("[stall-fixture] case mp3d/shared-L2: {err}");
                }
                i as u64
            });
        assert_eq!(run.quarantined.len(), 1);
        let q = &run.quarantined[0];
        assert_eq!(q.job_id, 1);
        assert!(q.reason.contains("watchdog"), "{}", q.reason);
        assert!(q.reason.contains("pc 0x1234"), "{}", q.reason);
        assert!(
            q.reason.contains("no progress for 2000 cycles"),
            "{}",
            q.reason
        );
        let (vals, _) = run.into_parts();
        assert_eq!(vals, vec![Some(0), None, Some(2)]);
    }

    #[test]
    fn resilient_run_matches_plain_run_when_nothing_stalls() {
        let w = build_by_name("eqntott", 4, 0.03).expect("builds");
        let mut cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        cfg.shards = Some(2);
        cfg.stall_cycles = Some(50_000_000);
        let a = run_workload(&cfg, &w, 200_000_000).expect("plain runs");
        let b = run_workload_resilient(&cfg, &w, 200_000_000).expect("resilient runs");
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.total, b.total);
        assert_eq!(format!("{:?}", a.mem), format!("{:?}", b.mem));
    }
}

#[cfg(test)]
mod phase_tests {
    use super::*;
    use cmpsim_isa::{Asm, HcallNo, Reg};
    use cmpsim_kernels::{BuiltWorkload, ProcessInit};
    use cmpsim_mem::AddrSpace;

    #[test]
    fn phase_markers_are_recorded_in_order() {
        let mut a = Asm::new(0x1000);
        a.hcall(HcallNo::Phase(1));
        a.li(Reg::T0, 50);
        a.label("work");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "work");
        a.hcall(HcallNo::Phase(2));
        a.halt();
        let prog = a.assemble().expect("assembles");
        let w = BuiltWorkload {
            name: "phases",
            image: vec![(prog.base, prog.words)],
            entries: vec![ProcessInit {
                entry: prog.base,
                space: AddrSpace::identity(),
            }],
            extra_processes: vec![Vec::new()],
            init: Box::new(|_| {}),
            check: Box::new(|_| Ok(())),
        };
        let mut cfg = MachineConfig::new(ArchKind::SharedMem, CpuKind::Mipsy);
        cfg.n_cpus = 1;
        let mut m = Machine::new(&cfg, &w);
        let s = m.run(1_000_000).expect("runs");
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[0].2, 1);
        assert_eq!(s.phases[1].2, 2);
        assert!(
            s.phases[1].0 > s.phases[0].0 + 100,
            "work separates the phases"
        );
        assert_eq!(s.phases[0].1, 0, "cpu id recorded");
    }
}

//! Execution-time breakdowns and miss-rate tables — the paper's metrics.

use crate::machine::RunSummary;
use cmpsim_engine::stats::ratio;
use cmpsim_mem::MemStats;
use cmpsim_trace::TraceAnalysis;
use std::fmt;

/// Execution-time breakdown (Figures 4–10): every accounted CPU cycle falls
/// into exactly one category, expressed as a fraction of total cycles.
///
/// As in the paper, CPU time includes spin-lock and barrier wait time; the
/// speed of the LL/SC operations shows up there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Busy executing (includes synchronization spinning).
    pub cpu: f64,
    /// Instruction-fetch stalls.
    pub instruction: f64,
    /// Data stalls serviced at the L1 (shared-L1 extra hit time).
    pub l1_data: f64,
    /// Data stalls serviced by the L2.
    pub l2: f64,
    /// Data stalls serviced by memory (incl. upgrades).
    pub memory: f64,
    /// Data stalls serviced cache-to-cache.
    pub cache_to_cache: f64,
    /// Store-buffer-full and fence stalls.
    pub store: f64,
    /// Total accounted CPU cycles (sum over CPUs).
    pub total_cycles: u64,
}

impl Breakdown {
    /// Computes the breakdown from a run's merged counters.
    pub fn from_summary(s: &RunSummary) -> Breakdown {
        let t = &s.total;
        let total = t.total_cycles();
        Breakdown {
            cpu: ratio(t.busy_cycles, total),
            instruction: ratio(t.stall_instruction, total),
            l1_data: ratio(t.stall_l1_data, total),
            l2: ratio(t.stall_l2, total),
            memory: ratio(t.stall_memory, total),
            cache_to_cache: ratio(t.stall_c2c, total),
            store: ratio(t.stall_store_buffer + t.stall_fence, total),
            total_cycles: total,
        }
    }

    /// Fraction of time in the memory system (everything but CPU).
    pub fn memory_fraction(&self) -> f64 {
        1.0 - self.cpu
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu {:5.1}% | instr {:4.1}% | L1 {:4.1}% | L2 {:4.1}% | mem {:4.1}% | c2c {:4.1}% | st {:4.1}%",
            self.cpu * 100.0,
            self.instruction * 100.0,
            self.l1_data * 100.0,
            self.l2 * 100.0,
            self.memory * 100.0,
            self.cache_to_cache * 100.0,
            self.store * 100.0,
        )
    }
}

/// Local miss rates split into replacement and invalidation components —
/// the `L1R`/`L1I`/`L2R`/`L2I` bars of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRates {
    pub l1d_repl: f64,
    pub l1d_inval: f64,
    pub l1i_repl: f64,
    pub l1i_inval: f64,
    pub l2_repl: f64,
    pub l2_inval: f64,
}

impl MissRates {
    /// Extracts the miss-rate table from memory-system statistics.
    pub fn from_mem(m: &MemStats) -> MissRates {
        MissRates {
            l1d_repl: m.l1d.repl_rate(),
            l1d_inval: m.l1d.inval_rate(),
            l1i_repl: m.l1i.repl_rate(),
            l1i_inval: m.l1i.inval_rate(),
            l2_repl: m.l2.repl_rate(),
            l2_inval: m.l2.inval_rate(),
        }
    }

    /// Total L1 data miss rate.
    pub fn l1d_total(&self) -> f64 {
        self.l1d_repl + self.l1d_inval
    }

    /// Total L2 local miss rate.
    pub fn l2_total(&self) -> f64 {
        self.l2_repl + self.l2_inval
    }
}

impl fmt::Display for MissRates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1R {:5.2}% L1I {:5.2}% | L1iR {:5.2}% L1iI {:5.2}% | L2R {:5.2}% L2I {:5.2}%",
            self.l1d_repl * 100.0,
            self.l1d_inval * 100.0,
            self.l1i_repl * 100.0,
            self.l1i_inval * 100.0,
            self.l2_repl * 100.0,
            self.l2_inval * 100.0,
        )
    }
}

/// IPC breakdown for Figure 11: achieved IPC plus the losses per blame
/// category, summing to the ideal IPC of 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcBreakdown {
    /// Instructions per cycle actually graduated.
    pub actual: f64,
    /// IPC lost to instruction-cache stalls.
    pub icache_loss: f64,
    /// IPC lost to data-cache stalls.
    pub dcache_loss: f64,
    /// IPC lost to pipeline stalls (dependences, mispredicts, shared-L1
    /// extra hit latency and bank contention).
    pub pipeline_loss: f64,
}

impl IpcBreakdown {
    /// Computes the Figure 11 bars from a run's merged MXS counters.
    pub fn from_summary(s: &RunSummary) -> IpcBreakdown {
        let t = &s.total;
        let cycles = t.mxs_cycles.max(1) as f64;
        IpcBreakdown {
            actual: t.instructions as f64 / cycles,
            icache_loss: t.slots_icache as f64 / cycles,
            dcache_loss: t.slots_dcache as f64 / cycles,
            pipeline_loss: t.slots_pipeline as f64 / cycles,
        }
    }

    /// Sum of achieved IPC and all losses (should be ~2.0 per CPU).
    pub fn accounted(&self) -> f64 {
        self.actual + self.icache_loss + self.dcache_loss + self.pipeline_loss
    }
}

impl fmt::Display for IpcBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IPC {:.3} (+icache {:.3} +dcache {:.3} +pipe {:.3})",
            self.actual, self.icache_loss, self.dcache_loss, self.pipeline_loss
        )
    }
}

/// Reference-stream characterization derived from a captured trace — the
/// sharing-study companion to the timing tables, normalized the way such
/// tables are usually quoted (fractions of the footprint, events per
/// thousand references).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceProfile {
    /// Data footprint in kilobytes.
    pub data_footprint_kb: f64,
    /// Instruction footprint in kilobytes.
    pub instr_footprint_kb: f64,
    /// Fraction of data lines touched by more than one CPU.
    pub shared_fraction: f64,
    /// Fraction of data lines both written and shared (the lines that
    /// generate coherence traffic).
    pub write_shared_fraction: f64,
    /// Mean CPUs per data line.
    pub mean_sharing: f64,
    /// Producer→consumer transfers per thousand references.
    pub comm_per_kilo_ref: f64,
    /// Mean reuse distance (distinct lines between re-touches).
    pub mean_reuse: f64,
}

impl TraceProfile {
    /// Condenses a trace analysis into the report row.
    pub fn from_analysis(a: &TraceAnalysis) -> TraceProfile {
        let lines = a.data_lines.max(1);
        TraceProfile {
            data_footprint_kb: a.data_footprint_bytes() as f64 / 1024.0,
            instr_footprint_kb: a.instr_footprint_bytes() as f64 / 1024.0,
            shared_fraction: a.shared_lines() as f64 / lines as f64,
            write_shared_fraction: a.write_shared_lines as f64 / lines as f64,
            mean_sharing: a.mean_sharing_degree(),
            comm_per_kilo_ref: 1000.0 * a.comm_total() as f64 / a.refs().max(1) as f64,
            mean_reuse: a.reuse.mean(),
        }
    }
}

impl fmt::Display for TraceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data {:7.1} KB | instr {:6.1} KB | shared {:5.1}% (ws {:5.1}%) | deg {:.2} | comm {:6.2}/kref | reuse {:7.1}",
            self.data_footprint_kb,
            self.instr_footprint_kb,
            self.shared_fraction * 100.0,
            self.write_shared_fraction * 100.0,
            self.mean_sharing,
            self.comm_per_kilo_ref,
            self.mean_reuse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ArchKind;
    use cmpsim_cpu::CpuCounters;

    fn summary_with(total: CpuCounters) -> RunSummary {
        RunSummary {
            arch: ArchKind::SharedMem,
            wall_cycles: 100,
            per_cpu: vec![],
            total,
            mem: MemStats::new(),
            port_util: vec![],
            phases: vec![],
            violations: vec![],
        }
    }

    #[test]
    fn breakdown_partitions_to_one() {
        let mut t = CpuCounters::new();
        t.busy_cycles = 70;
        t.stall_instruction = 10;
        t.stall_l2 = 10;
        t.stall_memory = 10;
        let b = Breakdown::from_summary(&summary_with(t));
        let sum = b.cpu + b.instruction + b.l1_data + b.l2 + b.memory + b.cache_to_cache + b.store;
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(b.total_cycles, 100);
        assert!((b.memory_fraction() - 0.3).abs() < 1e-12);
        assert!(b.to_string().contains("cpu"));
    }

    #[test]
    fn ipc_breakdown_accounts_to_width() {
        let mut t = CpuCounters::new();
        t.instructions = 120;
        t.mxs_cycles = 100;
        t.slots_icache = 20;
        t.slots_dcache = 30;
        t.slots_pipeline = 30;
        let b = IpcBreakdown::from_summary(&summary_with(t));
        assert!((b.actual - 1.2).abs() < 1e-12);
        assert!((b.accounted() - 2.0).abs() < 1e-12);
        assert!(b.to_string().contains("IPC"));
    }

    #[test]
    fn trace_profile_normalizes_the_analysis() {
        use cmpsim_trace::{analyze, TraceKind, TraceRecord};
        let rec = |cpu: u8, kind, addr| TraceRecord {
            cycle: 0,
            cpu,
            kind,
            addr,
        };
        let recs = vec![
            rec(0, TraceKind::IFetch, 0x1000),
            rec(0, TraceKind::Store, 0x100), // written + shared with cpu 1
            rec(1, TraceKind::Load, 0x100),
            rec(1, TraceKind::Load, 0x200), // private
        ];
        let p = TraceProfile::from_analysis(&analyze(&recs, 4, 32));
        assert!((p.shared_fraction - 0.5).abs() < 1e-12);
        assert!((p.write_shared_fraction - 0.5).abs() < 1e-12);
        assert!((p.comm_per_kilo_ref - 250.0).abs() < 1e-9, "1 of 4 refs");
        assert!((p.mean_sharing - 1.5).abs() < 1e-12);
        assert!(p.to_string().contains("deg 1.50"));
    }

    #[test]
    fn miss_rates_extracted() {
        let mut m = MemStats::new();
        m.l1d.hit();
        m.l1d.miss(cmpsim_mem::MissKind::Replacement);
        m.l1d.miss(cmpsim_mem::MissKind::Invalidation);
        m.l1d.hit();
        let r = MissRates::from_mem(&m);
        assert!((r.l1d_repl - 0.25).abs() < 1e-12);
        assert!((r.l1d_inval - 0.25).abs() < 1e-12);
        assert!((r.l1d_total() - 0.5).abs() < 1e-12);
        assert_eq!(r.l2_total(), 0.0);
        assert!(r.to_string().contains("L1R"));
    }
}

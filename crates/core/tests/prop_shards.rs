//! Property: the sharded run loop is bit-identical to the serial loop.
//!
//! The tentpole contract of DESIGN.md §12 — shard count is a host-time
//! knob, never a results knob — checked over random draws of workload ×
//! architecture × CPU-count geometry, comparing the full `Debug` rendering
//! of the [`RunSummary`] (per-CPU counters, merged counters, `MemStats`
//! including the latency histogram, port utilization, phase markers) at 1,
//! 2 and 4 shards. The prop framework's per-case seed is the only
//! randomness; a failure prints a `CMPSIM_PROP_SEED` line that reproduces
//! the exact draw.
//!
//! [`RunSummary`]: cmpsim_core::RunSummary

use cmpsim_core::machine::run_workload;
use cmpsim_core::{ArchKind, CpuKind, MachineConfig};
use cmpsim_engine::prop::{self, Config};
use cmpsim_kernels::build_by_name;

/// Cycle budget: every drawn scale finishes far below this.
const BUDGET: u64 = 10_000_000_000;

/// Runs one configuration at a pinned shard count and renders the whole
/// summary for comparison. Pinned through `MachineConfig::shards`, not the
/// environment, so shard counts can be compared within one process.
fn digest(cfg: &MachineConfig, w: &cmpsim_kernels::BuiltWorkload, shards: usize) -> String {
    let mut cfg = *cfg;
    cfg.shards = Some(shards);
    let s = run_workload(&cfg, w, BUDGET).expect("pinned-good configuration runs");
    format!("{s:?}")
}

/// Random workload × architecture × geometry: the sharded loop must match
/// the serial loop bit for bit. Mipsy only — MXS declines staging and
/// falls back to the serial loop, which `sharded_config_with_mxs_falls_
/// back_to_serial` (in `cmpsim_core::machine`) already pins.
#[test]
fn sharded_run_matches_serial_on_random_configurations() {
    // Each case is three whole-machine runs; 10 cases keeps the suite in
    // tier-1 time. CMPSIM_PROP_CASES overrides for soak runs.
    let cfg = Config::from_env_or_cases(10);
    prop::check_with(&cfg, "sharded_run_matches_serial", |src| {
        let workload = src.choice(&cmpsim_kernels::ALL_WORKLOADS[..]);
        let arch = src.choice(&[
            ArchKind::SharedL1,
            ArchKind::SharedL2,
            ArchKind::SharedMem,
            ArchKind::Clustered,
        ]);
        let n_cpus = src.choice(&[2usize, 4, 8]);
        let scale = src.choice(&[0.02, 0.03]);
        let w = build_by_name(workload, n_cpus, scale)
            .unwrap_or_else(|e| panic!("building {workload}: {e}"));
        let mut base = MachineConfig::new(arch, CpuKind::Mipsy);
        base.n_cpus = n_cpus;
        let serial = digest(&base, &w, 1);
        for shards in [2usize, 4] {
            assert_eq!(
                serial,
                digest(&base, &w, shards),
                "{workload} on {arch} with {n_cpus} CPUs at scale {scale}: \
                 {shards} shards changed the run summary"
            );
        }
    });
}

/// The fixed 8-CPU clustered case: sharding must commute with the cluster
/// topology's crossbar lookahead, including at a shard count that does not
/// divide the CPU count.
#[test]
fn clustered_8cpu_sharded_matches_serial() {
    let w = build_by_name("ocean", 8, 0.03).expect("builds");
    let mut cfg = MachineConfig::new(ArchKind::Clustered, CpuKind::Mipsy);
    cfg.n_cpus = 8;
    cfg.cpus_per_cluster = Some(2);
    let serial = digest(&cfg, &w, 1);
    for shards in [2usize, 3, 4] {
        assert_eq!(
            serial,
            digest(&cfg, &w, shards),
            "clustered 4x2: {shards} shards changed the run summary"
        );
    }
}

//! Fault-injection suite for crash-safe trace I/O: torn-tail
//! truncations, mid-chunk corruption, bad restart preambles, and the
//! atomic-finalize (temp file + rename) capture path.

use cmpsim_trace::codec::{
    decode, encode, encode_with_version, fnv1a, salvage, scan_chunks, TraceError, TraceKind,
    TraceRecord, CHUNK_RECORDS, VERSION_V1,
};
use cmpsim_trace::{sink_to_path, TraceSink};
use std::io::Write as _;

/// A deterministic stream long enough for several chunks: cycles strictly
/// increase, addresses stride through a few cache lines per CPU.
fn stream(n: usize) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| TraceRecord {
            cycle: (i as u64) * 3 + (i as u64 % 5),
            cpu: (i % 4) as u8,
            kind: match i % 3 {
                0 => TraceKind::Load,
                1 => TraceKind::Store,
                _ => TraceKind::IFetch,
            },
            addr: 0x1000 + ((i as u32) % 97) * 32,
        })
        .collect()
}

#[test]
fn intact_file_salvages_completely_and_cleanly() {
    let records = stream(3 * CHUNK_RECORDS + 100);
    let bytes = encode(&records, 4, 32).expect("encodes");
    let s = salvage(&bytes).expect("header is intact");
    assert_eq!(s.records, records);
    assert_eq!(s.chunks_recovered, 4);
    assert_eq!(s.chunks_skipped, 0);
    assert_eq!(s.bytes_dropped, 0);
    assert!(s.clean_eof);
    assert_eq!(s.header.n_cpus, 4);
}

#[test]
fn torn_tail_recovers_every_complete_chunk() {
    let records = stream(3 * CHUNK_RECORDS + 100);
    let bytes = encode(&records, 4, 32).expect("encodes");
    let (_, frames) = scan_chunks(&bytes).expect("scans");
    assert_eq!(frames.len(), 4);

    // Truncation points: mid-payload of chunk 2, mid-header of chunk 2,
    // and mid-footer — each must yield exactly the preceding whole chunks.
    let cases = [
        (frames[2].payload.start + 10, 2usize),
        (frames[1].payload.end + 2, 2),
        (bytes.len() - 5, 4),
    ];
    for (cut, whole_chunks) in cases {
        let torn = &bytes[..cut];
        let s = salvage(torn).expect("header survives the tear");
        let want: usize = frames[..whole_chunks]
            .iter()
            .map(|f| f.n_records as usize)
            .sum();
        assert_eq!(s.records, records[..want], "cut at {cut}");
        assert_eq!(s.chunks_recovered, whole_chunks as u64, "cut at {cut}");
        assert_eq!(s.chunks_skipped, 0, "cut at {cut}");
        assert!(!s.clean_eof, "cut at {cut}");
        assert!(s.bytes_dropped > 0, "cut at {cut}");
        // The strict decoder must reject every torn variant.
        assert!(decode(torn).is_err(), "cut at {cut}");
    }
}

#[test]
fn mid_chunk_corruption_skips_only_that_chunk() {
    let records = stream(3 * CHUNK_RECORDS + 100);
    let mut bytes = encode(&records, 4, 32).expect("encodes");
    let (_, frames) = scan_chunks(&bytes).expect("scans");
    let mid = frames[1].payload.start + frames[1].payload.len() / 2;
    bytes[mid] ^= 0xA5;

    let s = salvage(&bytes).expect("header is intact");
    assert_eq!(s.chunks_recovered, 3);
    assert_eq!(s.chunks_skipped, 1);
    assert_eq!(s.bytes_dropped, 0);
    // The footer still matches the declared counts, so the file reads as
    // finalized — the gap is per-chunk, not a tear.
    assert!(s.clean_eof);
    let mut want = records[..frames[1].first_record as usize].to_vec();
    want.extend_from_slice(&records[frames[2].first_record as usize..]);
    assert_eq!(s.records, want);
    assert!(decode(&bytes).is_err(), "strict decode rejects corruption");
}

#[test]
fn bad_restart_preamble_skips_the_chunk() {
    // Splice a frame whose payload is shorter than the 12-byte restart
    // preamble between two real chunks. Its checksum is valid for the
    // payload, so only the preamble read can reject it.
    let records = stream(CHUNK_RECORDS + 50);
    let bytes = encode(&records, 4, 32).expect("encodes");
    let (_, frames) = scan_chunks(&bytes).expect("scans");
    let bogus_payload = [0xEEu8; 4];
    let mut spliced = bytes[..frames[1].payload.start - 16].to_vec();
    spliced.extend_from_slice(&(bogus_payload.len() as u32).to_le_bytes());
    spliced.extend_from_slice(&7u32.to_le_bytes());
    spliced.extend_from_slice(&fnv1a(&bogus_payload).to_le_bytes());
    spliced.extend_from_slice(&bogus_payload);
    spliced.extend_from_slice(&bytes[frames[1].payload.start - 16..]);

    let s = salvage(&spliced).expect("header is intact");
    assert_eq!(s.chunks_recovered, 2);
    assert_eq!(s.chunks_skipped, 1);
    assert_eq!(s.records, records);
    // The bogus frame declares 7 records the footer never counted.
    assert!(!s.clean_eof);
}

#[test]
fn v1_corruption_ends_the_walk_at_the_bad_chunk() {
    // v1 chunks chain their delta baseline, so a bad chunk poisons
    // everything after it: salvage must keep the prefix and stop.
    let records = stream(2 * CHUNK_RECORDS + 100);
    let mut bytes = encode_with_version(&records, 4, 32, VERSION_V1).expect("encodes");
    let (_, frames) = scan_chunks(&bytes).expect("scans");
    assert_eq!(frames.len(), 3);
    let mid = frames[1].payload.start + frames[1].payload.len() / 2;
    bytes[mid] ^= 0xA5;

    let s = salvage(&bytes).expect("header is intact");
    assert_eq!(s.chunks_recovered, 1);
    assert_eq!(s.chunks_skipped, 1);
    assert_eq!(s.records, records[..frames[0].n_records as usize]);
    assert!(!s.clean_eof);
    assert!(s.bytes_dropped > 0, "chunk 2 and the footer are abandoned");
}

#[test]
fn v1_torn_tail_still_salvages_because_chunks_chain_forward() {
    let records = stream(2 * CHUNK_RECORDS + 100);
    let bytes = encode_with_version(&records, 4, 32, VERSION_V1).expect("encodes");
    let (_, frames) = scan_chunks(&bytes).expect("scans");
    let torn = &bytes[..frames[1].payload.end + 3];
    let s = salvage(torn).expect("header survives");
    assert_eq!(s.chunks_recovered, 2);
    assert_eq!(
        s.records,
        records[..(frames[0].n_records + frames[1].n_records) as usize]
    );
    assert!(!s.clean_eof);
}

#[test]
fn trailing_garbage_after_the_footer_is_counted_dropped() {
    let records = stream(100);
    let mut bytes = encode(&records, 4, 32).expect("encodes");
    bytes.extend_from_slice(b"oops");
    let s = salvage(&bytes).expect("header is intact");
    assert_eq!(s.records, records);
    assert!(!s.clean_eof);
    assert_eq!(s.bytes_dropped, 4);
}

#[test]
fn unusable_header_is_the_only_salvage_error() {
    assert!(matches!(salvage(b"CMP"), Err(TraceError::Truncated)));
    assert!(matches!(
        salvage(b"NOPE\x02\x04\x20\x00"),
        Err(TraceError::BadMagic(_))
    ));
    assert!(matches!(
        salvage(b"CMPT\x09\x04\x20\x00"),
        Err(TraceError::BadVersion(9))
    ));
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cmpsim-salvage-{tag}-{}", std::process::id()))
}

#[test]
fn atomic_capture_surfaces_only_after_finish() {
    let dest = temp_path("atomic");
    let tmp = dest.with_file_name(format!(
        "{}.tmp",
        dest.file_name().expect("has name").to_string_lossy()
    ));
    let _ = std::fs::remove_file(&dest);
    let _ = std::fs::remove_file(&tmp);

    let mut sink = TraceSink::new_atomic(&dest, 4, 32).expect("creates temp");
    for rec in stream(CHUNK_RECORDS + 10) {
        let req = cmpsim_mem::MemRequest {
            cpu: rec.cpu as usize,
            addr: rec.addr,
            kind: rec.kind.access_kind().expect("access kinds only"),
        };
        sink.record_access(cmpsim_engine::Cycle(rec.cycle), &req);
    }
    assert!(tmp.exists(), "bytes accumulate at the temp path");
    assert!(!dest.exists(), "destination is invisible before finish");

    sink.finish().expect("finalizes");
    assert!(dest.exists(), "finish publishes the destination");
    assert!(!tmp.exists(), "the temp file was renamed, not copied");

    let bytes = std::fs::read(&dest).expect("reads");
    let s = salvage(&bytes).expect("intact");
    assert!(s.clean_eof);
    assert_eq!(s.records.len(), CHUNK_RECORDS + 10);
    std::fs::remove_file(&dest).expect("cleanup");
}

#[test]
fn killed_capture_leaves_a_salvageable_temp_and_no_destination() {
    let dest = temp_path("killed");
    let tmp = dest.with_file_name(format!(
        "{}.tmp",
        dest.file_name().expect("has name").to_string_lossy()
    ));
    let _ = std::fs::remove_file(&dest);
    let _ = std::fs::remove_file(&tmp);

    {
        let sink = sink_to_path(&dest, 4, 32).expect("creates temp");
        let mut sink = sink.borrow_mut();
        for rec in stream(2 * CHUNK_RECORDS) {
            let req = cmpsim_mem::MemRequest {
                cpu: rec.cpu as usize,
                addr: rec.addr,
                kind: rec.kind.access_kind().expect("access kinds only"),
            };
            sink.record_access(cmpsim_engine::Cycle(rec.cycle), &req);
        }
        // Dropped without finish: the footer lands best-effort in the
        // temp file, but the rename never happens.
    }
    assert!(!dest.exists(), "an unfinished capture never publishes");
    assert!(tmp.exists(), "the temp file stays behind for salvage");

    // Simulate the kill -9 tear the drop-footer papered over.
    let full = std::fs::read(&tmp).expect("reads");
    let cut = full.len() * 3 / 5;
    let mut f = std::fs::File::create(&tmp).expect("rewrites");
    f.write_all(&full[..cut]).expect("writes");
    drop(f);

    let torn = std::fs::read(&tmp).expect("reads");
    let s = salvage(&torn).expect("header survives");
    assert!(!s.clean_eof);
    assert_eq!(s.chunks_recovered as usize * CHUNK_RECORDS, s.records.len());
    assert!(!s.records.is_empty(), "a 60% tear keeps at least one chunk");
    assert_eq!(s.records, stream(2 * CHUNK_RECORDS)[..s.records.len()]);
    std::fs::remove_file(&tmp).expect("cleanup");
}

//! Property tests for the trace codec: round-trip identity over arbitrary
//! record streams, rejection of truncated and corrupted encodings, and a
//! decoder that never panics on arbitrary bytes. Also demonstrates the
//! framework's shrinking on trace streams: a failing stream property
//! minimizes to a single-record counterexample.

use cmpsim_engine::prop::{self, Config, Source};
use cmpsim_trace::{decode, encode, TraceKind, TraceReader, TraceRecord};

/// Draws a record stream with the shapes capture actually produces:
/// mostly forward cycle jumps with occasional backward steps (the run
/// loop's CPU interleave), clustered and wild addresses, all four kinds.
fn gen_records(src: &mut Source) -> Vec<TraceRecord> {
    let mut cycle = src.u64(0..1_000_000);
    let base_addr = src.u32(0..0x1000_0000) & !0x3;
    src.vec(1..200, |s| {
        cycle = cycle.saturating_add_signed(s.i64(-64..4096));
        let addr = if s.bool() {
            base_addr.wrapping_add(s.u32(0..4096))
        } else {
            s.u32_any()
        };
        TraceRecord {
            cycle,
            cpu: s.u8(0..64),
            kind: s.choice(&[
                TraceKind::IFetch,
                TraceKind::Load,
                TraceKind::Store,
                TraceKind::StatsReset,
            ]),
            addr,
        }
    })
}

#[test]
fn prop_encode_decode_is_identity() {
    prop::check("trace codec round-trip", |src| {
        let records = gen_records(src);
        let n_cpus = src.usize(1..65);
        let bytes = encode(&records, n_cpus, 32).expect("encodes");
        let reader = TraceReader::new(bytes.as_slice()).expect("valid header");
        assert_eq!(usize::from(reader.header().n_cpus), n_cpus);
        assert_eq!(reader.header().line_bytes, 32);
        let decoded = reader.collect_all().expect("decodes");
        assert_eq!(decoded, records);
    });
}

#[test]
fn prop_truncation_is_always_detected() {
    prop::check("trace codec truncation", |src| {
        let records = gen_records(src);
        let bytes = encode(&records, 4, 32).expect("encodes");
        // Any strict prefix must fail to decode: the footer doubles as the
        // end-of-stream marker, so a cut stream can never look complete.
        let cut = src.usize(0..bytes.len());
        assert!(
            decode(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded",
            bytes.len()
        );
    });
}

#[test]
fn prop_corruption_is_always_detected() {
    prop::check("trace codec corruption", |src| {
        let records = gen_records(src);
        let bytes = encode(&records, 4, 32).expect("encodes");
        // Flip one bit anywhere past the (unchecksummed) 8-byte file
        // header and before the 12-byte footer: chunk headers and payloads
        // are both covered — lengths/counts by consistency checks, the
        // payload by the FNV-1a checksum.
        let body = bytes.len() - 12;
        if body <= 8 {
            return;
        }
        let at = src.usize(8..body);
        let bit = src.u8(0..8);
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1 << bit;
        assert!(
            decode(&corrupt).is_err(),
            "bit {bit} of byte {at}/{} flipped and the stream still decoded",
            bytes.len()
        );
    });
}

#[test]
fn prop_decoder_never_panics_on_arbitrary_bytes() {
    prop::check("trace codec arbitrary input", |src| {
        let mut bytes = src.vec(0..300, |s| s.u32(0..256) as u8);
        if src.bool() {
            // Valid magic + version so the deeper chunk machinery runs too.
            let mut framed = b"CMPT\x01".to_vec();
            framed.append(&mut bytes);
            bytes = framed;
        }
        // Must return (Ok or Err), never panic or loop.
        let _ = decode(&bytes);
    });
}

/// Shrinking works on trace streams: a property that forbids stores fails,
/// and the minimized counterexample replayed through the generator is a
/// single-record stream whose one record is the store.
#[test]
fn shrinking_reduces_to_a_single_record_stream() {
    let cfg = Config {
        cases: 200,
        ..Config::default()
    };
    let failure = prop::check_result(&cfg, "streams never store", |src| {
        let records = gen_records(src);
        let bytes = encode(&records, 4, 32).expect("encodes");
        let decoded = decode(&bytes).expect("decodes");
        assert!(decoded.iter().all(|r| r.kind != TraceKind::Store));
    })
    .expect_err("the generator emits stores");

    let minimal = gen_records(&mut Source::replay(failure.choices.clone()));
    assert_eq!(
        minimal.len(),
        1,
        "shrunk to one record, got {minimal:?} (choices {:?})",
        failure.choices
    );
    assert_eq!(minimal[0].kind, TraceKind::Store);
}

//! Property tests for the trace codec: round-trip identity over arbitrary
//! record streams, rejection of truncated and corrupted encodings, and a
//! decoder that never panics on arbitrary bytes. Also demonstrates the
//! framework's shrinking on trace streams: a failing stream property
//! minimizes to a single-record counterexample.

use cmpsim_engine::prop::{self, Config, Source};
use cmpsim_trace::{
    decode, decode_chunk, decode_parallel, encode, encode_with_version, scan_chunks, TraceKind,
    TraceReader, TraceRecord, VERSION_V1,
};

/// Draws a record stream with the shapes capture actually produces:
/// mostly forward cycle jumps with occasional backward steps (the run
/// loop's CPU interleave), clustered and wild addresses, all four kinds.
fn gen_records(src: &mut Source) -> Vec<TraceRecord> {
    let mut cycle = src.u64(0..1_000_000);
    let base_addr = src.u32(0..0x1000_0000) & !0x3;
    src.vec(1..200, |s| {
        cycle = cycle.saturating_add_signed(s.i64(-64..4096));
        let addr = if s.bool() {
            base_addr.wrapping_add(s.u32(0..4096))
        } else {
            s.u32_any()
        };
        TraceRecord {
            cycle,
            cpu: s.u8(0..64),
            kind: s.choice(&[
                TraceKind::IFetch,
                TraceKind::Load,
                TraceKind::Store,
                TraceKind::StatsReset,
            ]),
            addr,
        }
    })
}

#[test]
fn prop_encode_decode_is_identity() {
    prop::check("trace codec round-trip", |src| {
        let records = gen_records(src);
        let n_cpus = src.usize(1..65);
        let bytes = encode(&records, n_cpus, 32).expect("encodes");
        let reader = TraceReader::new(bytes.as_slice()).expect("valid header");
        assert_eq!(usize::from(reader.header().n_cpus), n_cpus);
        assert_eq!(reader.header().line_bytes, 32);
        let decoded = reader.collect_all().expect("decodes");
        assert_eq!(decoded, records);
    });
}

#[test]
fn prop_truncation_is_always_detected() {
    prop::check("trace codec truncation", |src| {
        let records = gen_records(src);
        let bytes = encode(&records, 4, 32).expect("encodes");
        // Any strict prefix must fail to decode: the footer doubles as the
        // end-of-stream marker, so a cut stream can never look complete.
        let cut = src.usize(0..bytes.len());
        assert!(
            decode(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded",
            bytes.len()
        );
    });
}

#[test]
fn prop_corruption_is_always_detected() {
    prop::check("trace codec corruption", |src| {
        let records = gen_records(src);
        let bytes = encode(&records, 4, 32).expect("encodes");
        // Flip one bit anywhere past the (unchecksummed) 8-byte file
        // header and before the 12-byte footer: chunk headers and payloads
        // are both covered — lengths/counts by consistency checks, the
        // payload by the FNV-1a checksum.
        let body = bytes.len() - 12;
        if body <= 8 {
            return;
        }
        let at = src.usize(8..body);
        let bit = src.u8(0..8);
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1 << bit;
        assert!(
            decode(&corrupt).is_err(),
            "bit {bit} of byte {at}/{} flipped and the stream still decoded",
            bytes.len()
        );
    });
}

#[test]
fn prop_decoder_never_panics_on_arbitrary_bytes() {
    prop::check("trace codec arbitrary input", |src| {
        let mut bytes = src.vec(0..300, |s| s.u32(0..256) as u8);
        if src.bool() {
            // Valid magic + a real version so the deeper chunk machinery
            // runs too — both the legacy and the restartable format.
            let version = if src.bool() { 1u8 } else { 2 };
            let mut framed = b"CMPT".to_vec();
            framed.push(version);
            framed.append(&mut bytes);
            bytes = framed;
        }
        // Must return (Ok or Err), never panic or loop — on every entry
        // point: serial decode, the frame scanner, and parallel decode.
        let _ = decode(&bytes);
        let _ = decode_parallel(&bytes, 4);
        if let Ok((_, frames)) = scan_chunks(&bytes) {
            for frame in &frames {
                let _ = decode_chunk(&bytes, frame);
            }
        }
    });
}

/// Tentpole property — v2 chunk independence: decoding any chunk subset
/// in any order equals the corresponding slices of the serial decode.
/// Streams span several chunks (the writer flushes every 4096 records),
/// and the visit order is a drawn permutation, so later chunks routinely
/// decode before — or without — earlier ones.
#[test]
fn prop_any_chunk_subset_decodes_in_any_order() {
    let cfg = Config {
        cases: 25,
        ..Config::default()
    };
    prop::check_result(&cfg, "v2 chunk subset independence", |src| {
        let mut cycle = src.u64(0..1_000_000);
        let records: Vec<TraceRecord> = src.vec(1..10_000, |s| {
            cycle = cycle.saturating_add_signed(s.i64(-64..4096));
            TraceRecord {
                cycle,
                cpu: s.u8(0..64),
                kind: s.choice(&[TraceKind::IFetch, TraceKind::Load, TraceKind::Store]),
                addr: s.u32_any(),
            }
        });
        let bytes = encode(&records, 4, 32).expect("encodes");
        let serial = decode(&bytes).expect("decodes");
        assert_eq!(serial, records);
        let (_, frames) = scan_chunks(&bytes).expect("scans");
        // Draw a permutation (Fisher-Yates off the choice stream), then a
        // subset of it: any prefix of a random permutation is a random
        // subset in random order.
        let mut order: Vec<usize> = (0..frames.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, src.usize(0..i + 1));
        }
        let keep = src.usize(1..order.len() + 1);
        for &fi in &order[..keep] {
            let frame = &frames[fi];
            let got = decode_chunk(&bytes, frame).expect("chunk decodes");
            let lo = frame.first_record as usize;
            assert_eq!(
                got,
                serial[lo..lo + frame.n_records as usize],
                "chunk {fi} diverged from the serial slice"
            );
        }
    })
    .expect("holds");
}

/// Migration property: a v1 encoding of any stream still round-trips
/// through every serial path, and the parallel entry point's v1 fallback
/// agrees with it.
#[test]
fn prop_v1_encodings_remain_readable() {
    let cfg = Config {
        cases: 50,
        ..Config::default()
    };
    prop::check_result(&cfg, "v1 back-compat round-trip", |src| {
        let records = gen_records(src);
        let bytes = encode_with_version(&records, 4, 32, VERSION_V1).expect("encodes");
        assert_eq!(decode(&bytes).expect("decodes"), records);
        assert_eq!(decode_parallel(&bytes, 4).expect("decodes"), records);
        let reader = TraceReader::new(bytes.as_slice()).expect("opens");
        assert_eq!(reader.header().version, VERSION_V1);
        assert_eq!(reader.collect_all().expect("streams"), records);
    })
    .expect("holds");
}

/// The parallel decoder is byte-identical to the serial one on arbitrary
/// streams at several job counts (unit tests pin the multi-chunk case;
/// this covers arbitrary shapes).
#[test]
fn prop_parallel_decode_equals_serial() {
    prop::check("parallel decode identity", |src| {
        let records = gen_records(src);
        let bytes = encode(&records, 4, 32).expect("encodes");
        let serial = decode(&bytes).expect("decodes");
        let jobs = src.usize(1..8);
        assert_eq!(decode_parallel(&bytes, jobs).expect("decodes"), serial);
    });
}

/// Shrinking works on trace streams: a property that forbids stores fails,
/// and the minimized counterexample replayed through the generator is a
/// single-record stream whose one record is the store.
#[test]
fn shrinking_reduces_to_a_single_record_stream() {
    let cfg = Config {
        cases: 200,
        ..Config::default()
    };
    let failure = prop::check_result(&cfg, "streams never store", |src| {
        let records = gen_records(src);
        let bytes = encode(&records, 4, 32).expect("encodes");
        let decoded = decode(&bytes).expect("decodes");
        assert!(decoded.iter().all(|r| r.kind != TraceKind::Store));
    })
    .expect_err("the generator emits stores");

    let minimal = gen_records(&mut Source::replay(failure.choices.clone()));
    assert_eq!(
        minimal.len(),
        1,
        "shrunk to one record, got {minimal:?} (choices {:?})",
        failure.choices
    );
    assert_eq!(minimal[0].kind, TraceKind::Store);
}

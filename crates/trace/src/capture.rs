//! Reference-trace capture at the CPU → memory-system boundary.
//!
//! [`TracingSystem`] wraps any [`MemorySystem`] and appends one
//! [`TraceRecord`] per issued request to a shared [`TraceSink`] before
//! forwarding the request unchanged. Because every CPU-model memory
//! operation — instruction fetches, loads (including `LL`), stores
//! (including successful `SC` and write-buffer drains) — funnels through
//! `MemorySystem::access`, wrapping that one call captures the complete
//! reference stream in exact issue order without touching either CPU
//! model. With no wrapper installed the simulator runs the raw system, so
//! disabled capture costs exactly zero.

use crate::codec::{TraceKind, TraceRecord, TraceWriter};
use cmpsim_engine::Cycle;
use cmpsim_mem::{sentinel, Addr, CpuId, MemRequest, MemResult, MemStats, MemorySystem, PortUtil};
use std::cell::RefCell;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// A file that materializes atomically: every byte goes to `<dest>.tmp`,
/// and only [`AtomicFile::commit`] renames it onto the destination. A
/// crash at any earlier point leaves the destination untouched (absent,
/// or its previous complete contents) and the torn `.tmp` behind for
/// [`crate::salvage`] — dropping without committing deliberately does NOT
/// delete it.
#[derive(Debug)]
pub struct AtomicFile {
    file: File,
    tmp: PathBuf,
    dest: PathBuf,
}

impl AtomicFile {
    /// Opens `<dest>.tmp` for writing, truncating any stale temp file.
    ///
    /// # Errors
    ///
    /// Propagates the temp-file creation failure.
    pub fn create(dest: impl Into<PathBuf>) -> io::Result<AtomicFile> {
        let dest = dest.into();
        let mut tmp = dest.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let file = File::create(&tmp)?;
        Ok(AtomicFile { file, tmp, dest })
    }

    /// Where bytes are accumulating until commit.
    pub fn tmp_path(&self) -> &Path {
        &self.tmp
    }

    /// Where [`AtomicFile::commit`] will publish the file.
    pub fn dest_path(&self) -> &Path {
        &self.dest
    }

    /// Durably publishes the file: flush, sync, rename onto `dest`.
    ///
    /// # Errors
    ///
    /// Propagates flush/sync/rename failures; on error the temp file is
    /// left in place.
    pub fn commit(mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_all()?;
        std::fs::rename(&self.tmp, &self.dest)
    }
}

impl Write for AtomicFile {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.file.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

/// The capture target a [`TraceSink`] writes through: either a plain
/// caller-supplied writer (in-memory buffers, pipes, tests) or an
/// [`AtomicFile`] that only surfaces at its destination path once the
/// footer has landed.
pub enum SinkOut {
    /// A caller-supplied writer; [`SinkOut::finalize`] is a no-op.
    Plain(Box<dyn Write>),
    /// A temp-file-then-rename destination committed on finalize.
    Atomic(AtomicFile),
}

impl SinkOut {
    /// Publishes an atomic destination; no-op for a plain writer.
    ///
    /// # Errors
    ///
    /// Propagates [`AtomicFile::commit`] failures.
    pub fn finalize(self) -> io::Result<()> {
        match self {
            SinkOut::Plain(_) => Ok(()),
            SinkOut::Atomic(f) => f.commit(),
        }
    }
}

impl Write for SinkOut {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        match self {
            SinkOut::Plain(w) => w.write(data),
            SinkOut::Atomic(f) => f.write(data),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            SinkOut::Plain(w) => w.flush(),
            SinkOut::Atomic(f) => f.flush(),
        }
    }
}

/// A chunk-buffered trace writer shared between the machine (which emits
/// region-of-interest markers and finishes the file) and the
/// [`TracingSystem`] wrapper (which emits access records).
#[derive(Debug)]
pub struct TraceSink {
    writer: TraceWriter<SinkOut>,
}

impl TraceSink {
    /// Starts a sink writing the trace header for an `n_cpus`-CPU machine
    /// with `line_bytes`-byte cache lines.
    ///
    /// # Errors
    ///
    /// Propagates header-write failures.
    pub fn new(out: Box<dyn Write>, n_cpus: usize, line_bytes: u32) -> io::Result<TraceSink> {
        Ok(TraceSink {
            writer: TraceWriter::new(SinkOut::Plain(out), n_cpus, line_bytes)?,
        })
    }

    /// Starts a sink capturing to `path` through an [`AtomicFile`]: the
    /// trace lands at `<path>.tmp` and renames onto `path` only when
    /// [`TraceSink::finish`] has written the footer, so a killed run
    /// never leaves a torn file at the published path.
    ///
    /// # Errors
    ///
    /// Propagates temp-file creation and header-write failures.
    pub fn new_atomic(
        path: impl Into<PathBuf>,
        n_cpus: usize,
        line_bytes: u32,
    ) -> io::Result<TraceSink> {
        let out = SinkOut::Atomic(AtomicFile::create(path)?);
        Ok(TraceSink {
            writer: TraceWriter::new(out, n_cpus, line_bytes)?,
        })
    }

    /// Records one memory access.
    ///
    /// # Panics
    ///
    /// Panics if the underlying writer fails — capture runs deep inside
    /// the simulation loop, where an I/O `Result` has no path back to the
    /// caller, and a silently incomplete reference trace would be worse
    /// than a loud stop.
    pub fn record_access(&mut self, now: Cycle, req: &MemRequest) {
        self.push(TraceRecord {
            cycle: now.0,
            cpu: req.cpu as u8,
            kind: req.kind.into(),
            addr: req.addr,
        });
    }

    /// Records a region-of-interest statistics reset at `cycle`.
    pub fn record_reset(&mut self, cycle: u64) {
        self.push(TraceRecord {
            cycle,
            cpu: 0,
            kind: TraceKind::StatsReset,
            addr: 0,
        });
    }

    fn push(&mut self, rec: TraceRecord) {
        self.writer
            .push(rec)
            .unwrap_or_else(|e| panic!("trace capture failed: {e}"));
    }

    /// Flushes pending records, writes the footer, and — for an atomic
    /// sink — renames the temp file onto its destination. Idempotent.
    /// Drop writes the footer best-effort but never commits the rename,
    /// so an unfinished atomic capture stays at `<path>.tmp`.
    pub fn finish(&mut self) -> io::Result<()> {
        match self.writer.finish_into_inner()? {
            Some(out) => out.finalize(),
            None => Ok(()),
        }
    }

    /// Records captured so far.
    pub fn records(&self) -> u64 {
        self.writer.records()
    }

    /// Encoded bytes emitted so far.
    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }
}

/// Shared handle to a [`TraceSink`]: the machine keeps one end, the
/// [`TracingSystem`] the other. Capture is single-threaded (one machine,
/// one sink), so plain `Rc<RefCell<_>>` suffices.
pub type SinkHandle = Rc<RefCell<TraceSink>>;

/// A [`MemorySystem`] decorator that records every issued request.
///
/// Forwards every trait method to the wrapped system unchanged, so a
/// traced run is bit-identical to an untraced one — the capture hook can
/// never perturb the experiment it observes.
pub struct TracingSystem {
    inner: Box<dyn MemorySystem>,
    sink: SinkHandle,
}

impl std::fmt::Debug for TracingSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracingSystem")
            .field("inner", &self.inner.name())
            .finish_non_exhaustive()
    }
}

impl TracingSystem {
    /// Wraps `inner`, recording into `sink`.
    pub fn new(inner: Box<dyn MemorySystem>, sink: SinkHandle) -> TracingSystem {
        TracingSystem { inner, sink }
    }
}

impl MemorySystem for TracingSystem {
    fn access(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        self.sink.borrow_mut().record_access(now, &req);
        self.inner.access(now, req)
    }

    fn load_would_hit_l1(&self, cpu: CpuId, addr: Addr) -> bool {
        self.inner.load_would_hit_l1(cpu, addr)
    }

    fn line_bytes(&self) -> u32 {
        self.inner.line_bytes()
    }

    fn n_cpus(&self) -> usize {
        self.inner.n_cpus()
    }

    fn stats(&self) -> &MemStats {
        self.inner.stats()
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        self.inner.stats_mut()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn port_utilization(&self) -> Vec<PortUtil> {
        self.inner.port_utilization()
    }

    fn violations(&self) -> &[sentinel::SentinelViolation] {
        self.inner.violations()
    }

    fn injected_faults(&self) -> &[(sentinel::FaultKind, Addr)] {
        self.inner.injected_faults()
    }

    fn cross_cpu_lookahead(&self) -> u64 {
        self.inner.cross_cpu_lookahead()
    }
}

/// A clonable in-memory byte buffer implementing [`Write`] — the capture
/// target for in-process capture-then-replay flows (tests, benches, the
/// examples), where the trace never needs to touch the filesystem.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf {
    buf: Rc<RefCell<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// Takes the accumulated bytes, leaving the buffer empty.
    pub fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.buf.borrow_mut())
    }

    /// Bytes accumulated so far.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.borrow_mut().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Builds a sink/handle pair writing into `out`.
///
/// # Errors
///
/// Propagates header-write failures.
pub fn sink_to(out: Box<dyn Write>, n_cpus: usize, line_bytes: u32) -> io::Result<SinkHandle> {
    Ok(Rc::new(RefCell::new(TraceSink::new(
        out, n_cpus, line_bytes,
    )?)))
}

/// Builds a sink/handle pair capturing crash-safely to `path` (see
/// [`TraceSink::new_atomic`]).
///
/// # Errors
///
/// Propagates temp-file creation and header-write failures.
pub fn sink_to_path(
    path: impl Into<PathBuf>,
    n_cpus: usize,
    line_bytes: u32,
) -> io::Result<SinkHandle> {
    Ok(Rc::new(RefCell::new(TraceSink::new_atomic(
        path, n_cpus, line_bytes,
    )?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode;
    use cmpsim_mem::{SharedMemSystem, SystemConfig};

    #[test]
    fn wrapper_is_transparent_and_records_in_issue_order() {
        let cfg = SystemConfig::paper_shared_mem(4);
        let buf = SharedBuf::new();
        let sink = sink_to(Box::new(buf.clone()), 4, 32).expect("header writes");
        let mut traced = TracingSystem::new(Box::new(SharedMemSystem::new(&cfg)), Rc::clone(&sink));
        let mut plain = SharedMemSystem::new(&cfg);

        let reqs = [
            MemRequest::ifetch(0, 0x1000),
            MemRequest::load(1, 0x2000),
            MemRequest::store(1, 0x2004),
            MemRequest::load(2, 0x2000),
        ];
        for (i, req) in reqs.iter().enumerate() {
            let at = Cycle(i as u64 * 100);
            assert_eq!(traced.access(at, *req), plain.access(at, *req));
        }
        assert_eq!(traced.line_bytes(), plain.line_bytes());
        assert_eq!(traced.n_cpus(), 4);
        assert_eq!(traced.name(), plain.name());
        assert_eq!(
            format!("{:?}", traced.stats()),
            format!("{:?}", plain.stats())
        );

        sink.borrow_mut().finish().expect("finishes");
        let records = decode(&buf.take()).expect("decodes");
        assert_eq!(records.len(), 4);
        for (rec, req) in records.iter().zip(&reqs) {
            assert_eq!(rec.cpu as usize, req.cpu);
            assert_eq!(rec.addr, req.addr);
            assert_eq!(rec.kind.access_kind(), Some(req.kind));
        }
        assert_eq!(records[3].cycle, 300);
    }

    #[test]
    fn sink_finish_is_idempotent_and_counts_bytes() {
        let buf = SharedBuf::new();
        let mut sink = TraceSink::new(Box::new(buf.clone()), 2, 32).expect("header");
        sink.record_access(Cycle(5), &MemRequest::load(1, 0x40));
        sink.record_reset(6);
        sink.finish().expect("first finish");
        sink.finish().expect("second finish is a no-op");
        assert_eq!(sink.records(), 2);
        assert_eq!(sink.bytes_written() as usize, buf.len());
        let records = decode(&buf.take()).expect("decodes");
        assert_eq!(records[1].kind, TraceKind::StatsReset);
        assert_eq!(records[1].cycle, 6);
    }
}

//! cmpsim-trace: the reference-trace subsystem.
//!
//! Four pieces, mirroring how trace-driven studies are actually run:
//!
//! - **Capture** ([`capture`]): [`TracingSystem`] decorates any
//!   [`MemorySystem`](cmpsim_mem::MemorySystem) at the CPU → memory
//!   boundary and streams every issued request into a [`TraceSink`].
//!   Nothing installed ⇒ exactly zero overhead. File capture is
//!   crash-safe: [`sink_to_path`] writes through an [`AtomicFile`] that
//!   renames onto the destination only after the footer lands, and
//!   [`salvage`] recovers every intact chunk from a torn `.tmp`.
//! - **Codec** ([`codec`]): a chunked binary format — delta-encoded
//!   cycles/addresses as zigzag LEB128 varints, FNV-1a checksummed
//!   chunks, a footer that doubles as a truncation detector. Format v2
//!   chunks carry restart state, so any chunk decodes independently:
//!   [`decode_parallel`] fans chunk decode across the engine job pool
//!   with results byte-identical to serial decode at any job count
//!   (legacy v1 traces stay readable via the serial path).
//! - **Replay** ([`replay`]): re-issue a captured stream into a memory
//!   system built from configuration alone, skipping the CPU models.
//!   Replay into the captured configuration reproduces bit-identical
//!   statistics; replay into a different one is the classic fixed-stream
//!   approximation for fast hierarchy sweeps. [`replay_matrix`] batches
//!   that: decode once, replay N configurations from the shared record
//!   arena across `CMPSIM_REPLAY_JOBS` threads, each point bit-identical
//!   to its single-config replay.
//! - **Analysis** ([`analyze()`]): footprint, per-line sharing degree,
//!   producer→consumer communication matrix and reuse-distance profile
//!   computed from the trace alone.

pub mod analyze;
pub mod capture;
pub mod codec;
pub mod replay;

pub use analyze::{analyze, analyze_bytes, comm_matrix, TraceAnalysis};
pub use capture::{
    sink_to, sink_to_path, AtomicFile, SharedBuf, SinkHandle, SinkOut, TraceSink, TracingSystem,
};
pub use codec::{
    decode, decode_chunk, decode_parallel, decode_parallel_with_header, decode_with_header, encode,
    encode_with_version, rewrite_v2, salvage, scan_chunks, ChunkFrame, Salvage, TraceError,
    TraceHeader, TraceKind, TraceReader, TraceRecord, TraceWriter, ENV_TRACE_FORMAT, VERSION,
    VERSION_V1,
};
pub use replay::{
    count_accesses, kind_totals, replay_bytes, replay_jobs, replay_matrix, replay_reader,
    replay_records, ConfigReplay, ReplayStats, ENV_REPLAY_JOBS,
};

//! cmpsim-trace: the reference-trace subsystem.
//!
//! Four pieces, mirroring how trace-driven studies are actually run:
//!
//! - **Capture** ([`capture`]): [`TracingSystem`] decorates any
//!   [`MemorySystem`](cmpsim_mem::MemorySystem) at the CPU → memory
//!   boundary and streams every issued request into a [`TraceSink`].
//!   Nothing installed ⇒ exactly zero overhead.
//! - **Codec** ([`codec`]): a chunked binary format — delta-encoded
//!   cycles/addresses as zigzag LEB128 varints, FNV-1a checksummed
//!   chunks, a footer that doubles as a truncation detector. Dependency
//!   free, streaming in both directions.
//! - **Replay** ([`replay`]): re-issue a captured stream into a memory
//!   system built from configuration alone, skipping the CPU models.
//!   Replay into the captured configuration reproduces bit-identical
//!   statistics; replay into a different one is the classic fixed-stream
//!   approximation for fast hierarchy sweeps.
//! - **Analysis** ([`analyze()`]): footprint, per-line sharing degree,
//!   producer→consumer communication matrix and reuse-distance profile
//!   computed from the trace alone.

pub mod analyze;
pub mod capture;
pub mod codec;
pub mod replay;

pub use analyze::{analyze, analyze_bytes, comm_matrix, TraceAnalysis};
pub use capture::{sink_to, SharedBuf, SinkHandle, TraceSink, TracingSystem};
pub use codec::{
    decode, decode_with_header, encode, TraceError, TraceHeader, TraceKind, TraceReader,
    TraceRecord, TraceWriter,
};
pub use replay::{
    count_accesses, kind_totals, replay_bytes, replay_reader, replay_records, ReplayStats,
};

//! The compact chunked binary trace format (see `DESIGN.md` §11).
//!
//! A trace file is a fixed 8-byte header followed by a sequence of
//! self-checking chunks and a footer:
//!
//! ```text
//! header:  "CMPT" | version: u8 | n_cpus: u8 | line_bytes: u16 LE
//! chunk:   payload_len: u32 LE | n_records: u32 LE | fnv1a64(payload): u64 LE | payload
//! footer:  0xFFFF_FFFF: u32 LE | total_records: u64 LE
//! ```
//!
//! Each payload record is a tag byte (access kind in the low 2 bits, CPU id
//! in the high 6) followed by two LEB128 varints: the zigzag-encoded cycle
//! delta and address delta against the previous record. Cycle deltas are
//! signed because the run loop's per-CPU interleave can step time backwards
//! between consecutive records even though each CPU's own stream is
//! monotone.
//!
//! **Format v2 (current): restartable chunks.** A v2 chunk payload opens
//! with a 12-byte *restart preamble* — the absolute delta baseline
//! (`restart_cycle: u64 LE | restart_addr: u32 LE`) the chunk's first
//! record is encoded against — so every chunk decodes independently of
//! every other: initialize the delta state from the preamble and walk the
//! records. That is what lets [`decode_parallel`] fan chunk decode across
//! host threads and lets any chunk subset decode in any order
//! ([`scan_chunks`] / [`decode_chunk`]). The preamble sits inside the
//! checksummed payload, so a corrupted restart state is detected exactly
//! like a corrupted record.
//!
//! **Format v1 (still readable).** v1 chunks carry no preamble; their
//! delta state deliberately crosses chunk boundaries, so a v1 trace can
//! only decode serially front to back (chunk 0 is the one exception — its
//! baseline is the all-zero initial state). Readers accept both versions;
//! writers emit v2 unless [`ENV_TRACE_FORMAT`] (`CMPSIM_TRACE_FORMAT=1`)
//! pins the legacy format, and `cmpsim replay --rewrite` migrates v1
//! files in place of re-capturing.
//!
//! The footer doubles as the truncation sentinel: a reader that reaches end
//! of file without having consumed a footer reports
//! [`TraceError::Truncated`], and a footer whose record count disagrees
//! with the records actually decoded reports [`TraceError::CountMismatch`].

use std::fmt;
use std::io::{self, Read, Write};
use std::ops::Range;

/// File magic: the first four bytes of every cmpsim trace.
pub const MAGIC: [u8; 4] = *b"CMPT";

/// Current format version (the fifth byte of the file): restartable
/// chunks.
pub const VERSION: u8 = 2;

/// Legacy format version: delta state carries across chunk boundaries, so
/// decode is serial front to back.
pub const VERSION_V1: u8 = 1;

/// Bytes of the v2 restart preamble at the front of every chunk payload:
/// `restart_cycle: u64 LE | restart_addr: u32 LE`.
pub const RESTART_BYTES: usize = 12;

/// Records per chunk the writer targets (the last chunk may be shorter).
pub const CHUNK_RECORDS: usize = 4096;

/// Footer sentinel occupying the `payload_len` slot of a chunk header.
pub const FOOTER_SENTINEL: u32 = 0xFFFF_FFFF;

/// Highest CPU id the 6-bit tag field can carry.
pub const MAX_CPU: u8 = 63;

/// Environment knob selecting the format written by [`TraceWriter::new`]
/// (and therefore by `CMPSIM_TRACE_OUT` capture): `1` writes the legacy
/// carry-across-chunks format, anything else (including unset) writes the
/// current restartable format. Exists so the v1→v2 migration path stays
/// testable end to end after the writer default moved on.
pub const ENV_TRACE_FORMAT: &str = "CMPSIM_TRACE_FORMAT";

/// The version [`TraceWriter::new`] writes: [`VERSION_V1`] when
/// [`ENV_TRACE_FORMAT`] is `1`, else [`VERSION`].
pub fn default_version() -> u8 {
    match std::env::var(ENV_TRACE_FORMAT) {
        Ok(v) if v.trim() == "1" => VERSION_V1,
        _ => VERSION,
    }
}

/// What one trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Instruction fetch presented to the memory system.
    IFetch,
    /// Data read (includes `LL`).
    Load,
    /// Data write (includes a successful `SC` and write-buffer drains —
    /// the capture point sees stores when they are issued to the memory
    /// system, which is where the write buffer hands them over).
    Store,
    /// Region-of-interest marker: the run reset its statistics here.
    /// Replay must perform the same reset to reproduce post-ROI numbers.
    StatsReset,
}

impl TraceKind {
    fn to_bits(self) -> u8 {
        match self {
            TraceKind::IFetch => 0,
            TraceKind::Load => 1,
            TraceKind::Store => 2,
            TraceKind::StatsReset => 3,
        }
    }

    fn from_bits(bits: u8) -> TraceKind {
        match bits & 0x3 {
            0 => TraceKind::IFetch,
            1 => TraceKind::Load,
            2 => TraceKind::Store,
            _ => TraceKind::StatsReset,
        }
    }

    /// The memory-system access kind, `None` for the stats-reset marker.
    pub fn access_kind(self) -> Option<cmpsim_mem::AccessKind> {
        match self {
            TraceKind::IFetch => Some(cmpsim_mem::AccessKind::IFetch),
            TraceKind::Load => Some(cmpsim_mem::AccessKind::Load),
            TraceKind::Store => Some(cmpsim_mem::AccessKind::Store),
            TraceKind::StatsReset => None,
        }
    }
}

impl From<cmpsim_mem::AccessKind> for TraceKind {
    fn from(kind: cmpsim_mem::AccessKind) -> TraceKind {
        match kind {
            cmpsim_mem::AccessKind::IFetch => TraceKind::IFetch,
            cmpsim_mem::AccessKind::Load => TraceKind::Load,
            cmpsim_mem::AccessKind::Store => TraceKind::Store,
        }
    }
}

/// One captured event: `(cycle, cpu, kind, addr)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle at which the request was issued to the memory system.
    pub cycle: u64,
    /// Issuing CPU (0 for [`TraceKind::StatsReset`]).
    pub cpu: u8,
    /// Access kind or marker.
    pub kind: TraceKind,
    /// Physical byte address (0 for [`TraceKind::StatsReset`]).
    pub addr: u32,
}

/// Trace-file metadata from the 8-byte header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version.
    pub version: u8,
    /// CPU count of the capturing machine.
    pub n_cpus: u8,
    /// Cache line size of the capturing memory system (bytes).
    pub line_bytes: u16,
}

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u8),
    /// A chunk's payload hashes to something other than its header claims.
    ChecksumMismatch {
        /// Zero-based chunk index.
        chunk: u64,
        /// Checksum stored in the chunk header.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
    /// A v2 chunk payload is too short to carry its restart preamble.
    BadRestart {
        /// Zero-based chunk index.
        chunk: u64,
    },
    /// The chunk cannot decode independently: a v1 chunk past index 0 has
    /// no restart state of its own (its delta baseline lives in the chunk
    /// before it).
    NotRestartable {
        /// Zero-based chunk index.
        chunk: u64,
    },
    /// The file ended before a complete footer was read.
    Truncated,
    /// A chunk payload did not decode to exactly its declared records.
    ChunkOverrun {
        /// Zero-based chunk index.
        chunk: u64,
    },
    /// The footer's total disagrees with the records decoded.
    CountMismatch {
        /// Total the footer claims.
        expected: u64,
        /// Records actually decoded.
        found: u64,
    },
    /// Bytes follow the footer.
    TrailingData,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a cmpsim trace (magic {m:02x?})"),
            TraceError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads {VERSION_V1} and {VERSION})"
                )
            }
            TraceError::ChecksumMismatch {
                chunk,
                expected,
                found,
            } => write!(
                f,
                "chunk {chunk} corrupt: checksum {found:#018x}, header says {expected:#018x}"
            ),
            TraceError::BadRestart { chunk } => {
                write!(f, "chunk {chunk} is too short to carry its restart state")
            }
            TraceError::NotRestartable { chunk } => write!(
                f,
                "chunk {chunk} of a v1 trace cannot decode independently (rewrite to v2 first)"
            ),
            TraceError::Truncated => write!(f, "trace truncated: footer missing"),
            TraceError::ChunkOverrun { chunk } => {
                write!(f, "chunk {chunk} payload does not match its record count")
            }
            TraceError::CountMismatch { expected, found } => write!(
                f,
                "footer claims {expected} records but {found} were decoded"
            ),
            TraceError::TrailingData => write!(f, "bytes follow the trace footer"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    }
}

/// Word-folded FNV-1a 64-bit: the chunk checksum. Folds eight payload
/// bytes per multiply instead of one — every step stays injective in both
/// operands (xor, and multiplication by the odd FNV prime), so any
/// single-bit corruption is still guaranteed to change the sum, at an
/// eighth of the serial multiply chain the byte-wise variant pays.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    // Single-byte fast path: most deltas in a real trace are small.
    let &b0 = buf.get(*pos)?;
    if b0 & 0x80 == 0 {
        *pos += 1;
        return Some(u64::from(b0));
    }
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        // A 64-bit value needs at most ten LEB128 bytes.
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Delta state a record stream is encoded against. In a v2 trace it is
/// reset from each chunk's restart preamble; in a v1 trace it carries
/// across chunks front to back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DeltaState {
    prev_cycle: u64,
    prev_addr: u32,
}

impl DeltaState {
    /// Writes the 12-byte v2 restart preamble naming this state.
    fn write_restart(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.prev_cycle.to_le_bytes());
        out.extend_from_slice(&self.prev_addr.to_le_bytes());
    }

    /// Reads a 12-byte v2 restart preamble. `None` if fewer bytes remain.
    fn read_restart(buf: &[u8], pos: &mut usize) -> Option<DeltaState> {
        let cycle = take::<8>(buf, pos)?;
        let addr = take::<4>(buf, pos)?;
        Some(DeltaState {
            prev_cycle: u64::from_le_bytes(cycle),
            prev_addr: u32::from_le_bytes(addr),
        })
    }

    fn encode(&mut self, rec: &TraceRecord, out: &mut Vec<u8>) {
        debug_assert!(rec.cpu <= MAX_CPU, "cpu {} exceeds the tag field", rec.cpu);
        out.push(rec.kind.to_bits() | (rec.cpu << 2));
        put_varint(out, zigzag(rec.cycle.wrapping_sub(self.prev_cycle) as i64));
        put_varint(out, zigzag(i64::from(rec.addr) - i64::from(self.prev_addr)));
        self.prev_cycle = rec.cycle;
        self.prev_addr = rec.addr;
    }

    fn decode(&mut self, buf: &[u8], pos: &mut usize) -> Option<TraceRecord> {
        // Fast path: in a real trace almost every record is a 1-byte tag
        // plus two 1–2 byte varints, so when 8 buffered bytes remain the
        // whole record fits one little-endian register window — one load
        // and some shifts instead of a serial chain of bounds-checked
        // byte reads. Longer varints (and the chunk tail) take the
        // general path below, which re-reads from the untouched `pos`.
        if let Some(win) = buf.get(*pos..*pos + 8) {
            let w = u64::from_le_bytes(win.try_into().expect("8-byte window"));
            let tag = w as u8;
            let b = (w >> 8) as u8;
            let (dc_raw, len_c) = if b & 0x80 == 0 {
                (u64::from(b), 1usize)
            } else {
                let b2 = (w >> 16) as u8;
                if b2 & 0x80 != 0 {
                    return self.decode_general(buf, pos);
                }
                (u64::from(b & 0x7f) | u64::from(b2) << 7, 2)
            };
            let rest = w >> (8 * (1 + len_c));
            let b = rest as u8;
            let (da_raw, len_a) = if b & 0x80 == 0 {
                (u64::from(b), 1usize)
            } else {
                let b2 = (rest >> 8) as u8;
                if b2 & 0x80 != 0 {
                    return self.decode_general(buf, pos);
                }
                (u64::from(b & 0x7f) | u64::from(b2) << 7, 2)
            };
            *pos += 1 + len_c + len_a;
            return Some(self.reconstruct(tag, dc_raw, da_raw));
        }
        self.decode_general(buf, pos)
    }

    /// The general decode path: handles varints of any length and the
    /// end of the chunk, where fewer than 8 bytes remain.
    fn decode_general(&mut self, buf: &[u8], pos: &mut usize) -> Option<TraceRecord> {
        let &tag = buf.get(*pos)?;
        *pos += 1;
        let dc_raw = get_varint(buf, pos)?;
        let da_raw = get_varint(buf, pos)?;
        Some(self.reconstruct(tag, dc_raw, da_raw))
    }

    /// Applies the decoded (tag, cycle-delta, address-delta) triple to
    /// the running state and materializes the record.
    #[inline]
    fn reconstruct(&mut self, tag: u8, dc_raw: u64, da_raw: u64) -> TraceRecord {
        let dc = unzigzag(dc_raw);
        let da = unzigzag(da_raw);
        let cycle = self.prev_cycle.wrapping_add(dc as u64);
        let addr = (i64::from(self.prev_addr) + da) as u32;
        self.prev_cycle = cycle;
        self.prev_addr = addr;
        TraceRecord {
            cycle,
            cpu: tag >> 2,
            kind: TraceKind::from_bits(tag),
            addr,
        }
    }
}

/// Decodes exactly `n_records` records from `payload[*pos..]` into `out`.
/// Runs the delta state in a register-resident local and writes it back
/// once — the shared hot loop of every decode path. `false` on underrun.
#[inline]
fn decode_records(
    payload: &[u8],
    pos: &mut usize,
    n_records: u32,
    state: &mut DeltaState,
    out: &mut Vec<TraceRecord>,
) -> bool {
    let mut local = *state;
    for _ in 0..n_records {
        match local.decode(payload, pos) {
            Some(rec) => out.push(rec),
            None => return false,
        }
    }
    *state = local;
    true
}

/// Streaming chunked writer.
///
/// Buffers records, flushes a checksummed chunk every [`CHUNK_RECORDS`],
/// and writes the footer on [`TraceWriter::finish`]. Dropping an
/// unfinished writer finishes it best-effort (errors are swallowed —
/// call `finish` explicitly when they matter).
pub struct TraceWriter<W: Write> {
    out: Option<W>,
    version: u8,
    pending: Vec<TraceRecord>,
    state: DeltaState,
    records: u64,
    bytes: u64,
}

impl<W: Write> fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceWriter")
            .field("version", &self.version)
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .field("finished", &self.out.is_none())
            .finish()
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace in the default format ([`default_version`]; v2
    /// unless `CMPSIM_TRACE_FORMAT=1`): writes the header immediately.
    pub fn new(out: W, n_cpus: usize, line_bytes: u32) -> io::Result<TraceWriter<W>> {
        TraceWriter::with_version(out, n_cpus, line_bytes, default_version())
    }

    /// Starts a trace pinned to `version` ([`VERSION`] or [`VERSION_V1`]).
    ///
    /// # Panics
    ///
    /// Panics on an unknown version or a CPU count the tag field cannot
    /// carry.
    pub fn with_version(
        mut out: W,
        n_cpus: usize,
        line_bytes: u32,
        version: u8,
    ) -> io::Result<TraceWriter<W>> {
        assert!(
            version == VERSION || version == VERSION_V1,
            "unknown trace format version {version}"
        );
        assert!(
            n_cpus <= usize::from(MAX_CPU) + 1,
            "trace tag field carries at most {} CPUs",
            usize::from(MAX_CPU) + 1
        );
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&MAGIC);
        header[4] = version;
        header[5] = n_cpus as u8;
        header[6..8].copy_from_slice(&(line_bytes as u16).to_le_bytes());
        out.write_all(&header)?;
        Ok(TraceWriter {
            out: Some(out),
            version,
            pending: Vec::with_capacity(CHUNK_RECORDS),
            state: DeltaState::default(),
            records: 0,
            bytes: 8,
        })
    }

    /// Appends one record, flushing a chunk when the buffer fills.
    pub fn push(&mut self, rec: TraceRecord) -> io::Result<()> {
        self.pending.push(rec);
        self.records += 1;
        if self.pending.len() >= CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(RESTART_BYTES + self.pending.len() * 4);
        if self.version == VERSION {
            // The restart preamble is the delta baseline of the chunk's
            // first record: exactly the writer's state before encoding it.
            self.state.write_restart(&mut payload);
        }
        for rec in &self.pending {
            self.state.encode(rec, &mut payload);
        }
        let out = self.out.as_mut().expect("writer already finished");
        out.write_all(&(payload.len() as u32).to_le_bytes())?;
        out.write_all(&(self.pending.len() as u32).to_le_bytes())?;
        out.write_all(&fnv1a(&payload).to_le_bytes())?;
        out.write_all(&payload)?;
        self.bytes += 16 + payload.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial chunk and the footer. Idempotent.
    pub fn finish(&mut self) -> io::Result<()> {
        self.finish_into_inner().map(drop)
    }

    /// [`TraceWriter::finish`] that hands the sealed sink back to the
    /// caller — the hook crash-safe capture needs: the caller can commit
    /// an atomic temp-file rename only *after* the footer landed. Returns
    /// `None` on every call after the first (finish is idempotent).
    pub fn finish_into_inner(&mut self) -> io::Result<Option<W>> {
        if self.out.is_none() {
            return Ok(None);
        }
        self.flush_chunk()?;
        let mut out = self.out.take().expect("checked above");
        out.write_all(&FOOTER_SENTINEL.to_le_bytes())?;
        out.write_all(&self.records.to_le_bytes())?;
        out.flush()?;
        self.bytes += 12;
        Ok(Some(out))
    }

    /// Records written so far (including still-buffered ones).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes emitted so far, counting the header and (once finished) the
    /// footer — the numerator of the bytes-per-reference compression ratio.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

impl<W: Write> Drop for TraceWriter<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Streaming chunked reader: an iterator of records that verifies every
/// chunk checksum and the footer count on the way through. Reads both
/// format versions ([`TraceHeader::version`] says which).
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    header: TraceHeader,
    chunk: Vec<TraceRecord>,
    next: usize,
    state: DeltaState,
    chunks_read: u64,
    decoded: u64,
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace: reads and validates the header.
    pub fn new(mut src: R) -> Result<TraceReader<R>, TraceError> {
        let mut header = [0u8; 8];
        src.read_exact(&mut header)?;
        if header[..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&header[..4]);
            return Err(TraceError::BadMagic(m));
        }
        if header[4] != VERSION && header[4] != VERSION_V1 {
            return Err(TraceError::BadVersion(header[4]));
        }
        Ok(TraceReader {
            src,
            header: TraceHeader {
                version: header[4],
                n_cpus: header[5],
                line_bytes: u16::from_le_bytes([header[6], header[7]]),
            },
            chunk: Vec::new(),
            next: 0,
            state: DeltaState::default(),
            chunks_read: 0,
            decoded: 0,
            finished: false,
        })
    }

    /// The file's header metadata.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// Loads and verifies the next chunk. `Ok(false)` means the footer was
    /// reached (and validated).
    fn load_chunk(&mut self) -> Result<bool, TraceError> {
        let mut word = [0u8; 4];
        self.src.read_exact(&mut word)?;
        let payload_len = u32::from_le_bytes(word);
        if payload_len == FOOTER_SENTINEL {
            let mut total = [0u8; 8];
            self.src.read_exact(&mut total)?;
            let expected = u64::from_le_bytes(total);
            if expected != self.decoded {
                return Err(TraceError::CountMismatch {
                    expected,
                    found: self.decoded,
                });
            }
            let mut probe = [0u8; 1];
            match self.src.read(&mut probe) {
                Ok(0) => {}
                Ok(_) => return Err(TraceError::TrailingData),
                Err(e) => return Err(e.into()),
            }
            self.finished = true;
            return Ok(false);
        }
        self.src.read_exact(&mut word)?;
        let n_records = u32::from_le_bytes(word);
        let mut sum = [0u8; 8];
        self.src.read_exact(&mut sum)?;
        let expected = u64::from_le_bytes(sum);
        let mut payload = vec![0u8; payload_len as usize];
        self.src.read_exact(&mut payload)?;
        let found = fnv1a(&payload);
        if found != expected {
            return Err(TraceError::ChecksumMismatch {
                chunk: self.chunks_read,
                expected,
                found,
            });
        }
        let mut pos = 0usize;
        if self.header.version == VERSION {
            // Restartable chunk: the delta baseline is in the preamble,
            // not carried from the previous chunk.
            self.state =
                DeltaState::read_restart(&payload, &mut pos).ok_or(TraceError::BadRestart {
                    chunk: self.chunks_read,
                })?;
        }
        self.chunk.clear();
        if !decode_records(
            &payload,
            &mut pos,
            n_records,
            &mut self.state,
            &mut self.chunk,
        ) || pos != payload.len()
        {
            return Err(TraceError::ChunkOverrun {
                chunk: self.chunks_read,
            });
        }
        self.chunks_read += 1;
        self.decoded += u64::from(n_records);
        self.next = 0;
        Ok(true)
    }

    /// Drains the remaining records into a vector, validating everything.
    pub fn collect_all(self) -> Result<Vec<TraceRecord>, TraceError> {
        let mut out = Vec::new();
        for rec in self {
            out.push(rec?);
        }
        Ok(out)
    }

    /// Decodes the whole trace with chunk decode fanned across up to
    /// `jobs` threads of the engine job pool, returning records
    /// byte-identical to serial decode at any job count (chunks merge in
    /// index order). A v1 trace — whose chunks cannot decode
    /// independently — silently takes the serial path, as does `jobs <= 1`.
    ///
    /// Must be called on a freshly opened reader: it slurps the remaining
    /// stream into memory and re-frames it, so records already iterated
    /// would be dropped.
    ///
    /// # Errors
    ///
    /// As [`decode`]: the error of the lowest-index failing chunk, or the
    /// framing/footer error, deterministically at any job count.
    ///
    /// # Panics
    ///
    /// Panics if records were already consumed from this reader.
    pub fn decode_chunks_parallel(mut self, jobs: usize) -> Result<Vec<TraceRecord>, TraceError> {
        assert!(
            self.decoded == 0 && self.next >= self.chunk.len(),
            "decode_chunks_parallel needs a freshly opened reader"
        );
        let mut body = Vec::new();
        self.src.read_to_end(&mut body)?;
        decode_body_parallel(self.header, &body, jobs)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.next < self.chunk.len() {
                let rec = self.chunk[self.next];
                self.next += 1;
                return Some(Ok(rec));
            }
            if self.finished {
                return None;
            }
            match self.load_chunk() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    // Poison the reader: one error ends the stream.
                    self.finished = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Reads `N` little-endian bytes at `*pos`, advancing it. `None` at EOF.
#[inline]
fn take<const N: usize>(bytes: &[u8], pos: &mut usize) -> Option<[u8; N]> {
    let s = bytes.get(*pos..*pos + N)?;
    *pos += N;
    Some(s.try_into().expect("slice of length N"))
}

/// Parses and validates the 8-byte file header of an in-memory trace.
fn parse_header(bytes: &[u8], pos: &mut usize) -> Result<TraceHeader, TraceError> {
    let header: [u8; 8] = take(bytes, pos).ok_or(TraceError::Truncated)?;
    if header[..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[..4]);
        return Err(TraceError::BadMagic(m));
    }
    if header[4] != VERSION && header[4] != VERSION_V1 {
        return Err(TraceError::BadVersion(header[4]));
    }
    Ok(TraceHeader {
        version: header[4],
        n_cpus: header[5],
        line_bytes: u16::from_le_bytes([header[6], header[7]]),
    })
}

/// One chunk's framing, located by [`scan_chunks`] without decoding any
/// record: where its checksummed payload lives in the byte slice, how
/// many records it declares, and where those records sit in the whole
/// file's stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFrame {
    /// Zero-based chunk index.
    pub index: u64,
    /// Stream position of the chunk's first record: the sum of the
    /// declared counts of every chunk before it.
    pub first_record: u64,
    /// Records this chunk declares.
    pub n_records: u32,
    /// Checksum the chunk header claims for the payload.
    pub checksum: u64,
    /// Byte range of the payload (v2: including the restart preamble)
    /// within the slice [`scan_chunks`] walked.
    pub payload: Range<usize>,
    /// Format version of the containing file.
    pub version: u8,
}

impl ChunkFrame {
    /// Whether this chunk can decode independently of every other: any v2
    /// chunk (restart preamble), or the first chunk of a v1 trace (its
    /// baseline is the all-zero initial state).
    pub fn restartable(&self) -> bool {
        self.version == VERSION || self.index == 0
    }
}

/// Walks the chunk framing of an in-memory trace without decoding a
/// single record: validates the header, every chunk header's bounds, the
/// footer's presence, its record total against the declared per-chunk
/// counts, and the absence of trailing bytes. Payload checksums are NOT
/// verified here — [`decode_chunk`] checks each chunk's sum when it is
/// actually decoded, which is what keeps the scan O(chunks), not
/// O(bytes).
///
/// # Errors
///
/// Framing errors only (`Truncated`, `BadMagic`, `BadVersion`,
/// `BadRestart`, `CountMismatch`, `TrailingData`).
pub fn scan_chunks(bytes: &[u8]) -> Result<(TraceHeader, Vec<ChunkFrame>), TraceError> {
    let mut pos = 0usize;
    let header = parse_header(bytes, &mut pos)?;
    let frames = scan_body(header, bytes, pos)?;
    Ok((header, frames))
}

/// The body of [`scan_chunks`]: walks frames from `pos` to the footer.
fn scan_body(
    header: TraceHeader,
    bytes: &[u8],
    mut pos: usize,
) -> Result<Vec<ChunkFrame>, TraceError> {
    let mut frames = Vec::new();
    let mut first_record = 0u64;
    loop {
        let payload_len = u32::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        if payload_len == FOOTER_SENTINEL {
            let expected = u64::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
            if expected != first_record {
                return Err(TraceError::CountMismatch {
                    expected,
                    found: first_record,
                });
            }
            if pos != bytes.len() {
                return Err(TraceError::TrailingData);
            }
            return Ok(frames);
        }
        let n_records = u32::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        let checksum = u64::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        let index = frames.len() as u64;
        if header.version == VERSION && (payload_len as usize) < RESTART_BYTES {
            return Err(TraceError::BadRestart { chunk: index });
        }
        let start = pos;
        let end = start
            .checked_add(payload_len as usize)
            .filter(|&e| e <= bytes.len())
            .ok_or(TraceError::Truncated)?;
        pos = end;
        frames.push(ChunkFrame {
            index,
            first_record,
            n_records,
            checksum,
            payload: start..end,
            version: header.version,
        });
        first_record += u64::from(n_records);
    }
}

/// Decodes one chunk independently of every other: verifies its checksum,
/// initializes the delta state from its restart preamble (v2) or the
/// all-zero initial state (v1 chunk 0), and decodes exactly its declared
/// records. `bytes` must be the same slice `frame` was scanned from.
///
/// # Errors
///
/// `NotRestartable` for a v1 chunk past index 0, `ChecksumMismatch`,
/// `BadRestart`, or `ChunkOverrun`.
pub fn decode_chunk(bytes: &[u8], frame: &ChunkFrame) -> Result<Vec<TraceRecord>, TraceError> {
    if !frame.restartable() {
        return Err(TraceError::NotRestartable { chunk: frame.index });
    }
    let payload = &bytes[frame.payload.clone()];
    let found = fnv1a(payload);
    if found != frame.checksum {
        return Err(TraceError::ChecksumMismatch {
            chunk: frame.index,
            expected: frame.checksum,
            found,
        });
    }
    let mut pos = 0usize;
    let mut state = if frame.version == VERSION {
        DeltaState::read_restart(payload, &mut pos)
            .ok_or(TraceError::BadRestart { chunk: frame.index })?
    } else {
        DeltaState::default()
    };
    let mut out = Vec::with_capacity(frame.n_records as usize);
    if !decode_records(payload, &mut pos, frame.n_records, &mut state, &mut out)
        || pos != payload.len()
    {
        return Err(TraceError::ChunkOverrun { chunk: frame.index });
    }
    Ok(out)
}

/// What a lenient [`salvage`] pass recovered from a torn or corrupted
/// trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Salvage {
    /// The validated file header.
    pub header: TraceHeader,
    /// Every record recovered, in stream order. Records from skipped
    /// chunks are absent — the stream has gaps where chunks were bad.
    pub records: Vec<TraceRecord>,
    /// Chunks whose payload verified and decoded.
    pub chunks_recovered: u64,
    /// Chunks whose framing was intact but whose payload failed its
    /// checksum, restart preamble, or decode (v2 only: a bad v1 chunk
    /// ends the walk instead, because later v1 chunks need its final
    /// delta state as their baseline).
    pub chunks_skipped: u64,
    /// Bytes abandoned at the tail: a torn chunk header, a partial
    /// payload, a missing footer, or trailing garbage after it.
    pub bytes_dropped: usize,
    /// Whether the file ends with an intact footer whose record total
    /// matches the sum of every chunk's declared count and nothing
    /// follows it. `true` means the file was finalized, not torn —
    /// skipped chunks can still make `records` incomplete.
    pub clean_eof: bool,
}

/// Recovers every intact chunk from a torn or corrupted in-memory trace.
///
/// Where [`decode`] rejects the whole file on the first framing or
/// payload error, this walks leniently: torn framing at the tail (the
/// usual result of a `kill -9` or disk-full mid-capture) drops only the
/// unfinished bytes; a v2 chunk with a bad checksum or payload is
/// skipped and the walk continues, because every v2 chunk carries a
/// restart preamble and decodes independently. A bad v1 chunk ends the
/// walk — chunks after it would inherit a poisoned delta baseline.
///
/// # Errors
///
/// Only an unusable header (`Truncated`, `BadMagic`, `BadVersion`) —
/// with fewer than 8 intact leading bytes there is nothing to salvage.
pub fn salvage(bytes: &[u8]) -> Result<Salvage, TraceError> {
    let mut pos = 0usize;
    let header = parse_header(bytes, &mut pos)?;
    let mut out = Salvage {
        header,
        records: Vec::new(),
        chunks_recovered: 0,
        chunks_skipped: 0,
        bytes_dropped: 0,
        clean_eof: false,
    };
    // v1 chunks chain their delta state; v2 chunks each re-seed from
    // their restart preamble, so `state` is only carried for v1.
    let mut state = DeltaState::default();
    let mut declared = 0u64;
    loop {
        let frame_start = pos;
        let Some(len_bytes) = take::<4>(bytes, &mut pos) else {
            out.bytes_dropped = bytes.len() - frame_start;
            return Ok(out);
        };
        let payload_len = u32::from_le_bytes(len_bytes);
        if payload_len == FOOTER_SENTINEL {
            let Some(total_bytes) = take::<8>(bytes, &mut pos) else {
                out.bytes_dropped = bytes.len() - frame_start;
                return Ok(out);
            };
            let total = u64::from_le_bytes(total_bytes);
            out.clean_eof = total == declared && pos == bytes.len();
            out.bytes_dropped = bytes.len() - pos;
            return Ok(out);
        }
        let (Some(n_bytes), Some(sum_bytes)) =
            (take::<4>(bytes, &mut pos), take::<8>(bytes, &mut pos))
        else {
            out.bytes_dropped = bytes.len() - frame_start;
            return Ok(out);
        };
        let n_records = u32::from_le_bytes(n_bytes);
        let checksum = u64::from_le_bytes(sum_bytes);
        let Some(end) = pos
            .checked_add(payload_len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            out.bytes_dropped = bytes.len() - frame_start;
            return Ok(out);
        };
        let payload = &bytes[pos..end];
        pos = end;
        declared += u64::from(n_records);
        // From here the framing is intact; payload faults are per-chunk.
        let decoded =
            decode_salvage_payload(header.version, payload, checksum, n_records, &mut state);
        match decoded {
            Some(records) => {
                out.records.extend(records);
                out.chunks_recovered += 1;
            }
            None if header.version == VERSION_V1 => {
                // Later v1 chunks have no baseline without this one.
                out.chunks_skipped += 1;
                out.bytes_dropped = bytes.len() - pos;
                return Ok(out);
            }
            None => out.chunks_skipped += 1,
        }
    }
}

/// Verifies and decodes one chunk payload during [`salvage`], returning
/// `None` on any fault. For v1, `state` chains across chunks and is only
/// advanced when the whole chunk decodes.
fn decode_salvage_payload(
    version: u8,
    payload: &[u8],
    checksum: u64,
    n_records: u32,
    state: &mut DeltaState,
) -> Option<Vec<TraceRecord>> {
    if fnv1a(payload) != checksum {
        return None;
    }
    let mut pos = 0usize;
    let mut local = if version == VERSION {
        DeltaState::read_restart(payload, &mut pos)?
    } else {
        *state
    };
    let mut records = Vec::with_capacity(n_records as usize);
    if !decode_records(payload, &mut pos, n_records, &mut local, &mut records)
        || pos != payload.len()
    {
        return None;
    }
    if version == VERSION_V1 {
        *state = local;
    }
    Some(records)
}

/// Decodes an in-memory trace, validating every chunk and the footer.
///
/// This walks the byte slice directly — no `io::Read` indirection, no
/// intermediate per-chunk record buffer — and is the hot path replay
/// sweeps lean on; it enforces exactly the same checks as the streaming
/// [`TraceReader`]. Reads both format versions.
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
    decode_with_header(bytes).map(|(_, records)| records)
}

/// [`decode`], also returning the validated file header.
pub fn decode_with_header(bytes: &[u8]) -> Result<(TraceHeader, Vec<TraceRecord>), TraceError> {
    let mut pos = 0usize;
    let meta = parse_header(bytes, &mut pos)?;
    let mut out = Vec::with_capacity(bytes.len() / 4);
    let mut state = DeltaState::default();
    let mut chunks = 0u64;
    loop {
        let payload_len = u32::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        if payload_len == FOOTER_SENTINEL {
            let expected = u64::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
            if expected != out.len() as u64 {
                return Err(TraceError::CountMismatch {
                    expected,
                    found: out.len() as u64,
                });
            }
            if pos != bytes.len() {
                return Err(TraceError::TrailingData);
            }
            return Ok((meta, out));
        }
        let n_records = u32::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        let expected = u64::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        let payload = bytes
            .get(pos..pos + payload_len as usize)
            .ok_or(TraceError::Truncated)?;
        pos += payload_len as usize;
        let found = fnv1a(payload);
        if found != expected {
            return Err(TraceError::ChecksumMismatch {
                chunk: chunks,
                expected,
                found,
            });
        }
        let mut p = 0usize;
        if meta.version == VERSION {
            // v2: reload the baseline from the preamble instead of
            // carrying it across the chunk boundary.
            state = DeltaState::read_restart(payload, &mut p)
                .ok_or(TraceError::BadRestart { chunk: chunks })?;
        }
        if !decode_records(payload, &mut p, n_records, &mut state, &mut out) || p != payload.len() {
            return Err(TraceError::ChunkOverrun { chunk: chunks });
        }
        chunks += 1;
    }
}

/// [`decode`] with chunk decode fanned across up to `jobs` threads of the
/// engine job pool ([`cmpsim_engine::pool::run_indexed`]): scans the
/// chunk framing, decodes every chunk concurrently, and concatenates the
/// results in chunk-index order — byte-identical to serial [`decode`] at
/// any job count. A v1 trace (not restartable past chunk 0) and
/// `jobs <= 1` take the serial path.
///
/// # Errors
///
/// The framing/footer error, or the error of the lowest-index failing
/// chunk — deterministic at any job count.
pub fn decode_parallel(bytes: &[u8], jobs: usize) -> Result<Vec<TraceRecord>, TraceError> {
    decode_parallel_with_header(bytes, jobs).map(|(_, records)| records)
}

/// [`decode_parallel`], also returning the validated file header.
pub fn decode_parallel_with_header(
    bytes: &[u8],
    jobs: usize,
) -> Result<(TraceHeader, Vec<TraceRecord>), TraceError> {
    let mut pos = 0usize;
    let header = parse_header(bytes, &mut pos)?;
    let records = decode_body_parallel(header, bytes, jobs)?;
    Ok((header, records))
}

/// The shared back half of [`decode_parallel_with_header`] and
/// [`TraceReader::decode_chunks_parallel`]. `bytes` is the whole file
/// when it still carries its 8-byte header (`decode_parallel`), or the
/// header-less remainder of a stream (the reader path) — `scan_body`
/// starts after the header iff one is present.
fn decode_body_parallel(
    header: TraceHeader,
    bytes: &[u8],
    jobs: usize,
) -> Result<Vec<TraceRecord>, TraceError> {
    let body_start = if bytes.len() >= 8 && bytes[..4] == MAGIC {
        8
    } else {
        0
    };
    if header.version == VERSION_V1 || jobs <= 1 {
        // Serial path: v1 chunks carry their delta baseline implicitly.
        let mut out = Vec::with_capacity(bytes.len() / 4);
        let mut state = DeltaState::default();
        let mut pos = body_start;
        let mut chunks = 0u64;
        loop {
            let payload_len =
                u32::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
            if payload_len == FOOTER_SENTINEL {
                let expected =
                    u64::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
                if expected != out.len() as u64 {
                    return Err(TraceError::CountMismatch {
                        expected,
                        found: out.len() as u64,
                    });
                }
                if pos != bytes.len() {
                    return Err(TraceError::TrailingData);
                }
                return Ok(out);
            }
            let n_records = u32::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
            let expected = u64::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
            let payload = bytes
                .get(pos..pos + payload_len as usize)
                .ok_or(TraceError::Truncated)?;
            pos += payload_len as usize;
            let found = fnv1a(payload);
            if found != expected {
                return Err(TraceError::ChecksumMismatch {
                    chunk: chunks,
                    expected,
                    found,
                });
            }
            let mut p = 0usize;
            if header.version == VERSION {
                state = DeltaState::read_restart(payload, &mut p)
                    .ok_or(TraceError::BadRestart { chunk: chunks })?;
            }
            if !decode_records(payload, &mut p, n_records, &mut state, &mut out)
                || p != payload.len()
            {
                return Err(TraceError::ChunkOverrun { chunk: chunks });
            }
            chunks += 1;
        }
    }
    let frames = scan_body(header, bytes, body_start)?;
    let decoded =
        cmpsim_engine::pool::run_indexed(jobs, frames.len(), |i| decode_chunk(bytes, &frames[i]));
    let mut out = Vec::with_capacity(frames.iter().map(|f| f.n_records as usize).sum());
    // Walking results in index order makes the reported error the
    // lowest-index failure whatever the thread schedule was.
    for chunk in decoded {
        out.append(&mut chunk?);
    }
    Ok(out)
}

/// Encodes records into a complete in-memory trace (header through
/// footer) in the current format.
pub fn encode(
    records: &[TraceRecord],
    n_cpus: usize,
    line_bytes: u32,
) -> Result<Vec<u8>, TraceError> {
    encode_with_version(records, n_cpus, line_bytes, VERSION)
}

/// [`encode`] pinned to a format version — the legacy-format source for
/// migration tests and the v1→v2 rewrite gate.
pub fn encode_with_version(
    records: &[TraceRecord],
    n_cpus: usize,
    line_bytes: u32,
    version: u8,
) -> Result<Vec<u8>, TraceError> {
    let mut out = Vec::new();
    let mut w = TraceWriter::with_version(&mut out, n_cpus, line_bytes, version)?;
    for &rec in records {
        w.push(rec)?;
    }
    w.finish()?;
    drop(w);
    Ok(out)
}

/// Rewrites a trace into the current restartable format: decodes
/// (validating everything) and re-encodes as v2, preserving the header's
/// CPU count and line size. The v1→v2 migration — also accepts a v2
/// input, which round-trips unchanged in content.
///
/// # Errors
///
/// Propagates decode errors from the input.
pub fn rewrite_v2(bytes: &[u8]) -> Result<Vec<u8>, TraceError> {
    let (header, records) = decode_with_header(bytes)?;
    encode_with_version(
        &records,
        usize::from(header.n_cpus),
        u32::from(header.line_bytes),
        VERSION,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                cycle: 0,
                cpu: 0,
                kind: TraceKind::IFetch,
                addr: 0x1000,
            },
            TraceRecord {
                cycle: 3,
                cpu: 1,
                kind: TraceKind::Load,
                addr: 0x8000_0000,
            },
            TraceRecord {
                cycle: 2, // backwards in time: the interleave allows it
                cpu: 0,
                kind: TraceKind::Store,
                addr: 0x0fff,
            },
            TraceRecord {
                cycle: 50,
                cpu: 0,
                kind: TraceKind::StatsReset,
                addr: 0,
            },
        ]
    }

    fn multi_chunk() -> Vec<TraceRecord> {
        (0..(CHUNK_RECORDS as u64 * 3 + 17))
            .map(|i| TraceRecord {
                cycle: i * 3,
                cpu: (i % 4) as u8,
                kind: if i % 5 == 0 {
                    TraceKind::Store
                } else {
                    TraceKind::Load
                },
                addr: (i as u32).wrapping_mul(2_654_435_761),
            })
            .collect()
    }

    #[test]
    fn round_trips_a_small_stream() {
        let bytes = encode(&sample(), 4, 32).expect("encodes");
        let reader = TraceReader::new(&bytes[..]).expect("opens");
        assert_eq!(
            reader.header(),
            TraceHeader {
                version: VERSION,
                n_cpus: 4,
                line_bytes: 32
            }
        );
        assert_eq!(reader.collect_all().expect("decodes"), sample());
    }

    #[test]
    fn round_trips_across_chunk_boundaries() {
        let records = multi_chunk();
        let bytes = encode(&records, 4, 32).expect("encodes");
        assert_eq!(decode(&bytes).expect("decodes"), records);
    }

    #[test]
    fn v1_round_trips_via_every_serial_path() {
        let records = multi_chunk();
        let bytes = encode_with_version(&records, 4, 32, VERSION_V1).expect("encodes");
        let reader = TraceReader::new(&bytes[..]).expect("opens");
        assert_eq!(reader.header().version, VERSION_V1);
        assert_eq!(reader.collect_all().expect("streams"), records);
        assert_eq!(decode(&bytes).expect("decodes"), records);
        // The parallel entry point silently falls back to serial for v1.
        assert_eq!(decode_parallel(&bytes, 4).expect("decodes"), records);
    }

    #[test]
    fn v2_is_smaller_than_the_sum_of_its_parts_but_carries_restarts() {
        let records = multi_chunk();
        let v1 = encode_with_version(&records, 4, 32, VERSION_V1).expect("encodes");
        let v2 = encode(&records, 4, 32).expect("encodes");
        // 4 chunks × 12-byte preamble, plus the deltas of each chunk's
        // first record now measured from the restart baseline (which the
        // v1 carry already equals, so only the preamble differs).
        assert_eq!(v2.len(), v1.len() + 4 * RESTART_BYTES);
        assert_eq!(decode(&v2).expect("decodes"), records);
    }

    #[test]
    fn parallel_decode_is_byte_identical_to_serial_at_any_job_count() {
        let records = multi_chunk();
        let bytes = encode(&records, 4, 32).expect("encodes");
        let serial = decode(&bytes).expect("decodes");
        for jobs in [1usize, 2, 3, 4, 7] {
            assert_eq!(
                decode_parallel(&bytes, jobs).expect("decodes"),
                serial,
                "jobs={jobs}"
            );
        }
        let reader = TraceReader::new(&bytes[..]).expect("opens");
        assert_eq!(reader.decode_chunks_parallel(4).expect("decodes"), serial);
    }

    #[test]
    fn scan_locates_every_chunk_and_each_decodes_independently() {
        let records = multi_chunk();
        let bytes = encode(&records, 4, 32).expect("encodes");
        let (header, frames) = scan_chunks(&bytes).expect("scans");
        assert_eq!(header.version, VERSION);
        assert_eq!(frames.len(), 4, "3 full chunks + 1 partial");
        assert_eq!(
            frames.iter().map(|f| u64::from(f.n_records)).sum::<u64>(),
            records.len() as u64
        );
        // Decode in reverse order: restartable chunks do not care.
        for frame in frames.iter().rev() {
            let got = decode_chunk(&bytes, frame).expect("decodes");
            let lo = frame.first_record as usize;
            assert_eq!(got, records[lo..lo + frame.n_records as usize]);
        }
    }

    #[test]
    fn v1_chunks_past_zero_refuse_independent_decode() {
        let records = multi_chunk();
        let bytes = encode_with_version(&records, 4, 32, VERSION_V1).expect("encodes");
        let (_, frames) = scan_chunks(&bytes).expect("scans");
        assert!(frames[0].restartable(), "chunk 0 starts from zero state");
        let got = decode_chunk(&bytes, &frames[0]).expect("decodes");
        assert_eq!(got, records[..frames[0].n_records as usize]);
        assert!(!frames[1].restartable());
        assert!(matches!(
            decode_chunk(&bytes, &frames[1]).expect_err("not restartable"),
            TraceError::NotRestartable { chunk: 1 }
        ));
    }

    #[test]
    fn corrupted_restart_preamble_fails_the_checksum() {
        let bytes = encode(&multi_chunk(), 4, 32).expect("encodes");
        let (_, frames) = scan_chunks(&bytes).expect("scans");
        // Flip one bit inside chunk 1's restart preamble.
        let mut bad = bytes.clone();
        bad[frames[1].payload.start + 3] ^= 0x10;
        assert!(matches!(
            decode(&bad).expect_err("corrupt restart"),
            TraceError::ChecksumMismatch { chunk: 1, .. }
        ));
        let (_, bad_frames) = scan_chunks(&bad).expect("framing is intact");
        assert!(matches!(
            decode_chunk(&bad, &bad_frames[1]).expect_err("corrupt restart"),
            TraceError::ChecksumMismatch { chunk: 1, .. }
        ));
        assert!(matches!(
            decode_parallel(&bad, 4).expect_err("corrupt restart"),
            TraceError::ChecksumMismatch { chunk: 1, .. }
        ));
    }

    #[test]
    fn truncated_restart_preamble_is_detected() {
        // Hand-build a v2 file whose only chunk's payload is shorter than
        // the 12-byte restart preamble (payload: 4 bytes of zeros).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(1); // n_cpus
        bytes.extend_from_slice(&32u16.to_le_bytes());
        let payload = [0u8; 4];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // n_records
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&FOOTER_SENTINEL.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode(&bytes).expect_err("short restart"),
            TraceError::BadRestart { chunk: 0 }
        ));
        assert!(matches!(
            scan_chunks(&bytes).expect_err("short restart"),
            TraceError::BadRestart { chunk: 0 }
        ));
        assert!(matches!(
            decode_parallel(&bytes, 4).expect_err("short restart"),
            TraceError::BadRestart { chunk: 0 }
        ));
        let reader = TraceReader::new(&bytes[..]).expect("header is fine");
        let err = reader
            .collect_all()
            .expect_err("streaming reader rejects it too");
        // The streaming reader sees a 4-byte payload that cannot yield a
        // preamble; decode_general then underruns ⇒ BadRestart.
        assert!(matches!(err, TraceError::BadRestart { chunk: 0 }), "{err}");
    }

    #[test]
    fn rewrite_v1_to_v2_preserves_records_and_header() {
        let records = multi_chunk();
        let v1 = encode_with_version(&records, 8, 64, VERSION_V1).expect("encodes");
        let v2 = rewrite_v2(&v1).expect("rewrites");
        let (header, got) = decode_with_header(&v2).expect("decodes");
        assert_eq!(header.version, VERSION);
        assert_eq!(header.n_cpus, 8);
        assert_eq!(header.line_bytes, 64);
        assert_eq!(got, records);
        // Rewriting a v2 trace is the identity on bytes.
        assert_eq!(rewrite_v2(&v2).expect("rewrites"), v2);
    }

    #[test]
    fn env_knob_selects_the_writer_format() {
        // Serial test binaries may run tests concurrently; take the env
        // lock by using with_version for the pinned cases and only probe
        // default_version's parsing here.
        assert_eq!(VERSION, 2);
        let v1 = encode_with_version(&sample(), 4, 32, VERSION_V1).expect("encodes");
        assert_eq!(v1[4], VERSION_V1);
        let v2 = encode(&sample(), 4, 32).expect("encodes");
        assert_eq!(v2[4], VERSION);
    }

    #[test]
    fn truncation_is_detected() {
        for version in [VERSION_V1, VERSION] {
            let bytes = encode_with_version(&sample(), 4, 32, version).expect("encodes");
            for cut in 0..bytes.len() {
                let err = decode(&bytes[..cut]).expect_err("every strict prefix fails");
                assert!(
                    matches!(
                        err,
                        TraceError::Truncated | TraceError::CountMismatch { .. }
                    ),
                    "v{version} cut at {cut}: {err}"
                );
            }
        }
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let bytes = encode(&sample(), 4, 32).expect("encodes");
        // Flip one payload byte (file header 8 + chunk header 16 = 24).
        let mut bad = bytes.clone();
        bad[25] ^= 0x40;
        let err = decode(&bad).expect_err("corrupt payload");
        assert!(
            matches!(err, TraceError::ChecksumMismatch { chunk: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&sample(), 4, 32).expect("encodes");
        bytes.push(0);
        assert!(matches!(
            decode(&bytes).expect_err("trailing byte"),
            TraceError::TrailingData
        ));
        assert!(matches!(
            scan_chunks(&bytes).expect_err("trailing byte"),
            TraceError::TrailingData
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let bytes = encode(&sample(), 4, 32).expect("encodes");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode(&bad).expect_err("bad magic"),
            TraceError::BadMagic(_)
        ));
        let mut bad = bytes;
        bad[4] = 99;
        assert!(matches!(
            decode(&bad).expect_err("bad version"),
            TraceError::BadVersion(99)
        ));
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789, -987_654_321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_rejects_overlong_encodings() {
        let buf = [0xff; 11];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None, "11-byte varint overruns");
    }

    #[test]
    fn compression_beats_fixed_width() {
        // A locality-heavy stream (sequential fetches) must encode well
        // below the 13-byte fixed-width record, restart preambles
        // included.
        let records: Vec<TraceRecord> = (0..10_000u64)
            .map(|i| TraceRecord {
                cycle: i,
                cpu: 0,
                kind: TraceKind::IFetch,
                addr: 0x1000 + (i as u32) * 4,
            })
            .collect();
        let bytes = encode(&records, 1, 32).expect("encodes");
        let per_ref = bytes.len() as f64 / records.len() as f64;
        assert!(per_ref < 4.0, "{per_ref} bytes/ref");
    }
}

//! The compact chunked binary trace format (see `DESIGN.md` §11).
//!
//! A trace file is a fixed 8-byte header followed by a sequence of
//! self-checking chunks and a footer:
//!
//! ```text
//! header:  "CMPT" | version: u8 | n_cpus: u8 | line_bytes: u16 LE
//! chunk:   payload_len: u32 LE | n_records: u32 LE | fnv1a64(payload): u64 LE | payload
//! footer:  0xFFFF_FFFF: u32 LE | total_records: u64 LE
//! ```
//!
//! Each payload record is a tag byte (access kind in the low 2 bits, CPU id
//! in the high 6) followed by two LEB128 varints: the zigzag-encoded cycle
//! delta and address delta against the previous record in the *file* (the
//! delta state deliberately carries across chunk boundaries — chunks are a
//! checksum/framing unit, not a seek unit). Cycle deltas are signed because
//! the run loop's per-CPU interleave can step time backwards between
//! consecutive records even though each CPU's own stream is monotone.
//!
//! The footer doubles as the truncation sentinel: a reader that reaches end
//! of file without having consumed a footer reports
//! [`TraceError::Truncated`], and a footer whose record count disagrees
//! with the records actually decoded reports [`TraceError::CountMismatch`].

use std::fmt;
use std::io::{self, Read, Write};

/// File magic: the first four bytes of every cmpsim trace.
pub const MAGIC: [u8; 4] = *b"CMPT";

/// Current format version (the fifth byte of the file).
pub const VERSION: u8 = 1;

/// Records per chunk the writer targets (the last chunk may be shorter).
pub const CHUNK_RECORDS: usize = 4096;

/// Footer sentinel occupying the `payload_len` slot of a chunk header.
pub const FOOTER_SENTINEL: u32 = 0xFFFF_FFFF;

/// Highest CPU id the 6-bit tag field can carry.
pub const MAX_CPU: u8 = 63;

/// What one trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Instruction fetch presented to the memory system.
    IFetch,
    /// Data read (includes `LL`).
    Load,
    /// Data write (includes a successful `SC` and write-buffer drains —
    /// the capture point sees stores when they are issued to the memory
    /// system, which is where the write buffer hands them over).
    Store,
    /// Region-of-interest marker: the run reset its statistics here.
    /// Replay must perform the same reset to reproduce post-ROI numbers.
    StatsReset,
}

impl TraceKind {
    fn to_bits(self) -> u8 {
        match self {
            TraceKind::IFetch => 0,
            TraceKind::Load => 1,
            TraceKind::Store => 2,
            TraceKind::StatsReset => 3,
        }
    }

    fn from_bits(bits: u8) -> TraceKind {
        match bits & 0x3 {
            0 => TraceKind::IFetch,
            1 => TraceKind::Load,
            2 => TraceKind::Store,
            _ => TraceKind::StatsReset,
        }
    }

    /// The memory-system access kind, `None` for the stats-reset marker.
    pub fn access_kind(self) -> Option<cmpsim_mem::AccessKind> {
        match self {
            TraceKind::IFetch => Some(cmpsim_mem::AccessKind::IFetch),
            TraceKind::Load => Some(cmpsim_mem::AccessKind::Load),
            TraceKind::Store => Some(cmpsim_mem::AccessKind::Store),
            TraceKind::StatsReset => None,
        }
    }
}

impl From<cmpsim_mem::AccessKind> for TraceKind {
    fn from(kind: cmpsim_mem::AccessKind) -> TraceKind {
        match kind {
            cmpsim_mem::AccessKind::IFetch => TraceKind::IFetch,
            cmpsim_mem::AccessKind::Load => TraceKind::Load,
            cmpsim_mem::AccessKind::Store => TraceKind::Store,
        }
    }
}

/// One captured event: `(cycle, cpu, kind, addr)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle at which the request was issued to the memory system.
    pub cycle: u64,
    /// Issuing CPU (0 for [`TraceKind::StatsReset`]).
    pub cpu: u8,
    /// Access kind or marker.
    pub kind: TraceKind,
    /// Physical byte address (0 for [`TraceKind::StatsReset`]).
    pub addr: u32,
}

/// Trace-file metadata from the 8-byte header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version.
    pub version: u8,
    /// CPU count of the capturing machine.
    pub n_cpus: u8,
    /// Cache line size of the capturing memory system (bytes).
    pub line_bytes: u16,
}

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u8),
    /// A chunk's payload hashes to something other than its header claims.
    ChecksumMismatch {
        /// Zero-based chunk index.
        chunk: u64,
        /// Checksum stored in the chunk header.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
    /// The file ended before a complete footer was read.
    Truncated,
    /// A chunk payload did not decode to exactly its declared records.
    ChunkOverrun {
        /// Zero-based chunk index.
        chunk: u64,
    },
    /// The footer's total disagrees with the records decoded.
    CountMismatch {
        /// Total the footer claims.
        expected: u64,
        /// Records actually decoded.
        found: u64,
    },
    /// Bytes follow the footer.
    TrailingData,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a cmpsim trace (magic {m:02x?})"),
            TraceError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads {VERSION})"
                )
            }
            TraceError::ChecksumMismatch {
                chunk,
                expected,
                found,
            } => write!(
                f,
                "chunk {chunk} corrupt: checksum {found:#018x}, header says {expected:#018x}"
            ),
            TraceError::Truncated => write!(f, "trace truncated: footer missing"),
            TraceError::ChunkOverrun { chunk } => {
                write!(f, "chunk {chunk} payload does not match its record count")
            }
            TraceError::CountMismatch { expected, found } => write!(
                f,
                "footer claims {expected} records but {found} were decoded"
            ),
            TraceError::TrailingData => write!(f, "bytes follow the trace footer"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    }
}

/// Word-folded FNV-1a 64-bit: the chunk checksum. Folds eight payload
/// bytes per multiply instead of one — every step stays injective in both
/// operands (xor, and multiplication by the odd FNV prime), so any
/// single-bit corruption is still guaranteed to change the sum, at an
/// eighth of the serial multiply chain the byte-wise variant pays.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    // Single-byte fast path: most deltas in a real trace are small.
    let &b0 = buf.get(*pos)?;
    if b0 & 0x80 == 0 {
        *pos += 1;
        return Some(u64::from(b0));
    }
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        // A 64-bit value needs at most ten LEB128 bytes.
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Delta state threaded between consecutive records (carries across
/// chunks; see the module docs).
#[derive(Debug, Clone, Copy, Default)]
struct DeltaState {
    prev_cycle: u64,
    prev_addr: u32,
}

impl DeltaState {
    fn encode(&mut self, rec: &TraceRecord, out: &mut Vec<u8>) {
        debug_assert!(rec.cpu <= MAX_CPU, "cpu {} exceeds the tag field", rec.cpu);
        out.push(rec.kind.to_bits() | (rec.cpu << 2));
        put_varint(out, zigzag(rec.cycle.wrapping_sub(self.prev_cycle) as i64));
        put_varint(out, zigzag(i64::from(rec.addr) - i64::from(self.prev_addr)));
        self.prev_cycle = rec.cycle;
        self.prev_addr = rec.addr;
    }

    fn decode(&mut self, buf: &[u8], pos: &mut usize) -> Option<TraceRecord> {
        // Fast path: in a real trace almost every record is a 1-byte tag
        // plus two 1–2 byte varints, so when 8 buffered bytes remain the
        // whole record fits one little-endian register window — one load
        // and some shifts instead of a serial chain of bounds-checked
        // byte reads. Longer varints (and the chunk tail) take the
        // general path below, which re-reads from the untouched `pos`.
        if let Some(win) = buf.get(*pos..*pos + 8) {
            let w = u64::from_le_bytes(win.try_into().expect("8-byte window"));
            let tag = w as u8;
            let b = (w >> 8) as u8;
            let (dc_raw, len_c) = if b & 0x80 == 0 {
                (u64::from(b), 1usize)
            } else {
                let b2 = (w >> 16) as u8;
                if b2 & 0x80 != 0 {
                    return self.decode_general(buf, pos);
                }
                (u64::from(b & 0x7f) | u64::from(b2) << 7, 2)
            };
            let rest = w >> (8 * (1 + len_c));
            let b = rest as u8;
            let (da_raw, len_a) = if b & 0x80 == 0 {
                (u64::from(b), 1usize)
            } else {
                let b2 = (rest >> 8) as u8;
                if b2 & 0x80 != 0 {
                    return self.decode_general(buf, pos);
                }
                (u64::from(b & 0x7f) | u64::from(b2) << 7, 2)
            };
            *pos += 1 + len_c + len_a;
            return Some(self.reconstruct(tag, dc_raw, da_raw));
        }
        self.decode_general(buf, pos)
    }

    /// The general decode path: handles varints of any length and the
    /// end of the chunk, where fewer than 8 bytes remain.
    fn decode_general(&mut self, buf: &[u8], pos: &mut usize) -> Option<TraceRecord> {
        let &tag = buf.get(*pos)?;
        *pos += 1;
        let dc_raw = get_varint(buf, pos)?;
        let da_raw = get_varint(buf, pos)?;
        Some(self.reconstruct(tag, dc_raw, da_raw))
    }

    /// Applies the decoded (tag, cycle-delta, address-delta) triple to
    /// the running state and materializes the record.
    #[inline]
    fn reconstruct(&mut self, tag: u8, dc_raw: u64, da_raw: u64) -> TraceRecord {
        let dc = unzigzag(dc_raw);
        let da = unzigzag(da_raw);
        let cycle = self.prev_cycle.wrapping_add(dc as u64);
        let addr = (i64::from(self.prev_addr) + da) as u32;
        self.prev_cycle = cycle;
        self.prev_addr = addr;
        TraceRecord {
            cycle,
            cpu: tag >> 2,
            kind: TraceKind::from_bits(tag),
            addr,
        }
    }
}

/// Streaming chunked writer.
///
/// Buffers records, flushes a checksummed chunk every [`CHUNK_RECORDS`],
/// and writes the footer on [`TraceWriter::finish`]. Dropping an
/// unfinished writer finishes it best-effort (errors are swallowed —
/// call `finish` explicitly when they matter).
pub struct TraceWriter<W: Write> {
    out: Option<W>,
    pending: Vec<TraceRecord>,
    state: DeltaState,
    records: u64,
    bytes: u64,
}

impl<W: Write> fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceWriter")
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .field("finished", &self.out.is_none())
            .finish()
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the header immediately.
    pub fn new(mut out: W, n_cpus: usize, line_bytes: u32) -> io::Result<TraceWriter<W>> {
        assert!(
            n_cpus <= usize::from(MAX_CPU) + 1,
            "trace tag field carries at most {} CPUs",
            usize::from(MAX_CPU) + 1
        );
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&MAGIC);
        header[4] = VERSION;
        header[5] = n_cpus as u8;
        header[6..8].copy_from_slice(&(line_bytes as u16).to_le_bytes());
        out.write_all(&header)?;
        Ok(TraceWriter {
            out: Some(out),
            pending: Vec::with_capacity(CHUNK_RECORDS),
            state: DeltaState::default(),
            records: 0,
            bytes: 8,
        })
    }

    /// Appends one record, flushing a chunk when the buffer fills.
    pub fn push(&mut self, rec: TraceRecord) -> io::Result<()> {
        self.pending.push(rec);
        self.records += 1;
        if self.pending.len() >= CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(self.pending.len() * 4);
        for rec in &self.pending {
            self.state.encode(rec, &mut payload);
        }
        let out = self.out.as_mut().expect("writer already finished");
        out.write_all(&(payload.len() as u32).to_le_bytes())?;
        out.write_all(&(self.pending.len() as u32).to_le_bytes())?;
        out.write_all(&fnv1a(&payload).to_le_bytes())?;
        out.write_all(&payload)?;
        self.bytes += 16 + payload.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial chunk and the footer. Idempotent.
    pub fn finish(&mut self) -> io::Result<()> {
        if self.out.is_none() {
            return Ok(());
        }
        self.flush_chunk()?;
        let mut out = self.out.take().expect("checked above");
        out.write_all(&FOOTER_SENTINEL.to_le_bytes())?;
        out.write_all(&self.records.to_le_bytes())?;
        out.flush()?;
        self.bytes += 12;
        Ok(())
    }

    /// Records written so far (including still-buffered ones).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes emitted so far, counting the header and (once finished) the
    /// footer — the numerator of the bytes-per-reference compression ratio.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

impl<W: Write> Drop for TraceWriter<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Streaming chunked reader: an iterator of records that verifies every
/// chunk checksum and the footer count on the way through.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    header: TraceHeader,
    chunk: Vec<TraceRecord>,
    next: usize,
    state: DeltaState,
    chunks_read: u64,
    decoded: u64,
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace: reads and validates the header.
    pub fn new(mut src: R) -> Result<TraceReader<R>, TraceError> {
        let mut header = [0u8; 8];
        src.read_exact(&mut header)?;
        if header[..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&header[..4]);
            return Err(TraceError::BadMagic(m));
        }
        if header[4] != VERSION {
            return Err(TraceError::BadVersion(header[4]));
        }
        Ok(TraceReader {
            src,
            header: TraceHeader {
                version: header[4],
                n_cpus: header[5],
                line_bytes: u16::from_le_bytes([header[6], header[7]]),
            },
            chunk: Vec::new(),
            next: 0,
            state: DeltaState::default(),
            chunks_read: 0,
            decoded: 0,
            finished: false,
        })
    }

    /// The file's header metadata.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// Loads and verifies the next chunk. `Ok(false)` means the footer was
    /// reached (and validated).
    fn load_chunk(&mut self) -> Result<bool, TraceError> {
        let mut word = [0u8; 4];
        self.src.read_exact(&mut word)?;
        let payload_len = u32::from_le_bytes(word);
        if payload_len == FOOTER_SENTINEL {
            let mut total = [0u8; 8];
            self.src.read_exact(&mut total)?;
            let expected = u64::from_le_bytes(total);
            if expected != self.decoded {
                return Err(TraceError::CountMismatch {
                    expected,
                    found: self.decoded,
                });
            }
            let mut probe = [0u8; 1];
            match self.src.read(&mut probe) {
                Ok(0) => {}
                Ok(_) => return Err(TraceError::TrailingData),
                Err(e) => return Err(e.into()),
            }
            self.finished = true;
            return Ok(false);
        }
        self.src.read_exact(&mut word)?;
        let n_records = u32::from_le_bytes(word);
        let mut sum = [0u8; 8];
        self.src.read_exact(&mut sum)?;
        let expected = u64::from_le_bytes(sum);
        let mut payload = vec![0u8; payload_len as usize];
        self.src.read_exact(&mut payload)?;
        let found = fnv1a(&payload);
        if found != expected {
            return Err(TraceError::ChecksumMismatch {
                chunk: self.chunks_read,
                expected,
                found,
            });
        }
        self.chunk.clear();
        let mut pos = 0usize;
        for _ in 0..n_records {
            match self.state.decode(&payload, &mut pos) {
                Some(rec) => self.chunk.push(rec),
                None => {
                    return Err(TraceError::ChunkOverrun {
                        chunk: self.chunks_read,
                    })
                }
            }
        }
        if pos != payload.len() {
            return Err(TraceError::ChunkOverrun {
                chunk: self.chunks_read,
            });
        }
        self.chunks_read += 1;
        self.decoded += u64::from(n_records);
        self.next = 0;
        Ok(true)
    }

    /// Drains the remaining records into a vector, validating everything.
    pub fn collect_all(self) -> Result<Vec<TraceRecord>, TraceError> {
        let mut out = Vec::new();
        for rec in self {
            out.push(rec?);
        }
        Ok(out)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.next < self.chunk.len() {
                let rec = self.chunk[self.next];
                self.next += 1;
                return Some(Ok(rec));
            }
            if self.finished {
                return None;
            }
            match self.load_chunk() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    // Poison the reader: one error ends the stream.
                    self.finished = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Reads `N` little-endian bytes at `*pos`, advancing it. `None` at EOF.
#[inline]
fn take<const N: usize>(bytes: &[u8], pos: &mut usize) -> Option<[u8; N]> {
    let s = bytes.get(*pos..*pos + N)?;
    *pos += N;
    Some(s.try_into().expect("slice of length N"))
}

/// Decodes an in-memory trace, validating every chunk and the footer.
///
/// This walks the byte slice directly — no `io::Read` indirection, no
/// intermediate per-chunk record buffer — and is the hot path replay
/// sweeps lean on; it enforces exactly the same checks as the streaming
/// [`TraceReader`].
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
    decode_with_header(bytes).map(|(_, records)| records)
}

/// [`decode`], also returning the validated file header.
pub fn decode_with_header(bytes: &[u8]) -> Result<(TraceHeader, Vec<TraceRecord>), TraceError> {
    let mut pos = 0usize;
    let header: [u8; 8] = take(bytes, &mut pos).ok_or(TraceError::Truncated)?;
    if header[..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[..4]);
        return Err(TraceError::BadMagic(m));
    }
    if header[4] != VERSION {
        return Err(TraceError::BadVersion(header[4]));
    }
    let meta = TraceHeader {
        version: header[4],
        n_cpus: header[5],
        line_bytes: u16::from_le_bytes([header[6], header[7]]),
    };
    let mut out = Vec::with_capacity(bytes.len() / 4);
    let mut state = DeltaState::default();
    let mut chunks = 0u64;
    loop {
        let payload_len = u32::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        if payload_len == FOOTER_SENTINEL {
            let expected = u64::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
            if expected != out.len() as u64 {
                return Err(TraceError::CountMismatch {
                    expected,
                    found: out.len() as u64,
                });
            }
            if pos != bytes.len() {
                return Err(TraceError::TrailingData);
            }
            return Ok((meta, out));
        }
        let n_records = u32::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        let expected = u64::from_le_bytes(take(bytes, &mut pos).ok_or(TraceError::Truncated)?);
        let payload = bytes
            .get(pos..pos + payload_len as usize)
            .ok_or(TraceError::Truncated)?;
        pos += payload_len as usize;
        let found = fnv1a(payload);
        if found != expected {
            return Err(TraceError::ChecksumMismatch {
                chunk: chunks,
                expected,
                found,
            });
        }
        let mut p = 0usize;
        for _ in 0..n_records {
            match state.decode(payload, &mut p) {
                Some(rec) => out.push(rec),
                None => return Err(TraceError::ChunkOverrun { chunk: chunks }),
            }
        }
        if p != payload.len() {
            return Err(TraceError::ChunkOverrun { chunk: chunks });
        }
        chunks += 1;
    }
}

/// Encodes records into a complete in-memory trace (header through
/// footer).
pub fn encode(
    records: &[TraceRecord],
    n_cpus: usize,
    line_bytes: u32,
) -> Result<Vec<u8>, TraceError> {
    let mut out = Vec::new();
    let mut w = TraceWriter::new(&mut out, n_cpus, line_bytes)?;
    for &rec in records {
        w.push(rec)?;
    }
    w.finish()?;
    drop(w);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                cycle: 0,
                cpu: 0,
                kind: TraceKind::IFetch,
                addr: 0x1000,
            },
            TraceRecord {
                cycle: 3,
                cpu: 1,
                kind: TraceKind::Load,
                addr: 0x8000_0000,
            },
            TraceRecord {
                cycle: 2, // backwards in time: the interleave allows it
                cpu: 0,
                kind: TraceKind::Store,
                addr: 0x0fff,
            },
            TraceRecord {
                cycle: 50,
                cpu: 0,
                kind: TraceKind::StatsReset,
                addr: 0,
            },
        ]
    }

    #[test]
    fn round_trips_a_small_stream() {
        let bytes = encode(&sample(), 4, 32).expect("encodes");
        let reader = TraceReader::new(&bytes[..]).expect("opens");
        assert_eq!(
            reader.header(),
            TraceHeader {
                version: VERSION,
                n_cpus: 4,
                line_bytes: 32
            }
        );
        assert_eq!(reader.collect_all().expect("decodes"), sample());
    }

    #[test]
    fn round_trips_across_chunk_boundaries() {
        let records: Vec<TraceRecord> = (0..(CHUNK_RECORDS as u64 * 2 + 17))
            .map(|i| TraceRecord {
                cycle: i * 3,
                cpu: (i % 4) as u8,
                kind: if i % 5 == 0 {
                    TraceKind::Store
                } else {
                    TraceKind::Load
                },
                addr: (i as u32).wrapping_mul(2_654_435_761),
            })
            .collect();
        let bytes = encode(&records, 4, 32).expect("encodes");
        assert_eq!(decode(&bytes).expect("decodes"), records);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample(), 4, 32).expect("encodes");
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("every strict prefix fails");
            assert!(
                matches!(
                    err,
                    TraceError::Truncated | TraceError::CountMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let bytes = encode(&sample(), 4, 32).expect("encodes");
        // Flip one payload byte (file header 8 + chunk header 16 = 24).
        let mut bad = bytes.clone();
        bad[25] ^= 0x40;
        let err = decode(&bad).expect_err("corrupt payload");
        assert!(
            matches!(err, TraceError::ChecksumMismatch { chunk: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&sample(), 4, 32).expect("encodes");
        bytes.push(0);
        assert!(matches!(
            decode(&bytes).expect_err("trailing byte"),
            TraceError::TrailingData
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let bytes = encode(&sample(), 4, 32).expect("encodes");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode(&bad).expect_err("bad magic"),
            TraceError::BadMagic(_)
        ));
        let mut bad = bytes;
        bad[4] = 99;
        assert!(matches!(
            decode(&bad).expect_err("bad version"),
            TraceError::BadVersion(99)
        ));
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789, -987_654_321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_rejects_overlong_encodings() {
        let buf = [0xff; 11];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None, "11-byte varint overruns");
    }

    #[test]
    fn compression_beats_fixed_width() {
        // A locality-heavy stream (sequential fetches) must encode well
        // below the 13-byte fixed-width record.
        let records: Vec<TraceRecord> = (0..10_000u64)
            .map(|i| TraceRecord {
                cycle: i,
                cpu: 0,
                kind: TraceKind::IFetch,
                addr: 0x1000 + (i as u32) * 4,
            })
            .collect();
        let bytes = encode(&records, 1, 32).expect("encodes");
        let per_ref = bytes.len() as f64 / records.len() as f64;
        assert!(per_ref < 4.0, "{per_ref} bytes/ref");
    }
}

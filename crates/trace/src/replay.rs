//! Trace-driven replay: re-issue a captured reference stream into any
//! memory system, skipping the CPU models entirely.
//!
//! A memory system's state and statistics are a pure function of its
//! `access` call sequence (plus region-of-interest resets), so replaying
//! the captured stream into a freshly built identical system reproduces
//! bit-identical [`MemStats`] — the golden
//! equivalence the digest matrix enforces. Replaying into a *different*
//! configuration is the classic fixed-stream approximation: the addresses
//! and issue cycles stay those the captured machine produced, which is
//! exactly what makes memory-hierarchy sweeps run at raw memory-system
//! throughput (no Mipsy/MXS execution cost per configuration).

use crate::codec::{TraceError, TraceKind, TraceReader, TraceRecord};
use cmpsim_engine::Cycle;
use cmpsim_mem::{AccessKind, MemRequest, MemStats, MemorySystem, PortUtil};
use std::io::Read;

/// Environment knob: thread count for batched replay
/// ([`replay_matrix`]) and parallel trace decode in the `cmpsim` binary.
/// Unset ⇒ host parallelism.
pub const ENV_REPLAY_JOBS: &str = "CMPSIM_REPLAY_JOBS";

/// Resolves [`ENV_REPLAY_JOBS`]: the explicit setting, else the host's
/// available parallelism, else 1.
pub fn replay_jobs() -> usize {
    match std::env::var(ENV_REPLAY_JOBS) {
        Ok(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// What a replay pushed through the target system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Access records re-issued.
    pub accesses: u64,
    /// Region-of-interest statistic resets applied.
    pub resets: u64,
}

/// Re-issues one record into `sys`. Returns whether it was an access (as
/// opposed to a marker).
#[inline]
fn apply<S: MemorySystem + ?Sized>(rec: &TraceRecord, sys: &mut S) -> bool {
    match rec.kind.access_kind() {
        Some(kind) => {
            let req = MemRequest {
                cpu: rec.cpu as usize,
                kind,
                addr: rec.addr,
            };
            sys.access(Cycle(rec.cycle), req);
            true
        }
        None => {
            sys.stats_mut().reset();
            false
        }
    }
}

/// Replays an already-decoded record stream into `sys`.
///
/// Generic over the system so a concrete type (`&mut SharedL2System`)
/// replays with static dispatch — the sweep-bench fast path — while
/// `&mut dyn MemorySystem` still works for systems built behind a `Box`.
pub fn replay_records<'a, I, S>(records: I, sys: &mut S) -> ReplayStats
where
    I: IntoIterator<Item = &'a TraceRecord>,
    S: MemorySystem + ?Sized,
{
    let mut stats = ReplayStats::default();
    for rec in records {
        if apply(rec, sys) {
            stats.accesses += 1;
        } else {
            stats.resets += 1;
        }
    }
    stats
}

/// Streams a trace out of `reader` straight into `sys` — chunks decode as
/// they are consumed, so arbitrarily long traces replay in constant
/// memory.
///
/// # Errors
///
/// Stops at the first decode error (corrupt chunk, truncation); accesses
/// replayed before the error have already been applied to `sys`.
pub fn replay_reader<R: Read, S: MemorySystem + ?Sized>(
    reader: TraceReader<R>,
    sys: &mut S,
) -> Result<ReplayStats, TraceError> {
    let mut stats = ReplayStats::default();
    for rec in reader {
        if apply(&rec?, sys) {
            stats.accesses += 1;
        } else {
            stats.resets += 1;
        }
    }
    Ok(stats)
}

/// Replays a complete in-memory trace (as produced by capture) into
/// `sys`, validating every chunk first via the direct-slice decoder.
///
/// # Errors
///
/// Fails on decode errors (corrupt chunk, truncation) *before* touching
/// `sys` — unlike [`replay_reader`], which streams and may have applied a
/// prefix when it reports an error.
pub fn replay_bytes<S: MemorySystem + ?Sized>(
    bytes: &[u8],
    sys: &mut S,
) -> Result<ReplayStats, TraceError> {
    Ok(replay_records(&crate::codec::decode(bytes)?, sys))
}

/// What replaying one decoded stream into one configuration produced:
/// the plain-data summary a batched sweep keeps per point. Everything a
/// single-config replay reports, minus the live system itself — which is
/// what lets [`replay_matrix`] build and drop each system inside its
/// worker thread.
#[derive(Debug, Clone)]
pub struct ConfigReplay {
    /// Stream totals pushed through this configuration.
    pub replay: ReplayStats,
    /// The system's accumulated statistics after replay.
    pub stats: MemStats,
    /// Per-resource utilization after replay.
    pub ports: Vec<PortUtil>,
    /// The system's architecture name.
    pub name: &'static str,
}

/// Batched multi-config replay: decode once, replay `n_configs`
/// configurations from the shared in-memory record arena, fanned across
/// up to `jobs` threads of the engine job pool.
///
/// `build(i)` constructs the `i`-th target system; it runs *inside* the
/// worker, so the system itself never crosses a thread boundary — only
/// the plain-data [`ConfigReplay`] summary does, which is why `S` needs
/// neither `Send` nor `Sync`. Each configuration's replay is the exact
/// serial [`replay_records`] call, and results come back in config-index
/// order, so every [`ConfigReplay`] is bit-identical to a single-config
/// replay of the same configuration at any job count (the
/// `CMPSIM_REPLAY_JOBS` gate in verify.sh holds this across the 56-case
/// matrix).
pub fn replay_matrix<S, F>(
    records: &[TraceRecord],
    n_configs: usize,
    jobs: usize,
    build: F,
) -> Vec<ConfigReplay>
where
    S: MemorySystem,
    F: Fn(usize) -> S + Sync,
{
    cmpsim_engine::pool::run_indexed(jobs, n_configs, |i| {
        let mut sys = build(i);
        let replay = replay_records(records, &mut sys);
        ConfigReplay {
            replay,
            stats: sys.stats().clone(),
            ports: sys.port_utilization(),
            name: sys.name(),
        }
    })
}

/// Counts the replayable accesses in an encoded trace without touching
/// any memory system (sweep benches size their work with this).
///
/// # Errors
///
/// Propagates decode errors.
pub fn count_accesses(bytes: &[u8]) -> Result<u64, TraceError> {
    let mut n = 0;
    for rec in TraceReader::new(bytes)? {
        if rec?.kind != TraceKind::StatsReset {
            n += 1;
        }
    }
    Ok(n)
}

/// Splits an access-kind total out of a trace for reporting: returns
/// `(ifetches, loads, stores)`.
///
/// # Errors
///
/// Propagates decode errors.
pub fn kind_totals(bytes: &[u8]) -> Result<(u64, u64, u64), TraceError> {
    let (mut i, mut l, mut s) = (0, 0, 0);
    for rec in TraceReader::new(bytes)? {
        match rec?.kind.access_kind() {
            Some(AccessKind::IFetch) => i += 1,
            Some(AccessKind::Load) => l += 1,
            Some(AccessKind::Store) => s += 1,
            None => {}
        }
    }
    Ok((i, l, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{sink_to, SharedBuf, TracingSystem};
    use cmpsim_mem::{SharedL2System, SystemConfig};
    use std::rc::Rc;

    /// Drive a synthetic stream through a traced system, then replay the
    /// capture into a fresh identical system: statistics must match
    /// bit-for-bit (their Debug forms cover every counter and the
    /// histogram).
    #[test]
    fn replay_reproduces_identical_stats() {
        let cfg = SystemConfig::paper_shared_l2(4);
        let buf = SharedBuf::new();
        let sink = sink_to(Box::new(buf.clone()), 4, 32).expect("header");
        let mut traced = TracingSystem::new(Box::new(SharedL2System::new(&cfg)), Rc::clone(&sink));
        for i in 0..5_000u64 {
            let addr = ((i * 97) as u32).wrapping_mul(2_654_435_761) & 0xf_ffff;
            let req = match i % 3 {
                0 => MemRequest::ifetch((i % 4) as usize, addr & !0x3),
                1 => MemRequest::load((i % 4) as usize, addr),
                _ => MemRequest::store((i % 4) as usize, addr),
            };
            traced.access(Cycle(i * 7), req);
        }
        // Mid-stream ROI reset, as the hcall path would do it.
        sink.borrow_mut().record_reset(40_000);
        traced.stats_mut().reset();
        for i in 0..1_000u64 {
            traced.access(
                Cycle(50_000 + i),
                MemRequest::load((i % 4) as usize, (i as u32) * 64),
            );
        }
        sink.borrow_mut().finish().expect("finishes");
        let bytes = buf.take();

        let mut fresh = SharedL2System::new(&cfg);
        let stats = replay_bytes(&bytes, &mut fresh).expect("replays");
        assert_eq!(stats.accesses, 6_000);
        assert_eq!(stats.resets, 1);
        assert_eq!(
            format!("{:?}", fresh.stats()),
            format!("{:?}", traced.stats()),
            "replayed statistics must be bit-identical"
        );
        assert_eq!(
            format!("{:?}", fresh.port_utilization()),
            format!("{:?}", traced.port_utilization()),
        );
        assert_eq!(count_accesses(&bytes).expect("counts"), 6_000);
        let (i, l, s) = kind_totals(&bytes).expect("totals");
        assert_eq!(i + l + s, 6_000);
    }

    /// Cross-configuration replay is the fixed-stream approximation: it
    /// must run (addresses are config-independent) and produce the same
    /// reference count, not the same stats.
    #[test]
    fn cross_config_replay_accepts_the_stream() {
        let records: Vec<TraceRecord> = (0..200u64)
            .map(|i| TraceRecord {
                cycle: i * 11,
                cpu: (i % 4) as u8,
                kind: TraceKind::Load,
                addr: (i as u32) * 32,
            })
            .collect();
        let bytes = crate::codec::encode(&records, 4, 32).expect("encodes");
        let mut sys = SharedL2System::new(&SystemConfig::paper_shared_l2(4).with_l2_assoc(4));
        let stats = replay_bytes(&bytes, &mut sys).expect("replays");
        assert_eq!(stats.accesses, 200);
        assert_eq!(sys.stats().l1d.accesses, 200);
    }

    /// The batched driver must be bit-identical to per-config serial
    /// replay at every job count — same stats, same ports, same order.
    #[test]
    fn replay_matrix_matches_per_config_serial_replay() {
        let records: Vec<TraceRecord> = (0..6_000u64)
            .map(|i| TraceRecord {
                cycle: i * 5,
                cpu: (i % 4) as u8,
                kind: match i % 3 {
                    0 => TraceKind::IFetch,
                    1 => TraceKind::Load,
                    _ => TraceKind::Store,
                },
                addr: ((i * 131) as u32).wrapping_mul(2_654_435_761) & 0xf_ffff,
            })
            .collect();
        let assocs = [1usize, 2, 4, 8];
        let build = |i: usize| {
            SharedL2System::new(&SystemConfig::paper_shared_l2(4).with_l2_assoc(assocs[i]))
        };
        let mut expected = Vec::new();
        for i in 0..assocs.len() {
            let mut sys = build(i);
            let replay = replay_records(&records, &mut sys);
            expected.push((
                replay,
                format!("{:?}", sys.stats()),
                format!("{:?}", sys.port_utilization()),
                sys.name(),
            ));
        }
        for jobs in [1usize, 2, 4, 7] {
            let got = replay_matrix(&records, assocs.len(), jobs, build);
            assert_eq!(got.len(), assocs.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.replay, e.0, "jobs={jobs}");
                assert_eq!(format!("{:?}", g.stats), e.1, "jobs={jobs}");
                assert_eq!(format!("{:?}", g.ports), e.2, "jobs={jobs}");
                assert_eq!(g.name, e.3, "jobs={jobs}");
            }
        }
    }

    /// `replay_matrix` accepts boxed systems via the blanket
    /// `MemorySystem for Box<M>` impl — the shape the cmpsim binary's
    /// arch factory produces.
    #[test]
    fn replay_matrix_accepts_boxed_systems() {
        let records: Vec<TraceRecord> = (0..500u64)
            .map(|i| TraceRecord {
                cycle: i * 3,
                cpu: (i % 4) as u8,
                kind: TraceKind::Load,
                addr: (i as u32) * 32,
            })
            .collect();
        let got = replay_matrix(&records, 2, 2, |_| {
            Box::new(SharedL2System::new(&SystemConfig::paper_shared_l2(4)))
                as Box<dyn MemorySystem>
        });
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].replay.accesses, 500);
        assert_eq!(
            format!("{:?}", got[0].stats),
            format!("{:?}", got[1].stats),
            "identical configs replay identically"
        );
    }
}

//! Analysis passes over reference traces: footprint, sharing degree,
//! inter-CPU communication and reuse distance.
//!
//! These are the stream-characterization numbers sharing studies report
//! (working-set size, per-line sharing degree, producer→consumer
//! communication, reuse-distance profile) computed directly from a
//! captured trace — no simulation required, so they run at decode speed
//! and apply equally to externally supplied traces.

use crate::codec::{TraceError, TraceKind, TraceReader, TraceRecord};
use cmpsim_engine::Histogram;
use std::collections::HashMap;
use std::fmt;

/// Reuse-distance histogram bucket bounds (distinct lines between
/// successive touches of the same line). Chosen so paper-scale caches are
/// legible: a 16 KB / 32 B L1 holds 512 lines, a 256 KB L2 8192.
const REUSE_BOUNDS: [u64; 7] = [8, 32, 128, 512, 2048, 8192, 32768];

/// Per-line bookkeeping for the single streaming pass.
#[derive(Debug, Clone, Copy, Default)]
struct LineInfo {
    /// CPUs that touched the line (bitmask).
    readers: u64,
    /// CPUs that wrote the line (bitmask).
    writers: u64,
    /// Last CPU to write the line, if any.
    last_writer: Option<u8>,
}

/// Binary indexed tree over data-access positions; `sum(i)` counts marked
/// positions in `1..=i`. Marked positions are exactly the *latest* touch
/// of every line seen so far, which makes "distinct lines between two
/// touches" a pair of prefix sums.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn sum(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// The result of one analysis pass over a trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// CPU count the sharing/communication views are sized for.
    pub n_cpus: usize,
    /// Cache line size used to fold addresses into lines.
    pub line_bytes: u32,
    /// Instruction fetches seen.
    pub ifetches: u64,
    /// Data loads seen.
    pub loads: u64,
    /// Data stores seen.
    pub stores: u64,
    /// Distinct instruction lines touched.
    pub instr_lines: u64,
    /// Distinct data lines touched.
    pub data_lines: u64,
    /// `sharing_hist[k-1]` = data lines touched by exactly `k` CPUs.
    pub sharing_hist: Vec<u64>,
    /// Data lines written by at least one CPU and touched by another —
    /// the lines coherence traffic is made of.
    pub write_shared_lines: u64,
    /// `comm[p][c]` = loads by CPU `c` of a line whose last writer was
    /// CPU `p != c` (producer → consumer transfers).
    pub comm: Vec<Vec<u64>>,
    /// Reuse distances of data accesses: distinct data lines touched
    /// between successive accesses to the same line.
    pub reuse: Histogram,
    /// First-touch (cold) data accesses, excluded from `reuse`.
    pub cold: u64,
}

impl TraceAnalysis {
    /// Total references analyzed.
    pub fn refs(&self) -> u64 {
        self.ifetches + self.loads + self.stores
    }

    /// Data footprint in bytes (distinct data lines × line size).
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_lines * u64::from(self.line_bytes)
    }

    /// Instruction footprint in bytes.
    pub fn instr_footprint_bytes(&self) -> u64 {
        self.instr_lines * u64::from(self.line_bytes)
    }

    /// Data lines touched by more than one CPU.
    pub fn shared_lines(&self) -> u64 {
        self.sharing_hist.iter().skip(1).sum()
    }

    /// Mean CPUs per data line (the sharing degree).
    pub fn mean_sharing_degree(&self) -> f64 {
        if self.data_lines == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .sharing_hist
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        weighted as f64 / self.data_lines as f64
    }

    /// Total producer→consumer transfers in the communication matrix.
    pub fn comm_total(&self) -> u64 {
        self.comm.iter().flatten().sum()
    }
}

impl fmt::Display for TraceAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "refs {} (ifetch {} / load {} / store {})",
            self.refs(),
            self.ifetches,
            self.loads,
            self.stores
        )?;
        writeln!(
            f,
            "footprint: data {:.1} KB ({} lines), instr {:.1} KB ({} lines)",
            self.data_footprint_bytes() as f64 / 1024.0,
            self.data_lines,
            self.instr_footprint_bytes() as f64 / 1024.0,
            self.instr_lines
        )?;
        write!(f, "sharing degree:")?;
        for (i, &n) in self.sharing_hist.iter().enumerate() {
            write!(f, " {}cpu={n}", i + 1)?;
        }
        writeln!(
            f,
            "  (mean {:.2}, write-shared {} lines)",
            self.mean_sharing_degree(),
            self.write_shared_lines
        )?;
        writeln!(
            f,
            "communication: {} producer->consumer transfers",
            self.comm_total()
        )?;
        writeln!(
            f,
            "reuse distance: mean {:.1} lines, {} cold touches",
            self.reuse.mean(),
            self.cold
        )?;
        write!(f, "{}", comm_matrix(&self.comm))
    }
}

/// Renders a producer×consumer communication matrix as an aligned table.
pub fn comm_matrix(comm: &[Vec<u64>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:>10}", "prod\\cons");
    for c in 0..comm.len() {
        let _ = write!(out, " {c:>8}");
    }
    let _ = writeln!(out);
    for (p, row) in comm.iter().enumerate() {
        let _ = write!(out, "{:>10}", format!("cpu {p}"));
        for &n in row {
            let _ = write!(out, " {n:>8}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Analyzes a record stream. `n_cpus` sizes the sharing and communication
/// views; `line_bytes` folds byte addresses into lines (32 in every paper
/// configuration).
pub fn analyze<'a, I>(records: I, n_cpus: usize, line_bytes: u32) -> TraceAnalysis
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    assert!((1..=64).contains(&n_cpus), "sharing mask holds 64 CPUs");
    assert!(
        line_bytes.is_power_of_two(),
        "line size must be a power of two"
    );
    let shift = line_bytes.trailing_zeros();
    let mut a = TraceAnalysis {
        n_cpus,
        line_bytes,
        ifetches: 0,
        loads: 0,
        stores: 0,
        instr_lines: 0,
        data_lines: 0,
        sharing_hist: vec![0; n_cpus],
        write_shared_lines: 0,
        comm: vec![vec![0; n_cpus]; n_cpus],
        reuse: Histogram::new("reuse-distance", &REUSE_BOUNDS),
        cold: 0,
    };

    let mut instr: HashMap<u32, ()> = HashMap::new();
    let mut data: HashMap<u32, LineInfo> = HashMap::new();
    // Reuse distance needs positions; gather data accesses first to size
    // the Fenwick tree, then stream. Two passes over an in-memory slice
    // would double-iterate the caller's stream, so collect line ids here.
    let mut data_seq: Vec<u32> = Vec::new();

    for rec in records {
        let line = rec.addr >> shift;
        match rec.kind {
            TraceKind::StatsReset => {}
            TraceKind::IFetch => {
                a.ifetches += 1;
                instr.insert(line, ());
            }
            TraceKind::Load | TraceKind::Store => {
                let cpu = usize::from(rec.cpu).min(n_cpus - 1);
                let bit = 1u64 << cpu;
                let info = data.entry(line).or_default();
                info.readers |= bit;
                if rec.kind == TraceKind::Store {
                    a.stores += 1;
                    info.writers |= bit;
                    info.last_writer = Some(cpu as u8);
                } else {
                    a.loads += 1;
                    if let Some(p) = info.last_writer {
                        if usize::from(p) != cpu {
                            a.comm[usize::from(p)][cpu] += 1;
                        }
                    }
                }
                data_seq.push(line);
            }
        }
    }

    a.instr_lines = instr.len() as u64;
    a.data_lines = data.len() as u64;
    for info in data.values() {
        let degree = info.readers.count_ones() as usize;
        a.sharing_hist[degree.clamp(1, n_cpus) - 1] += 1;
        if info.writers != 0 && info.readers.count_ones() > 1 {
            a.write_shared_lines += 1;
        }
    }

    // Reuse distances: walk the data-access sequence with a Fenwick tree
    // marking each line's latest position; the distance of a re-touch is
    // the number of marked (= distinct) positions strictly between the
    // previous touch and now.
    let mut fen = Fenwick::new(data_seq.len());
    let mut last_pos: HashMap<u32, u64> = HashMap::with_capacity(data.len());
    for (idx, &line) in data_seq.iter().enumerate() {
        let pos = idx as u64 + 1;
        match last_pos.insert(line, pos) {
            Some(prev) => {
                let between = fen.sum(pos as usize - 1) - fen.sum(prev as usize);
                a.reuse.record(between as u64);
                fen.add(prev as usize, -1);
            }
            None => a.cold += 1,
        }
        fen.add(pos as usize, 1);
    }
    a
}

/// Analyzes an encoded trace, sizing the views from its header.
///
/// # Errors
///
/// Propagates decode errors.
pub fn analyze_bytes(bytes: &[u8]) -> Result<TraceAnalysis, TraceError> {
    let reader = TraceReader::new(bytes)?;
    let header = reader.header();
    let records = reader.collect_all()?;
    Ok(analyze(
        &records,
        usize::from(header.n_cpus).max(1),
        u32::from(header.line_bytes).max(1),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, cpu: u8, kind: TraceKind, addr: u32) -> TraceRecord {
        TraceRecord {
            cycle,
            cpu,
            kind,
            addr,
        }
    }

    #[test]
    fn counts_footprint_and_kinds() {
        let recs = vec![
            rec(0, 0, TraceKind::IFetch, 0x1000),
            rec(1, 0, TraceKind::IFetch, 0x1004), // same instr line
            rec(2, 0, TraceKind::Load, 0x8000),
            rec(3, 1, TraceKind::Store, 0x8020), // next data line
            rec(4, 0, TraceKind::StatsReset, 0),
        ];
        let a = analyze(&recs, 4, 32);
        assert_eq!((a.ifetches, a.loads, a.stores), (2, 1, 1));
        assert_eq!(a.instr_lines, 1);
        assert_eq!(a.data_lines, 2);
        assert_eq!(a.data_footprint_bytes(), 64);
        assert_eq!(a.refs(), 4);
    }

    #[test]
    fn sharing_degree_splits_private_from_shared() {
        let recs = vec![
            rec(0, 0, TraceKind::Load, 0x100), // private to cpu 0
            rec(1, 0, TraceKind::Load, 0x200), // shared by 0,1,2
            rec(2, 1, TraceKind::Load, 0x200),
            rec(3, 2, TraceKind::Load, 0x204),
            rec(4, 3, TraceKind::Store, 0x300), // written, then read by 0
            rec(5, 0, TraceKind::Load, 0x300),
        ];
        let a = analyze(&recs, 4, 32);
        assert_eq!(a.sharing_hist, vec![1, 1, 1, 0]);
        assert_eq!(a.shared_lines(), 2);
        assert_eq!(a.write_shared_lines, 1, "only the written shared line");
        assert!((a.mean_sharing_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn communication_matrix_tracks_producer_consumer() {
        let recs = vec![
            rec(0, 0, TraceKind::Store, 0x100),
            rec(1, 1, TraceKind::Load, 0x100), // 0 -> 1
            rec(2, 2, TraceKind::Load, 0x104), // 0 -> 2 (same line)
            rec(3, 0, TraceKind::Load, 0x100), // self: not communication
            rec(4, 2, TraceKind::Store, 0x100),
            rec(5, 0, TraceKind::Load, 0x100), // 2 -> 0
        ];
        let a = analyze(&recs, 4, 32);
        assert_eq!(a.comm[0][1], 1);
        assert_eq!(a.comm[0][2], 1);
        assert_eq!(a.comm[2][0], 1);
        assert_eq!(a.comm[0][0], 0);
        assert_eq!(a.comm_total(), 3);
        let table = comm_matrix(&a.comm);
        assert!(table.contains("cpu 0"), "{table}");
    }

    #[test]
    fn reuse_distance_counts_distinct_lines_between_touches() {
        // A B C A: the second A has 2 distinct lines (B, C) in between.
        // B's re-touch would have distance 2 as well; only A re-touches.
        let recs = vec![
            rec(0, 0, TraceKind::Load, 0x000),
            rec(1, 0, TraceKind::Load, 0x020),
            rec(2, 0, TraceKind::Load, 0x040),
            rec(3, 0, TraceKind::Load, 0x000),
            rec(4, 0, TraceKind::Load, 0x000), // immediate re-touch: 0
        ];
        let a = analyze(&recs, 1, 32);
        assert_eq!(a.cold, 3);
        assert_eq!(a.reuse.total(), 2);
        assert_eq!(a.reuse.max(), 2);
        assert!((a.reuse.mean() - 1.0).abs() < 1e-12, "distances 2 and 0");
    }

    #[test]
    fn repeated_lines_do_not_inflate_reuse_distance() {
        // A B B B A: distance of the final A is 1 (only B between), not 3.
        let recs = vec![
            rec(0, 0, TraceKind::Load, 0x000),
            rec(1, 0, TraceKind::Load, 0x020),
            rec(2, 0, TraceKind::Load, 0x020),
            rec(3, 0, TraceKind::Load, 0x020),
            rec(4, 0, TraceKind::Load, 0x000),
        ];
        let a = analyze(&recs, 1, 32);
        assert_eq!(a.reuse.max(), 1);
    }
}

//! Cross-system contract suite: every invariant here must hold for all
//! five memory-system topologies, because upper layers (the CPU models,
//! the run harness, the report generator) rely on them without knowing
//! which architecture they drive.
//!
//! The latency contracts pin Table 2 of the paper in contention-free
//! form: a cold miss always pays the full memory latency, and the L1/L2
//! service deltas are the per-architecture numbers the paper's fixed
//! latencies imply.

use cmpsim_engine::Cycle;
use cmpsim_mem::{
    ClusteredSystem, MemRequest, MemResult, MemorySystem, MeshSystem, ServiceLevel, SharedL1System,
    SharedL2System, SharedMemSystem, SystemConfig,
};

const ADDR: u32 = 0x4000;

/// One topology plus its Table 2 contention-free latency expectations.
struct Contract {
    arch: &'static str,
    make: fn(usize) -> Box<dyn MemorySystem>,
    /// Finish delta of an uncontended L1 hit.
    l1_hit: u64,
    /// Finish delta of an uncontended L2-serviced access.
    l2_hit: u64,
    /// After CPU 0 cold-fills `ADDR` at cycle 0, runs this topology's
    /// L2-service scenario and returns the probing access's result. The
    /// probe is issued at `at`; any setup uses earlier cycles.
    l2_probe: fn(&mut Box<dyn MemorySystem>, Cycle) -> MemResult,
}

fn contracts() -> Vec<Contract> {
    vec![
        Contract {
            arch: "shared-L1",
            make: |n| Box::new(SharedL1System::new(&SystemConfig::paper_shared_l1(n))),
            l1_hit: 3,
            l2_hit: 10,
            // Evict ADDR from the 2-way shared L1 (32 KB way stride); it
            // stays resident in the L2.
            l2_probe: |s, at| {
                s.access(Cycle(at.0 - 2000), MemRequest::load(0, ADDR + 0x8000));
                s.access(Cycle(at.0 - 1000), MemRequest::load(0, ADDR + 0x1_0000));
                s.access(at, MemRequest::load(0, ADDR))
            },
        },
        Contract {
            arch: "shared-L2",
            make: |n| Box::new(SharedL2System::new(&SystemConfig::paper_shared_l2(n))),
            l1_hit: 1,
            l2_hit: 14,
            // A second CPU reads the line: its private L1 misses, the
            // shared L2 services it.
            l2_probe: |s, at| s.access(at, MemRequest::load(1, ADDR)),
        },
        Contract {
            arch: "shared-memory",
            make: |n| Box::new(SharedMemSystem::new(&SystemConfig::paper_shared_mem(n))),
            l1_hit: 1,
            l2_hit: 10,
            // Evict ADDR from CPU 0's 16 KB 2-way private L1 (8 KB way
            // stride); the refill hits its private L2 without a bus trip.
            l2_probe: |s, at| {
                s.access(Cycle(at.0 - 2000), MemRequest::load(0, ADDR + 0x2000));
                s.access(Cycle(at.0 - 1000), MemRequest::load(0, ADDR + 0x4000));
                s.access(at, MemRequest::load(0, ADDR))
            },
        },
        Contract {
            arch: "clustered",
            make: |n| Box::new(ClusteredSystem::new(&SystemConfig::paper_shared_l2(n))),
            l1_hit: 2,
            l2_hit: 14,
            // A CPU in the *other* cluster reads the line: its cluster L1
            // misses, the shared L2 services it.
            l2_probe: |s, at| s.access(at, MemRequest::load(2, ADDR)),
        },
        Contract {
            arch: "mesh",
            make: |n| Box::new(MeshSystem::new(&SystemConfig::paper_mesh(n))),
            l1_hit: 1,
            // `ADDR` homes at tile 0; CPU 1 sits one hop away, so the
            // shared-L2 latency picks up one link hop each way.
            l2_hit: 16,
            // A neighbouring tile reads the line: its private L1 misses,
            // the home tile's L2 slice services it over the mesh.
            l2_probe: |s, at| s.access(at, MemRequest::load(1, ADDR)),
        },
    ]
}

#[test]
fn cold_miss_pays_full_memory_latency_everywhere() {
    for c in contracts() {
        let mut s = (c.make)(4);
        let r = s.access(Cycle(0), MemRequest::load(0, ADDR));
        assert_eq!(r.finish, Cycle(50), "{}: cold miss latency", c.arch);
        assert_eq!(r.serviced_by, ServiceLevel::Memory, "{}", c.arch);
    }
}

#[test]
fn l1_hit_latency_matches_table2() {
    for c in contracts() {
        let mut s = (c.make)(4);
        s.access(Cycle(0), MemRequest::load(0, ADDR));
        let r = s.access(Cycle(10_000), MemRequest::load(0, ADDR));
        assert_eq!(r.serviced_by, ServiceLevel::L1, "{}", c.arch);
        assert_eq!(
            r.finish - Cycle(10_000),
            c.l1_hit,
            "{}: L1 hit latency",
            c.arch
        );
    }
}

#[test]
fn l2_service_latency_matches_table2() {
    for c in contracts() {
        let mut s = (c.make)(4);
        s.access(Cycle(0), MemRequest::load(0, ADDR));
        let r = (c.l2_probe)(&mut s, Cycle(10_000));
        assert_eq!(r.serviced_by, ServiceLevel::L2, "{}", c.arch);
        assert_eq!(
            r.finish - Cycle(10_000),
            c.l2_hit,
            "{}: L2 service latency",
            c.arch
        );
    }
}

/// `load_would_hit_l1` is the MXS model's MSHR-admission oracle: its
/// prediction must agree with what an immediately following load actually
/// does, for every CPU — including cluster-mates that share an L1.
#[test]
fn load_would_hit_l1_agrees_with_a_subsequent_load() {
    for c in contracts() {
        for cpu in 0..4 {
            let mut s = (c.make)(4);
            assert!(
                !s.load_would_hit_l1(cpu, ADDR),
                "{} cpu{cpu}: cold caches hold nothing",
                c.arch
            );
            s.access(Cycle(0), MemRequest::load(0, ADDR));
            let predicted = s.load_would_hit_l1(cpu, ADDR);
            let r = s.access(Cycle(10_000), MemRequest::load(cpu, ADDR));
            assert_eq!(
                predicted,
                r.serviced_by == ServiceLevel::L1,
                "{} cpu{cpu}: prediction disagrees with the actual load",
                c.arch
            );
        }
    }
}

/// The run harness zeroes statistics at the region-of-interest marker via
/// `stats_mut().reset()`; counters must restart from zero on every
/// topology, and later accesses must keep counting normally.
#[test]
fn stats_reset_at_roi_clears_every_counter() {
    for c in contracts() {
        let mut s = (c.make)(4);
        for i in 0..8u64 {
            s.access(
                Cycle(i * 100),
                MemRequest::load((i % 4) as usize, ADDR + 0x40 * i as u32),
            );
            s.access(Cycle(i * 100 + 50), MemRequest::store(0, 0x9000));
        }
        assert!(s.stats().l1d.accesses > 0, "{}", c.arch);
        assert!(s.stats().latency.total() > 0, "{}", c.arch);
        s.stats_mut().reset();
        assert_eq!(s.stats().l1d.accesses, 0, "{}: reset clears L1D", c.arch);
        assert_eq!(s.stats().mem_accesses, 0, "{}: reset clears memory", c.arch);
        assert_eq!(
            s.stats().latency.total(),
            0,
            "{}: reset clears the histogram",
            c.arch
        );
        s.access(Cycle(100_000), MemRequest::load(0, ADDR));
        assert_eq!(s.stats().l1d.accesses, 1, "{}: counting resumes", c.arch);
        assert_eq!(s.stats().latency.total(), 1, "{}", c.arch);
    }
}

#[test]
fn line_size_cpu_count_and_name_are_reported() {
    for c in contracts() {
        for n in [4usize, 8] {
            let s = (c.make)(n);
            assert_eq!(s.line_bytes(), 32, "{}", c.arch);
            assert_eq!(s.n_cpus(), n, "{}", c.arch);
            assert_eq!(s.name(), c.arch);
        }
    }
}

/// Acceptance criterion: non-default geometries run end-to-end through
/// `SystemConfig` alone — no per-topology constructor arguments.
#[test]
fn eight_cpu_shared_l2_runs_via_config_alone() {
    let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(8));
    for cpu in 0..8 {
        s.access(Cycle(cpu as u64 * 100), MemRequest::load(cpu, ADDR));
    }
    s.access(Cycle(10_000), MemRequest::store(7, ADDR));
    assert_eq!(
        s.stats().invalidations_sent,
        7,
        "an 8th-CPU store invalidates the other seven copies"
    );
}

#[test]
fn clustered_4x2_and_2x4_run_via_config_alone() {
    // 4 clusters × 2 CPUs (the default geometry at 8 CPUs).
    let mut s = ClusteredSystem::new(&SystemConfig::paper_shared_l2(8));
    assert_eq!(s.n_clusters(), 4);
    s.access(Cycle(0), MemRequest::load(0, ADDR));
    let r = s.access(Cycle(1000), MemRequest::load(1, ADDR));
    assert_eq!(
        r.serviced_by,
        ServiceLevel::L1,
        "cluster-mate shares the L1"
    );
    let r = s.access(Cycle(2000), MemRequest::load(7, ADDR));
    assert_eq!(
        r.serviced_by,
        ServiceLevel::L2,
        "far cluster goes to the L2"
    );
    assert!(s.directory_consistent());

    // 2 clusters × 4 CPUs via the config knob.
    let cfg = SystemConfig::paper_shared_l2(8).with_cpus_per_cluster(4);
    let mut s = ClusteredSystem::new(&cfg);
    assert_eq!(s.n_clusters(), 2);
    s.access(Cycle(0), MemRequest::load(0, ADDR));
    let r = s.access(Cycle(1000), MemRequest::load(3, ADDR));
    assert_eq!(
        r.serviced_by,
        ServiceLevel::L1,
        "cpu 3 shares cluster 0's L1"
    );
    s.access(Cycle(2000), MemRequest::store(4, ADDR));
    assert_eq!(
        s.stats().invalidations_sent,
        1,
        "one cluster L1 invalidated"
    );
    assert!(s.directory_consistent());
}

//! Property tests for the memory substrate: the set-associative cache
//! against a naive reference model, MESI single-writer invariants on the
//! bus architecture, and physical-memory byte equivalence.
//! Runs on `cmpsim_engine::prop`.

use cmpsim_engine::{prop, Cycle};
use cmpsim_mem::{
    AccessOutcome, CacheArray, CacheSpec, LineState, MemRequest, MemorySystem, PhysMem,
    SharedMemSystem, SystemConfig,
};
use std::collections::HashMap;

/// A naive fully-explicit reference cache: per-set vectors ordered by
/// recency. Must agree with `CacheArray` on every hit/miss.
struct RefCache {
    sets: Vec<Vec<u32>>, // line addresses, most recent last
    assoc: usize,
    line: u32,
}

impl RefCache {
    fn new(spec: CacheSpec) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); spec.n_sets()],
            assoc: spec.assoc,
            line: spec.line_bytes,
        }
    }
    fn set_of(&self, addr: u32) -> usize {
        ((addr / self.line) as usize) % self.sets.len()
    }
    fn lookup(&mut self, addr: u32) -> bool {
        let la = addr & !(self.line - 1);
        let set = self.set_of(addr);
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&x| x == la) {
            let v = s.remove(pos);
            s.push(v); // most-recent last
            true
        } else {
            false
        }
    }
    fn fill(&mut self, addr: u32) -> Option<u32> {
        let la = addr & !(self.line - 1);
        let set = self.set_of(addr);
        let victim = if self.sets[set].len() >= self.assoc {
            Some(self.sets[set].remove(0)) // least-recent first
        } else {
            None
        };
        self.sets[set].push(la);
        victim
    }
}

/// CacheArray and the reference model agree on every access outcome and
/// every eviction victim.
#[test]
fn cache_matches_reference_model() {
    prop::check("cache_matches_reference_model", |src| {
        let addrs = src.vec(1..500, |s| s.u32(0..4096));
        // Tiny cache to force plenty of evictions: 4 sets x 2 ways x 32B.
        let spec = CacheSpec::new(256, 2, 32);
        let mut dut = CacheArray::new("dut", spec);
        let mut rf = RefCache::new(spec);
        for &addr in &addrs {
            let hit_ref = rf.lookup(addr);
            let outcome = dut.lookup(addr);
            match outcome {
                AccessOutcome::Hit(_) => assert!(hit_ref, "dut hit, ref miss @{addr:#x}"),
                AccessOutcome::Miss(_) => {
                    assert!(!hit_ref, "dut miss, ref hit @{addr:#x}");
                    let v_ref = rf.fill(addr);
                    let v_dut = dut.fill(addr, LineState::Shared).map(|v| v.addr);
                    assert_eq!(v_dut, v_ref, "victims differ @{addr:#x}");
                }
            }
        }
    });
}

/// MESI invariant on the snooping-bus architecture: for every line, at
/// most one cache holds it Modified or Exclusive, and never alongside
/// other valid copies.
#[test]
fn mesi_single_writer_invariant() {
    prop::check("mesi_single_writer_invariant", |src| {
        let ops = src.vec(1..300, |s| (s.usize(0..4), s.u32(0..64), s.bool()));
        let mut sys = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4));
        let mut t = Cycle(0);
        let mut touched: Vec<u32> = Vec::new();
        for &(cpu, line_idx, is_store) in &ops {
            let addr = line_idx * 32;
            touched.push(addr);
            let req = if is_store {
                MemRequest::store(cpu, addr)
            } else {
                MemRequest::load(cpu, addr)
            };
            sys.access(t, req);
            t += 100;

            // Check the invariant over every line touched so far.
            for &a in &touched {
                let states: Vec<LineState> = (0..4).map(|c| sys.l1d(c).probe(a)).collect();
                let owners = states
                    .iter()
                    .filter(|s| matches!(s, LineState::Modified | LineState::Exclusive))
                    .count();
                let sharers = states
                    .iter()
                    .filter(|s| matches!(s, LineState::Shared))
                    .count();
                assert!(owners <= 1, "two owners of {a:#x}: {states:?}");
                assert!(
                    owners == 0 || sharers == 0,
                    "owner coexists with sharers at {a:#x}: {states:?}"
                );
            }
        }
    });
}

/// PhysMem behaves exactly like a sparse byte map under arbitrary
/// interleavings of all access widths.
#[test]
fn physmem_matches_byte_map() {
    prop::check("physmem_matches_byte_map", |src| {
        let ops = src.vec(1..300, |s| {
            (s.u32(0..10_000), s.u8(0..4), s.u64_any(), s.bool())
        });
        let mut dut = PhysMem::new(1);
        let mut model: HashMap<u32, u8> = HashMap::new();
        let rd = |m: &HashMap<u32, u8>, a: u32| *m.get(&a).unwrap_or(&0);
        for &(addr, width, value, is_store) in &ops {
            match (width, is_store) {
                (0, true) => {
                    dut.write_u8(addr, value as u8);
                    model.insert(addr, value as u8);
                }
                (0, false) => assert_eq!(dut.read_u8(addr), rd(&model, addr)),
                (1, true) => {
                    dut.write_u32(addr, value as u32);
                    for (i, b) in (value as u32).to_le_bytes().iter().enumerate() {
                        model.insert(addr.wrapping_add(i as u32), *b);
                    }
                }
                (1, false) => {
                    let want = u32::from_le_bytes(std::array::from_fn(|i| {
                        rd(&model, addr.wrapping_add(i as u32))
                    }));
                    assert_eq!(dut.read_u32(addr), want);
                }
                (2, true) => {
                    dut.write_u64(addr, value);
                    for (i, b) in value.to_le_bytes().iter().enumerate() {
                        model.insert(addr.wrapping_add(i as u32), *b);
                    }
                }
                (2, false) => {
                    let want = u64::from_le_bytes(std::array::from_fn(|i| {
                        rd(&model, addr.wrapping_add(i as u32))
                    }));
                    assert_eq!(dut.read_u64(addr), want);
                }
                (_, true) => {
                    dut.write_f64(addr, f64::from_bits(value));
                    for (i, b) in value.to_le_bytes().iter().enumerate() {
                        model.insert(addr.wrapping_add(i as u32), *b);
                    }
                }
                (_, false) => {
                    let want = u64::from_le_bytes(std::array::from_fn(|i| {
                        rd(&model, addr.wrapping_add(i as u32))
                    }));
                    assert_eq!(dut.read_f64(addr).to_bits(), want);
                }
            }
        }
    });
}

/// Completion times never precede issue plus the minimum hit latency,
/// and the same access replayed later (warm) is never slower.
#[test]
fn warm_accesses_never_slower() {
    prop::check("warm_accesses_never_slower", |src| {
        let lines = src.vec(1..50, |s| s.u32(0..256));
        let mut sys = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4));
        for &l in &lines {
            let addr = l * 32;
            let cold = sys.access(Cycle(10_000), MemRequest::load(0, addr));
            assert!(cold.finish.0 > 10_000);
            let warm = sys.access(Cycle(20_000), MemRequest::load(0, addr));
            assert!(warm.finish.0 - 20_000 <= cold.finish.0 - 10_000);
        }
    });
}

/// The shared-L2 directory and the L1 contents never diverge under any
/// interleaving of loads, stores and fetches from four CPUs.
#[test]
fn shared_l2_directory_invariant() {
    prop::check("shared_l2_directory_invariant", |src| {
        use cmpsim_mem::SharedL2System;
        let ops = src.vec(1..250, |s| (s.usize(0..4), s.u32(0..512), s.u8(0..3)));
        let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4));
        for (i, &(cpu, line, kind)) in ops.iter().enumerate() {
            // A few lines alias in the direct-mapped 2 MB L2 (every 64K
            // lines); sprinkle large strides so back-invalidation paths run.
            let addr = (line % 64) * 32 + (line / 64) * 0x20_0000;
            let req = match kind {
                0 => MemRequest::load(cpu, addr),
                1 => MemRequest::store(cpu, addr),
                _ => MemRequest::ifetch(cpu, addr),
            };
            s.access(Cycle(i as u64 * 200), req);
        }
        assert!(s.directory_consistent());
    });
}

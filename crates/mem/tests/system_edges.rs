//! Edge-path tests across the three memory systems: directory corner
//! cases, inclusion interactions, write-back chains, and stats consistency.

use cmpsim_engine::Cycle;
use cmpsim_mem::{
    LineState, MemRequest, MemorySystem, ServiceLevel, SharedL1System, SharedL2System,
    SharedMemSystem, SystemConfig,
};

// ---------------------------------------------------------------- shared-L2

#[test]
fn shared_l2_directory_tracks_i_and_d_sides_independently() {
    let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4));
    // CPU 0 fetches the line as code, CPU 1 reads it as data.
    s.access(Cycle(0), MemRequest::ifetch(0, 0x7000));
    s.access(Cycle(100), MemRequest::load(1, 0x7000));
    // A store by CPU 2 invalidates both kinds of copies.
    s.access(Cycle(200), MemRequest::store(2, 0x7000));
    assert_eq!(s.stats().invalidations_sent, 2, "one I-copy + one D-copy");
    // Both re-miss as invalidation misses.
    s.access(Cycle(300), MemRequest::ifetch(0, 0x7000));
    s.access(Cycle(400), MemRequest::load(1, 0x7000));
    assert_eq!(s.stats().l1i.miss_inval, 1);
    assert_eq!(s.stats().l1d.miss_inval, 1);
}

#[test]
fn shared_l2_writer_keeps_own_copy_valid() {
    let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4));
    s.access(Cycle(0), MemRequest::load(0, 0x8000));
    s.access(Cycle(100), MemRequest::store(0, 0x8000));
    // The writer's own L1 copy is updated in place, not invalidated.
    let r = s.access(Cycle(200), MemRequest::load(0, 0x8000));
    assert_eq!(r.serviced_by, ServiceLevel::L1);
    assert_eq!(s.stats().invalidations_sent, 0);
}

#[test]
fn shared_l2_dirty_line_writes_back_on_eviction() {
    let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4));
    s.access(Cycle(0), MemRequest::store(0, 0x9000)); // L2 line dirty
                                                      // Evict it with the conflicting line 2 MB away (direct-mapped L2).
    s.access(Cycle(1000), MemRequest::load(1, 0x9000 + 0x20_0000));
    assert_eq!(s.stats().writebacks, 1, "dirty victim must write back");
}

#[test]
fn shared_l2_load_after_remote_store_is_l2_serviced() {
    // Communication through the shared L2: 14 cycles, never the bus.
    let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4));
    s.access(Cycle(0), MemRequest::store(0, 0xa000));
    let r = s.access(Cycle(100), MemRequest::load(1, 0xa000));
    assert_eq!(r.serviced_by, ServiceLevel::L2);
    assert_eq!(r.finish - Cycle(100), 14);
}

// ---------------------------------------------------------------- shared-mem

#[test]
fn shared_mem_dirty_l1_victim_folds_into_l2() {
    let mut s = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4));
    s.access(Cycle(0), MemRequest::store(0, 0xb000)); // M in L1+L2
                                                      // Two conflicting fills (16 KB 2-way: 8 KB way stride) evict it.
    s.access(Cycle(100), MemRequest::load(0, 0xb000 + 0x2000));
    s.access(Cycle(200), MemRequest::load(0, 0xb000 + 0x4000));
    assert_eq!(s.stats().writebacks, 1, "dirty L1 victim retires into L2");
    // Still Modified at the L2: a remote reader gets it cache-to-cache.
    let r = s.access(Cycle(300), MemRequest::load(1, 0xb000));
    assert_eq!(r.serviced_by, ServiceLevel::CacheToCache);
}

#[test]
fn shared_mem_l2_eviction_back_invalidates_l1() {
    let cfg = SystemConfig::paper_shared_mem(4);
    let mut s = SharedMemSystem::new(&cfg);
    s.access(Cycle(0), MemRequest::load(0, 0xc000));
    assert_eq!(s.l1d(0).probe(0xc000), LineState::Exclusive);
    // Evict from the 512 KB direct-mapped L2.
    s.access(Cycle(100), MemRequest::load(0, 0xc000 + 0x8_0000));
    assert_eq!(
        s.l1d(0).probe(0xc000),
        LineState::Invalid,
        "inclusion: the L1 may not outlive the L2 line"
    );
    // And the refetch counts as replacement, not coherence.
    s.access(Cycle(200), MemRequest::load(0, 0xc000));
    assert_eq!(s.stats().l1d.miss_inval, 0);
}

#[test]
fn shared_mem_upgrade_vs_readex_paths_differ() {
    let mut s = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4));
    // Upgrade path: the writer already shares the line.
    s.access(Cycle(0), MemRequest::load(0, 0xd000));
    s.access(Cycle(100), MemRequest::load(1, 0xd000));
    s.access(Cycle(200), MemRequest::store(0, 0xd000));
    assert_eq!(s.stats().upgrades, 1);
    // Read-exclusive path: the writer has no copy at all.
    s.access(Cycle(300), MemRequest::store(2, 0xe000));
    assert_eq!(
        s.stats().upgrades,
        1,
        "cold store is a read-exclusive, not an upgrade"
    );
    assert_eq!(s.l1d(2).probe(0xe000), LineState::Modified);
}

#[test]
fn shared_mem_ifetch_lines_shareable_with_data_readers() {
    let mut s = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4));
    s.access(Cycle(0), MemRequest::ifetch(0, 0xf000));
    let r = s.access(Cycle(100), MemRequest::load(1, 0xf000));
    // A clean remote I-copy forces Shared (no silent E upgrade hazard).
    assert_eq!(r.serviced_by, ServiceLevel::Memory);
    assert_eq!(s.l1d(1).probe(0xf000), LineState::Shared);
}

// ---------------------------------------------------------------- shared-L1

#[test]
fn shared_l1_ifetch_and_data_have_separate_banks() {
    let mut s = SharedL1System::new(&SystemConfig::paper_shared_l1(4));
    s.access(Cycle(0), MemRequest::ifetch(0, 0x1000));
    s.access(Cycle(100), MemRequest::load(1, 0x1000));
    // Same address, same cycle, different arrays: no bank conflict.
    let a = s.access(Cycle(200), MemRequest::ifetch(0, 0x1000));
    let b = s.access(Cycle(200), MemRequest::load(1, 0x1000));
    assert_eq!(a.finish, b.finish, "I and D banks are independent");
}

#[test]
fn shared_l1_l2_and_memory_counters_consistent() {
    let mut s = SharedL1System::new(&SystemConfig::paper_shared_l1(4));
    for i in 0..100u32 {
        s.access(
            Cycle(u64::from(i) * 100),
            MemRequest::load(0, 0x10_0000 + i * 64),
        );
    }
    let st = s.stats();
    assert_eq!(st.l1d.accesses, 100);
    assert_eq!(st.l1d.misses(), 100, "all cold");
    assert_eq!(
        st.l2.accesses,
        st.l1d.misses(),
        "every L1 miss reaches the L2"
    );
    assert_eq!(
        st.mem_accesses,
        st.l2.misses(),
        "every L2 miss reaches memory"
    );
    assert_eq!(st.latency.total(), 100);
}

#[test]
fn ideal_mode_still_counts_misses() {
    // Idealization changes timing only — the miss-rate tables must be
    // identical between ideal and real shared-L1 runs.
    let real = {
        let mut s = SharedL1System::new(&SystemConfig::paper_shared_l1(4));
        for i in 0..50u32 {
            s.access(Cycle(u64::from(i) * 100), MemRequest::load(0, i * 64));
            s.access(Cycle(u64::from(i) * 100 + 50), MemRequest::load(1, i * 64));
        }
        (s.stats().l1d.accesses, s.stats().l1d.misses())
    };
    let ideal = {
        let cfg = SystemConfig::paper_shared_l1(4).with_ideal_shared_l1(true);
        let mut s = SharedL1System::new(&cfg);
        for i in 0..50u32 {
            s.access(Cycle(u64::from(i) * 100), MemRequest::load(0, i * 64));
            s.access(Cycle(u64::from(i) * 100 + 50), MemRequest::load(1, i * 64));
        }
        (s.stats().l1d.accesses, s.stats().l1d.misses())
    };
    assert_eq!(real, ideal);
}

// -------------------------------------------------- directory invariants

#[test]
fn shared_l2_directory_stays_consistent_through_a_mixed_sequence() {
    let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4));
    let seq: [(usize, u32, bool); 12] = [
        (0, 0x1000, false),
        (1, 0x1000, false),
        (2, 0x1000, true),
        (3, 0x2000, false),
        (0, 0x2000, true),
        (1, 0x1000 + 0x20_0000, false), // evicts 0x1000 from the L2
        (2, 0x3000, false),
        (3, 0x3000, true),
        (0, 0x1000, false),
        (1, 0x4000, false),
        (2, 0x4000, false),
        (3, 0x4000, true),
    ];
    for (i, &(cpu, addr, store)) in seq.iter().enumerate() {
        let req = if store {
            MemRequest::store(cpu, addr)
        } else {
            MemRequest::load(cpu, addr)
        };
        s.access(Cycle(i as u64 * 500), req);
        assert!(
            s.directory_consistent(),
            "directory inconsistent after op {i}: {cpu} {addr:#x} store={store}"
        );
    }
}

//! The coherence sentinel: opt-in runtime invariant checking and
//! deterministic fault injection for the memory systems.
//!
//! The paper's three architectures differ exactly in their coherence
//! machinery, so a silent protocol bug would corrupt workload results (or
//! hang a run) without any diagnostic. The sentinel closes that gap in
//! three parts:
//!
//! * **Invariant checker** — after every access, the owning system checks
//!   the protocol invariants for the touched line: directory presence bits
//!   must mirror L1 residency and inclusion under the shared L2, MESI
//!   legality (at most one owner, owners never coexist with other copies)
//!   under the snooping bus, and write-through L1s must never hold dirty
//!   lines. Violations are recorded as structured [`SentinelViolation`]s,
//!   never panics, so a run can report every divergence it saw.
//! * **Flat-memory oracle** — [`crate::PhysMem`] shadows every store in a
//!   parallel page array and cross-checks every load; a divergence is an
//!   [`ViolationKind::OracleMismatch`]. See `PhysMem::enable_sentinel`.
//! * **Fault injector** — a deterministic [`Rng64`]-seeded perturbation
//!   source ([`FaultInjector`]) that drops invalidations, corrupts
//!   write-backs and plants spurious directory/line states, so tests can
//!   prove the checker actually detects each fault class.
//!
//! Everything is off by default and gated behind [`SentinelSpec`]; the
//! environment knobs are `CMPSIM_SENTINEL`, `CMPSIM_FAULT_SEED` and
//! `CMPSIM_FAULT_RATE` (see [`SentinelSpec::from_env`]).

use crate::Addr;
use cmpsim_engine::Rng64;
use std::fmt;

/// Environment knob enabling the invariant checker (any non-empty value
/// other than `0`).
pub const ENV_SENTINEL: &str = "CMPSIM_SENTINEL";
/// Environment knob for the fault-injection probability (a float in
/// `[0, 1]`; any value above zero also enables the sentinel).
pub const ENV_FAULT_RATE: &str = "CMPSIM_FAULT_RATE";
/// Environment knob for the fault injector's seed (a `u64`).
pub const ENV_FAULT_SEED: &str = "CMPSIM_FAULT_SEED";

/// Default fault-injector seed when `CMPSIM_FAULT_SEED` is unset.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17_5EED_2026_0003;

/// The classes of protocol fault the injector can introduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A coherence invalidation is dropped on the floor: the directory (or
    /// bus) believes a remote copy is gone while the cache still holds it.
    DroppedInvalidation,
    /// A line or directory entry is planted in a state the protocol never
    /// produces (spurious presence bit; Modified instead of Shared after a
    /// downgrade).
    SpuriousState,
    /// A store's data is corrupted on its way to memory: the oracle's
    /// shadow keeps the true value while main memory holds garbage.
    StaleWriteback,
}

impl FaultKind {
    /// Every fault class, in taxonomy order.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::DroppedInvalidation,
        FaultKind::SpuriousState,
        FaultKind::StaleWriteback,
    ];

    fn bit(self) -> u8 {
        match self {
            FaultKind::DroppedInvalidation => 1,
            FaultKind::SpuriousState => 2,
            FaultKind::StaleWriteback => 4,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::DroppedInvalidation => "dropped-invalidation",
            FaultKind::SpuriousState => "spurious-state",
            FaultKind::StaleWriteback => "stale-writeback",
        };
        f.write_str(s)
    }
}

/// A set of [`FaultKind`]s, packed so [`SentinelSpec`] stays `Copy + Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultClassSet(u8);

impl FaultClassSet {
    /// The empty set.
    pub const NONE: FaultClassSet = FaultClassSet(0);

    /// Every fault class.
    pub fn all() -> FaultClassSet {
        FaultClassSet(FaultKind::ALL.iter().fold(0, |acc, k| acc | k.bit()))
    }

    /// A single-class set (per-class detection tests).
    pub fn only(kind: FaultKind) -> FaultClassSet {
        FaultClassSet(kind.bit())
    }

    /// Whether `kind` is in the set.
    pub fn contains(self, kind: FaultKind) -> bool {
        self.0 & kind.bit() != 0
    }
}

/// Sentinel configuration, carried inside
/// [`crate::SystemConfig`] so every memory system builds its checker from
/// the same source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentinelSpec {
    /// Run the invariant checker (and the [`crate::PhysMem`] oracle).
    pub enabled: bool,
    /// Seed for the deterministic fault injector.
    pub fault_seed: u64,
    /// Fault probability per opportunity, in parts per million (`u32` so
    /// the spec stays `Eq`; 1_000_000 = always).
    pub fault_rate_ppm: u32,
    /// Which fault classes the injector may introduce.
    pub fault_classes: FaultClassSet,
}

impl SentinelSpec {
    /// Checker and injector both off — the zero-cost default.
    pub fn off() -> SentinelSpec {
        SentinelSpec {
            enabled: false,
            fault_seed: DEFAULT_FAULT_SEED,
            fault_rate_ppm: 0,
            fault_classes: FaultClassSet::NONE,
        }
    }

    /// Checker on, no fault injection (the verification mode).
    pub fn on() -> SentinelSpec {
        SentinelSpec {
            enabled: true,
            ..SentinelSpec::off()
        }
    }

    /// Checker on with deterministic fault injection — test harnesses use
    /// `rate_ppm = 1_000_000` and a single class to prove detection.
    pub fn with_faults(seed: u64, rate_ppm: u32, classes: FaultClassSet) -> SentinelSpec {
        SentinelSpec {
            enabled: true,
            fault_seed: seed,
            fault_rate_ppm: rate_ppm,
            fault_classes: classes,
        }
    }

    /// Whether the injector is armed.
    pub fn faults_armed(&self) -> bool {
        self.enabled && self.fault_rate_ppm > 0 && self.fault_classes != FaultClassSet::NONE
    }

    /// Reads `CMPSIM_SENTINEL`, `CMPSIM_FAULT_RATE` and
    /// `CMPSIM_FAULT_SEED` from the environment. A positive fault rate
    /// implies the sentinel itself (faults without a checker would just be
    /// silent corruption).
    pub fn from_env() -> SentinelSpec {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// Like [`SentinelSpec::from_env`] but reading from an arbitrary
    /// lookup, so tests can exercise the parsing without touching the
    /// process environment (which is racy under a multithreaded test
    /// runner).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> SentinelSpec {
        let mut spec = SentinelSpec::off();
        if let Some(v) = lookup(ENV_SENTINEL) {
            let v = v.trim();
            spec.enabled = !v.is_empty() && v != "0";
        }
        if let Some(v) = lookup(ENV_FAULT_SEED) {
            if let Ok(seed) = v.trim().parse::<u64>() {
                spec.fault_seed = seed;
            }
        }
        if let Some(v) = lookup(ENV_FAULT_RATE) {
            if let Ok(rate) = v.trim().parse::<f64>() {
                let rate = rate.clamp(0.0, 1.0);
                spec.fault_rate_ppm = (rate * 1_000_000.0).round() as u32;
                if spec.fault_rate_ppm > 0 {
                    spec.enabled = true;
                    spec.fault_classes = FaultClassSet::all();
                }
            }
        }
        spec
    }
}

impl Default for SentinelSpec {
    fn default() -> SentinelSpec {
        SentinelSpec::off()
    }
}

/// The invariant classes the checker can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Two CPUs hold the line in an owning (Modified/Exclusive) state.
    MultipleOwners,
    /// A CPU owns the line while another CPU still holds a copy.
    SharedAlongsideOwner,
    /// A cache holds a valid copy the directory has no presence bit for.
    CopyWithoutPresence,
    /// The directory claims a copy the cache does not hold.
    PresenceWithoutCopy,
    /// A valid L1 line is not backed by a valid L2 line (inclusion).
    InclusionViolation,
    /// A write-through (or read-only) cache holds a dirty line.
    WriteThroughDirty,
    /// The same line is resident in two ways of one set.
    DuplicateResidency,
    /// A load returned a value different from the flat-memory oracle.
    OracleMismatch,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::MultipleOwners => "multiple-owners",
            ViolationKind::SharedAlongsideOwner => "shared-alongside-owner",
            ViolationKind::CopyWithoutPresence => "copy-without-presence",
            ViolationKind::PresenceWithoutCopy => "presence-without-copy",
            ViolationKind::InclusionViolation => "inclusion-violation",
            ViolationKind::WriteThroughDirty => "write-through-dirty",
            ViolationKind::DuplicateResidency => "duplicate-residency",
            ViolationKind::OracleMismatch => "oracle-mismatch",
        };
        f.write_str(s)
    }
}

/// One detected invariant violation, with enough context to localize it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentinelViolation {
    /// Simulated cycle of the access that exposed the violation.
    pub cycle: u64,
    /// CPU whose access exposed it.
    pub cpu: usize,
    /// Line-aligned (or byte, for oracle mismatches) address involved.
    pub addr: Addr,
    /// Invariant class.
    pub kind: ViolationKind,
    /// Human-readable specifics (states seen, expected value, ...).
    pub detail: String,
}

impl fmt::Display for SentinelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cycle {} cpu {} addr {:#x}] {}: {}",
            self.cycle, self.cpu, self.addr, self.kind, self.detail
        )
    }
}

/// The deterministic fault injector: every perturbation opportunity rolls
/// the seeded RNG against the configured rate, so a given seed reproduces
/// the exact same fault sequence on every run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Rng64,
    rate_ppm: u32,
    classes: FaultClassSet,
    injected: Vec<(FaultKind, Addr)>,
}

impl FaultInjector {
    /// Builds the injector from a spec; `None` when the spec arms no
    /// faults.
    pub fn from_spec(spec: &SentinelSpec) -> Option<FaultInjector> {
        if !spec.faults_armed() {
            return None;
        }
        Some(FaultInjector {
            rng: Rng64::new(spec.fault_seed),
            rate_ppm: spec.fault_rate_ppm,
            classes: spec.fault_classes,
            injected: Vec::new(),
        })
    }

    /// Rolls for an injection opportunity of `kind` at `addr`. Returns
    /// whether the caller should perturb the protocol, and records the hit.
    pub fn roll(&mut self, kind: FaultKind, addr: Addr) -> bool {
        if !self.classes.contains(kind) {
            return false;
        }
        let hit = self.rng.range(1_000_000) < u64::from(self.rate_ppm);
        if hit {
            self.injected.push((kind, addr));
        }
        hit
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> &[(FaultKind, Addr)] {
        &self.injected
    }
}

/// Per-system sentinel state: the on/off gate, the violation log and the
/// optional injector. Each memory system embeds one and consults it from
/// its `access` wrapper.
#[derive(Debug, Clone)]
pub struct Sentinel {
    enabled: bool,
    violations: Vec<SentinelViolation>,
    injector: Option<FaultInjector>,
}

impl Sentinel {
    /// Builds sentinel state from a spec.
    pub fn from_spec(spec: &SentinelSpec) -> Sentinel {
        Sentinel {
            enabled: spec.enabled,
            violations: Vec::new(),
            injector: FaultInjector::from_spec(spec),
        }
    }

    /// Whether invariant checks should run. `#[inline]` so the off case
    /// costs one predictable branch in the access path.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled
    }

    /// Records a violation.
    pub fn report(
        &mut self,
        cycle: u64,
        cpu: usize,
        addr: Addr,
        kind: ViolationKind,
        detail: String,
    ) {
        self.violations.push(SentinelViolation {
            cycle,
            cpu,
            addr,
            kind,
            detail,
        });
    }

    /// Every violation recorded so far.
    pub fn violations(&self) -> &[SentinelViolation] {
        &self.violations
    }

    /// Rolls the injector for `kind` at `addr`; always `false` when faults
    /// are not armed.
    #[inline]
    pub fn inject(&mut self, kind: FaultKind, addr: Addr) -> bool {
        match &mut self.injector {
            Some(inj) => inj.roll(kind, addr),
            None => false,
        }
    }

    /// Faults injected so far (empty when the injector is off).
    pub fn injected_faults(&self) -> &[(FaultKind, Addr)] {
        self.injector.as_ref().map_or(&[], |i| i.injected())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_off() {
        let s = SentinelSpec::default();
        assert!(!s.enabled);
        assert!(!s.faults_armed());
        assert_eq!(s, SentinelSpec::off());
    }

    #[test]
    fn env_parsing_enables_and_arms() {
        let lookup = |pairs: &'static [(&'static str, &'static str)]| {
            move |key: &str| {
                pairs
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| (*v).to_string())
            }
        };
        let s = SentinelSpec::from_lookup(lookup(&[(ENV_SENTINEL, "1")]));
        assert!(s.enabled);
        assert!(!s.faults_armed());

        let s = SentinelSpec::from_lookup(lookup(&[(ENV_SENTINEL, "0")]));
        assert!(!s.enabled);

        let s =
            SentinelSpec::from_lookup(lookup(&[(ENV_FAULT_RATE, "0.25"), (ENV_FAULT_SEED, "42")]));
        assert!(s.enabled, "a positive fault rate implies the sentinel");
        assert_eq!(s.fault_rate_ppm, 250_000);
        assert_eq!(s.fault_seed, 42);
        assert!(s.faults_armed());

        let s = SentinelSpec::from_lookup(lookup(&[(ENV_FAULT_RATE, "not-a-number")]));
        assert!(!s.enabled, "garbage rate is ignored");
    }

    #[test]
    fn fault_class_sets() {
        let all = FaultClassSet::all();
        for k in FaultKind::ALL {
            assert!(all.contains(k));
            assert!(FaultClassSet::only(k).contains(k));
        }
        assert!(
            !FaultClassSet::only(FaultKind::SpuriousState).contains(FaultKind::DroppedInvalidation)
        );
        assert!(!FaultClassSet::NONE.contains(FaultKind::StaleWriteback));
    }

    #[test]
    fn injector_is_deterministic() {
        let spec = SentinelSpec::with_faults(7, 500_000, FaultClassSet::all());
        let mut a = FaultInjector::from_spec(&spec).expect("armed");
        let mut b = FaultInjector::from_spec(&spec).expect("armed");
        for i in 0..200u32 {
            assert_eq!(
                a.roll(FaultKind::DroppedInvalidation, i),
                b.roll(FaultKind::DroppedInvalidation, i)
            );
        }
        assert_eq!(a.injected(), b.injected());
        assert!(!a.injected().is_empty(), "50% over 200 rolls must hit");
    }

    #[test]
    fn injector_respects_class_filter() {
        let spec =
            SentinelSpec::with_faults(1, 1_000_000, FaultClassSet::only(FaultKind::SpuriousState));
        let mut inj = FaultInjector::from_spec(&spec).expect("armed");
        assert!(!inj.roll(FaultKind::DroppedInvalidation, 0));
        assert!(inj.roll(FaultKind::SpuriousState, 0), "rate 100%");
    }

    #[test]
    fn sentinel_records_violations() {
        let mut s = Sentinel::from_spec(&SentinelSpec::on());
        assert!(s.on());
        s.report(10, 2, 0x40, ViolationKind::MultipleOwners, "E+E".into());
        assert_eq!(s.violations().len(), 1);
        let v = &s.violations()[0];
        assert_eq!((v.cycle, v.cpu, v.addr), (10, 2, 0x40));
        let text = v.to_string();
        assert!(text.contains("cycle 10"));
        assert!(text.contains("cpu 2"));
        assert!(text.contains("0x40"));
        assert!(text.contains("multiple-owners"));
    }

    #[test]
    fn off_sentinel_never_injects() {
        let mut s = Sentinel::from_spec(&SentinelSpec::off());
        assert!(!s.on());
        assert!(!s.inject(FaultKind::DroppedInvalidation, 0));
        assert!(s.injected_faults().is_empty());
    }
}

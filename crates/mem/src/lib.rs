//! The `cmpsim` memory hierarchy.
//!
//! This crate implements everything below the CPU pipeline for the three
//! multiprocessor architectures studied in the paper:
//!
//! * [`PhysMem`] — the physical memory *contents* (sparse byte store with
//!   per-CPU LL/SC link registers). Data values live here; the timing models
//!   operate purely on addresses.
//! * [`CacheArray`] — a set-associative tag/state array with LRU replacement
//!   and replacement-vs-invalidation miss classification.
//! * The [`hierarchy`] core — the shared coherent-hierarchy building
//!   blocks (L1 frontend, directory/invalidation engine, MESI snooping,
//!   sentinel hooks, `MemorySystem` boilerplate) every architecture is
//!   assembled from.
//! * The five topologies behind the [`MemorySystem`] trait:
//!   [`SharedL1System`], [`SharedL2System`], [`SharedMemSystem`],
//!   [`ClusteredSystem`] and [`MeshSystem`] — each a thin geometry
//!   description over the hierarchy core, generic over `n_cpus` and
//!   cluster/grid geometry.
//! * [`WriteBuffer`] — the per-CPU store buffer both CPU models drain
//!   stores through.
//!
//! Timing follows the paper's event-driven reservation style: every shared
//! resource (cache bank, crossbar, bus, DRAM) has an *occupancy*, and a
//! request's completion time is computed by reserving each resource along
//! its path in order, so queueing delays compound exactly as they would in
//! the pipelined hardware. Table 2 of the paper gives the contention-free
//! latencies; [`LatencySpec`] reproduces them.
//!
//! # Examples
//!
//! ```
//! use cmpsim_engine::Cycle;
//! use cmpsim_mem::{MemRequest, MemorySystem, SharedMemSystem, SystemConfig};
//!
//! let mut sys = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4));
//! let res = sys.access(Cycle(0), MemRequest::load(0, 0x1000));
//! // Cold miss: serviced by main memory at the paper's 50-cycle latency.
//! assert_eq!(res.finish, Cycle(50));
//! ```

pub mod cache;
pub mod config;
pub mod cpuset;
pub mod hierarchy;
pub mod phys;
pub mod sentinel;
pub mod slice;
pub mod stats;
pub mod systems;
pub mod wbuf;

pub use cache::{AccessOutcome, CacheArray, LineState, MissKind, Victim};
pub use config::{AreaModel, CacheCopies, CacheSpec, ConfigError, LatencySpec, SystemConfig};
pub use cpuset::CpuSet;
pub use phys::{AddrSpace, PhysMem, KERNEL_BASE};
pub use sentinel::{
    FaultClassSet, FaultInjector, FaultKind, Sentinel, SentinelSpec, SentinelViolation,
    ViolationKind,
};
pub use slice::SliceJournal;
pub use stats::{LevelStats, MemStats};
pub use systems::{ClusteredSystem, MeshSystem, SharedL1System, SharedL2System, SharedMemSystem};
pub use wbuf::WriteBuffer;

use cmpsim_engine::Cycle;

/// Byte address (32-bit physical space).
pub type Addr = u32;

/// CPU identifier within the multiprocessor (0..n_cpus).
pub type CpuId = usize;

/// The kind of memory access a CPU issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (read through the instruction cache).
    IFetch,
    /// Data read (includes `LL`).
    Load,
    /// Data write (includes a successful `SC`).
    Store,
}

/// A memory access request from a CPU timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Issuing CPU.
    pub cpu: CpuId,
    /// Access kind.
    pub kind: AccessKind,
    /// Physical byte address.
    pub addr: Addr,
}

impl MemRequest {
    /// Convenience constructor for a data load.
    pub fn load(cpu: CpuId, addr: Addr) -> MemRequest {
        MemRequest {
            cpu,
            kind: AccessKind::Load,
            addr,
        }
    }
    /// Convenience constructor for a data store.
    pub fn store(cpu: CpuId, addr: Addr) -> MemRequest {
        MemRequest {
            cpu,
            kind: AccessKind::Store,
            addr,
        }
    }
    /// Convenience constructor for an instruction fetch.
    pub fn ifetch(cpu: CpuId, addr: Addr) -> MemRequest {
        MemRequest {
            cpu,
            kind: AccessKind::IFetch,
            addr,
        }
    }
}

/// Which level of the hierarchy serviced an access — drives the stall
/// breakdowns of Figures 4–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Hit in the (possibly shared) L1.
    L1,
    /// Serviced by the L2 cache.
    L2,
    /// Serviced by main memory.
    Memory,
    /// Sourced from another CPU's cache over the bus (shared-memory arch).
    CacheToCache,
}

/// Completion information for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResult {
    /// Cycle at which the data (critical word) is available to the CPU.
    pub finish: Cycle,
    /// Hierarchy level that supplied the data.
    pub serviced_by: ServiceLevel,
    /// Whether the access missed in the L1 (drives MSHR accounting in MXS).
    pub l1_miss: bool,
    /// Cycles of the L1 access beyond a 1-cycle ideal hit (extra shared-L1
    /// hit latency + bank-conflict wait). The paper counts these as
    /// *pipeline* stalls under MXS rather than cache stalls.
    pub l1_extra: u64,
}

/// Utilization of one hardware resource (port or bank group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortUtil {
    /// Resource label ("l2-bank", "bus", ...).
    pub name: &'static str,
    /// Transactions granted.
    pub grants: u64,
    /// Cycles the resource was occupied.
    pub busy_cycles: u64,
    /// Cycles requests waited for it.
    pub wait_cycles: u64,
}

/// A multiprocessor memory system: one of the paper's three architectures.
///
/// Implementations are purely *timing* models — data contents live in
/// [`PhysMem`] and are read/written by the CPU's functional core. This
/// timing/function split mirrors the paper's SimOS setup, where the CPU
/// simulator feeds references to an event-driven memory-system simulator.
pub trait MemorySystem {
    /// Issues one access and returns its completion time and attribution.
    fn access(&mut self, now: Cycle, req: MemRequest) -> MemResult;

    /// Whether a load by `cpu` to `addr` would hit in its L1 right now,
    /// without touching any state. The MXS model uses this for MSHR
    /// admission: a lockup-free cache keeps servicing hits while its four
    /// miss registers are busy, but a fifth miss cannot issue.
    fn load_would_hit_l1(&self, cpu: CpuId, addr: Addr) -> bool;

    /// Cache line size in bytes (32 in all paper configurations).
    fn line_bytes(&self) -> u32;

    /// Number of CPUs this system connects.
    fn n_cpus(&self) -> usize;

    /// Accumulated statistics.
    fn stats(&self) -> &MemStats;

    /// Mutable statistics (used to reset at the region-of-interest marker).
    fn stats_mut(&mut self) -> &mut MemStats;

    /// Human-readable architecture name for reports.
    fn name(&self) -> &'static str;

    /// Utilization of every contended resource, for bandwidth analyses.
    fn port_utilization(&self) -> Vec<PortUtil>;

    /// Invariant violations detected by the coherence sentinel so far.
    /// Empty unless the system was built with
    /// [`SentinelSpec::enabled`](sentinel::SentinelSpec).
    fn violations(&self) -> &[sentinel::SentinelViolation] {
        &[]
    }

    /// Faults the sentinel's injector introduced so far (tests correlate
    /// these against [`MemorySystem::violations`]).
    fn injected_faults(&self) -> &[(sentinel::FaultKind, Addr)] {
        &[]
    }

    /// Minimum number of cycles before one CPU's store can affect another
    /// CPU's execution through this memory system — the conservative
    /// cross-CPU interaction lookahead.
    ///
    /// The sharded run loop sizes its staging slices from this bound: a
    /// larger lookahead means more work can be speculated per barrier
    /// round before cross-CPU validation is likely to fail. Correctness
    /// never depends on the value (every staged read is validated against
    /// the round's store journal), so implementations should return their
    /// cheapest cross-CPU path honestly rather than pessimistically. The
    /// default is the fully conservative 1 cycle.
    fn cross_cpu_lookahead(&self) -> u64 {
        1
    }
}

/// A boxed system is a system: lets `Box<dyn MemorySystem>` (the shape
/// `ArchKind::try_build`-style factories return) flow into APIs generic
/// over `S: MemorySystem` — the batched replay driver in particular —
/// without unboxing. Forwards every method, including the defaulted ones,
/// so sentinel reports and lookahead bounds survive the indirection.
impl<M: MemorySystem + ?Sized> MemorySystem for Box<M> {
    fn access(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        (**self).access(now, req)
    }
    fn load_would_hit_l1(&self, cpu: CpuId, addr: Addr) -> bool {
        (**self).load_would_hit_l1(cpu, addr)
    }
    fn line_bytes(&self) -> u32 {
        (**self).line_bytes()
    }
    fn n_cpus(&self) -> usize {
        (**self).n_cpus()
    }
    fn stats(&self) -> &MemStats {
        (**self).stats()
    }
    fn stats_mut(&mut self) -> &mut MemStats {
        (**self).stats_mut()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn port_utilization(&self) -> Vec<PortUtil> {
        (**self).port_utilization()
    }
    fn violations(&self) -> &[sentinel::SentinelViolation] {
        (**self).violations()
    }
    fn injected_faults(&self) -> &[(sentinel::FaultKind, Addr)] {
        (**self).injected_faults()
    }
    fn cross_cpu_lookahead(&self) -> u64 {
        (**self).cross_cpu_lookahead()
    }
}

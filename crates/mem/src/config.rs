//! Configuration: cache geometries and the paper's latency/occupancy table.

use crate::cpuset::CpuSet;
use crate::sentinel::SentinelSpec;
use crate::Addr;
use std::fmt;

/// A rejected configuration, with enough context to correct it.
///
/// The `new`-style constructors across the workspace keep their historical
/// panicking behavior for infallible call sites, but every panic now routes
/// through a `try_`/`validate` variant returning this type, so embedding
/// code (benches, sweeps, config files) can reject bad configurations
/// without unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A size that the geometry math requires to be a power of two.
    NotPowerOfTwo {
        /// Which parameter ("cache size", "line size").
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Associativity of zero.
    ZeroAssociativity,
    /// Capacity below one full set (`assoc * line_bytes`).
    CacheTooSmall {
        /// Requested capacity in bytes.
        size_bytes: u32,
        /// Requested associativity.
        assoc: usize,
        /// Requested line size in bytes.
        line_bytes: u32,
    },
    /// CPU count exceeds the validated [`CpuSet`] ceiling.
    TooManyCpus {
        /// Requested CPU count.
        n_cpus: usize,
        /// Supported maximum ([`CpuSet::MAX_CPUS`]).
        max: usize,
    },
    /// Zero CPUs.
    NoCpus,
    /// The mesh architecture requires its tile grid to cover the CPUs
    /// exactly.
    MeshGeometry {
        /// Requested CPU count.
        n_cpus: usize,
        /// Requested mesh rows.
        rows: usize,
        /// Requested mesh columns.
        cols: usize,
    },
    /// The clustered architecture requires full clusters.
    PartialCluster {
        /// Requested CPU count.
        n_cpus: usize,
        /// CPUs per cluster.
        cpus_per_cluster: usize,
    },
    /// MXS renaming would deadlock without `32 + rob_entries` registers.
    TooFewPhysRegs {
        /// Requested physical register count.
        phys_regs: usize,
        /// Minimum required (`32 + rob_entries`).
        needed: usize,
    },
    /// MXS fetch width outside the fetch buffer's capacity.
    FetchWidthOutOfRange {
        /// Requested fetch width.
        fetch_width: usize,
        /// Fetch-buffer capacity (inclusive upper bound).
        max: usize,
    },
    /// A process's private region would reach the shared kernel mapping.
    KernelOverlap {
        /// Offending address-space id.
        asid: u32,
    },
    /// A workload was installed into a machine with a different CPU count.
    WorkloadCpuMismatch {
        /// CPUs the workload was built for.
        workload: usize,
        /// CPUs the machine has.
        machine: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two (got {value})")
            }
            ConfigError::ZeroAssociativity => {
                write!(f, "associativity must be at least 1")
            }
            ConfigError::CacheTooSmall {
                size_bytes,
                assoc,
                line_bytes,
            } => write!(
                f,
                "cache smaller than assoc * line ({size_bytes} B < {assoc} x {line_bytes} B)"
            ),
            ConfigError::TooManyCpus { n_cpus, max } => write!(
                f,
                "{n_cpus} CPUs exceed the {max}-CPU CpuSet validation ceiling"
            ),
            ConfigError::NoCpus => write!(f, "a machine needs at least one CPU"),
            ConfigError::MeshGeometry { n_cpus, rows, cols } => write!(
                f,
                "mesh tiles must cover the CPUs exactly: {rows} x {cols} != {n_cpus}"
            ),
            ConfigError::PartialCluster {
                n_cpus,
                cpus_per_cluster,
            } => write!(
                f,
                "clusters must be full: {n_cpus} CPUs with {cpus_per_cluster} per cluster"
            ),
            ConfigError::TooFewPhysRegs { phys_regs, needed } => write!(
                f,
                "need at least 32 + rob_entries physical registers \
                 (got {phys_regs}, need {needed})"
            ),
            ConfigError::FetchWidthOutOfRange { fetch_width, max } => write!(
                f,
                "fetch width must be 1..={max} (the fetch buffer capacity), got {fetch_width}"
            ),
            ConfigError::KernelOverlap { asid } => {
                write!(f, "asid {asid} private region overlaps kernel space")
            }
            ConfigError::WorkloadCpuMismatch { workload, machine } => write!(
                f,
                "workload built for a different CPU count \
                 ({workload} workload vs {machine} machine)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (1 = direct-mapped).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheSpec {
    /// Creates and validates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the capacity is not an
    /// integer number of sets. Use [`CacheSpec::try_new`] to reject bad
    /// geometries without unwinding.
    pub fn new(size_bytes: u32, assoc: usize, line_bytes: u32) -> CacheSpec {
        CacheSpec::try_new(size_bytes, assoc, line_bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validates a cache geometry, returning a typed error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if either size is not a power of two, the
    /// associativity is zero, or the capacity is below one full set.
    pub fn try_new(
        size_bytes: u32,
        assoc: usize,
        line_bytes: u32,
    ) -> Result<CacheSpec, ConfigError> {
        if !size_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                value: u64::from(size_bytes),
            });
        }
        if !line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                value: u64::from(line_bytes),
            });
        }
        if assoc == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        let spec = CacheSpec {
            size_bytes,
            assoc,
            line_bytes,
        };
        if spec.n_sets() < 1 {
            return Err(ConfigError::CacheTooSmall {
                size_bytes,
                assoc,
                line_bytes,
            });
        }
        Ok(spec)
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize / self.assoc
    }

    /// Number of lines.
    pub fn n_lines(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize
    }

    /// Line-aligned address.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr & !(self.line_bytes - 1)
    }
}

/// Contention-free latencies and occupancies, in CPU cycles — Table 2 of
/// the paper (1 cycle = 5 ns at 200 MHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySpec {
    /// L1 hit latency (3 for the shared L1 including crossbar, 1 otherwise).
    pub l1_lat: u64,
    /// L1 bank occupancy (1 everywhere — banks are pipelined).
    pub l1_occ: u64,
    /// L2 hit latency (10, or 14 for the shared L2 behind the crossbar).
    pub l2_lat: u64,
    /// L2 bank occupancy per 32-byte line (2 with a 128-bit path, 4 with the
    /// shared-L2's 64-bit path).
    pub l2_occ: u64,
    /// Main-memory latency (50).
    pub mem_lat: u64,
    /// Main-memory occupancy (6).
    pub mem_occ: u64,
    /// Cache-to-cache transfer latency on the snooping bus (">50"; we use
    /// 60: bus arbitration + remote L2 tag check + data return).
    pub c2c_lat: u64,
    /// Bus occupancy of a cache-to-cache transfer.
    pub c2c_occ: u64,
    /// Latency of an invalidate/upgrade bus transaction (address-only; the
    /// paper gives no number — we assume bus arbitration + snoop response).
    pub upgrade_lat: u64,
    /// Bus occupancy of an upgrade (address-only transaction).
    pub upgrade_occ: u64,
}

impl LatencySpec {
    /// Table 2, shared-L1 row.
    pub fn shared_l1() -> LatencySpec {
        LatencySpec {
            l1_lat: 3,
            l1_occ: 1,
            l2_lat: 10,
            l2_occ: 2,
            mem_lat: 50,
            mem_occ: 6,
            c2c_lat: 60,
            c2c_occ: 6,
            upgrade_lat: 20,
            upgrade_occ: 3,
        }
    }

    /// Table 2, shared-L2 row.
    pub fn shared_l2() -> LatencySpec {
        LatencySpec {
            l1_lat: 1,
            l2_lat: 14,
            l2_occ: 4,
            ..LatencySpec::shared_l1()
        }
    }

    /// Table 2, shared-memory row.
    pub fn shared_mem() -> LatencySpec {
        LatencySpec {
            l1_lat: 1,
            l2_lat: 10,
            l2_occ: 2,
            ..LatencySpec::shared_l1()
        }
    }
}

/// Full configuration of one memory system.
///
/// Use the `paper_*` constructors for the paper's three architectures and
/// the `with_*` builders for the ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of CPUs (the paper studies 4).
    pub n_cpus: usize,
    /// Instruction L1 geometry. Per CPU for private configurations; total
    /// for the shared-L1 architecture.
    pub l1i: CacheSpec,
    /// Data L1 geometry (same convention).
    pub l1d: CacheSpec,
    /// L2 geometry. Total for shared configurations; per CPU for the
    /// shared-memory architecture.
    pub l2: CacheSpec,
    /// Latency/occupancy table.
    pub lat: LatencySpec,
    /// Number of L1 banks (shared-L1 architecture).
    pub l1_banks: usize,
    /// Number of L2 banks (shared-L2 architecture).
    pub l2_banks: usize,
    /// CPUs sharing each cluster L1 (clustered architecture; the paper's
    /// companion study uses 2). `n_cpus` must be a multiple of this —
    /// `clusters = n_cpus / cpus_per_cluster`. Other architectures ignore
    /// it.
    pub cpus_per_cluster: usize,
    /// Mesh rows (mesh architecture). `mesh_rows * mesh_cols` must equal
    /// `n_cpus`; the `paper_*` constructors derive a near-square grid.
    /// Other architectures ignore it.
    pub mesh_rows: usize,
    /// Mesh columns (mesh architecture; see `mesh_rows`).
    pub mesh_cols: usize,
    /// Idealize the shared L1 (1-cycle hit, no bank contention) — the
    /// paper's Mipsy runs do this to avoid penalizing the shared-L1
    /// architecture on a CPU model with no latency hiding.
    pub ideal_shared_l1: bool,
    /// Coherence-sentinel configuration (invariant checker + fault
    /// injector). Off by default; see [`SentinelSpec::from_env`] for the
    /// `CMPSIM_SENTINEL` / `CMPSIM_FAULT_*` knobs.
    pub sentinel: SentinelSpec,
}

impl SystemConfig {
    /// Shared-primary-cache architecture (Figure 1): 4 CPUs share banked
    /// 64 KB I and D caches through a crossbar; uniprocessor-like L2 and
    /// memory below.
    pub fn paper_shared_l1(n_cpus: usize) -> SystemConfig {
        SystemConfig {
            n_cpus,
            // 4 x 16 KB, pooled into one shared 2-way cache.
            l1i: CacheSpec::new(64 * 1024, 2, 32),
            l1d: CacheSpec::new(64 * 1024, 2, 32),
            l2: CacheSpec::new(2 * 1024 * 1024, 1, 32),
            lat: LatencySpec::shared_l1(),
            l1_banks: 4,
            l2_banks: 1,
            cpus_per_cluster: 2,
            mesh_rows: default_mesh_dims(n_cpus).0,
            mesh_cols: default_mesh_dims(n_cpus).1,
            ideal_shared_l1: false,
            sentinel: SentinelSpec::off(),
        }
    }

    /// Shared-secondary-cache architecture (Figure 2): private write-through
    /// 16 KB L1s over a 4-banked shared 2 MB L2 behind a crossbar.
    pub fn paper_shared_l2(n_cpus: usize) -> SystemConfig {
        SystemConfig {
            n_cpus,
            l1i: CacheSpec::new(16 * 1024, 2, 32),
            l1d: CacheSpec::new(16 * 1024, 2, 32),
            l2: CacheSpec::new(2 * 1024 * 1024, 1, 32),
            lat: LatencySpec::shared_l2(),
            l1_banks: 1,
            l2_banks: 4,
            cpus_per_cluster: 2,
            mesh_rows: default_mesh_dims(n_cpus).0,
            mesh_cols: default_mesh_dims(n_cpus).1,
            ideal_shared_l1: false,
            sentinel: SentinelSpec::off(),
        }
    }

    /// Mesh/NoC architecture: per-tile write-through 16 KB L1s on a 2D
    /// mesh of point-to-point links over the banked shared L2 (shared-L2
    /// cache geometry and Table 2 latencies; the interconnect adds
    /// XY-routing hop latency and per-link contention on top). The grid
    /// defaults to the most-square factorization of `n_cpus`; override it
    /// with [`SystemConfig::with_mesh_dims`].
    pub fn paper_mesh(n_cpus: usize) -> SystemConfig {
        SystemConfig::paper_shared_l2(n_cpus)
    }

    /// Bus-based shared-memory architecture (Figure 3): private write-back
    /// 16 KB L1s, private 512 KB L2 per CPU, snooping MESI bus to memory.
    pub fn paper_shared_mem(n_cpus: usize) -> SystemConfig {
        SystemConfig {
            n_cpus,
            l1i: CacheSpec::new(16 * 1024, 2, 32),
            l1d: CacheSpec::new(16 * 1024, 2, 32),
            // 2 MB total, divided among the CPUs.
            l2: CacheSpec::new(512 * 1024, 1, 32),
            lat: LatencySpec::shared_mem(),
            l1_banks: 1,
            l2_banks: 1,
            cpus_per_cluster: 2,
            mesh_rows: default_mesh_dims(n_cpus).0,
            mesh_cols: default_mesh_dims(n_cpus).1,
            ideal_shared_l1: false,
            sentinel: SentinelSpec::off(),
        }
    }

    /// Overrides the L2 associativity (the paper's MP3D ablation uses 4).
    #[must_use]
    pub fn with_l2_assoc(mut self, assoc: usize) -> SystemConfig {
        self.l2 = CacheSpec::new(self.l2.size_bytes, assoc, self.l2.line_bytes);
        self
    }

    /// Overrides the L2 capacity (size ablations; associativity and line
    /// size are preserved). Total for shared configurations, per CPU for
    /// the shared-memory architecture — the same convention as the `l2`
    /// field itself.
    #[must_use]
    pub fn with_l2_size(mut self, bytes: u32) -> SystemConfig {
        self.l2 = CacheSpec::new(bytes, self.l2.assoc, self.l2.line_bytes);
        self
    }

    /// Overrides the number of L2 banks (ablation).
    #[must_use]
    pub fn with_l2_banks(mut self, banks: usize) -> SystemConfig {
        self.l2_banks = banks;
        self
    }

    /// Enables/disables the idealized shared-L1 (Mipsy mode).
    #[must_use]
    pub fn with_ideal_shared_l1(mut self, ideal: bool) -> SystemConfig {
        self.ideal_shared_l1 = ideal;
        self
    }

    /// Overrides the shared-L1 hit latency (ablation: 1..5 cycles).
    #[must_use]
    pub fn with_l1_latency(mut self, lat: u64) -> SystemConfig {
        self.lat.l1_lat = lat;
        self
    }

    /// Overrides the number of L1 banks (ablation).
    #[must_use]
    pub fn with_l1_banks(mut self, banks: usize) -> SystemConfig {
        self.l1_banks = banks;
        self
    }

    /// Overrides the L2 occupancy, modelling a different datapath width
    /// (2 cycles = 128-bit, 4 cycles = 64-bit for a 32-byte line).
    #[must_use]
    pub fn with_l2_occupancy(mut self, occ: u64) -> SystemConfig {
        self.lat.l2_occ = occ;
        self
    }

    /// Overrides both L1 geometries' capacity (cache-size ablations;
    /// associativity and line size are preserved).
    #[must_use]
    pub fn with_l1_size(mut self, bytes: u32) -> SystemConfig {
        self.l1i = CacheSpec::new(bytes, self.l1i.assoc, self.l1i.line_bytes);
        self.l1d = CacheSpec::new(bytes, self.l1d.assoc, self.l1d.line_bytes);
        self
    }

    /// Overrides the sentinel configuration (invariant checker / fault
    /// injector).
    #[must_use]
    pub fn with_sentinel(mut self, sentinel: SentinelSpec) -> SystemConfig {
        self.sentinel = sentinel;
        self
    }

    /// Overrides the cluster geometry: `n_cpus / cpus_per_cluster` clusters
    /// each sharing one L1 (clustered architecture only).
    #[must_use]
    pub fn with_cpus_per_cluster(mut self, cpus_per_cluster: usize) -> SystemConfig {
        self.cpus_per_cluster = cpus_per_cluster;
        self
    }

    /// Overrides the mesh tile grid (mesh architecture only); validation
    /// requires `rows * cols == n_cpus`.
    #[must_use]
    pub fn with_mesh_dims(mut self, rows: usize, cols: usize) -> SystemConfig {
        self.mesh_rows = rows;
        self.mesh_cols = cols;
        self
    }

    /// Validates cross-field constraints the `CacheSpec`s cannot see.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the CPU count is zero or exceeds the
    /// [`CpuSet::MAX_CPUS`] sanity ceiling, or the mesh tile grid does not
    /// cover the CPUs exactly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cpus == 0 {
            return Err(ConfigError::NoCpus);
        }
        if self.n_cpus > CpuSet::MAX_CPUS {
            return Err(ConfigError::TooManyCpus {
                n_cpus: self.n_cpus,
                max: CpuSet::MAX_CPUS,
            });
        }
        if self.mesh_rows * self.mesh_cols != self.n_cpus {
            return Err(ConfigError::MeshGeometry {
                n_cpus: self.n_cpus,
                rows: self.mesh_rows,
                cols: self.mesh_cols,
            });
        }
        Ok(())
    }
}

/// Weights of the static area-proxy model (DESIGN.md §15). The proxy is
/// deliberately simple — SRAM capacity dominates, with multiplicative
/// surcharges for extra ports/banks and the wide datapath, plus a flat
/// per-router term for mesh tiles — so two configurations are comparable
/// without a technology file. The absolute numbers are "KB-equivalents",
/// not square millimetres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Extra area per additional bank beyond the first (crossbar ports,
    /// duplicated decoders): each bank past one multiplies that level's
    /// SRAM by `1 + bank_weight`.
    pub bank_weight: f64,
    /// Surcharge on the L2 array for a 128-bit datapath (`l2_occ <= 2`)
    /// relative to the narrow 64-bit one: wider sense amps and buses.
    pub wide_path_weight: f64,
    /// Flat KB-equivalent per mesh router (buffers + crossbar).
    pub router_kb: f64,
}

impl Default for AreaModel {
    fn default() -> AreaModel {
        AreaModel {
            bank_weight: 0.08,
            wide_path_weight: 0.10,
            router_kb: 2.0,
        }
    }
}

/// How many physical instances of each structure a floorplan holds — the
/// architecture-dependent input to [`SystemConfig::area_proxy_kb`]. The
/// explore crate maps each `ArchKind` to its copy counts (e.g. shared-L2:
/// `n_cpus` private L1 pairs over one shared L2; mesh adds one router per
/// tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCopies {
    /// Physical L1 instruction+data cache pairs (1 for a pooled shared L1,
    /// `n_cpus` for private L1s, `n_clusters` for cluster L1s).
    pub l1: usize,
    /// Physical L2 arrays (1 shared, `n_cpus` private).
    pub l2: usize,
    /// Mesh routers (0 for crossbar/bus architectures).
    pub routers: usize,
}

impl SystemConfig {
    /// Static area proxy of this memory system in KB-equivalents of SRAM:
    /// `Σ level copies × capacity × bank factor`, with the L2 datapath
    /// surcharge and a flat per-router term (see [`AreaModel`]). Pure
    /// arithmetic over the configuration — no simulation — so search
    /// drivers can rank thousands of candidate floorplans for free.
    pub fn area_proxy_kb(&self, copies: CacheCopies, model: &AreaModel) -> f64 {
        let bank = |banks: usize| 1.0 + model.bank_weight * banks.saturating_sub(1) as f64;
        let kb = |c: &CacheSpec| f64::from(c.size_bytes) / 1024.0;
        let l1 = copies.l1 as f64 * (kb(&self.l1i) + kb(&self.l1d)) * bank(self.l1_banks);
        let wide = if self.lat.l2_occ <= 2 {
            1.0 + model.wide_path_weight
        } else {
            1.0
        };
        let l2 = copies.l2 as f64 * kb(&self.l2) * bank(self.l2_banks) * wide;
        l1 + l2 + copies.routers as f64 * model.router_kb
    }
}

/// The most-square `rows x cols` factorization of `n`: rows is the
/// largest divisor of `n` at most `sqrt(n)` (4 -> 2x2, 8 -> 2x4,
/// 64 -> 8x8, primes -> 1xn).
fn default_mesh_dims(n: usize) -> (usize, usize) {
    let mut rows = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (rows, n / rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_geometry() {
        let s = CacheSpec::new(16 * 1024, 2, 32);
        assert_eq!(s.n_lines(), 512);
        assert_eq!(s.n_sets(), 256);
        assert_eq!(s.line_addr(0x1234), 0x1220);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = CacheSpec::new(1000, 2, 32);
    }

    #[test]
    fn try_new_rejects_each_bad_geometry_with_a_typed_error() {
        assert_eq!(
            CacheSpec::try_new(1000, 2, 32),
            Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                value: 1000
            })
        );
        assert_eq!(
            CacheSpec::try_new(1024, 2, 24),
            Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                value: 24
            })
        );
        assert_eq!(
            CacheSpec::try_new(1024, 0, 32),
            Err(ConfigError::ZeroAssociativity)
        );
        assert_eq!(
            CacheSpec::try_new(64, 4, 32),
            Err(ConfigError::CacheTooSmall {
                size_bytes: 64,
                assoc: 4,
                line_bytes: 32
            })
        );
        assert!(CacheSpec::try_new(1024, 2, 32).is_ok());
    }

    #[test]
    fn system_config_validates_cpu_count() {
        assert!(SystemConfig::paper_shared_l2(4).validate().is_ok());
        assert!(SystemConfig::paper_shared_l2(8).validate().is_ok());
        assert!(SystemConfig::paper_shared_l2(32).validate().is_ok());
        // The old 32-CPU presence-bitmap ceiling is gone: any count up to
        // the CpuSet sanity bound validates.
        assert!(SystemConfig::paper_shared_l2(33).validate().is_ok());
        assert!(SystemConfig::paper_shared_l2(64).validate().is_ok());
        assert!(SystemConfig::paper_shared_l2(CpuSet::MAX_CPUS)
            .validate()
            .is_ok());
        assert_eq!(
            SystemConfig::paper_shared_l2(CpuSet::MAX_CPUS + 1).validate(),
            Err(ConfigError::TooManyCpus {
                n_cpus: CpuSet::MAX_CPUS + 1,
                max: CpuSet::MAX_CPUS
            })
        );
        assert_eq!(
            SystemConfig::paper_shared_l2(0).validate(),
            Err(ConfigError::NoCpus)
        );
    }

    #[test]
    fn mesh_dims_must_tile_the_cpus_exactly() {
        // Constructors derive a near-square grid that always validates.
        let c = SystemConfig::paper_mesh(16);
        assert_eq!((c.mesh_rows, c.mesh_cols), (4, 4));
        assert!(c.validate().is_ok());
        assert_eq!(
            {
                let c = SystemConfig::paper_mesh(8);
                (c.mesh_rows, c.mesh_cols)
            },
            (2, 4)
        );
        assert_eq!(
            {
                let c = SystemConfig::paper_mesh(7);
                (c.mesh_rows, c.mesh_cols)
            },
            (1, 7)
        );
        // Explicit grids validate iff rows * cols == n_cpus.
        assert!(SystemConfig::paper_mesh(12)
            .with_mesh_dims(3, 4)
            .validate()
            .is_ok());
        assert_eq!(
            SystemConfig::paper_mesh(16).with_mesh_dims(3, 4).validate(),
            Err(ConfigError::MeshGeometry {
                n_cpus: 16,
                rows: 3,
                cols: 4
            })
        );
    }

    #[test]
    fn config_errors_render_actionable_messages() {
        let e = ConfigError::TooFewPhysRegs {
            phys_regs: 40,
            needed: 64,
        };
        assert!(e.to_string().contains("32 + rob_entries"));
        let e = ConfigError::PartialCluster {
            n_cpus: 3,
            cpus_per_cluster: 2,
        };
        assert!(e.to_string().contains("clusters must be full"));
        let e = ConfigError::KernelOverlap { asid: 3 };
        assert!(e.to_string().contains("overlaps kernel"));
    }

    #[test]
    fn with_sentinel_overrides() {
        use crate::sentinel::SentinelSpec;
        let c = SystemConfig::paper_shared_mem(4);
        assert!(!c.sentinel.enabled, "sentinel is off by default");
        let c = c.with_sentinel(SentinelSpec::on());
        assert!(c.sentinel.enabled);
    }

    #[test]
    fn paper_latencies_match_table2() {
        let l1 = LatencySpec::shared_l1();
        assert_eq!((l1.l1_lat, l1.l2_lat, l1.mem_lat), (3, 10, 50));
        assert_eq!((l1.l1_occ, l1.l2_occ, l1.mem_occ), (1, 2, 6));
        let l2 = LatencySpec::shared_l2();
        assert_eq!((l2.l1_lat, l2.l2_lat, l2.l2_occ), (1, 14, 4));
        let sm = LatencySpec::shared_mem();
        assert_eq!(
            (sm.l1_lat, sm.l2_lat, sm.l2_occ, sm.mem_lat),
            (1, 10, 2, 50)
        );
        assert!(sm.c2c_lat > 50, "Table 2: cache-to-cache > 50");
        assert!(
            sm.c2c_occ >= 6,
            "Table 2: cache-to-cache occupancy > 6 is >="
        );
    }

    #[test]
    fn paper_geometries() {
        let a = SystemConfig::paper_shared_l1(4);
        assert_eq!(a.l1d.size_bytes, 64 * 1024);
        assert_eq!(a.l1_banks, 4);
        let b = SystemConfig::paper_shared_l2(4);
        assert_eq!(b.l1d.size_bytes, 16 * 1024);
        assert_eq!(b.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(b.l2_banks, 4);
        let c = SystemConfig::paper_shared_mem(4);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
    }

    #[test]
    fn builders_override() {
        let c = SystemConfig::paper_shared_l1(4)
            .with_l2_assoc(4)
            .with_ideal_shared_l1(true)
            .with_l1_latency(1)
            .with_l1_banks(8)
            .with_l2_occupancy(4)
            .with_l1_size(128 * 1024)
            .with_l2_size(4 * 1024 * 1024)
            .with_l2_banks(8)
            .with_cpus_per_cluster(4);
        assert_eq!(c.l2.assoc, 4);
        assert!(c.ideal_shared_l1);
        assert_eq!(c.lat.l1_lat, 1);
        assert_eq!(c.l1_banks, 8);
        assert_eq!(c.lat.l2_occ, 4);
        assert_eq!(c.l1d.size_bytes, 128 * 1024);
        assert_eq!(c.l1d.assoc, 2, "associativity preserved");
        assert_eq!(c.l2.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2.assoc, 4, "with_l2_size preserves associativity");
        assert_eq!(c.l2_banks, 8);
        assert_eq!(c.cpus_per_cluster, 4);
    }

    #[test]
    fn area_proxy_tracks_capacity_banks_and_routers() {
        let model = AreaModel::default();
        let per_cpu = CacheCopies {
            l1: 4,
            l2: 1,
            routers: 0,
        };
        // Paper shared-L2 at a 64-bit path (l2_occ = 4): 4 x 32 KB of L1
        // plus one 4-banked 2 MB L2, no wide-path surcharge.
        let c = SystemConfig::paper_shared_l2(4);
        let base = c.area_proxy_kb(per_cpu, &model);
        let expect = 4.0 * 32.0 + 2048.0 * (1.0 + 0.08 * 3.0);
        assert!((base - expect).abs() < 1e-9, "{base} vs {expect}");
        // More capacity, more banks, a wider path, or routers all cost.
        let grow = c.with_l2_size(4 * 1024 * 1024);
        assert!(grow.area_proxy_kb(per_cpu, &model) > base);
        let banked = c.with_l2_banks(8);
        assert!(banked.area_proxy_kb(per_cpu, &model) > base);
        let wide = c.with_l2_occupancy(2);
        assert!(wide.area_proxy_kb(per_cpu, &model) > base);
        let meshy = CacheCopies {
            routers: 4,
            ..per_cpu
        };
        assert!((c.area_proxy_kb(meshy, &model) - base - 8.0).abs() < 1e-9);
    }
}

//! Configuration: cache geometries and the paper's latency/occupancy table.

use crate::Addr;

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (1 = direct-mapped).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheSpec {
    /// Creates and validates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the capacity is not an
    /// integer number of sets.
    pub fn new(size_bytes: u32, assoc: usize, line_bytes: u32) -> CacheSpec {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc >= 1, "associativity must be at least 1");
        let spec = CacheSpec {
            size_bytes,
            assoc,
            line_bytes,
        };
        assert!(spec.n_sets() >= 1, "cache smaller than assoc * line");
        spec
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize / self.assoc
    }

    /// Number of lines.
    pub fn n_lines(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize
    }

    /// Line-aligned address.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr & !(self.line_bytes - 1)
    }
}

/// Contention-free latencies and occupancies, in CPU cycles — Table 2 of
/// the paper (1 cycle = 5 ns at 200 MHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySpec {
    /// L1 hit latency (3 for the shared L1 including crossbar, 1 otherwise).
    pub l1_lat: u64,
    /// L1 bank occupancy (1 everywhere — banks are pipelined).
    pub l1_occ: u64,
    /// L2 hit latency (10, or 14 for the shared L2 behind the crossbar).
    pub l2_lat: u64,
    /// L2 bank occupancy per 32-byte line (2 with a 128-bit path, 4 with the
    /// shared-L2's 64-bit path).
    pub l2_occ: u64,
    /// Main-memory latency (50).
    pub mem_lat: u64,
    /// Main-memory occupancy (6).
    pub mem_occ: u64,
    /// Cache-to-cache transfer latency on the snooping bus (">50"; we use
    /// 60: bus arbitration + remote L2 tag check + data return).
    pub c2c_lat: u64,
    /// Bus occupancy of a cache-to-cache transfer.
    pub c2c_occ: u64,
    /// Latency of an invalidate/upgrade bus transaction (address-only; the
    /// paper gives no number — we assume bus arbitration + snoop response).
    pub upgrade_lat: u64,
    /// Bus occupancy of an upgrade (address-only transaction).
    pub upgrade_occ: u64,
}

impl LatencySpec {
    /// Table 2, shared-L1 row.
    pub fn shared_l1() -> LatencySpec {
        LatencySpec {
            l1_lat: 3,
            l1_occ: 1,
            l2_lat: 10,
            l2_occ: 2,
            mem_lat: 50,
            mem_occ: 6,
            c2c_lat: 60,
            c2c_occ: 6,
            upgrade_lat: 20,
            upgrade_occ: 3,
        }
    }

    /// Table 2, shared-L2 row.
    pub fn shared_l2() -> LatencySpec {
        LatencySpec {
            l1_lat: 1,
            l2_lat: 14,
            l2_occ: 4,
            ..LatencySpec::shared_l1()
        }
    }

    /// Table 2, shared-memory row.
    pub fn shared_mem() -> LatencySpec {
        LatencySpec {
            l1_lat: 1,
            l2_lat: 10,
            l2_occ: 2,
            ..LatencySpec::shared_l1()
        }
    }
}

/// Full configuration of one memory system.
///
/// Use the `paper_*` constructors for the paper's three architectures and
/// the `with_*` builders for the ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of CPUs (the paper studies 4).
    pub n_cpus: usize,
    /// Instruction L1 geometry. Per CPU for private configurations; total
    /// for the shared-L1 architecture.
    pub l1i: CacheSpec,
    /// Data L1 geometry (same convention).
    pub l1d: CacheSpec,
    /// L2 geometry. Total for shared configurations; per CPU for the
    /// shared-memory architecture.
    pub l2: CacheSpec,
    /// Latency/occupancy table.
    pub lat: LatencySpec,
    /// Number of L1 banks (shared-L1 architecture).
    pub l1_banks: usize,
    /// Number of L2 banks (shared-L2 architecture).
    pub l2_banks: usize,
    /// Idealize the shared L1 (1-cycle hit, no bank contention) — the
    /// paper's Mipsy runs do this to avoid penalizing the shared-L1
    /// architecture on a CPU model with no latency hiding.
    pub ideal_shared_l1: bool,
}

impl SystemConfig {
    /// Shared-primary-cache architecture (Figure 1): 4 CPUs share banked
    /// 64 KB I and D caches through a crossbar; uniprocessor-like L2 and
    /// memory below.
    pub fn paper_shared_l1(n_cpus: usize) -> SystemConfig {
        SystemConfig {
            n_cpus,
            // 4 x 16 KB, pooled into one shared 2-way cache.
            l1i: CacheSpec::new(64 * 1024, 2, 32),
            l1d: CacheSpec::new(64 * 1024, 2, 32),
            l2: CacheSpec::new(2 * 1024 * 1024, 1, 32),
            lat: LatencySpec::shared_l1(),
            l1_banks: 4,
            l2_banks: 1,
            ideal_shared_l1: false,
        }
    }

    /// Shared-secondary-cache architecture (Figure 2): private write-through
    /// 16 KB L1s over a 4-banked shared 2 MB L2 behind a crossbar.
    pub fn paper_shared_l2(n_cpus: usize) -> SystemConfig {
        SystemConfig {
            n_cpus,
            l1i: CacheSpec::new(16 * 1024, 2, 32),
            l1d: CacheSpec::new(16 * 1024, 2, 32),
            l2: CacheSpec::new(2 * 1024 * 1024, 1, 32),
            lat: LatencySpec::shared_l2(),
            l1_banks: 1,
            l2_banks: 4,
            ideal_shared_l1: false,
        }
    }

    /// Bus-based shared-memory architecture (Figure 3): private write-back
    /// 16 KB L1s, private 512 KB L2 per CPU, snooping MESI bus to memory.
    pub fn paper_shared_mem(n_cpus: usize) -> SystemConfig {
        SystemConfig {
            n_cpus,
            l1i: CacheSpec::new(16 * 1024, 2, 32),
            l1d: CacheSpec::new(16 * 1024, 2, 32),
            // 2 MB total, divided among the CPUs.
            l2: CacheSpec::new(512 * 1024, 1, 32),
            lat: LatencySpec::shared_mem(),
            l1_banks: 1,
            l2_banks: 1,
            ideal_shared_l1: false,
        }
    }

    /// Overrides the L2 associativity (the paper's MP3D ablation uses 4).
    #[must_use]
    pub fn with_l2_assoc(mut self, assoc: usize) -> SystemConfig {
        self.l2 = CacheSpec::new(self.l2.size_bytes, assoc, self.l2.line_bytes);
        self
    }

    /// Enables/disables the idealized shared-L1 (Mipsy mode).
    #[must_use]
    pub fn with_ideal_shared_l1(mut self, ideal: bool) -> SystemConfig {
        self.ideal_shared_l1 = ideal;
        self
    }

    /// Overrides the shared-L1 hit latency (ablation: 1..5 cycles).
    #[must_use]
    pub fn with_l1_latency(mut self, lat: u64) -> SystemConfig {
        self.lat.l1_lat = lat;
        self
    }

    /// Overrides the number of L1 banks (ablation).
    #[must_use]
    pub fn with_l1_banks(mut self, banks: usize) -> SystemConfig {
        self.l1_banks = banks;
        self
    }

    /// Overrides the L2 occupancy, modelling a different datapath width
    /// (2 cycles = 128-bit, 4 cycles = 64-bit for a 32-byte line).
    #[must_use]
    pub fn with_l2_occupancy(mut self, occ: u64) -> SystemConfig {
        self.lat.l2_occ = occ;
        self
    }

    /// Overrides both L1 geometries' capacity (cache-size ablations;
    /// associativity and line size are preserved).
    #[must_use]
    pub fn with_l1_size(mut self, bytes: u32) -> SystemConfig {
        self.l1i = CacheSpec::new(bytes, self.l1i.assoc, self.l1i.line_bytes);
        self.l1d = CacheSpec::new(bytes, self.l1d.assoc, self.l1d.line_bytes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_geometry() {
        let s = CacheSpec::new(16 * 1024, 2, 32);
        assert_eq!(s.n_lines(), 512);
        assert_eq!(s.n_sets(), 256);
        assert_eq!(s.line_addr(0x1234), 0x1220);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = CacheSpec::new(1000, 2, 32);
    }

    #[test]
    fn paper_latencies_match_table2() {
        let l1 = LatencySpec::shared_l1();
        assert_eq!((l1.l1_lat, l1.l2_lat, l1.mem_lat), (3, 10, 50));
        assert_eq!((l1.l1_occ, l1.l2_occ, l1.mem_occ), (1, 2, 6));
        let l2 = LatencySpec::shared_l2();
        assert_eq!((l2.l1_lat, l2.l2_lat, l2.l2_occ), (1, 14, 4));
        let sm = LatencySpec::shared_mem();
        assert_eq!(
            (sm.l1_lat, sm.l2_lat, sm.l2_occ, sm.mem_lat),
            (1, 10, 2, 50)
        );
        assert!(sm.c2c_lat > 50, "Table 2: cache-to-cache > 50");
        assert!(
            sm.c2c_occ >= 6,
            "Table 2: cache-to-cache occupancy > 6 is >="
        );
    }

    #[test]
    fn paper_geometries() {
        let a = SystemConfig::paper_shared_l1(4);
        assert_eq!(a.l1d.size_bytes, 64 * 1024);
        assert_eq!(a.l1_banks, 4);
        let b = SystemConfig::paper_shared_l2(4);
        assert_eq!(b.l1d.size_bytes, 16 * 1024);
        assert_eq!(b.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(b.l2_banks, 4);
        let c = SystemConfig::paper_shared_mem(4);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
    }

    #[test]
    fn builders_override() {
        let c = SystemConfig::paper_shared_l1(4)
            .with_l2_assoc(4)
            .with_ideal_shared_l1(true)
            .with_l1_latency(1)
            .with_l1_banks(8)
            .with_l2_occupancy(4)
            .with_l1_size(128 * 1024);
        assert_eq!(c.l2.assoc, 4);
        assert!(c.ideal_shared_l1);
        assert_eq!(c.lat.l1_lat, 1);
        assert_eq!(c.l1_banks, 8);
        assert_eq!(c.lat.l2_occ, 4);
        assert_eq!(c.l1d.size_bytes, 128 * 1024);
        assert_eq!(c.l1d.assoc, 2, "associativity preserved");
    }
}

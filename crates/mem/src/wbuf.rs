//! Per-CPU store (write) buffer.
//!
//! Both CPU models retire stores into a small write buffer that drains into
//! the memory system in the background; the CPU only stalls when the buffer
//! is full. This matches Table 1's 1-cycle store latency while still letting
//! write-through traffic contend for L2 ports (the effect the paper blames
//! for the shared-L2 architecture's losses on store-heavy workloads).

use cmpsim_engine::Cycle;

/// A bounded buffer of in-flight stores, tracked by their completion times.
///
/// # Examples
///
/// ```
/// use cmpsim_engine::Cycle;
/// use cmpsim_mem::WriteBuffer;
///
/// let mut wb = WriteBuffer::new(2);
/// wb.push(Cycle(0), Cycle(10));
/// wb.push(Cycle(0), Cycle(20));
/// assert!(wb.is_full(Cycle(5)));
/// // At cycle 10 the first store has drained.
/// assert!(!wb.is_full(Cycle(10)));
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    cap: usize,
    finishes: Vec<Cycle>,
    total_stores: u64,
    full_stalls: u64,
}

impl WriteBuffer {
    /// Creates an empty buffer with `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> WriteBuffer {
        assert!(cap > 0, "write buffer needs at least one entry");
        WriteBuffer {
            cap,
            finishes: Vec::with_capacity(cap),
            total_stores: 0,
            full_stalls: 0,
        }
    }

    fn retire(&mut self, now: Cycle) {
        self.finishes.retain(|&f| f > now);
    }

    /// Whether the buffer has no free entry at `now`.
    pub fn is_full(&mut self, now: Cycle) -> bool {
        self.retire(now);
        self.finishes.len() >= self.cap
    }

    /// First cycle at which an entry frees up (call when full). Returns
    /// `now` if already free.
    pub fn free_at(&mut self, now: Cycle) -> Cycle {
        self.retire(now);
        if self.finishes.len() < self.cap {
            now
        } else {
            let earliest = self
                .finishes
                .iter()
                .copied()
                .min()
                .expect("full buffer is non-empty");
            self.full_stalls += earliest - now;
            earliest
        }
    }

    /// Enqueues a store issued at `now` that completes at `finish`,
    /// retiring already-drained entries first.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the buffer is still full at `now` — callers must
    /// wait for [`WriteBuffer::free_at`] first.
    pub fn push(&mut self, now: Cycle, finish: Cycle) {
        self.retire(now);
        debug_assert!(self.finishes.len() < self.cap, "write buffer overflow");
        self.finishes.push(finish);
        self.total_stores += 1;
    }

    /// Cycle by which every buffered store has completed (`SYNC` fence
    /// semantics). Returns `now` if empty.
    pub fn drain_time(&mut self, now: Cycle) -> Cycle {
        self.retire(now);
        self.finishes.iter().copied().fold(now, Cycle::max)
    }

    /// Stores currently in flight at `now`.
    pub fn pending(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.finishes.len()
    }

    /// Total stores that passed through the buffer.
    pub fn total_stores(&self) -> u64 {
        self.total_stores
    }

    /// Total cycles callers were told to wait because the buffer was full.
    pub fn full_stall_cycles(&self) -> u64 {
        self.full_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_drains() {
        let mut wb = WriteBuffer::new(2);
        assert!(!wb.is_full(Cycle(0)));
        wb.push(Cycle(0), Cycle(5));
        wb.push(Cycle(0), Cycle(9));
        assert!(wb.is_full(Cycle(0)));
        assert_eq!(wb.free_at(Cycle(0)), Cycle(5));
        assert!(!wb.is_full(Cycle(5)));
        assert_eq!(wb.pending(Cycle(5)), 1);
        assert_eq!(wb.pending(Cycle(9)), 0);
        assert_eq!(wb.total_stores(), 2);
    }

    #[test]
    fn drain_time_is_last_finish() {
        let mut wb = WriteBuffer::new(4);
        assert_eq!(wb.drain_time(Cycle(3)), Cycle(3));
        wb.push(Cycle(3), Cycle(10));
        wb.push(Cycle(3), Cycle(7));
        assert_eq!(wb.drain_time(Cycle(3)), Cycle(10));
    }

    #[test]
    fn full_stall_cycles_accumulate() {
        let mut wb = WriteBuffer::new(1);
        wb.push(Cycle(0), Cycle(8));
        assert_eq!(wb.free_at(Cycle(2)), Cycle(8));
        assert_eq!(wb.full_stall_cycles(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = WriteBuffer::new(0);
    }
}

//! Mesh/NoC architecture: a 2D grid of tiles over a directory-kept shared
//! L2 — the many-core extension the ROADMAP's MemPool direction calls for.
//!
//! Each CPU owns one *tile*: a private write-through L1 (shared-L2 cache
//! geometry and Table 2 latencies) plus a router with four outgoing links
//! (east/west/south/north) to its grid neighbours. The shared L2 is
//! distributed across the tiles line-interleaved — line `k` lives in the
//! L2 slice at tile `k % n_tiles` — so an L1 miss travels the mesh to its
//! *home tile* under dimension-ordered XY routing (columns first, then
//! rows), paying one [`LINK_LAT`]-cycle hop per link and contending for
//! each directed link it crosses ([`LINK_OCC`]-cycle occupancy per
//! transfer, event-driven [`Port`] reservations like every other resource
//! in the simulator). The response retraces the path latency-only — the
//! return network is modeled as contention-free, the usual
//! separate-virtual-network assumption.
//!
//! Coherence is the same per-line directory scheme as the shared-L2
//! architecture ([`Directory`]): write-through no-write-allocate L1s,
//! invalidations on writes and replacements, handled at the home tile.
//! Only the interconnect differs — a crossbar reaches any bank in a fixed
//! 14 cycles, while the mesh pays `l2_lat + 2 * hops * LINK_LAT`, which
//! is what makes the topology scale past the crossbar's port limits.

use crate::cache::{AccessOutcome, CacheArray, LineState, MissKind};
use crate::config::{ConfigError, SystemConfig};
use crate::hierarchy::{
    util_of_banks, util_of_port, Directory, HierarchyCore, HierarchySystem, SharedL2Back, Topology,
};
use crate::{AccessKind, Addr, CpuId, MemRequest, MemResult, PortUtil, ServiceLevel};
use cmpsim_engine::{Cycle, Port};

/// Latency of one router-to-router hop, in cycles.
pub const LINK_LAT: u64 = 1;

/// Cycles a line transfer occupies each directed link it crosses.
pub const LINK_OCC: u64 = 1;

/// Outgoing-link slots per tile, in `links` index order.
const E: usize = 0;
const W: usize = 1;
const S: usize = 2;
const N: usize = 3;

/// The mesh multiprocessor memory system.
pub type MeshSystem = HierarchySystem<MeshTopo>;

/// The mesh topology: per-tile L1s, per-tile routers with directed links,
/// a line-interleaved home-tile map, and the directory-kept shared L2.
#[derive(Debug)]
pub struct MeshTopo {
    rows: usize,
    cols: usize,
    l1i: Vec<CacheArray>,
    l1d: Vec<CacheArray>,
    /// Directed links, `tile * 4 + direction`. Edge tiles keep unused
    /// ports (never reserved) so indexing stays branch-free.
    links: Vec<Port>,
    dir: Directory,
    back: SharedL2Back,
}

impl MeshSystem {
    /// Builds the system from a configuration (see
    /// [`SystemConfig::paper_mesh`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use [`MeshSystem::try_new`] to
    /// reject one without unwinding.
    pub fn new(cfg: &SystemConfig) -> MeshSystem {
        MeshSystem::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the system, validating the tile grid.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration fails
    /// [`SystemConfig::validate`] — in particular when
    /// `mesh_rows * mesh_cols != n_cpus`.
    pub fn try_new(cfg: &SystemConfig) -> Result<MeshSystem, ConfigError> {
        cfg.validate()?;
        let n = cfg.n_cpus;
        let back = SharedL2Back::new(cfg);
        let topo = MeshTopo {
            rows: cfg.mesh_rows,
            cols: cfg.mesh_cols,
            l1i: (0..n).map(|_| CacheArray::new("l1i", cfg.l1i)).collect(),
            l1d: (0..n).map(|_| CacheArray::new("l1d", cfg.l1d)).collect(),
            links: (0..n * 4).map(|_| Port::new("mesh-link")).collect(),
            dir: Directory::new(n, back.l2.n_slots()),
            back,
        };
        Ok(HierarchySystem::from_parts(cfg, topo))
    }

    /// The tile grid as `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.topo().rows, self.topo().cols)
    }

    /// Read-only view of one tile's L1 data cache (tests, probes).
    pub fn l1d(&self, cpu: usize) -> &CacheArray {
        &self.topo().l1d[cpu]
    }

    /// Read-only view of the shared L2 (tests, probes).
    pub fn l2(&self) -> &CacheArray {
        &self.topo().back.l2
    }

    /// Full-state directory consistency check (see
    /// [`Directory::consistent`]).
    pub fn directory_consistent(&self) -> bool {
        let t = self.topo();
        t.dir.consistent(&t.l1d, &t.l1i, &t.back.l2)
    }
}

impl MeshTopo {
    /// The tile whose L2 slice is home to `addr`'s line.
    #[inline]
    fn home_of(&self, addr: Addr) -> usize {
        let line = addr / self.back.l2.spec().line_bytes;
        line as usize % (self.rows * self.cols)
    }

    /// Routes a request from tile `from` to tile `to` under XY routing,
    /// reserving every directed link crossed. Returns the arrival time and
    /// the hop count (the response retraces the same distance
    /// latency-only).
    fn route(&mut self, from: usize, to: usize, start: Cycle) -> (Cycle, u64) {
        let (mut r, mut c) = (from / self.cols, from % self.cols);
        let (tr, tc) = (to / self.cols, to % self.cols);
        let mut t = start;
        let mut hops = 0u64;
        while c != tc {
            let d = if tc > c { E } else { W };
            let g = self.links[(r * self.cols + c) * 4 + d].reserve(t, LINK_OCC);
            t = g + LINK_LAT;
            hops += 1;
            c = if tc > c { c + 1 } else { c - 1 };
        }
        while r != tr {
            let d = if tr > r { S } else { N };
            let g = self.links[(r * self.cols + c) * 4 + d].reserve(t, LINK_OCC);
            t = g + LINK_LAT;
            hops += 1;
            r = if tr > r { r + 1 } else { r - 1 };
        }
        (t, hops)
    }

    /// A load or ifetch that missed the tile's L1: route to the home
    /// tile's L2 slice (and memory beyond), then refill the L1 and the
    /// directory, paying the return trip latency-only.
    fn read_miss(
        &mut self,
        core: &mut HierarchyCore,
        now: Cycle,
        tile: usize,
        addr: Addr,
        ifetch: bool,
        kind: MissKind,
    ) -> MemResult {
        if ifetch {
            core.stats.l1i.miss(kind);
        } else {
            core.stats.l1d.miss(kind);
        }
        let (arrive, hops) = self.route(tile, self.home_of(addr), now);
        let (finish, level) = self.back.read(
            &mut core.stats,
            &mut self.dir,
            &mut self.l1d,
            &mut self.l1i,
            &core.cfg.lat,
            addr,
            arrive,
        );
        let cache = if ifetch {
            &mut self.l1i[tile]
        } else {
            &mut self.l1d[tile]
        };
        // Write-through L1: lines are never dirty.
        let victim = cache.fill(addr, LineState::Shared).map(|v| v.addr);
        let line = self.back.line(addr);
        self.dir.note_fill(
            &mut core.sentinel,
            &self.back.l2,
            tile,
            line,
            ifetch,
            victim,
        );
        MemResult {
            finish: finish + hops * LINK_LAT,
            serviced_by: level,
            l1_miss: true,
            l1_extra: core.cfg.lat.l1_lat - 1,
        }
    }

    /// Write-through, no-write-allocate: the word travels the mesh to its
    /// home tile; the directory there invalidates other sharers.
    fn store(
        &mut self,
        core: &mut HierarchyCore,
        now: Cycle,
        tile: usize,
        addr: Addr,
    ) -> MemResult {
        self.l1d[tile].touch(addr);
        let (arrive, hops) = self.route(tile, self.home_of(addr), now);
        let line = self.back.line(addr);
        self.dir.invalidate_sharers(
            &mut core.sentinel,
            &mut core.stats,
            &mut self.l1d,
            &mut self.l1i,
            &self.back.l2,
            tile,
            line,
            addr,
        );
        let (finish, level) = self.back.store(
            &mut core.stats,
            &mut self.dir,
            &mut self.l1d,
            &mut self.l1i,
            &core.cfg.lat,
            addr,
            arrive,
        );
        MemResult {
            finish: finish + hops * LINK_LAT,
            serviced_by: level,
            l1_miss: false,
            l1_extra: core.cfg.lat.l1_lat - 1,
        }
    }
}

impl Topology for MeshTopo {
    const NAME: &'static str = "mesh";

    /// The fastest cross-CPU path is a store landing on its own tile's L2
    /// slice (zero hops): the shared-L2 service latency bounds how soon
    /// one CPU's action can change another CPU's timing, exactly as in the
    /// crossbar shared-L2 system.
    fn cross_cpu_lookahead(&self, core: &HierarchyCore) -> u64 {
        core.cfg.lat.l2_lat
    }

    #[inline]
    fn access(&mut self, core: &mut HierarchyCore, now: Cycle, req: MemRequest) -> MemResult {
        let tile = req.cpu;
        let addr = req.addr;
        match req.kind {
            AccessKind::IFetch | AccessKind::Load => {
                let ifetch = req.kind == AccessKind::IFetch;
                let outcome = if ifetch {
                    self.l1i[tile].lookup(addr)
                } else {
                    self.l1d[tile].lookup(addr)
                };
                match outcome {
                    AccessOutcome::Hit(_) => {
                        if ifetch {
                            core.stats.l1i.hit();
                        } else {
                            core.stats.l1d.hit();
                        }
                        MemResult {
                            finish: now + core.cfg.lat.l1_lat,
                            serviced_by: ServiceLevel::L1,
                            l1_miss: false,
                            l1_extra: core.cfg.lat.l1_lat - 1,
                        }
                    }
                    AccessOutcome::Miss(kind) => {
                        self.read_miss(core, now, tile, addr, ifetch, kind)
                    }
                }
            }
            AccessKind::Store => self.store(core, now, tile, addr),
        }
    }

    fn check_line(&self, core: &mut HierarchyCore, now: Cycle, cpu: CpuId, addr: Addr) {
        let line = self.back.line(addr);
        self.dir.check_line(
            &mut core.sentinel,
            &self.l1d,
            &self.l1i,
            &self.back.l2,
            "tile",
            now,
            cpu,
            line,
        );
    }

    fn load_would_hit_l1(&self, cpu: CpuId, addr: Addr) -> bool {
        self.l1d[cpu].probe(addr).is_valid()
    }

    fn push_port_util(&self, out: &mut Vec<PortUtil>) {
        let mut mesh = PortUtil {
            name: "mesh-link",
            grants: 0,
            busy_cycles: 0,
            wait_cycles: 0,
        };
        for p in &self.links {
            mesh.grants += p.grants();
            mesh.busy_cycles += p.busy_cycles();
            mesh.wait_cycles += p.wait_cycles();
        }
        out.push(mesh);
        out.push(util_of_banks(&self.back.banks));
        out.push(util_of_port(&self.back.mem));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::MemorySystem;

    fn sys(n: usize) -> MeshSystem {
        MeshSystem::new(&SystemConfig::paper_mesh(n))
    }

    /// 0x1000 is line 128: home tile 0 at any power-of-two tile count
    /// below 128.
    const HOME0: Addr = 0x1000;

    #[test]
    fn grid_defaults_to_the_most_square_factorization() {
        assert_eq!(sys(4).dims(), (2, 2));
        assert_eq!(sys(16).dims(), (4, 4));
        assert_eq!(sys(64).dims(), (8, 8));
        assert_eq!(sys(6).dims(), (2, 3));
    }

    #[test]
    fn bad_grid_is_a_typed_error() {
        let cfg = SystemConfig::paper_mesh(16).with_mesh_dims(3, 4);
        assert_eq!(
            MeshSystem::try_new(&cfg).err(),
            Some(ConfigError::MeshGeometry {
                n_cpus: 16,
                rows: 3,
                cols: 4
            })
        );
    }

    #[test]
    fn l1_hit_is_one_cycle() {
        let mut s = sys(4);
        s.access(Cycle(0), MemRequest::load(0, HOME0));
        let r = s.access(Cycle(100), MemRequest::load(0, HOME0));
        assert_eq!(r.finish, Cycle(101));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
    }

    #[test]
    fn cold_miss_at_the_home_tile_costs_memory_latency() {
        let mut s = sys(4);
        let r = s.access(Cycle(0), MemRequest::load(0, HOME0));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(50), "zero hops: cpu 0 is the home tile");
    }

    #[test]
    fn remote_l2_hit_pays_round_trip_hops() {
        let mut s = sys(4);
        s.access(Cycle(0), MemRequest::load(0, HOME0)); // cold: fills L2
                                                        // CPU 1 sits one hop from home tile 0 on the 2x2 grid.
        let r = s.access(Cycle(100), MemRequest::load(1, HOME0));
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(
            r.finish,
            Cycle(100 + 14 + 2 * LINK_LAT),
            "l2_lat plus one hop each way"
        );
    }

    #[test]
    fn corner_to_corner_pays_the_full_manhattan_distance() {
        let mut s = sys(64);
        // CPU 63 sits at (7,7); HOME0 homes at tile 0 = (0,0): 14 hops.
        let r = s.access(Cycle(0), MemRequest::load(63, HOME0));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(14 * LINK_LAT + 50 + 14 * LINK_LAT));
    }

    #[test]
    fn concurrent_transfers_contend_for_shared_links() {
        let mut s = sys(4);
        // Warm the L2 so both probes below are L2 hits.
        s.access(Cycle(0), MemRequest::load(0, HOME0));
        // Two same-cycle misses from tile 1 (one data, one instruction, so
        // neither hits the other's L1 fill) serialize on tile 1's west
        // link toward home tile 0.
        let a = s.access(Cycle(100), MemRequest::load(1, HOME0));
        let b = s.access(Cycle(100), MemRequest::ifetch(1, HOME0));
        assert_eq!(a.finish, Cycle(116));
        assert!(
            b.finish > a.finish,
            "the second transfer waits for the link: {:?} vs {:?}",
            b.finish,
            a.finish
        );
        let util = s.port_utilization();
        let link = util.iter().find(|u| u.name == "mesh-link").unwrap();
        assert!(link.grants >= 2);
        assert!(link.wait_cycles >= 1, "contention is visible in the util");
    }

    #[test]
    fn store_invalidates_sharers_across_tiles() {
        let mut s = sys(4);
        s.access(Cycle(0), MemRequest::load(0, HOME0));
        s.access(Cycle(100), MemRequest::load(3, HOME0));
        s.access(Cycle(200), MemRequest::store(0, HOME0));
        assert_eq!(s.stats().invalidations_sent, 1);
        assert_eq!(s.l1d(3).probe(HOME0), LineState::Invalid);
        assert_eq!(s.l1d(0).probe(HOME0), LineState::Shared, "writer keeps it");
        assert!(s.directory_consistent());
    }

    #[test]
    fn sixty_four_tiles_run_clean_under_the_sentinel() {
        use crate::sentinel::SentinelSpec;
        let mut s =
            MeshSystem::new(&SystemConfig::paper_mesh(64).with_sentinel(SentinelSpec::on()));
        assert_eq!(s.n_cpus(), 64);
        for t in 0..400u64 {
            let cpu = (t % 64) as usize;
            let addr = 0x1000 + ((t * 52) % 8192) as Addr;
            if t % 3 == 0 {
                s.access(Cycle(t * 10), MemRequest::store(cpu, addr));
            } else {
                s.access(Cycle(t * 10), MemRequest::load(cpu, addr));
            }
        }
        assert!(s.violations().is_empty(), "{:?}", s.violations());
        assert!(s.directory_consistent());
    }

    #[test]
    fn lookahead_is_the_l2_latency() {
        let s = sys(16);
        assert_eq!(s.cross_cpu_lookahead(), 14);
        assert_eq!(s.name(), "mesh");
    }
}

//! Bus-based shared-memory architecture (Figure 3 of the paper).
//!
//! Each CPU has a private write-back 16 KB L1 (1-cycle hits) and a private
//! 512 KB L2 running at full SRAM speed (10-cycle latency, 2-cycle
//! occupancy). Communication goes through the shared system bus and main
//! memory (50-cycle latency, 6-cycle occupancy). Both cache levels
//! participate in full MESI snooping; a line dirty in another CPU's caches
//! is sourced cache-to-cache at more than the memory latency (the paper
//! argues typical times are comparable to memory access times because the
//! slowest snooper gates the response).
//!
//! The topology is a [`Topology`] over the shared
//! [`HierarchyCore`](crate::hierarchy::HierarchyCore): fully private
//! two-level hierarchies whose coherence steps come from the reusable
//! [`snoop`](crate::hierarchy::snoop) engine.

use crate::cache::{AccessOutcome, CacheArray, LineState, MissKind};
use crate::config::SystemConfig;
use crate::hierarchy::{frontend, snoop, HierarchyCore, HierarchySystem, Topology};
use crate::{AccessKind, Addr, CpuId, MemRequest, MemResult, PortUtil, ServiceLevel};
use cmpsim_engine::{Cycle, Port};

use snoop::SnoopResult;

/// The bus-based topology: per-CPU private L1/L2 hierarchies snooping a
/// single shared bus.
#[derive(Debug)]
pub struct SharedMemTopo {
    l1i: Vec<CacheArray>,
    l1d: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    l2_ports: Vec<Port>,
    bus: Port,
}

/// The bus-based shared-memory multiprocessor memory system.
pub type SharedMemSystem = HierarchySystem<SharedMemTopo>;

impl SharedMemSystem {
    /// Builds the system from a configuration (see
    /// [`SystemConfig::paper_shared_mem`]).
    pub fn new(cfg: &SystemConfig) -> SharedMemSystem {
        HierarchySystem::from_parts(
            cfg,
            SharedMemTopo {
                l1i: (0..cfg.n_cpus)
                    .map(|_| CacheArray::new("l1i", cfg.l1i))
                    .collect(),
                l1d: (0..cfg.n_cpus)
                    .map(|_| CacheArray::new("l1d", cfg.l1d))
                    .collect(),
                l2: (0..cfg.n_cpus)
                    .map(|_| CacheArray::new("l2", cfg.l2))
                    .collect(),
                l2_ports: (0..cfg.n_cpus).map(|_| Port::new("l2")).collect(),
                bus: Port::new("bus"),
            },
        )
    }

    /// Read-only view of one CPU's L1 data cache (tests, probes).
    pub fn l1d(&self, cpu: usize) -> &CacheArray {
        &self.topo().l1d[cpu]
    }

    /// Read-only view of one CPU's private L2 (tests, probes).
    pub fn l2(&self, cpu: usize) -> &CacheArray {
        &self.topo().l2[cpu]
    }
}

impl SharedMemTopo {
    /// Fills `cpu`'s private L2, enforcing inclusion on the victim and
    /// paying for a dirty write-back.
    fn l2_fill(
        &mut self,
        core: &mut HierarchyCore,
        cpu: usize,
        addr: Addr,
        state: LineState,
        at: Cycle,
    ) {
        if let Some(v) = self.l2[cpu].fill(addr, state) {
            // Inclusion: the L1s may not keep a line the L2 dropped. A dirty
            // L1 copy folds into the write-back.
            let l1_state = self.l1d[cpu].evict(v.addr);
            self.l1i[cpu].evict(v.addr);
            if v.dirty || l1_state == LineState::Modified {
                self.bus.reserve(at, core.cfg.lat.mem_occ);
                core.stats.writebacks += 1;
            }
        }
    }

    /// Fills `cpu`'s L1 (D or I), folding a dirty victim into its L2.
    fn l1_fill(
        &mut self,
        core: &mut HierarchyCore,
        cpu: usize,
        addr: Addr,
        ifetch: bool,
        state: LineState,
        at: Cycle,
    ) {
        let cache = if ifetch {
            &mut self.l1i[cpu]
        } else {
            &mut self.l1d[cpu]
        };
        frontend::fill_writeback_l1(
            cache,
            addr,
            state,
            at,
            &mut self.l2[cpu],
            &mut self.l2_ports[cpu],
            core.cfg.lat.l2_occ,
            &mut self.bus,
            core.cfg.lat.mem_occ,
            &mut core.stats,
        );
    }

    /// A bus transaction fetching `addr` for `cpu`. `exclusive` requests
    /// ownership (read-exclusive). Returns (finish, level, fill state,
    /// bus grant).
    fn bus_fetch(
        &mut self,
        core: &mut HierarchyCore,
        cpu: usize,
        addr: Addr,
        exclusive: bool,
        at: Cycle,
    ) -> (Cycle, ServiceLevel, LineState, Cycle) {
        let result = snoop::snoop(&self.l1d, &self.l1i, &self.l2, cpu, addr);
        let (occ, lat, level) = match result {
            SnoopResult::Dirty(_) => (
                core.cfg.lat.c2c_occ,
                core.cfg.lat.c2c_lat,
                ServiceLevel::CacheToCache,
            ),
            _ => (
                core.cfg.lat.mem_occ,
                core.cfg.lat.mem_lat,
                ServiceLevel::Memory,
            ),
        };
        let grant = self.bus.reserve(at, occ);
        core.stats.mem_wait += grant - at;
        let finish = grant + lat;
        core.stats.serviced(level);
        let state = if exclusive {
            snoop::invalidate_remote(
                &mut core.sentinel,
                &mut core.stats,
                &mut self.l1d,
                &mut self.l1i,
                &mut self.l2,
                cpu,
                addr,
            );
            LineState::Modified
        } else {
            match result {
                SnoopResult::None => LineState::Exclusive,
                _ => {
                    snoop::downgrade_remote(
                        &mut core.sentinel,
                        &mut self.l1d,
                        &mut self.l2,
                        cpu,
                        addr,
                    );
                    LineState::Shared
                }
            }
        };
        (finish, level, state, grant)
    }

    /// A store that hit a non-Modified L1 line: silent upgrade from
    /// Exclusive, or an address-only bus upgrade from Shared.
    fn service_store_hit(
        &mut self,
        core: &mut HierarchyCore,
        now: Cycle,
        cpu: usize,
        addr: Addr,
        state: LineState,
    ) -> MemResult {
        match state {
            LineState::Exclusive => {
                core.stats.l1d.hit();
                self.l1d[cpu].set_state(addr, LineState::Modified);
                if self.l2[cpu].probe(addr).is_valid() {
                    self.l2[cpu].set_state(addr, LineState::Modified);
                }
                MemResult {
                    finish: now + core.cfg.lat.l1_lat,
                    serviced_by: ServiceLevel::L1,
                    l1_miss: false,
                    l1_extra: 0,
                }
            }
            LineState::Shared => {
                // Upgrade: address-only bus transaction invalidating
                // remote copies. Counts as a hit (the data was
                // local), but the store completes only after the bus
                // acknowledges.
                core.stats.l1d.hit();
                let grant = self.bus.reserve(now + 1, core.cfg.lat.upgrade_occ);
                core.stats.mem_wait += grant - (now + 1);
                core.stats.upgrades += 1;
                snoop::invalidate_remote(
                    &mut core.sentinel,
                    &mut core.stats,
                    &mut self.l1d,
                    &mut self.l1i,
                    &mut self.l2,
                    cpu,
                    addr,
                );
                self.l1d[cpu].set_state(addr, LineState::Modified);
                if self.l2[cpu].probe(addr).is_valid() {
                    self.l2[cpu].set_state(addr, LineState::Modified);
                }
                MemResult {
                    finish: grant + core.cfg.lat.upgrade_lat,
                    serviced_by: ServiceLevel::Memory,
                    l1_miss: false,
                    l1_extra: 0,
                }
            }
            _ => unreachable!("Modified handled inline; hit cannot be invalid"),
        }
    }

    /// An access that missed the private L1: walk the private L2, then the
    /// snooping bus and memory (or a remote cache) beyond it.
    #[allow(clippy::too_many_arguments)] // disjoint &mut core fields, by design
    fn service_miss(
        &mut self,
        core: &mut HierarchyCore,
        now: Cycle,
        cpu: usize,
        addr: Addr,
        ifetch: bool,
        write: bool,
        kind: MissKind,
    ) -> MemResult {
        let lstats = if ifetch {
            &mut core.stats.l1i
        } else {
            &mut core.stats.l1d
        };
        lstats.miss(kind);
        // Private L2 lookup.
        let g2 = self.l2_ports[cpu].reserve(now, core.cfg.lat.l2_occ);
        core.stats.l2_bank_wait += g2 - now;
        match self.l2[cpu].lookup(addr) {
            AccessOutcome::Hit(l2_state) => {
                core.stats.l2.hit();
                let can_satisfy = !write || l2_state != LineState::Shared;
                if can_satisfy {
                    let finish = g2 + core.cfg.lat.l2_lat;
                    let wb_at = g2;
                    let l1_state = if write {
                        self.l2[cpu].set_state(addr, LineState::Modified);
                        LineState::Modified
                    } else {
                        match l2_state {
                            LineState::Shared => LineState::Shared,
                            _ => LineState::Exclusive,
                        }
                    };
                    self.l1_fill(core, cpu, addr, ifetch, l1_state, wb_at);
                    MemResult {
                        finish,
                        serviced_by: ServiceLevel::L2,
                        l1_miss: true,
                        l1_extra: 0,
                    }
                } else {
                    // Write to a Shared L2 line: upgrade on the bus.
                    let grant = self.bus.reserve(g2, core.cfg.lat.upgrade_occ);
                    core.stats.mem_wait += grant - g2;
                    core.stats.upgrades += 1;
                    snoop::invalidate_remote(
                        &mut core.sentinel,
                        &mut core.stats,
                        &mut self.l1d,
                        &mut self.l1i,
                        &mut self.l2,
                        cpu,
                        addr,
                    );
                    self.l2[cpu].set_state(addr, LineState::Modified);
                    let finish = grant + core.cfg.lat.upgrade_lat;
                    self.l1_fill(core, cpu, addr, ifetch, LineState::Modified, grant);
                    MemResult {
                        finish,
                        serviced_by: ServiceLevel::Memory,
                        l1_miss: true,
                        l1_extra: 0,
                    }
                }
            }
            AccessOutcome::Miss(k2) => {
                core.stats.l2.miss(k2);
                let (finish, level, state, bus_grant) = self.bus_fetch(core, cpu, addr, write, g2);
                self.l2_fill(core, cpu, addr, state, bus_grant);
                self.l1_fill(core, cpu, addr, ifetch, state, bus_grant);
                MemResult {
                    finish,
                    serviced_by: level,
                    l1_miss: true,
                    l1_extra: 0,
                }
            }
        }
    }
}

impl Topology for SharedMemTopo {
    const NAME: &'static str = "shared-memory";

    /// Private hierarchies interact over the bus: the fastest cross-CPU
    /// path is whichever of a cache-to-cache transfer or a memory round
    /// trip is cheaper (Table 2 makes that memory, 50 vs 60 cycles).
    fn cross_cpu_lookahead(&self, core: &HierarchyCore) -> u64 {
        core.cfg.lat.c2c_lat.min(core.cfg.lat.mem_lat)
    }

    /// A clean hit in the private L1 — the overwhelmingly common case —
    /// touches nothing shared and returns straight away; stores that need
    /// state work and all misses take the out-of-line paths so this body
    /// inlines into the CPU access loops.
    #[inline]
    fn access(&mut self, core: &mut HierarchyCore, now: Cycle, req: MemRequest) -> MemResult {
        let cpu = req.cpu;
        let addr = req.addr;
        let ifetch = req.kind == AccessKind::IFetch;
        let write = req.kind == AccessKind::Store;

        // L1 lookup.
        let outcome = if ifetch {
            self.l1i[cpu].lookup(addr)
        } else {
            self.l1d[cpu].lookup(addr)
        };
        match outcome {
            AccessOutcome::Hit(state) => {
                if !write || state == LineState::Modified {
                    if ifetch {
                        core.stats.l1i.hit();
                    } else {
                        core.stats.l1d.hit();
                    }
                    return MemResult {
                        finish: now + core.cfg.lat.l1_lat,
                        serviced_by: ServiceLevel::L1,
                        l1_miss: false,
                        l1_extra: 0,
                    };
                }
                self.service_store_hit(core, now, cpu, addr, state)
            }
            AccessOutcome::Miss(kind) => {
                self.service_miss(core, now, cpu, addr, ifetch, write, kind)
            }
        }
    }

    fn check_line(&self, core: &mut HierarchyCore, now: Cycle, cpu: CpuId, addr: Addr) {
        let line = self.l2[0].line_addr(addr);
        snoop::check_mesi_line(
            &mut core.sentinel,
            &self.l1d,
            &self.l1i,
            &self.l2,
            now,
            cpu,
            line,
        );
    }

    #[inline]
    fn load_would_hit_l1(&self, cpu: CpuId, addr: Addr) -> bool {
        self.l1d[cpu].probe(addr).is_valid()
    }

    fn push_port_util(&self, out: &mut Vec<PortUtil>) {
        out.extend(self.l2_ports.iter().map(crate::hierarchy::util_of_port));
        out.push(crate::hierarchy::util_of_port(&self.bus));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::MemorySystem;

    fn sys() -> SharedMemSystem {
        SharedMemSystem::new(&SystemConfig::paper_shared_mem(4))
    }

    #[test]
    fn cold_miss_costs_memory_latency() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(50));
        // Sole owner: Exclusive.
        assert_eq!(s.l1d(0).probe(0x1000), LineState::Exclusive);
    }

    #[test]
    fn l1_and_l2_hits_cost_table2_latencies() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let r1 = s.access(Cycle(100), MemRequest::load(0, 0x1000));
        assert_eq!((r1.finish, r1.serviced_by), (Cycle(101), ServiceLevel::L1));
        // Evict from the 2-way 16KB L1 (stride 8 KB), keep in the 512KB L2.
        s.access(Cycle(200), MemRequest::load(0, 0x1000 + 8 * 1024));
        s.access(Cycle(300), MemRequest::load(0, 0x1000 + 16 * 1024));
        let r2 = s.access(Cycle(400), MemRequest::load(0, 0x1000));
        assert_eq!((r2.finish, r2.serviced_by), (Cycle(410), ServiceLevel::L2));
    }

    #[test]
    fn dirty_remote_line_sourced_cache_to_cache() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::store(0, 0x2000));
        assert_eq!(s.l1d(0).probe(0x2000), LineState::Modified);
        let r = s.access(Cycle(100), MemRequest::load(1, 0x2000));
        assert_eq!(r.serviced_by, ServiceLevel::CacheToCache);
        assert_eq!(r.finish, Cycle(160), "c2c latency is 60 > 50");
        // Both now Shared.
        assert_eq!(s.l1d(0).probe(0x2000), LineState::Shared);
        assert_eq!(s.l1d(1).probe(0x2000), LineState::Shared);
        assert_eq!(s.stats().c2c_transfers, 1);
    }

    #[test]
    fn store_to_shared_line_upgrades_and_invalidates() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x3000));
        s.access(Cycle(100), MemRequest::load(1, 0x3000)); // both Shared
        let r = s.access(Cycle(200), MemRequest::store(0, 0x3000));
        assert_eq!(s.stats().upgrades, 1);
        assert!(r.finish >= Cycle(220), "upgrade pays bus latency");
        assert_eq!(s.l1d(0).probe(0x3000), LineState::Modified);
        assert_eq!(s.l1d(1).probe(0x3000), LineState::Invalid);
        // CPU 1 re-reads: invalidation miss, sourced c2c (dirty at CPU 0).
        let r2 = s.access(Cycle(400), MemRequest::load(1, 0x3000));
        assert_eq!(r2.serviced_by, ServiceLevel::CacheToCache);
        assert_eq!(s.stats().l1d.miss_inval, 1);
        assert_eq!(s.stats().l2.miss_inval, 1);
    }

    #[test]
    fn write_to_exclusive_is_silent() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x4000)); // Exclusive
        let r = s.access(Cycle(100), MemRequest::store(0, 0x4000));
        assert_eq!(r.finish, Cycle(101));
        assert_eq!(s.stats().upgrades, 0);
        assert_eq!(s.l1d(0).probe(0x4000), LineState::Modified);
    }

    #[test]
    fn second_reader_gets_shared_not_exclusive() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x5000));
        let r = s.access(Cycle(100), MemRequest::load(1, 0x5000));
        // Clean remote copy: data still comes from memory on this bus.
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(s.l1d(0).probe(0x5000), LineState::Shared);
        assert_eq!(s.l1d(1).probe(0x5000), LineState::Shared);
    }

    #[test]
    fn bus_serializes_misses_from_different_cpus() {
        let mut s = sys();
        let a = s.access(Cycle(0), MemRequest::load(0, 0x6000));
        let b = s.access(Cycle(0), MemRequest::load(1, 0x7000));
        assert_eq!(a.finish, Cycle(50));
        assert_eq!(b.finish, Cycle(56), "6-cycle bus occupancy");
        assert!(s.stats().mem_wait >= 6);
    }

    #[test]
    fn store_miss_fetches_exclusive_and_invalidates() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(1, 0x8000)); // CPU1 Exclusive
        let r = s.access(Cycle(100), MemRequest::store(0, 0x8000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(s.l1d(0).probe(0x8000), LineState::Modified);
        assert_eq!(s.l1d(1).probe(0x8000), LineState::Invalid);
        // CPU1 rereads: invalidation miss.
        s.access(Cycle(300), MemRequest::load(1, 0x8000));
        assert_eq!(s.stats().l1d.miss_inval, 1);
    }

    #[test]
    fn sentinel_clean_traffic_has_no_violations() {
        use crate::sentinel::SentinelSpec;
        let mut s = SharedMemSystem::new(
            &SystemConfig::paper_shared_mem(4).with_sentinel(SentinelSpec::on()),
        );
        for t in 0..300u64 {
            let cpu = (t % 4) as usize;
            let addr = 0x1000 + ((t * 36) % 4096) as Addr;
            match t % 5 {
                0 | 3 => {
                    s.access(Cycle(t * 10), MemRequest::store(cpu, addr));
                }
                4 => {
                    s.access(Cycle(t * 10), MemRequest::ifetch(cpu, addr));
                }
                _ => {
                    s.access(Cycle(t * 10), MemRequest::load(cpu, addr));
                }
            }
        }
        assert!(s.violations().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn sentinel_detects_dropped_invalidations() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec = SentinelSpec::with_faults(
            11,
            1_000_000,
            FaultClassSet::only(FaultKind::DroppedInvalidation),
        );
        let mut s = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::load(1, 0x1000)); // both Shared
                                                           // CPU 0's upgrade should invalidate CPU 1; the message is dropped.
        s.access(Cycle(200), MemRequest::store(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::SharedAlongsideOwner
                    || v.kind == ViolationKind::MultipleOwners),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn sentinel_detects_spurious_states() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec =
            SentinelSpec::with_faults(13, 1_000_000, FaultClassSet::only(FaultKind::SpuriousState));
        let mut s = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::store(0, 0x2000)); // CPU 0 Modified
                                                          // CPU 1's read should downgrade CPU 0 to Shared; the injector
                                                          // promotes the copy to Exclusive instead.
        s.access(Cycle(100), MemRequest::load(1, 0x2000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::SharedAlongsideOwner
                    || v.kind == ViolationKind::MultipleOwners),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn miss_kinds_tracked_per_level() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x9000));
        assert_eq!(s.stats().l1d.miss_repl, 1);
        assert_eq!(s.stats().l2.miss_repl, 1);
        assert_eq!(s.stats().l1d.miss_inval, 0);
    }
}

//! Bus-based shared-memory architecture (Figure 3 of the paper).
//!
//! Each CPU has a private write-back 16 KB L1 (1-cycle hits) and a private
//! 512 KB L2 running at full SRAM speed (10-cycle latency, 2-cycle
//! occupancy). Communication goes through the shared system bus and main
//! memory (50-cycle latency, 6-cycle occupancy). Both cache levels
//! participate in full MESI snooping; a line dirty in another CPU's caches
//! is sourced cache-to-cache at more than the memory latency (the paper
//! argues typical times are comparable to memory access times because the
//! slowest snooper gates the response).

use crate::cache::{AccessOutcome, CacheArray, LineState, MissKind};
use crate::config::SystemConfig;
use crate::sentinel::{FaultKind, Sentinel, SentinelViolation, ViolationKind};
use crate::stats::MemStats;
use crate::{AccessKind, Addr, MemRequest, MemResult, MemorySystem, ServiceLevel};
use cmpsim_engine::{Cycle, Port};

/// The snoop result for a requested line across all remote CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SnoopResult {
    /// No remote copy.
    None,
    /// Remote clean copies exist (Shared/Exclusive).
    Shared,
    /// A remote CPU holds the line Modified.
    Dirty(usize),
}

/// The bus-based shared-memory multiprocessor memory system.
#[derive(Debug)]
pub struct SharedMemSystem {
    cfg: SystemConfig,
    l1i: Vec<CacheArray>,
    l1d: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    l2_ports: Vec<Port>,
    bus: Port,
    stats: MemStats,
    sentinel: Sentinel,
}

impl SharedMemSystem {
    /// Builds the system from a configuration (see
    /// [`SystemConfig::paper_shared_mem`]).
    pub fn new(cfg: &SystemConfig) -> SharedMemSystem {
        SharedMemSystem {
            cfg: *cfg,
            l1i: (0..cfg.n_cpus)
                .map(|_| CacheArray::new("l1i", cfg.l1i))
                .collect(),
            l1d: (0..cfg.n_cpus)
                .map(|_| CacheArray::new("l1d", cfg.l1d))
                .collect(),
            l2: (0..cfg.n_cpus)
                .map(|_| CacheArray::new("l2", cfg.l2))
                .collect(),
            l2_ports: (0..cfg.n_cpus).map(|_| Port::new("l2")).collect(),
            bus: Port::new("bus"),
            stats: MemStats::new(),
            sentinel: Sentinel::from_spec(&cfg.sentinel),
        }
    }

    /// Snoops every remote CPU's caches for `addr`.
    fn snoop(&self, me: usize, addr: Addr) -> SnoopResult {
        let mut shared = false;
        for cpu in 0..self.cfg.n_cpus {
            if cpu == me {
                continue;
            }
            let s1 = self.l1d[cpu].probe(addr);
            let s2 = self.l2[cpu].probe(addr);
            let si = self.l1i[cpu].probe(addr);
            if s1 == LineState::Modified || s2 == LineState::Modified {
                return SnoopResult::Dirty(cpu);
            }
            if s1.is_valid() || s2.is_valid() || si.is_valid() {
                shared = true;
            }
        }
        if shared {
            SnoopResult::Shared
        } else {
            SnoopResult::None
        }
    }

    /// Invalidates the line in every remote CPU (read-exclusive / upgrade).
    fn invalidate_remote(&mut self, me: usize, addr: Addr) {
        // Fault injection (sentinel): drop the invalidation to one remote
        // cache — the surviving stale copy coexists with the new owner.
        let any_victim = (0..self.cfg.n_cpus).any(|cpu| {
            cpu != me
                && (self.l1d[cpu].probe(addr).is_valid()
                    || self.l1i[cpu].probe(addr).is_valid()
                    || self.l2[cpu].probe(addr).is_valid())
        });
        let mut drop_one = any_victim && self.sentinel.inject(FaultKind::DroppedInvalidation, addr);
        for cpu in 0..self.cfg.n_cpus {
            if cpu == me {
                continue;
            }
            for cache in [&mut self.l1d[cpu], &mut self.l1i[cpu], &mut self.l2[cpu]] {
                if cache.probe(addr).is_valid() {
                    if drop_one {
                        drop_one = false;
                    } else {
                        cache.invalidate(addr);
                    }
                    self.stats.invalidations_sent += 1;
                }
            }
        }
    }

    /// Sentinel invariant check, scoped to the line the access touched:
    /// MESI legality across the private hierarchies. Ownership (M/E) is
    /// judged from the D-side caches only — [`Self::downgrade_remote`]
    /// deliberately leaves I-caches alone, so a clean Exclusive I-line
    /// coexisting with remote Shared copies is legal here.
    fn sentinel_check_line(&mut self, now: Cycle, cpu: usize, addr: Addr) {
        let line = self.l2[0].line_addr(addr);
        let rank = |s: LineState| match s {
            LineState::Modified => 3,
            LineState::Exclusive => 2,
            LineState::Shared => 1,
            LineState::Invalid => 0,
        };
        let mut found: Vec<(ViolationKind, String)> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        let mut holders: Vec<usize> = Vec::new();
        for c in 0..self.cfg.n_cpus {
            let r = rank(self.l1d[c].probe(line)).max(rank(self.l2[c].probe(line)));
            if r >= 2 {
                owners.push(c);
            }
            if r >= 1 || self.l1i[c].probe(line).is_valid() {
                holders.push(c);
            }
            if self.l1i[c].probe(line) == LineState::Modified {
                found.push((
                    ViolationKind::WriteThroughDirty,
                    format!("cpu {c} instruction cache holds the line dirty"),
                ));
            }
        }
        if owners.len() > 1 {
            found.push((
                ViolationKind::MultipleOwners,
                format!("cpus {owners:?} each hold the line in an ownership (M/E) state"),
            ));
        }
        if let [o] = owners[..] {
            let sharers: Vec<usize> = holders.iter().copied().filter(|&c| c != o).collect();
            if !sharers.is_empty() {
                found.push((
                    ViolationKind::SharedAlongsideOwner,
                    format!("cpu {o} owns the line while cpus {sharers:?} still hold copies"),
                ));
            }
        }
        for (kind, detail) in found {
            self.sentinel.report(now.0, cpu, line, kind, detail);
        }
    }

    /// Downgrades remote copies to Shared (remote read of a dirty line).
    fn downgrade_remote(&mut self, me: usize, addr: Addr) {
        for cpu in 0..self.cfg.n_cpus {
            if cpu == me {
                continue;
            }
            // Fault injection (sentinel): spuriously promote the remote
            // copy to Exclusive instead of downgrading it to Shared.
            if self.l1d[cpu].probe(addr).is_valid()
                && self.sentinel.inject(FaultKind::SpuriousState, addr)
            {
                self.l1d[cpu].set_state(addr, LineState::Exclusive);
                self.l2[cpu].downgrade(addr);
                continue;
            }
            self.l1d[cpu].downgrade(addr);
            self.l2[cpu].downgrade(addr);
        }
    }

    /// Fills `cpu`'s private L2, enforcing inclusion on the victim and
    /// paying for a dirty write-back.
    fn l2_fill(&mut self, cpu: usize, addr: Addr, state: LineState, at: Cycle) {
        if let Some(v) = self.l2[cpu].fill(addr, state) {
            // Inclusion: the L1s may not keep a line the L2 dropped. A dirty
            // L1 copy folds into the write-back.
            let l1_state = self.l1d[cpu].evict(v.addr);
            self.l1i[cpu].evict(v.addr);
            if v.dirty || l1_state == LineState::Modified {
                self.bus.reserve(at, self.cfg.lat.mem_occ);
                self.stats.writebacks += 1;
            }
        }
    }

    /// Fills `cpu`'s L1 (D or I), folding a dirty victim into its L2.
    fn l1_fill(&mut self, cpu: usize, addr: Addr, ifetch: bool, state: LineState, at: Cycle) {
        let cache = if ifetch {
            &mut self.l1i[cpu]
        } else {
            &mut self.l1d[cpu]
        };
        if let Some(v) = cache.fill(addr, state) {
            if v.dirty {
                self.l2_ports[cpu].reserve(at, self.cfg.lat.l2_occ);
                self.stats.writebacks += 1;
                if self.l2[cpu].probe(v.addr).is_valid() {
                    self.l2[cpu].set_state(v.addr, LineState::Modified);
                } else {
                    // Extremely rare (inclusion normally holds); push to bus.
                    self.bus.reserve(at, self.cfg.lat.mem_occ);
                }
            }
        }
    }

    /// A bus transaction fetching `addr` for `cpu`. `exclusive` requests
    /// ownership (read-exclusive). Returns (finish, level, fill state).
    fn bus_fetch(
        &mut self,
        cpu: usize,
        addr: Addr,
        exclusive: bool,
        at: Cycle,
    ) -> (Cycle, ServiceLevel, LineState, Cycle) {
        let snoop = self.snoop(cpu, addr);
        let (occ, lat, level) = match snoop {
            SnoopResult::Dirty(_) => (
                self.cfg.lat.c2c_occ,
                self.cfg.lat.c2c_lat,
                ServiceLevel::CacheToCache,
            ),
            _ => (
                self.cfg.lat.mem_occ,
                self.cfg.lat.mem_lat,
                ServiceLevel::Memory,
            ),
        };
        let grant = self.bus.reserve(at, occ);
        self.stats.mem_wait += grant - at;
        let finish = grant + lat;
        self.stats.serviced(level);
        let state = if exclusive {
            self.invalidate_remote(cpu, addr);
            LineState::Modified
        } else {
            match snoop {
                SnoopResult::None => LineState::Exclusive,
                _ => {
                    self.downgrade_remote(cpu, addr);
                    LineState::Shared
                }
            }
        };
        (finish, level, state, grant)
    }

    /// Read-only view of one CPU's L1 data cache (tests, probes).
    pub fn l1d(&self, cpu: usize) -> &CacheArray {
        &self.l1d[cpu]
    }

    /// Read-only view of one CPU's private L2 (tests, probes).
    pub fn l2(&self, cpu: usize) -> &CacheArray {
        &self.l2[cpu]
    }
}

impl SharedMemSystem {
    /// The untimed-record core of [`MemorySystem::access`]; the trait
    /// method wraps it to record the end-to-end latency histogram. A clean
    /// hit in the private L1 — the overwhelmingly common case — touches
    /// nothing shared and returns straight away; stores that need state
    /// work and all misses take the out-of-line paths so this body inlines
    /// into the CPU access loops.
    #[inline]
    fn access_inner(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        let cpu = req.cpu;
        let addr = req.addr;
        let ifetch = req.kind == AccessKind::IFetch;
        let write = req.kind == AccessKind::Store;

        // L1 lookup.
        let outcome = if ifetch {
            self.l1i[cpu].lookup(addr)
        } else {
            self.l1d[cpu].lookup(addr)
        };
        match outcome {
            AccessOutcome::Hit(state) => {
                if !write || state == LineState::Modified {
                    if ifetch {
                        self.stats.l1i.hit();
                    } else {
                        self.stats.l1d.hit();
                    }
                    return MemResult {
                        finish: now + self.cfg.lat.l1_lat,
                        serviced_by: ServiceLevel::L1,
                        l1_miss: false,
                        l1_extra: 0,
                    };
                }
                self.service_store_hit(now, cpu, addr, state)
            }
            AccessOutcome::Miss(kind) => self.service_miss(now, cpu, addr, ifetch, write, kind),
        }
    }

    /// A store that hit a non-Modified L1 line: silent upgrade from
    /// Exclusive, or an address-only bus upgrade from Shared.
    fn service_store_hit(
        &mut self,
        now: Cycle,
        cpu: usize,
        addr: Addr,
        state: LineState,
    ) -> MemResult {
        match state {
            LineState::Exclusive => {
                self.stats.l1d.hit();
                self.l1d[cpu].set_state(addr, LineState::Modified);
                if self.l2[cpu].probe(addr).is_valid() {
                    self.l2[cpu].set_state(addr, LineState::Modified);
                }
                MemResult {
                    finish: now + self.cfg.lat.l1_lat,
                    serviced_by: ServiceLevel::L1,
                    l1_miss: false,
                    l1_extra: 0,
                }
            }
            LineState::Shared => {
                // Upgrade: address-only bus transaction invalidating
                // remote copies. Counts as a hit (the data was
                // local), but the store completes only after the bus
                // acknowledges.
                self.stats.l1d.hit();
                let grant = self.bus.reserve(now + 1, self.cfg.lat.upgrade_occ);
                self.stats.mem_wait += grant - (now + 1);
                self.stats.upgrades += 1;
                self.invalidate_remote(cpu, addr);
                self.l1d[cpu].set_state(addr, LineState::Modified);
                if self.l2[cpu].probe(addr).is_valid() {
                    self.l2[cpu].set_state(addr, LineState::Modified);
                }
                MemResult {
                    finish: grant + self.cfg.lat.upgrade_lat,
                    serviced_by: ServiceLevel::Memory,
                    l1_miss: false,
                    l1_extra: 0,
                }
            }
            _ => unreachable!("Modified handled inline; hit cannot be invalid"),
        }
    }

    /// An access that missed the private L1: walk the private L2, then the
    /// snooping bus and memory (or a remote cache) beyond it.
    fn service_miss(
        &mut self,
        now: Cycle,
        cpu: usize,
        addr: Addr,
        ifetch: bool,
        write: bool,
        kind: MissKind,
    ) -> MemResult {
        let lstats = if ifetch {
            &mut self.stats.l1i
        } else {
            &mut self.stats.l1d
        };
        lstats.miss(kind);
        // Private L2 lookup.
        let g2 = self.l2_ports[cpu].reserve(now, self.cfg.lat.l2_occ);
        self.stats.l2_bank_wait += g2 - now;
        match self.l2[cpu].lookup(addr) {
            AccessOutcome::Hit(l2_state) => {
                self.stats.l2.hit();
                let can_satisfy = !write || l2_state != LineState::Shared;
                if can_satisfy {
                    let finish = g2 + self.cfg.lat.l2_lat;
                    let wb_at = g2;
                    let l1_state = if write {
                        self.l2[cpu].set_state(addr, LineState::Modified);
                        LineState::Modified
                    } else {
                        match l2_state {
                            LineState::Shared => LineState::Shared,
                            _ => LineState::Exclusive,
                        }
                    };
                    self.l1_fill(cpu, addr, ifetch, l1_state, wb_at);
                    MemResult {
                        finish,
                        serviced_by: ServiceLevel::L2,
                        l1_miss: true,
                        l1_extra: 0,
                    }
                } else {
                    // Write to a Shared L2 line: upgrade on the bus.
                    let grant = self.bus.reserve(g2, self.cfg.lat.upgrade_occ);
                    self.stats.mem_wait += grant - g2;
                    self.stats.upgrades += 1;
                    self.invalidate_remote(cpu, addr);
                    self.l2[cpu].set_state(addr, LineState::Modified);
                    let finish = grant + self.cfg.lat.upgrade_lat;
                    self.l1_fill(cpu, addr, ifetch, LineState::Modified, grant);
                    MemResult {
                        finish,
                        serviced_by: ServiceLevel::Memory,
                        l1_miss: true,
                        l1_extra: 0,
                    }
                }
            }
            AccessOutcome::Miss(k2) => {
                self.stats.l2.miss(k2);
                let (finish, level, state, bus_grant) = self.bus_fetch(cpu, addr, write, g2);
                self.l2_fill(cpu, addr, state, bus_grant);
                self.l1_fill(cpu, addr, ifetch, state, bus_grant);
                MemResult {
                    finish,
                    serviced_by: level,
                    l1_miss: true,
                    l1_extra: 0,
                }
            }
        }
    }
}

impl MemorySystem for SharedMemSystem {
    #[inline]
    fn access(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        let res = self.access_inner(now, req);
        self.stats.latency.record(res.finish - now);
        if self.sentinel.on() {
            self.sentinel_check_line(now, req.cpu, req.addr);
        }
        res
    }

    #[inline]
    fn load_would_hit_l1(&self, cpu: usize, addr: Addr) -> bool {
        self.l1d[cpu].probe(addr).is_valid()
    }

    fn line_bytes(&self) -> u32 {
        self.cfg.l1d.line_bytes
    }

    fn n_cpus(&self) -> usize {
        self.cfg.n_cpus
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    fn name(&self) -> &'static str {
        "shared-memory"
    }

    fn port_utilization(&self) -> Vec<crate::PortUtil> {
        let mut v: Vec<crate::PortUtil> = self.l2_ports.iter().map(super::util_of_port).collect();
        v.push(super::util_of_port(&self.bus));
        v
    }

    fn violations(&self) -> &[SentinelViolation] {
        self.sentinel.violations()
    }

    fn injected_faults(&self) -> &[(FaultKind, Addr)] {
        self.sentinel.injected_faults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn sys() -> SharedMemSystem {
        SharedMemSystem::new(&SystemConfig::paper_shared_mem(4))
    }

    #[test]
    fn cold_miss_costs_memory_latency() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(50));
        // Sole owner: Exclusive.
        assert_eq!(s.l1d(0).probe(0x1000), LineState::Exclusive);
    }

    #[test]
    fn l1_and_l2_hits_cost_table2_latencies() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let r1 = s.access(Cycle(100), MemRequest::load(0, 0x1000));
        assert_eq!((r1.finish, r1.serviced_by), (Cycle(101), ServiceLevel::L1));
        // Evict from the 2-way 16KB L1 (stride 8 KB), keep in the 512KB L2.
        s.access(Cycle(200), MemRequest::load(0, 0x1000 + 8 * 1024));
        s.access(Cycle(300), MemRequest::load(0, 0x1000 + 16 * 1024));
        let r2 = s.access(Cycle(400), MemRequest::load(0, 0x1000));
        assert_eq!((r2.finish, r2.serviced_by), (Cycle(410), ServiceLevel::L2));
    }

    #[test]
    fn dirty_remote_line_sourced_cache_to_cache() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::store(0, 0x2000));
        assert_eq!(s.l1d(0).probe(0x2000), LineState::Modified);
        let r = s.access(Cycle(100), MemRequest::load(1, 0x2000));
        assert_eq!(r.serviced_by, ServiceLevel::CacheToCache);
        assert_eq!(r.finish, Cycle(160), "c2c latency is 60 > 50");
        // Both now Shared.
        assert_eq!(s.l1d(0).probe(0x2000), LineState::Shared);
        assert_eq!(s.l1d(1).probe(0x2000), LineState::Shared);
        assert_eq!(s.stats().c2c_transfers, 1);
    }

    #[test]
    fn store_to_shared_line_upgrades_and_invalidates() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x3000));
        s.access(Cycle(100), MemRequest::load(1, 0x3000)); // both Shared
        let r = s.access(Cycle(200), MemRequest::store(0, 0x3000));
        assert_eq!(s.stats().upgrades, 1);
        assert!(r.finish >= Cycle(220), "upgrade pays bus latency");
        assert_eq!(s.l1d(0).probe(0x3000), LineState::Modified);
        assert_eq!(s.l1d(1).probe(0x3000), LineState::Invalid);
        // CPU 1 re-reads: invalidation miss, sourced c2c (dirty at CPU 0).
        let r2 = s.access(Cycle(400), MemRequest::load(1, 0x3000));
        assert_eq!(r2.serviced_by, ServiceLevel::CacheToCache);
        assert_eq!(s.stats().l1d.miss_inval, 1);
        assert_eq!(s.stats().l2.miss_inval, 1);
    }

    #[test]
    fn write_to_exclusive_is_silent() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x4000)); // Exclusive
        let r = s.access(Cycle(100), MemRequest::store(0, 0x4000));
        assert_eq!(r.finish, Cycle(101));
        assert_eq!(s.stats().upgrades, 0);
        assert_eq!(s.l1d(0).probe(0x4000), LineState::Modified);
    }

    #[test]
    fn second_reader_gets_shared_not_exclusive() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x5000));
        let r = s.access(Cycle(100), MemRequest::load(1, 0x5000));
        // Clean remote copy: data still comes from memory on this bus.
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(s.l1d(0).probe(0x5000), LineState::Shared);
        assert_eq!(s.l1d(1).probe(0x5000), LineState::Shared);
    }

    #[test]
    fn bus_serializes_misses_from_different_cpus() {
        let mut s = sys();
        let a = s.access(Cycle(0), MemRequest::load(0, 0x6000));
        let b = s.access(Cycle(0), MemRequest::load(1, 0x7000));
        assert_eq!(a.finish, Cycle(50));
        assert_eq!(b.finish, Cycle(56), "6-cycle bus occupancy");
        assert!(s.stats().mem_wait >= 6);
    }

    #[test]
    fn store_miss_fetches_exclusive_and_invalidates() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(1, 0x8000)); // CPU1 Exclusive
        let r = s.access(Cycle(100), MemRequest::store(0, 0x8000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(s.l1d(0).probe(0x8000), LineState::Modified);
        assert_eq!(s.l1d(1).probe(0x8000), LineState::Invalid);
        // CPU1 rereads: invalidation miss.
        s.access(Cycle(300), MemRequest::load(1, 0x8000));
        assert_eq!(s.stats().l1d.miss_inval, 1);
    }

    #[test]
    fn sentinel_clean_traffic_has_no_violations() {
        use crate::sentinel::SentinelSpec;
        let mut s = SharedMemSystem::new(
            &SystemConfig::paper_shared_mem(4).with_sentinel(SentinelSpec::on()),
        );
        for t in 0..300u64 {
            let cpu = (t % 4) as usize;
            let addr = 0x1000 + ((t * 36) % 4096) as Addr;
            match t % 5 {
                0 | 3 => {
                    s.access(Cycle(t * 10), MemRequest::store(cpu, addr));
                }
                4 => {
                    s.access(Cycle(t * 10), MemRequest::ifetch(cpu, addr));
                }
                _ => {
                    s.access(Cycle(t * 10), MemRequest::load(cpu, addr));
                }
            }
        }
        assert!(s.violations().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn sentinel_detects_dropped_invalidations() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec = SentinelSpec::with_faults(
            11,
            1_000_000,
            FaultClassSet::only(FaultKind::DroppedInvalidation),
        );
        let mut s = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::load(1, 0x1000)); // both Shared
                                                           // CPU 0's upgrade should invalidate CPU 1; the message is dropped.
        s.access(Cycle(200), MemRequest::store(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::SharedAlongsideOwner
                    || v.kind == ViolationKind::MultipleOwners),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn sentinel_detects_spurious_states() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec =
            SentinelSpec::with_faults(13, 1_000_000, FaultClassSet::only(FaultKind::SpuriousState));
        let mut s = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::store(0, 0x2000)); // CPU 0 Modified
                                                          // CPU 1's read should downgrade CPU 0 to Shared; the injector
                                                          // promotes the copy to Exclusive instead.
        s.access(Cycle(100), MemRequest::load(1, 0x2000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::SharedAlongsideOwner
                    || v.kind == ViolationKind::MultipleOwners),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn miss_kinds_tracked_per_level() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x9000));
        assert_eq!(s.stats().l1d.miss_repl, 1);
        assert_eq!(s.stats().l2.miss_repl, 1);
        assert_eq!(s.stats().l1d.miss_inval, 0);
    }
}

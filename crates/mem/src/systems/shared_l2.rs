//! Shared-secondary-cache architecture (Figure 2 of the paper).
//!
//! Four CPUs with private 16 KB write-through L1 caches (1-cycle hits) share
//! a 4-banked write-back 2 MB L2 through a crossbar. The crossbar and chip
//! crossings raise the L2 latency from 10 to 14 cycles, and the narrower
//! 64-bit datapath raises line-transfer occupancy from 2 to 4 cycles.
//!
//! Coherence follows the scheme the paper describes: the L1s are
//! write-through (no-write-allocate) for shared data and every L2 line
//! carries a directory of which L1s hold a copy. A write or an L2
//! replacement invalidates (or would update) all other cached copies, so no
//! snooping logic is needed in the processors.

use crate::cache::{AccessOutcome, CacheArray, LineState, MissKind};
use crate::config::SystemConfig;
use crate::sentinel::{FaultKind, Sentinel, SentinelViolation, ViolationKind};
use crate::stats::MemStats;
use crate::{AccessKind, Addr, MemRequest, MemResult, MemorySystem, ServiceLevel};
use cmpsim_engine::{BankedResource, Cycle, Port};

use std::collections::HashMap;

/// The shared-L2 multiprocessor memory system.
#[derive(Debug)]
pub struct SharedL2System {
    cfg: SystemConfig,
    l1i: Vec<CacheArray>,
    l1d: Vec<CacheArray>,
    l2: CacheArray,
    l2_banks: BankedResource,
    mem_port: Port,
    /// Directory: line address -> (d-cache presence bits, i-cache presence
    /// bits), one bit per CPU.
    presence: HashMap<Addr, (u8, u8)>,
    stats: MemStats,
    sentinel: Sentinel,
}

impl SharedL2System {
    /// Builds the system from a configuration (see
    /// [`SystemConfig::paper_shared_l2`]).
    pub fn new(cfg: &SystemConfig) -> SharedL2System {
        SharedL2System {
            cfg: *cfg,
            l1i: (0..cfg.n_cpus)
                .map(|_| CacheArray::new("l1i", cfg.l1i))
                .collect(),
            l1d: (0..cfg.n_cpus)
                .map(|_| CacheArray::new("l1d", cfg.l1d))
                .collect(),
            l2: CacheArray::new("shared-l2", cfg.l2),
            l2_banks: BankedResource::new("l2-bank", cfg.l2_banks, u64::from(cfg.l2.line_bytes)),
            mem_port: Port::new("mem"),
            presence: HashMap::new(),
            stats: MemStats::new(),
            sentinel: Sentinel::from_spec(&cfg.sentinel),
        }
    }

    fn line(&self, addr: Addr) -> Addr {
        self.l2.line_addr(addr)
    }

    /// Invalidates every other CPU's L1 copies of `addr`'s line after a
    /// write by `writer` (directory-driven coherence).
    fn invalidate_sharers(&mut self, writer: usize, addr: Addr) {
        let line = self.line(addr);
        let Some(&(d_bits, i_bits)) = self.presence.get(&line) else {
            return;
        };
        let keep = !(1u8 << writer);
        let d_victims = d_bits & keep;
        let i_victims = i_bits & keep;
        // Fault injection (sentinel): drop the invalidation message to one
        // victim L1 while still clearing its directory bit — the stale copy
        // then shows up as a copy-without-presence violation.
        let mut drop_one = (d_victims | i_victims) != 0
            && self.sentinel.inject(FaultKind::DroppedInvalidation, line);
        if let Some((d, i)) = self.presence.get_mut(&line) {
            *d &= !d_victims;
            *i &= !i_victims;
        }
        for cpu in 0..self.cfg.n_cpus {
            if d_victims & (1 << cpu) != 0 {
                if drop_one {
                    drop_one = false;
                } else {
                    self.l1d[cpu].invalidate(addr);
                }
                self.stats.invalidations_sent += 1;
            }
            if i_victims & (1 << cpu) != 0 {
                if drop_one {
                    drop_one = false;
                } else {
                    self.l1i[cpu].invalidate(addr);
                }
                self.stats.invalidations_sent += 1;
            }
        }
    }

    /// Enforces inclusion when the L2 evicts `line`: every L1 copy must go.
    /// These back-invalidations are capacity-driven, so the evicted lines
    /// are *not* marked as coherence-invalidated.
    fn back_invalidate(&mut self, line: Addr) {
        if let Some((d_bits, i_bits)) = self.presence.remove(&line) {
            for cpu in 0..self.cfg.n_cpus {
                if d_bits & (1 << cpu) != 0 {
                    self.l1d[cpu].evict(line);
                }
                if i_bits & (1 << cpu) != 0 {
                    self.l1i[cpu].evict(line);
                }
            }
        }
    }

    fn note_l1_fill(&mut self, cpu: usize, addr: Addr, ifetch: bool, victim: Option<Addr>) {
        let line = self.line(addr);
        // Fault injection (sentinel): record a spurious sharer in the
        // directory — a presence bit with no backing L1 copy.
        let spurious = self.cfg.n_cpus > 1 && self.sentinel.inject(FaultKind::SpuriousState, line);
        let entry = self.presence.entry(line).or_insert((0, 0));
        if ifetch {
            entry.1 |= 1 << cpu;
        } else {
            entry.0 |= 1 << cpu;
        }
        if spurious {
            let ghost = (cpu + 1) % self.cfg.n_cpus;
            entry.0 |= 1 << ghost;
        }
        if let Some(v) = victim {
            if let Some(e) = self.presence.get_mut(&v) {
                if ifetch {
                    e.1 &= !(1 << cpu);
                } else {
                    e.0 &= !(1 << cpu);
                }
            }
        }
    }

    /// Fetches a line into the L2 (memory access), handling the victim.
    /// Returns the completion time.
    fn l2_fill_from_memory(&mut self, addr: Addr, at: Cycle, dirty: bool) -> Cycle {
        let g = self.mem_port.reserve(at, self.cfg.lat.mem_occ);
        self.stats.mem_wait += g - at;
        self.stats.mem_accesses += 1;
        let finish = g + self.cfg.lat.mem_lat;
        let state = if dirty {
            LineState::Modified
        } else {
            LineState::Exclusive
        };
        if let Some(v) = self.l2.fill(addr, state) {
            self.back_invalidate(v.addr);
            if v.dirty {
                // Victim buffer drains right behind the fill: reserve at the
                // grant, not the finish, to keep the port timeline dense.
                self.mem_port.reserve(g, self.cfg.lat.mem_occ);
                self.stats.writebacks += 1;
            }
        }
        finish
    }

    /// Read-only view of one CPU's L1 data cache (tests, probes).
    pub fn l1d(&self, cpu: usize) -> &CacheArray {
        &self.l1d[cpu]
    }

    /// Read-only view of the shared L2 (tests, probes).
    pub fn l2(&self) -> &CacheArray {
        &self.l2
    }

    /// Checks the directory invariant: every valid L1 line has its presence
    /// bit set, and every presence bit points at a valid L1 line backed by
    /// a valid L2 line (inclusion). Diagnostics / property tests.
    pub fn directory_consistent(&self) -> bool {
        for cpu in 0..self.cfg.n_cpus {
            for (cache, side) in [(&self.l1d[cpu], 0usize), (&self.l1i[cpu], 1)] {
                for line in cache.valid_lines() {
                    let Some(&(d, i)) = self.presence.get(&line) else {
                        return false;
                    };
                    let bits = if side == 0 { d } else { i };
                    if bits & (1 << cpu) == 0 {
                        return false;
                    }
                    if !self.l2.probe(line).is_valid() {
                        return false; // inclusion violated
                    }
                }
            }
        }
        for (&line, &(d_bits, i_bits)) in &self.presence {
            for cpu in 0..self.cfg.n_cpus {
                if d_bits & (1 << cpu) != 0 && !self.l1d[cpu].probe(line).is_valid() {
                    return false;
                }
                if i_bits & (1 << cpu) != 0 && !self.l1i[cpu].probe(line).is_valid() {
                    return false;
                }
            }
        }
        true
    }
}

impl SharedL2System {
    /// The untimed-record core of [`MemorySystem::access`]; the trait
    /// method wraps it to record the end-to-end latency histogram. The
    /// private-L1 read hit — one tag lookup, one counter, no shared
    /// resources — returns straight away; misses and stores take the
    /// out-of-line paths so this body inlines into the CPU access loops.
    #[inline]
    fn access_inner(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        let cpu = req.cpu;
        let addr = req.addr;
        match req.kind {
            AccessKind::IFetch | AccessKind::Load => {
                let ifetch = req.kind == AccessKind::IFetch;
                let outcome = if ifetch {
                    self.l1i[cpu].lookup(addr)
                } else {
                    self.l1d[cpu].lookup(addr)
                };
                match outcome {
                    AccessOutcome::Hit(_) => {
                        if ifetch {
                            self.stats.l1i.hit();
                        } else {
                            self.stats.l1d.hit();
                        }
                        MemResult {
                            finish: now + self.cfg.lat.l1_lat,
                            serviced_by: ServiceLevel::L1,
                            l1_miss: false,
                            l1_extra: 0,
                        }
                    }
                    AccessOutcome::Miss(kind) => {
                        self.service_read_miss(now, cpu, addr, ifetch, kind)
                    }
                }
            }
            AccessKind::Store => self.service_store(now, cpu, addr),
        }
    }

    /// A load or ifetch that missed the private L1: cross to the shared L2
    /// banks (and memory beyond), then refill the L1 and the directory.
    fn service_read_miss(
        &mut self,
        now: Cycle,
        cpu: usize,
        addr: Addr,
        ifetch: bool,
        kind: MissKind,
    ) -> MemResult {
        let lstats = if ifetch {
            &mut self.stats.l1i
        } else {
            &mut self.stats.l1d
        };
        lstats.miss(kind);
        let g2 = self
            .l2_banks
            .reserve(u64::from(addr), now, self.cfg.lat.l2_occ);
        self.stats.l2_bank_wait += g2 - now;
        let (finish, level) = match self.l2.lookup(addr) {
            AccessOutcome::Hit(_) => {
                self.stats.l2.hit();
                (g2 + self.cfg.lat.l2_lat, ServiceLevel::L2)
            }
            AccessOutcome::Miss(k2) => {
                self.stats.l2.miss(k2);
                (
                    self.l2_fill_from_memory(addr, g2, false),
                    ServiceLevel::Memory,
                )
            }
        };
        let cache = if ifetch {
            &mut self.l1i[cpu]
        } else {
            &mut self.l1d[cpu]
        };
        // Write-through L1: lines are never dirty.
        let victim = cache.fill(addr, LineState::Shared).map(|v| v.addr);
        self.note_l1_fill(cpu, addr, ifetch, victim);
        MemResult {
            finish,
            serviced_by: level,
            l1_miss: true,
            l1_extra: 0,
        }
    }

    /// Write-through, no-write-allocate: the word always travels to the L2
    /// bank; a hit in the local L1 just updates it. Store hit/miss outcomes
    /// are not folded into the L1 miss rate (no-allocate stores are not
    /// demand fetches).
    fn service_store(&mut self, now: Cycle, cpu: usize, addr: Addr) -> MemResult {
        if matches!(self.l1d[cpu].lookup(addr), AccessOutcome::Hit(_)) {
            // Data updated in place; stays Shared (clean).
        }
        self.invalidate_sharers(cpu, addr);
        // The bank is held for the full request/response handshake
        // including the directory lookup-and-update, so a store
        // occupies it as long as a line transfer on the same
        // datapath — the port contention the paper blames for the
        // shared-L2 architecture's losses on store-heavy workloads.
        let store_occ = self.cfg.lat.l2_occ;
        let g2 = self.l2_banks.reserve(u64::from(addr), now, store_occ);
        self.stats.l2_bank_wait += g2 - now;
        match self.l2.lookup(addr) {
            AccessOutcome::Hit(_) => {
                self.stats.l2.hit();
                self.l2.set_state(addr, LineState::Modified);
                MemResult {
                    finish: g2 + 1,
                    serviced_by: ServiceLevel::L2,
                    l1_miss: false,
                    l1_extra: 0,
                }
            }
            AccessOutcome::Miss(k2) => {
                // Write-allocate at the L2: fetch the line, merge the word.
                self.stats.l2.miss(k2);
                let finish = self.l2_fill_from_memory(addr, g2, true);
                MemResult {
                    finish,
                    serviced_by: ServiceLevel::Memory,
                    l1_miss: false,
                    l1_extra: 0,
                }
            }
        }
    }
}

impl SharedL2System {
    /// Sentinel invariant check, scoped to the line the access touched:
    /// directory presence bits must agree with actual L1 residency, every
    /// L1 copy must be backed by a valid L2 line (inclusion), and the
    /// write-through L1s must never hold dirty data.
    fn sentinel_check_line(&mut self, now: Cycle, cpu: usize, addr: Addr) {
        let line = self.line(addr);
        let (d_bits, i_bits) = self.presence.get(&line).copied().unwrap_or((0, 0));
        let l2_valid = self.l2.probe(line).is_valid();
        let mut found: Vec<(ViolationKind, String)> = Vec::new();
        for c in 0..self.cfg.n_cpus {
            for (cache, bits, side) in
                [(&self.l1d[c], d_bits, "l1d"), (&self.l1i[c], i_bits, "l1i")]
            {
                let state = cache.probe(line);
                let bit = bits & (1 << c) != 0;
                if state.is_valid() && !bit {
                    found.push((
                        ViolationKind::CopyWithoutPresence,
                        format!("cpu {c} {side} holds the line but its directory bit is clear"),
                    ));
                }
                if bit && !state.is_valid() {
                    found.push((
                        ViolationKind::PresenceWithoutCopy,
                        format!("directory marks cpu {c} {side} as a sharer but it holds no copy"),
                    ));
                }
                if state.is_valid() && !l2_valid {
                    found.push((
                        ViolationKind::InclusionViolation,
                        format!("cpu {c} {side} holds the line but the shared L2 does not"),
                    ));
                }
                if state == LineState::Modified {
                    found.push((
                        ViolationKind::WriteThroughDirty,
                        format!("write-through cpu {c} {side} holds the line dirty"),
                    ));
                }
            }
        }
        for (kind, detail) in found {
            self.sentinel.report(now.0, cpu, line, kind, detail);
        }
    }
}

impl MemorySystem for SharedL2System {
    #[inline]
    fn access(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        let res = self.access_inner(now, req);
        self.stats.latency.record(res.finish - now);
        if self.sentinel.on() {
            self.sentinel_check_line(now, req.cpu, req.addr);
        }
        res
    }

    #[inline]
    fn load_would_hit_l1(&self, cpu: usize, addr: Addr) -> bool {
        self.l1d[cpu].probe(addr).is_valid()
    }

    fn line_bytes(&self) -> u32 {
        self.cfg.l1d.line_bytes
    }

    fn n_cpus(&self) -> usize {
        self.cfg.n_cpus
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    fn name(&self) -> &'static str {
        "shared-L2"
    }

    fn port_utilization(&self) -> Vec<crate::PortUtil> {
        vec![
            super::util_of_banks(&self.l2_banks),
            super::util_of_port(&self.mem_port),
        ]
    }

    fn violations(&self) -> &[SentinelViolation] {
        self.sentinel.violations()
    }

    fn injected_faults(&self) -> &[(FaultKind, Addr)] {
        self.sentinel.injected_faults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn sys() -> SharedL2System {
        SharedL2System::new(&SystemConfig::paper_shared_l2(4))
    }

    #[test]
    fn l1_hit_is_one_cycle() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let r = s.access(Cycle(100), MemRequest::load(0, 0x1000));
        assert_eq!(r.finish, Cycle(101));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
    }

    #[test]
    fn l2_hit_costs_fourteen_cycles() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000)); // cold: fills L2
        let r = s.access(Cycle(100), MemRequest::load(1, 0x1000)); // other CPU: L1 miss, L2 hit
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(r.finish, Cycle(114));
    }

    #[test]
    fn cold_miss_costs_memory_latency() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(50));
    }

    #[test]
    fn store_invalidates_other_sharers() {
        let mut s = sys();
        // Both CPUs read the line.
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::load(1, 0x1000));
        // CPU 0 writes through; CPU 1's copy is invalidated.
        s.access(Cycle(200), MemRequest::store(0, 0x1000));
        assert_eq!(s.stats().invalidations_sent, 1);
        assert_eq!(s.l1d(1).probe(0x1000), LineState::Invalid);
        assert_eq!(
            s.l1d(0).probe(0x1000),
            LineState::Shared,
            "writer keeps its copy"
        );
        // CPU 1's next read is an invalidation miss serviced by the L2.
        let r = s.access(Cycle(300), MemRequest::load(1, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(s.stats().l1d.miss_inval, 1);
    }

    #[test]
    fn stores_contend_for_l2_banks() {
        let mut s = sys();
        // Warm the line so stores hit in the L2.
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let a = s.access(Cycle(100), MemRequest::store(0, 0x1000));
        let b = s.access(Cycle(100), MemRequest::store(1, 0x1004));
        assert_eq!(a.finish, Cycle(101));
        assert_eq!(b.finish, Cycle(105), "second store waits STORE_OCC cycles");
        assert!(s.stats().l2_bank_wait >= 2);
        // A store to a different bank does not wait.
        s.access(Cycle(200), MemRequest::load(2, 0x2020));
        let c = s.access(Cycle(300), MemRequest::store(0, 0x1008));
        let d = s.access(Cycle(300), MemRequest::store(2, 0x2020));
        assert_eq!(c.finish, Cycle(301));
        assert_eq!(d.finish, Cycle(301));
    }

    #[test]
    fn store_miss_allocates_in_l2_only() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::store(0, 0x3000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(s.l2().probe(0x3000), LineState::Modified);
        assert_eq!(
            s.l1d(0).probe(0x3000),
            LineState::Invalid,
            "no-write-allocate L1"
        );
    }

    #[test]
    fn l2_eviction_back_invalidates_l1_as_replacement() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        // Evict 0x1000 from the direct-mapped 2MB L2 with a conflicting line.
        let conflict = 0x1000 + 2 * 1024 * 1024;
        s.access(Cycle(100), MemRequest::load(1, conflict));
        assert_eq!(
            s.l1d(0).probe(0x1000),
            LineState::Invalid,
            "inclusion enforced"
        );
        // The refetch is a *replacement* miss, not an invalidation miss.
        s.access(Cycle(200), MemRequest::load(0, 0x1000));
        assert_eq!(s.stats().l1d.miss_inval, 0);
        assert_eq!(s.stats().l1d.miss_repl, 3);
    }

    #[test]
    fn sentinel_clean_traffic_has_no_violations() {
        use crate::sentinel::SentinelSpec;
        let mut s = SharedL2System::new(
            &SystemConfig::paper_shared_l2(4).with_sentinel(SentinelSpec::on()),
        );
        for t in 0..200u64 {
            let cpu = (t % 4) as usize;
            let addr = 0x1000 + ((t * 52) % 4096) as Addr;
            if t % 3 == 0 {
                s.access(Cycle(t * 10), MemRequest::store(cpu, addr));
            } else {
                s.access(Cycle(t * 10), MemRequest::load(cpu, addr));
            }
        }
        assert!(s.violations().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn sentinel_detects_dropped_invalidations() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec = SentinelSpec::with_faults(
            7,
            1_000_000,
            FaultClassSet::only(FaultKind::DroppedInvalidation),
        );
        let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(10), MemRequest::load(1, 0x1000));
        // CPU 0's write should invalidate CPU 1's copy; the injector drops
        // the message, leaving a stale copy the directory no longer tracks.
        s.access(Cycle(20), MemRequest::store(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::CopyWithoutPresence),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn sentinel_detects_spurious_directory_state() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec =
            SentinelSpec::with_faults(9, 1_000_000, FaultClassSet::only(FaultKind::SpuriousState));
        let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::PresenceWithoutCopy),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn ifetch_copies_also_invalidated_on_write() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::ifetch(1, 0x5000));
        s.access(Cycle(100), MemRequest::store(0, 0x5000));
        assert_eq!(s.stats().invalidations_sent, 1);
        let r = s.access(Cycle(200), MemRequest::ifetch(1, 0x5000));
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(s.stats().l1i.miss_inval, 1);
    }
}

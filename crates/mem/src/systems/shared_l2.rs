//! Shared-secondary-cache architecture (Figure 2 of the paper).
//!
//! Four CPUs with private 16 KB write-through L1 caches (1-cycle hits) share
//! a 4-banked write-back 2 MB L2 through a crossbar. The crossbar and chip
//! crossings raise the L2 latency from 10 to 14 cycles, and the narrower
//! 64-bit datapath raises line-transfer occupancy from 2 to 4 cycles.
//!
//! Coherence follows the scheme the paper describes: the L1s are
//! write-through (no-write-allocate) for shared data and every L2 line
//! carries a directory of which L1s hold a copy. A write or an L2
//! replacement invalidates (or would update) all other cached copies, so no
//! snooping logic is needed in the processors.
//!
//! The entire access walk lives in
//! [`DirectoryTopo`](crate::hierarchy::DirectoryTopo); this file only
//! describes the geometry — one CPU per node, private L1s at the front.

use crate::cache::CacheArray;
use crate::config::SystemConfig;
use crate::hierarchy::{DirectoryLayout, DirectoryTopo, HierarchySystem, PerCpu};

/// The shared-L2 multiprocessor memory system.
pub type SharedL2System = HierarchySystem<DirectoryTopo<PerCpu>>;

impl SharedL2System {
    /// Builds the system from a configuration (see
    /// [`SystemConfig::paper_shared_l2`]).
    pub fn new(cfg: &SystemConfig) -> SharedL2System {
        HierarchySystem::from_parts(
            cfg,
            DirectoryTopo::build(
                cfg,
                &DirectoryLayout {
                    cpus_per_node: 1,
                    l1i_spec: cfg.l1i,
                    l1d_spec: cfg.l1d,
                    l1i_name: "l1i",
                    l1d_name: "l1d",
                    node_xbar: None,
                },
            ),
        )
    }

    /// Read-only view of one CPU's L1 data cache (tests, probes).
    pub fn l1d(&self, cpu: usize) -> &CacheArray {
        self.topo().l1d_at(cpu)
    }

    /// Read-only view of the shared L2 (tests, probes).
    pub fn l2(&self) -> &CacheArray {
        self.topo().l2()
    }

    /// Checks the directory invariant: every valid L1 line has its presence
    /// bit set, and every presence bit points at a valid L1 line backed by
    /// a valid L2 line (inclusion). Diagnostics / property tests.
    pub fn directory_consistent(&self) -> bool {
        self.topo().directory_consistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LineState;
    use crate::config::SystemConfig;
    use crate::{MemRequest, MemorySystem, ServiceLevel};
    use cmpsim_engine::Cycle;

    fn sys() -> SharedL2System {
        SharedL2System::new(&SystemConfig::paper_shared_l2(4))
    }

    #[test]
    fn l1_hit_is_one_cycle() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let r = s.access(Cycle(100), MemRequest::load(0, 0x1000));
        assert_eq!(r.finish, Cycle(101));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
    }

    #[test]
    fn l2_hit_costs_fourteen_cycles() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000)); // cold: fills L2
        let r = s.access(Cycle(100), MemRequest::load(1, 0x1000)); // other CPU: L1 miss, L2 hit
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(r.finish, Cycle(114));
    }

    #[test]
    fn cold_miss_costs_memory_latency() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(50));
    }

    #[test]
    fn store_invalidates_other_sharers() {
        let mut s = sys();
        // Both CPUs read the line.
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::load(1, 0x1000));
        // CPU 0 writes through; CPU 1's copy is invalidated.
        s.access(Cycle(200), MemRequest::store(0, 0x1000));
        assert_eq!(s.stats().invalidations_sent, 1);
        assert_eq!(s.l1d(1).probe(0x1000), LineState::Invalid);
        assert_eq!(
            s.l1d(0).probe(0x1000),
            LineState::Shared,
            "writer keeps its copy"
        );
        // CPU 1's next read is an invalidation miss serviced by the L2.
        let r = s.access(Cycle(300), MemRequest::load(1, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(s.stats().l1d.miss_inval, 1);
    }

    #[test]
    fn stores_contend_for_l2_banks() {
        let mut s = sys();
        // Warm the line so stores hit in the L2.
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let a = s.access(Cycle(100), MemRequest::store(0, 0x1000));
        let b = s.access(Cycle(100), MemRequest::store(1, 0x1004));
        assert_eq!(a.finish, Cycle(101));
        assert_eq!(b.finish, Cycle(105), "second store waits STORE_OCC cycles");
        assert!(s.stats().l2_bank_wait >= 2);
        // A store to a different bank does not wait.
        s.access(Cycle(200), MemRequest::load(2, 0x2020));
        let c = s.access(Cycle(300), MemRequest::store(0, 0x1008));
        let d = s.access(Cycle(300), MemRequest::store(2, 0x2020));
        assert_eq!(c.finish, Cycle(301));
        assert_eq!(d.finish, Cycle(301));
    }

    #[test]
    fn store_miss_allocates_in_l2_only() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::store(0, 0x3000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(s.l2().probe(0x3000), LineState::Modified);
        assert_eq!(
            s.l1d(0).probe(0x3000),
            LineState::Invalid,
            "no-write-allocate L1"
        );
    }

    #[test]
    fn l2_eviction_back_invalidates_l1_as_replacement() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        // Evict 0x1000 from the direct-mapped 2MB L2 with a conflicting line.
        let conflict = 0x1000 + 2 * 1024 * 1024;
        s.access(Cycle(100), MemRequest::load(1, conflict));
        assert_eq!(
            s.l1d(0).probe(0x1000),
            LineState::Invalid,
            "inclusion enforced"
        );
        // The refetch is a *replacement* miss, not an invalidation miss.
        s.access(Cycle(200), MemRequest::load(0, 0x1000));
        assert_eq!(s.stats().l1d.miss_inval, 0);
        assert_eq!(s.stats().l1d.miss_repl, 3);
    }

    #[test]
    fn sentinel_clean_traffic_has_no_violations() {
        use crate::sentinel::SentinelSpec;
        use crate::Addr;
        let mut s = SharedL2System::new(
            &SystemConfig::paper_shared_l2(4).with_sentinel(SentinelSpec::on()),
        );
        for t in 0..200u64 {
            let cpu = (t % 4) as usize;
            let addr = 0x1000 + ((t * 52) % 4096) as Addr;
            if t % 3 == 0 {
                s.access(Cycle(t * 10), MemRequest::store(cpu, addr));
            } else {
                s.access(Cycle(t * 10), MemRequest::load(cpu, addr));
            }
        }
        assert!(s.violations().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn sentinel_detects_dropped_invalidations() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec = SentinelSpec::with_faults(
            7,
            1_000_000,
            FaultClassSet::only(FaultKind::DroppedInvalidation),
        );
        let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(10), MemRequest::load(1, 0x1000));
        // CPU 0's write should invalidate CPU 1's copy; the injector drops
        // the message, leaving a stale copy the directory no longer tracks.
        s.access(Cycle(20), MemRequest::store(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::CopyWithoutPresence),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn sentinel_detects_spurious_directory_state() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec =
            SentinelSpec::with_faults(9, 1_000_000, FaultClassSet::only(FaultKind::SpuriousState));
        let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::PresenceWithoutCopy),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn ifetch_copies_also_invalidated_on_write() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::ifetch(1, 0x5000));
        s.access(Cycle(100), MemRequest::store(0, 0x5000));
        assert_eq!(s.stats().invalidations_sent, 1);
        let r = s.access(Cycle(200), MemRequest::ifetch(1, 0x5000));
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(s.stats().l1i.miss_inval, 1);
    }

    #[test]
    fn eight_cpu_geometry_runs_via_config_alone() {
        let mut s = SharedL2System::new(&SystemConfig::paper_shared_l2(8));
        assert_eq!(s.n_cpus(), 8);
        s.access(Cycle(0), MemRequest::load(7, 0x1000));
        let r = s.access(Cycle(100), MemRequest::load(7, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
        // A write by CPU 0 invalidates all seven other sharers.
        for cpu in 1..8 {
            s.access(Cycle(200 + cpu as u64 * 20), MemRequest::load(cpu, 0x1000));
        }
        s.access(Cycle(1000), MemRequest::store(0, 0x1000));
        assert_eq!(s.stats().invalidations_sent, 7);
        assert!(s.directory_consistent());
    }
}

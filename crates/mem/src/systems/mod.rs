//! The three multiprocessor memory architectures of the paper.
//!
//! * [`SharedL1System`] — Figure 1: four CPUs share banked L1 caches through
//!   a crossbar; uniprocessor-like L2 and main memory below. No inter-CPU
//!   coherence hardware exists because sharing happens at L1.
//! * [`SharedL2System`] — Figure 2: private write-through L1s over a banked
//!   shared L2 behind a crossbar; a per-line directory at the L2 keeps the
//!   L1s coherent by invalidating sharers on writes and replacements.
//! * [`SharedMemSystem`] — Figure 3: private write-back L1 + private L2 per
//!   CPU with full MESI snooping on a shared system bus; communication
//!   happens through main memory or >50-cycle cache-to-cache transfers.
//! * [`ClusteredSystem`] — extension (the authors' HPCA'96 follow-up,
//!   reference \[16\]): two 2-CPU clusters each sharing an L1, over the
//!   shared L2.

mod clustered;
mod shared_l1;
mod shared_l2;
mod shared_mem;

use cmpsim_engine::{BankedResource, Port};

/// Utilization snapshot of a single port.
pub(crate) fn util_of_port(p: &Port) -> crate::PortUtil {
    crate::PortUtil {
        name: p.name(),
        grants: p.grants(),
        busy_cycles: p.busy_cycles(),
        wait_cycles: p.wait_cycles(),
    }
}

/// Utilization snapshot aggregated over a bank group.
pub(crate) fn util_of_banks(b: &BankedResource) -> crate::PortUtil {
    let mut u = crate::PortUtil {
        name: b.bank(0).name(),
        grants: 0,
        busy_cycles: 0,
        wait_cycles: 0,
    };
    for k in 0..b.n_banks() {
        let p = b.bank(k);
        u.grants += p.grants();
        u.busy_cycles += p.busy_cycles();
        u.wait_cycles += p.wait_cycles();
    }
    u
}

pub use clustered::{ClusteredSystem, CPUS_PER_CLUSTER};
pub use shared_l1::SharedL1System;
pub use shared_l2::SharedL2System;
pub use shared_mem::SharedMemSystem;

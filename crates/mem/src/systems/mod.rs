//! The five multiprocessor memory architectures as thin topology
//! descriptions over the shared [`hierarchy`](crate::hierarchy) core.
//!
//! * [`SharedL1System`] — Figure 1: four CPUs share banked L1 caches through
//!   a crossbar; uniprocessor-like L2 and main memory below. No inter-CPU
//!   coherence hardware exists because sharing happens at L1.
//! * [`SharedL2System`] — Figure 2: private write-through L1s over a banked
//!   shared L2 behind a crossbar; a per-line directory at the L2 keeps the
//!   L1s coherent by invalidating sharers on writes and replacements.
//! * [`SharedMemSystem`] — Figure 3: private write-back L1 + private L2 per
//!   CPU with full MESI snooping on a shared system bus; communication
//!   happens through main memory or >50-cycle cache-to-cache transfers.
//! * [`ClusteredSystem`] — extension (the authors' HPCA'96 follow-up,
//!   reference \[16\]): `n_cpus / cpus_per_cluster` clusters each sharing
//!   an L1, over the shared L2.
//! * [`MeshSystem`] — scaling extension: a 2D mesh of tiles (private L1 +
//!   router each) over the directory-kept shared L2, line-interleaved
//!   across home tiles with XY-routed, link-contended NoC traffic.
//!
//! Each file here only names its topology type and builds its geometry;
//! the access walks, the directory/invalidation engine, the MESI snooping
//! steps, and the `MemorySystem` boilerplate all live in
//! [`crate::hierarchy`].

mod clustered;
mod mesh;
mod shared_l1;
mod shared_l2;
mod shared_mem;

pub use clustered::ClusteredSystem;
pub use mesh::{MeshSystem, MeshTopo, LINK_LAT, LINK_OCC};
pub use shared_l1::{SharedL1System, SharedL1Topo};
pub use shared_l2::SharedL2System;
pub use shared_mem::{SharedMemSystem, SharedMemTopo};

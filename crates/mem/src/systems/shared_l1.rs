//! Shared-primary-cache architecture (Figure 1 of the paper).
//!
//! Four CPUs share 4-way banked write-back L1 instruction and data caches
//! through a crossbar. The crossbar and bank arbitration raise the L1 hit
//! latency to 3 cycles; bank conflicts between CPUs add contention on top.
//! Below the L1 the system is uniprocessor-like: a single 2 MB L2 (10-cycle
//! latency, 2-cycle occupancy on a 128-bit path) and main memory (50-cycle
//! latency, 6-cycle occupancy). No coherence hardware is needed between the
//! four CPUs — they literally share the cache, which also makes the machine
//! sequentially consistent by construction.
//!
//! `SystemConfig::ideal_shared_l1` reproduces the paper's Mipsy-mode
//! idealization (1-cycle hits, no bank contention) so the simple CPU model
//! is not penalized for latencies it cannot hide.
//!
//! The topology is a [`Topology`] over the shared
//! [`HierarchyCore`](crate::hierarchy::HierarchyCore): one pooled L1 pair
//! with banked crossbar arbitration in front of a uniprocessor-style
//! [`UniBack`].

use crate::cache::{AccessOutcome, CacheArray, LineState, MissKind};
use crate::config::SystemConfig;
use crate::hierarchy::{frontend, HierarchyCore, HierarchySystem, Topology, UniBack};
use crate::sentinel::ViolationKind;
use crate::{AccessKind, Addr, CpuId, MemRequest, MemResult, PortUtil, ServiceLevel};
use cmpsim_engine::{BankedResource, Cycle};

/// The shared-L1 topology: pooled write-back L1s behind a banked crossbar,
/// a single L2 and memory below.
#[derive(Debug)]
pub struct SharedL1Topo {
    l1i: CacheArray,
    l1d: CacheArray,
    l1i_banks: BankedResource,
    l1d_banks: BankedResource,
    back: UniBack,
}

/// The shared-L1 multiprocessor memory system.
pub type SharedL1System = HierarchySystem<SharedL1Topo>;

impl SharedL1System {
    /// Builds the system from a configuration (see
    /// [`SystemConfig::paper_shared_l1`]).
    pub fn new(cfg: &SystemConfig) -> SharedL1System {
        HierarchySystem::from_parts(
            cfg,
            SharedL1Topo {
                l1i: CacheArray::new("shared-l1i", cfg.l1i),
                l1d: CacheArray::new("shared-l1d", cfg.l1d),
                l1i_banks: BankedResource::new(
                    "l1i-bank",
                    cfg.l1_banks,
                    u64::from(cfg.l1i.line_bytes),
                ),
                l1d_banks: BankedResource::new(
                    "l1d-bank",
                    cfg.l1_banks,
                    u64::from(cfg.l1d.line_bytes),
                ),
                back: UniBack::new(cfg),
            },
        )
    }

    /// Read-only view of the shared L1 data cache (tests, probes).
    pub fn l1d(&self) -> &CacheArray {
        &self.topo().l1d
    }

    /// Read-only view of the L2 (tests, probes).
    pub fn l2(&self) -> &CacheArray {
        &self.topo().back.l2
    }

    /// Total cycles lost to L1 bank conflicts so far.
    pub fn l1_bank_wait(&self) -> u64 {
        self.topo().l1i_banks.total_wait_cycles() + self.topo().l1d_banks.total_wait_cycles()
    }
}

impl SharedL1Topo {
    /// Refills the L2 and L1 after a memory access and pays for any dirty
    /// victims. Write-backs are off the critical path for the triggering
    /// request; they reserve port occupancy at the transaction's *grant*
    /// time (victim buffers drain right behind the fill), so they cannot
    /// leave dead holes in the port timeline.
    fn fill_from_memory(
        &mut self,
        core: &mut HierarchyCore,
        is_ifetch: bool,
        addr: u32,
        write: bool,
        at: Cycle,
    ) {
        if let Some(v) = self.back.l2.fill(addr, LineState::Exclusive) {
            if v.dirty {
                self.back.mem_port.reserve(at, core.cfg.lat.mem_occ);
                core.stats.writebacks += 1;
            }
        }
        self.fill_l1(core, is_ifetch, addr, write, at);
    }

    fn fill_l1(
        &mut self,
        core: &mut HierarchyCore,
        is_ifetch: bool,
        addr: u32,
        write: bool,
        at: Cycle,
    ) {
        let state = if write {
            LineState::Modified
        } else {
            LineState::Exclusive
        };
        let cache = if is_ifetch {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        frontend::fill_writeback_l1(
            cache,
            addr,
            state,
            at,
            &mut self.back.l2,
            &mut self.back.l2_port,
            core.cfg.lat.l2_occ,
            &mut self.back.mem_port,
            core.cfg.lat.mem_occ,
            &mut core.stats,
        );
    }

    /// Everything below the shared L1: classify the miss, walk the L2 and
    /// memory ports. Out of line on purpose — see [`Topology::access`].
    #[allow(clippy::too_many_arguments)] // disjoint &mut core fields, by design
    fn service_miss(
        &mut self,
        core: &mut HierarchyCore,
        is_ifetch: bool,
        write: bool,
        addr: u32,
        kind: MissKind,
        grant: Cycle,
        l1_extra: u64,
    ) -> MemResult {
        let lstats = if is_ifetch {
            &mut core.stats.l1i
        } else {
            &mut core.stats.l1d
        };
        lstats.miss(kind);
        // Tag check overlaps arbitration for the next level: the
        // request reaches the L2 at its L1 grant time, so the
        // contention-free totals match Table 2 exactly.
        let g2 = self.back.l2_port.reserve(grant, core.cfg.lat.l2_occ);
        core.stats.l2_bank_wait += g2 - grant;
        match self.back.l2.lookup(addr) {
            AccessOutcome::Hit(_) => {
                core.stats.l2.hit();
                let finish = g2 + core.cfg.lat.l2_lat;
                self.fill_l1(core, is_ifetch, addr, write, g2);
                MemResult {
                    finish,
                    serviced_by: ServiceLevel::L2,
                    l1_miss: true,
                    l1_extra,
                }
            }
            AccessOutcome::Miss(l2kind) => {
                core.stats.l2.miss(l2kind);
                let g3 = self.back.mem_port.reserve(g2, core.cfg.lat.mem_occ);
                core.stats.mem_wait += g3 - g2;
                core.stats.mem_accesses += 1;
                let finish = g3 + core.cfg.lat.mem_lat;
                self.fill_from_memory(core, is_ifetch, addr, write, g3);
                MemResult {
                    finish,
                    serviced_by: ServiceLevel::Memory,
                    l1_miss: true,
                    l1_extra,
                }
            }
        }
    }
}

impl Topology for SharedL1Topo {
    const NAME: &'static str = "shared-L1";

    /// CPUs communicate through the shared L1 itself, so the fastest
    /// cross-CPU path is one L1 hit: 1 cycle idealized, else the crossbar
    /// hit latency.
    fn cross_cpu_lookahead(&self, core: &HierarchyCore) -> u64 {
        if core.cfg.ideal_shared_l1 {
            1
        } else {
            core.cfg.lat.l1_lat
        }
    }

    /// The hit path (bank grant, one tag lookup, one counter) stays inline;
    /// the miss machinery lives in `SharedL1Topo::service_miss` so this
    /// body is small enough to inline into the CPU models' access loops.
    #[inline]
    fn access(&mut self, core: &mut HierarchyCore, now: Cycle, req: MemRequest) -> MemResult {
        let is_ifetch = req.kind == AccessKind::IFetch;
        let write = req.kind == AccessKind::Store;
        let addr = req.addr;

        // L1 bank arbitration + crossbar traversal.
        let (grant, l1_lat) = if core.cfg.ideal_shared_l1 {
            (now, 1)
        } else {
            let banks = if is_ifetch {
                &mut self.l1i_banks
            } else {
                &mut self.l1d_banks
            };
            let g = banks.reserve(u64::from(addr), now, core.cfg.lat.l1_occ);
            (g, core.cfg.lat.l1_lat)
        };
        let l1_extra = (grant - now) + (l1_lat - 1);
        core.stats.l1_bank_wait += grant - now;

        let outcome = if is_ifetch {
            self.l1i.lookup(addr)
        } else {
            self.l1d.lookup(addr)
        };
        match outcome {
            AccessOutcome::Hit(_) => {
                if is_ifetch {
                    core.stats.l1i.hit();
                } else {
                    core.stats.l1d.hit();
                }
                if write {
                    self.l1d.set_state(addr, LineState::Modified);
                }
                MemResult {
                    finish: grant + l1_lat,
                    serviced_by: ServiceLevel::L1,
                    l1_miss: false,
                    l1_extra,
                }
            }
            AccessOutcome::Miss(kind) => {
                self.service_miss(core, is_ifetch, write, addr, kind, grant, l1_extra)
            }
        }
    }

    /// With no coherence hardware the interesting invariant is physical:
    /// a line must never be resident in more than one way of a set.
    fn check_line(&self, core: &mut HierarchyCore, now: Cycle, cpu: CpuId, addr: Addr) {
        let line = self.back.l2.line_addr(addr);
        let mut found: Vec<(ViolationKind, String)> = Vec::new();
        for (cache, what) in [
            (&self.l1d, "shared l1d"),
            (&self.l1i, "shared l1i"),
            (&self.back.l2, "l2"),
        ] {
            let ways = cache.ways_holding(line);
            if ways > 1 {
                found.push((
                    ViolationKind::DuplicateResidency,
                    format!("{what} holds the line in {ways} ways of one set"),
                ));
            }
        }
        for (kind, detail) in found {
            core.sentinel.report(now.0, cpu, line, kind, detail);
        }
    }

    #[inline]
    fn load_would_hit_l1(&self, _cpu: CpuId, addr: Addr) -> bool {
        self.l1d.probe(addr).is_valid()
    }

    fn push_port_util(&self, out: &mut Vec<PortUtil>) {
        out.push(crate::hierarchy::util_of_banks(&self.l1i_banks));
        out.push(crate::hierarchy::util_of_banks(&self.l1d_banks));
        out.push(crate::hierarchy::util_of_port(&self.back.l2_port));
        out.push(crate::hierarchy::util_of_port(&self.back.mem_port));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::MemorySystem;

    fn sys() -> SharedL1System {
        SharedL1System::new(&SystemConfig::paper_shared_l1(4))
    }

    #[test]
    fn cold_miss_costs_memory_latency() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(50));
        assert!(r.l1_miss);
    }

    #[test]
    fn hit_costs_three_cycles_including_crossbar() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let r = s.access(Cycle(100), MemRequest::load(1, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
        assert_eq!(r.finish, Cycle(103));
        assert_eq!(r.l1_extra, 2);
        assert!(!r.l1_miss);
    }

    #[test]
    fn ideal_mode_hits_in_one_cycle() {
        let cfg = SystemConfig::paper_shared_l1(4).with_ideal_shared_l1(true);
        let mut s = SharedL1System::new(&cfg);
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let r = s.access(Cycle(100), MemRequest::load(1, 0x1000));
        assert_eq!(r.finish, Cycle(101));
        assert_eq!(r.l1_extra, 0);
    }

    #[test]
    fn l2_hit_costs_table2_latency() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000)); // fill L2+L1
                                                         // Evict from tiny shared of L1? L1 is 64KB; use a conflicting line:
                                                         // same L1 set needs addr + way_stride * assoc. 64KB 2-way 32B:
                                                         // 1024 sets, stride 32KB. Fill two more lines mapping to the set.
        s.access(Cycle(200), MemRequest::load(0, 0x1000 + 32 * 1024));
        s.access(Cycle(400), MemRequest::load(0, 0x1000 + 64 * 1024));
        // 0x1000 evicted from L1 but still in L2.
        let r = s.access(Cycle(600), MemRequest::load(0, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(r.finish, Cycle(610));
    }

    #[test]
    fn bank_conflict_delays_second_cpu() {
        let mut s = sys();
        // Warm two lines in the same bank (banked by line address: lines
        // 0x1000 and 0x1000+4*32 share bank 0 of 4).
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::load(1, 0x1080));
        let a = s.access(Cycle(200), MemRequest::load(0, 0x1000));
        let b = s.access(Cycle(200), MemRequest::load(1, 0x1080));
        assert_eq!(a.finish, Cycle(203));
        assert_eq!(b.finish, Cycle(204), "same bank: 1-cycle occupancy wait");
        assert_eq!(b.l1_extra, 3);
        // Different bank: no conflict.
        s.access(Cycle(300), MemRequest::load(2, 0x10a0));
        let c = s.access(Cycle(400), MemRequest::load(0, 0x1000));
        let d = s.access(Cycle(400), MemRequest::load(2, 0x10a0));
        assert_eq!(c.finish, Cycle(403));
        assert_eq!(d.finish, Cycle(403));
    }

    #[test]
    fn no_invalidation_misses_ever() {
        // Sharing happens in the cache: a write by CPU 0 is immediately
        // visible to CPU 1 with no coherence traffic.
        let mut s = sys();
        s.access(Cycle(0), MemRequest::store(0, 0x2000));
        let r = s.access(Cycle(100), MemRequest::load(1, 0x2000));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
        assert_eq!(s.stats().l1d.miss_inval, 0);
        assert_eq!(s.stats().invalidations_sent, 0);
    }

    #[test]
    fn store_marks_line_dirty_and_writeback_counted() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::store(0, 0x1000));
        assert_eq!(s.l1d().probe(0x1000), LineState::Modified);
        // Force eviction of the dirty line (fill the 2-way set twice more).
        s.access(Cycle(100), MemRequest::load(0, 0x1000 + 32 * 1024));
        s.access(Cycle(200), MemRequest::load(0, 0x1000 + 64 * 1024));
        assert_eq!(s.stats().writebacks, 1);
    }

    #[test]
    fn sentinel_clean_traffic_has_no_violations() {
        use crate::sentinel::SentinelSpec;
        let mut s = SharedL1System::new(
            &SystemConfig::paper_shared_l1(4).with_sentinel(SentinelSpec::on()),
        );
        for t in 0..200u64 {
            let cpu = (t % 4) as usize;
            let addr = 0x1000 + ((t * 44) % 8192) as Addr;
            if t % 4 == 0 {
                s.access(Cycle(t * 10), MemRequest::store(cpu, addr));
            } else {
                s.access(Cycle(t * 10), MemRequest::load(cpu, addr));
            }
        }
        assert!(s.violations().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn ifetch_uses_instruction_cache() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::ifetch(0, 0x4000));
        let r = s.access(Cycle(100), MemRequest::ifetch(3, 0x4000));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
        assert_eq!(s.stats().l1i.accesses, 2);
        assert_eq!(s.stats().l1i.misses(), 1);
        assert_eq!(s.stats().l1d.accesses, 0);
    }
}

//! Clustered shared-cache architecture — the extension studied in the
//! authors' companion paper (reference \[16\], Nayfeh, Olukotun & Singh,
//! "The Impact of Shared-Cache Clustering in Small-Scale Shared-Memory
//! Multiprocessors", HPCA 1996).
//!
//! A middle point between the paper's shared-L1 and shared-L2 designs: the
//! four CPUs form two clusters of two, each cluster sharing a 32 KB
//! write-through L1 through a small (2-cycle) crossbar; the clusters share
//! the banked L2 of the shared-L2 architecture, whose per-line directory
//! now tracks *clusters* instead of CPUs. Intra-cluster sharing is nearly
//! free; inter-cluster sharing costs an L2 round trip.

use crate::cache::{AccessOutcome, CacheArray, LineState};
use crate::config::SystemConfig;
use crate::sentinel::{FaultKind, Sentinel, SentinelViolation, ViolationKind};
use crate::stats::MemStats;
use crate::{AccessKind, Addr, MemRequest, MemResult, MemorySystem, ServiceLevel};
use cmpsim_engine::{BankedResource, Cycle, Port};

use std::collections::HashMap;

/// CPUs per cluster (two clusters in the 4-CPU study).
pub const CPUS_PER_CLUSTER: usize = 2;

/// Extra hit latency of the intra-cluster crossbar: smaller than the
/// 4-way shared-L1 crossbar's 2 extra cycles.
const CLUSTER_L1_LAT: u64 = 2;

/// The clustered shared-L1-over-shared-L2 memory system.
#[derive(Debug)]
pub struct ClusteredSystem {
    cfg: SystemConfig,
    n_clusters: usize,
    l1i: Vec<CacheArray>,
    l1d: Vec<CacheArray>,
    l1_banks: Vec<BankedResource>,
    l2: CacheArray,
    l2_banks: BankedResource,
    mem_port: Port,
    /// Directory: line -> (d-presence bits, i-presence bits) per cluster.
    presence: HashMap<Addr, (u8, u8)>,
    stats: MemStats,
    sentinel: Sentinel,
}

impl ClusteredSystem {
    /// Builds the clustered system. `cfg` follows the shared-L2 paper
    /// configuration; each cluster's L1 is half the shared-L1's capacity
    /// (2 × 16 KB pooled) with two banks.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.n_cpus` is a multiple of [`CPUS_PER_CLUSTER`].
    /// Use [`ClusteredSystem::try_new`] for a fallible variant.
    pub fn new(cfg: &SystemConfig) -> ClusteredSystem {
        ClusteredSystem::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects CPU counts that leave a partial
    /// cluster.
    pub fn try_new(cfg: &SystemConfig) -> Result<ClusteredSystem, crate::ConfigError> {
        if !cfg.n_cpus.is_multiple_of(CPUS_PER_CLUSTER) {
            return Err(crate::ConfigError::PartialCluster {
                n_cpus: cfg.n_cpus,
                cpus_per_cluster: CPUS_PER_CLUSTER,
            });
        }
        let n_clusters = cfg.n_cpus / CPUS_PER_CLUSTER;
        let l1_spec = crate::CacheSpec::new(
            cfg.l1d.size_bytes * CPUS_PER_CLUSTER as u32,
            cfg.l1d.assoc,
            cfg.l1d.line_bytes,
        );
        Ok(ClusteredSystem {
            cfg: *cfg,
            n_clusters,
            l1i: (0..n_clusters)
                .map(|_| CacheArray::new("cluster-l1i", l1_spec))
                .collect(),
            l1d: (0..n_clusters)
                .map(|_| CacheArray::new("cluster-l1d", l1_spec))
                .collect(),
            l1_banks: (0..n_clusters)
                .map(|_| {
                    BankedResource::new(
                        "cluster-l1-bank",
                        CPUS_PER_CLUSTER,
                        u64::from(l1_spec.line_bytes),
                    )
                })
                .collect(),
            l2: CacheArray::new("shared-l2", cfg.l2),
            l2_banks: BankedResource::new("l2-bank", cfg.l2_banks, u64::from(cfg.l2.line_bytes)),
            mem_port: Port::new("mem"),
            presence: HashMap::new(),
            stats: MemStats::new(),
            sentinel: Sentinel::from_spec(&cfg.sentinel),
        })
    }

    fn cluster_of(cpu: usize) -> usize {
        cpu / CPUS_PER_CLUSTER
    }

    fn line(&self, addr: Addr) -> Addr {
        self.l2.line_addr(addr)
    }

    /// Invalidates the other clusters' copies after a write by `writer`'s
    /// cluster.
    fn invalidate_other_clusters(&mut self, writer_cluster: usize, addr: Addr) {
        let line = self.line(addr);
        let Some(&(d_bits, i_bits)) = self.presence.get(&line) else {
            return;
        };
        let keep = !(1u8 << writer_cluster);
        let d_victims = d_bits & keep;
        let i_victims = i_bits & keep;
        // Fault injection (sentinel): drop the invalidation to one victim
        // cluster while still clearing its directory bit.
        let mut drop_one = (d_victims | i_victims) != 0
            && self.sentinel.inject(FaultKind::DroppedInvalidation, line);
        if let Some((d, i)) = self.presence.get_mut(&line) {
            *d &= !d_victims;
            *i &= !i_victims;
        }
        for cl in 0..self.n_clusters {
            if d_victims & (1 << cl) != 0 {
                if drop_one {
                    drop_one = false;
                } else {
                    self.l1d[cl].invalidate(addr);
                }
                self.stats.invalidations_sent += 1;
            }
            if i_victims & (1 << cl) != 0 {
                if drop_one {
                    drop_one = false;
                } else {
                    self.l1i[cl].invalidate(addr);
                }
                self.stats.invalidations_sent += 1;
            }
        }
    }

    fn back_invalidate(&mut self, line: Addr) {
        if let Some((d_bits, i_bits)) = self.presence.remove(&line) {
            for cl in 0..self.n_clusters {
                if d_bits & (1 << cl) != 0 {
                    self.l1d[cl].evict(line);
                }
                if i_bits & (1 << cl) != 0 {
                    self.l1i[cl].evict(line);
                }
            }
        }
    }

    fn note_fill(&mut self, cluster: usize, addr: Addr, ifetch: bool, victim: Option<Addr>) {
        let line = self.line(addr);
        // Fault injection (sentinel): record a spurious sharer cluster.
        let spurious = self.n_clusters > 1 && self.sentinel.inject(FaultKind::SpuriousState, line);
        let entry = self.presence.entry(line).or_insert((0, 0));
        if ifetch {
            entry.1 |= 1 << cluster;
        } else {
            entry.0 |= 1 << cluster;
        }
        if spurious {
            let ghost = (cluster + 1) % self.n_clusters;
            entry.0 |= 1 << ghost;
        }
        if let Some(v) = victim {
            if let Some(e) = self.presence.get_mut(&v) {
                if ifetch {
                    e.1 &= !(1 << cluster);
                } else {
                    e.0 &= !(1 << cluster);
                }
            }
        }
    }

    fn l2_fill_from_memory(&mut self, addr: Addr, at: Cycle, dirty: bool) -> Cycle {
        let g = self.mem_port.reserve(at, self.cfg.lat.mem_occ);
        self.stats.mem_wait += g - at;
        self.stats.mem_accesses += 1;
        let finish = g + self.cfg.lat.mem_lat;
        let state = if dirty {
            LineState::Modified
        } else {
            LineState::Exclusive
        };
        if let Some(v) = self.l2.fill(addr, state) {
            self.back_invalidate(v.addr);
            if v.dirty {
                self.mem_port.reserve(g, self.cfg.lat.mem_occ);
                self.stats.writebacks += 1;
            }
        }
        finish
    }

    /// Read-only view of a cluster's L1 data cache (tests).
    pub fn l1d(&self, cluster: usize) -> &CacheArray {
        &self.l1d[cluster]
    }

    /// Sentinel invariant check, scoped to the line the access touched:
    /// the cluster directory must agree with actual cluster-L1 residency,
    /// inclusion must hold, and the write-through cluster L1s must never
    /// hold dirty data.
    fn sentinel_check_line(&mut self, now: Cycle, cpu: usize, addr: Addr) {
        let line = self.line(addr);
        let (d_bits, i_bits) = self.presence.get(&line).copied().unwrap_or((0, 0));
        let l2_valid = self.l2.probe(line).is_valid();
        let mut found: Vec<(ViolationKind, String)> = Vec::new();
        for cl in 0..self.n_clusters {
            for (cache, bits, side) in [
                (&self.l1d[cl], d_bits, "l1d"),
                (&self.l1i[cl], i_bits, "l1i"),
            ] {
                let state = cache.probe(line);
                let bit = bits & (1 << cl) != 0;
                if state.is_valid() && !bit {
                    found.push((
                        ViolationKind::CopyWithoutPresence,
                        format!(
                            "cluster {cl} {side} holds the line but its directory bit is clear"
                        ),
                    ));
                }
                if bit && !state.is_valid() {
                    found.push((
                        ViolationKind::PresenceWithoutCopy,
                        format!(
                            "directory marks cluster {cl} {side} as a sharer but it holds no copy"
                        ),
                    ));
                }
                if state.is_valid() && !l2_valid {
                    found.push((
                        ViolationKind::InclusionViolation,
                        format!("cluster {cl} {side} holds the line but the shared L2 does not"),
                    ));
                }
                if state == LineState::Modified {
                    found.push((
                        ViolationKind::WriteThroughDirty,
                        format!("write-through cluster {cl} {side} holds the line dirty"),
                    ));
                }
            }
        }
        for (kind, detail) in found {
            self.sentinel.report(now.0, cpu, line, kind, detail);
        }
    }
}

impl MemorySystem for ClusteredSystem {
    fn access(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        let res = self.access_inner(now, req);
        self.stats.latency.record(res.finish - now);
        if self.sentinel.on() {
            self.sentinel_check_line(now, req.cpu, req.addr);
        }
        res
    }

    fn load_would_hit_l1(&self, cpu: usize, addr: Addr) -> bool {
        self.l1d[Self::cluster_of(cpu)].probe(addr).is_valid()
    }

    fn line_bytes(&self) -> u32 {
        self.cfg.l1d.line_bytes
    }

    fn n_cpus(&self) -> usize {
        self.cfg.n_cpus
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    fn name(&self) -> &'static str {
        "clustered"
    }

    fn port_utilization(&self) -> Vec<crate::PortUtil> {
        let mut v: Vec<crate::PortUtil> = self.l1_banks.iter().map(super::util_of_banks).collect();
        v.push(super::util_of_banks(&self.l2_banks));
        v.push(super::util_of_port(&self.mem_port));
        v
    }

    fn violations(&self) -> &[SentinelViolation] {
        self.sentinel.violations()
    }

    fn injected_faults(&self) -> &[(FaultKind, Addr)] {
        self.sentinel.injected_faults()
    }
}

impl ClusteredSystem {
    fn access_inner(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        let cluster = Self::cluster_of(req.cpu);
        let addr = req.addr;
        let ifetch = req.kind == AccessKind::IFetch;

        // Intra-cluster crossbar: bank arbitration + 2-cycle hits (unless
        // idealized for Mipsy, like the shared L1).
        let (grant, l1_lat) = if self.cfg.ideal_shared_l1 {
            (now, 1)
        } else {
            let g = self.l1_banks[cluster].reserve(u64::from(addr), now, self.cfg.lat.l1_occ);
            (g, CLUSTER_L1_LAT)
        };
        let l1_extra = (grant - now) + (l1_lat - 1);
        self.stats.l1_bank_wait += grant - now;

        match req.kind {
            AccessKind::IFetch | AccessKind::Load => {
                let outcome = if ifetch {
                    self.l1i[cluster].lookup(addr)
                } else {
                    self.l1d[cluster].lookup(addr)
                };
                let lstats = if ifetch {
                    &mut self.stats.l1i
                } else {
                    &mut self.stats.l1d
                };
                match outcome {
                    AccessOutcome::Hit(_) => {
                        lstats.hit();
                        MemResult {
                            finish: grant + l1_lat,
                            serviced_by: ServiceLevel::L1,
                            l1_miss: false,
                            l1_extra,
                        }
                    }
                    AccessOutcome::Miss(kind) => {
                        lstats.miss(kind);
                        let g2 = self
                            .l2_banks
                            .reserve(u64::from(addr), grant, self.cfg.lat.l2_occ);
                        self.stats.l2_bank_wait += g2 - grant;
                        let (finish, level) = match self.l2.lookup(addr) {
                            AccessOutcome::Hit(_) => {
                                self.stats.l2.hit();
                                (g2 + self.cfg.lat.l2_lat, ServiceLevel::L2)
                            }
                            AccessOutcome::Miss(k2) => {
                                self.stats.l2.miss(k2);
                                (
                                    self.l2_fill_from_memory(addr, g2, false),
                                    ServiceLevel::Memory,
                                )
                            }
                        };
                        let cache = if ifetch {
                            &mut self.l1i[cluster]
                        } else {
                            &mut self.l1d[cluster]
                        };
                        let victim = cache.fill(addr, LineState::Shared).map(|v| v.addr);
                        self.note_fill(cluster, addr, ifetch, victim);
                        MemResult {
                            finish,
                            serviced_by: level,
                            l1_miss: true,
                            l1_extra,
                        }
                    }
                }
            }
            AccessKind::Store => {
                // Write-through out of the cluster L1 (the cluster keeps its
                // copy updated in place); the directory invalidates the
                // other cluster.
                let _ = self.l1d[cluster].lookup(addr);
                self.invalidate_other_clusters(cluster, addr);
                let store_occ = self.cfg.lat.l2_occ;
                let g2 = self.l2_banks.reserve(u64::from(addr), grant, store_occ);
                self.stats.l2_bank_wait += g2 - grant;
                match self.l2.lookup(addr) {
                    AccessOutcome::Hit(_) => {
                        self.stats.l2.hit();
                        self.l2.set_state(addr, LineState::Modified);
                        MemResult {
                            finish: g2 + 1,
                            serviced_by: ServiceLevel::L2,
                            l1_miss: false,
                            l1_extra,
                        }
                    }
                    AccessOutcome::Miss(k2) => {
                        self.stats.l2.miss(k2);
                        let finish = self.l2_fill_from_memory(addr, g2, true);
                        MemResult {
                            finish,
                            serviced_by: ServiceLevel::Memory,
                            l1_miss: false,
                            l1_extra,
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn sys() -> ClusteredSystem {
        ClusteredSystem::new(&SystemConfig::paper_shared_l2(4))
    }

    #[test]
    fn intra_cluster_sharing_is_an_l1_hit() {
        let mut s = sys();
        // CPU 0 writes; CPU 1 (same cluster) reads: straight from the
        // cluster's shared L1 via the write-through-updated copy.
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::store(0, 0x1000));
        let r = s.access(Cycle(200), MemRequest::load(1, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
        assert_eq!(r.finish, Cycle(202), "2-cycle cluster crossbar hit");
    }

    #[test]
    fn inter_cluster_sharing_goes_through_the_l2() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x2000));
        s.access(Cycle(100), MemRequest::load(2, 0x2000)); // other cluster
                                                           // CPU 0 writes: cluster 1's copy is invalidated.
        s.access(Cycle(200), MemRequest::store(0, 0x2000));
        assert_eq!(s.stats().invalidations_sent, 1);
        let r = s.access(Cycle(300), MemRequest::load(3, 0x2000));
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(s.stats().l1d.miss_inval, 1);
    }

    #[test]
    fn cluster_bank_conflicts_only_within_a_cluster() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::load(2, 0x1000));
        // Same bank, same cluster: the pair conflicts.
        let a = s.access(Cycle(500), MemRequest::load(0, 0x1000));
        let b = s.access(Cycle(500), MemRequest::load(1, 0x1000));
        assert_eq!(b.finish - a.finish, 1, "intra-cluster bank wait");
        // Different clusters never conflict at the L1.
        let c = s.access(Cycle(900), MemRequest::load(0, 0x1000));
        let d = s.access(Cycle(900), MemRequest::load(2, 0x1000));
        assert_eq!(c.finish, d.finish);
    }

    #[test]
    fn ideal_mode_gives_one_cycle_hits() {
        let cfg = SystemConfig::paper_shared_l2(4).with_ideal_shared_l1(true);
        let mut s = ClusteredSystem::new(&cfg);
        s.access(Cycle(0), MemRequest::load(0, 0x3000));
        let r = s.access(Cycle(100), MemRequest::load(1, 0x3000));
        assert_eq!(r.finish, Cycle(101));
    }

    #[test]
    fn cold_miss_reaches_memory() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::load(0, 0x4000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(50));
    }

    #[test]
    #[should_panic(expected = "clusters must be full")]
    fn odd_cpu_counts_rejected() {
        let _ = ClusteredSystem::new(&SystemConfig::paper_shared_l2(3));
    }

    #[test]
    fn try_new_rejects_partial_clusters_with_typed_error() {
        let err = ClusteredSystem::try_new(&SystemConfig::paper_shared_l2(3)).unwrap_err();
        assert!(matches!(
            err,
            crate::ConfigError::PartialCluster {
                n_cpus: 3,
                cpus_per_cluster: 2
            }
        ));
        assert!(ClusteredSystem::try_new(&SystemConfig::paper_shared_l2(4)).is_ok());
    }

    #[test]
    fn sentinel_clean_traffic_has_no_violations() {
        use crate::sentinel::SentinelSpec;
        let mut s = ClusteredSystem::new(
            &SystemConfig::paper_shared_l2(4).with_sentinel(SentinelSpec::on()),
        );
        for t in 0..200u64 {
            let cpu = (t % 4) as usize;
            let addr = 0x1000 + ((t * 52) % 4096) as Addr;
            if t % 3 == 0 {
                s.access(Cycle(t * 10), MemRequest::store(cpu, addr));
            } else {
                s.access(Cycle(t * 10), MemRequest::load(cpu, addr));
            }
        }
        assert!(s.violations().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn sentinel_detects_dropped_invalidations() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec = SentinelSpec::with_faults(
            17,
            1_000_000,
            FaultClassSet::only(FaultKind::DroppedInvalidation),
        );
        let mut s = ClusteredSystem::new(&SystemConfig::paper_shared_l2(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000)); // cluster 0
        s.access(Cycle(100), MemRequest::load(2, 0x1000)); // cluster 1
        s.access(Cycle(200), MemRequest::store(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::CopyWithoutPresence),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn sentinel_detects_spurious_directory_state() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec =
            SentinelSpec::with_faults(19, 1_000_000, FaultClassSet::only(FaultKind::SpuriousState));
        let mut s = ClusteredSystem::new(&SystemConfig::paper_shared_l2(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::PresenceWithoutCopy),
            "{:?}",
            s.violations()
        );
    }
}

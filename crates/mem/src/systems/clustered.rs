//! Clustered shared-cache architecture — the extension studied in the
//! authors' companion paper (reference \[16\], Nayfeh, Olukotun & Singh,
//! "The Impact of Shared-Cache Clustering in Small-Scale Shared-Memory
//! Multiprocessors", HPCA 1996).
//!
//! A middle point between the paper's shared-L1 and shared-L2 designs: the
//! CPUs form `n_cpus / cpus_per_cluster` clusters, each cluster sharing a
//! pooled write-through L1 through a small (2-cycle) crossbar; the clusters
//! share the banked L2 of the shared-L2 architecture, whose per-line
//! directory now tracks *clusters* instead of CPUs. Intra-cluster sharing
//! is nearly free; inter-cluster sharing costs an L2 round trip.
//!
//! The entire access walk lives in
//! [`DirectoryTopo`](crate::hierarchy::DirectoryTopo); this file only
//! describes the geometry — several CPUs per node, a pooled L1 and a small
//! crossbar in front of each node. The cluster geometry comes straight from
//! [`SystemConfig::cpus_per_cluster`], so 4×2, 2×4, or 8×2 systems need no
//! new code.

use crate::cache::CacheArray;
use crate::config::SystemConfig;
use crate::hierarchy::{DirectoryLayout, DirectoryTopo, HierarchySystem, PerCluster};

/// Extra hit latency of the intra-cluster crossbar: smaller than the
/// 4-way shared-L1 crossbar's 2 extra cycles.
const CLUSTER_L1_LAT: u64 = 2;

/// The clustered shared-L1-over-shared-L2 memory system.
pub type ClusteredSystem = HierarchySystem<DirectoryTopo<PerCluster>>;

impl ClusteredSystem {
    /// Builds the clustered system. `cfg` follows the shared-L2 paper
    /// configuration; each cluster's L1 pools the per-CPU capacity
    /// (`cpus_per_cluster` × 16 KB) with one bank per member CPU.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.n_cpus` is a multiple of a non-zero
    /// `cfg.cpus_per_cluster`. Use [`ClusteredSystem::try_new`] for a
    /// fallible variant.
    pub fn new(cfg: &SystemConfig) -> ClusteredSystem {
        ClusteredSystem::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects CPU counts that leave a partial
    /// cluster (or a zero-CPU cluster) and pooled L1 geometries the cache
    /// model cannot represent.
    pub fn try_new(cfg: &SystemConfig) -> Result<ClusteredSystem, crate::ConfigError> {
        let k = cfg.cpus_per_cluster;
        if k == 0 || !cfg.n_cpus.is_multiple_of(k) {
            return Err(crate::ConfigError::PartialCluster {
                n_cpus: cfg.n_cpus,
                cpus_per_cluster: k,
            });
        }
        let l1_spec = crate::CacheSpec::try_new(
            cfg.l1d.size_bytes * k as u32,
            cfg.l1d.assoc,
            cfg.l1d.line_bytes,
        )?;
        Ok(HierarchySystem::from_parts(
            cfg,
            DirectoryTopo::build(
                cfg,
                &DirectoryLayout {
                    cpus_per_node: k,
                    l1i_spec: l1_spec,
                    l1d_spec: l1_spec,
                    l1i_name: "cluster-l1i",
                    l1d_name: "cluster-l1d",
                    node_xbar: Some(("cluster-l1-bank", k, CLUSTER_L1_LAT)),
                },
            ),
        ))
    }

    /// Number of clusters (`n_cpus / cpus_per_cluster`).
    pub fn n_clusters(&self) -> usize {
        self.topo().nodes().n_nodes()
    }

    /// Read-only view of a cluster's L1 data cache (tests).
    pub fn l1d(&self, cluster: usize) -> &CacheArray {
        self.topo().l1d_at(cluster)
    }

    /// Read-only view of the shared L2 (tests, probes).
    pub fn l2(&self) -> &CacheArray {
        self.topo().l2()
    }

    /// Checks the cluster-directory invariant (see
    /// [`DirectoryTopo::directory_consistent`]).
    pub fn directory_consistent(&self) -> bool {
        self.topo().directory_consistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::{MemRequest, MemorySystem, ServiceLevel};
    use cmpsim_engine::Cycle;

    fn sys() -> ClusteredSystem {
        ClusteredSystem::new(&SystemConfig::paper_shared_l2(4))
    }

    #[test]
    fn intra_cluster_sharing_is_an_l1_hit() {
        let mut s = sys();
        // CPU 0 writes; CPU 1 (same cluster) reads: straight from the
        // cluster's shared L1 via the write-through-updated copy.
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::store(0, 0x1000));
        let r = s.access(Cycle(200), MemRequest::load(1, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
        assert_eq!(r.finish, Cycle(202), "2-cycle cluster crossbar hit");
    }

    #[test]
    fn inter_cluster_sharing_goes_through_the_l2() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x2000));
        s.access(Cycle(100), MemRequest::load(2, 0x2000)); // other cluster
                                                           // CPU 0 writes: cluster 1's copy is invalidated.
        s.access(Cycle(200), MemRequest::store(0, 0x2000));
        assert_eq!(s.stats().invalidations_sent, 1);
        let r = s.access(Cycle(300), MemRequest::load(3, 0x2000));
        assert_eq!(r.serviced_by, ServiceLevel::L2);
        assert_eq!(s.stats().l1d.miss_inval, 1);
    }

    #[test]
    fn cluster_bank_conflicts_only_within_a_cluster() {
        let mut s = sys();
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::load(2, 0x1000));
        // Same bank, same cluster: the pair conflicts.
        let a = s.access(Cycle(500), MemRequest::load(0, 0x1000));
        let b = s.access(Cycle(500), MemRequest::load(1, 0x1000));
        assert_eq!(b.finish - a.finish, 1, "intra-cluster bank wait");
        // Different clusters never conflict at the L1.
        let c = s.access(Cycle(900), MemRequest::load(0, 0x1000));
        let d = s.access(Cycle(900), MemRequest::load(2, 0x1000));
        assert_eq!(c.finish, d.finish);
    }

    #[test]
    fn ideal_mode_gives_one_cycle_hits() {
        let cfg = SystemConfig::paper_shared_l2(4).with_ideal_shared_l1(true);
        let mut s = ClusteredSystem::new(&cfg);
        s.access(Cycle(0), MemRequest::load(0, 0x3000));
        let r = s.access(Cycle(100), MemRequest::load(1, 0x3000));
        assert_eq!(r.finish, Cycle(101));
    }

    #[test]
    fn cold_miss_reaches_memory() {
        let mut s = sys();
        let r = s.access(Cycle(0), MemRequest::load(0, 0x4000));
        assert_eq!(r.serviced_by, ServiceLevel::Memory);
        assert_eq!(r.finish, Cycle(50));
    }

    #[test]
    #[should_panic(expected = "clusters must be full")]
    fn odd_cpu_counts_rejected() {
        let _ = ClusteredSystem::new(&SystemConfig::paper_shared_l2(3));
    }

    #[test]
    fn try_new_rejects_partial_clusters_with_typed_error() {
        let err = ClusteredSystem::try_new(&SystemConfig::paper_shared_l2(3)).unwrap_err();
        assert!(matches!(
            err,
            crate::ConfigError::PartialCluster {
                n_cpus: 3,
                cpus_per_cluster: 2
            }
        ));
        assert!(ClusteredSystem::try_new(&SystemConfig::paper_shared_l2(4)).is_ok());
    }

    #[test]
    fn zero_cpus_per_cluster_rejected() {
        let cfg = SystemConfig::paper_shared_l2(4).with_cpus_per_cluster(0);
        let err = ClusteredSystem::try_new(&cfg).unwrap_err();
        assert!(matches!(
            err,
            crate::ConfigError::PartialCluster {
                n_cpus: 4,
                cpus_per_cluster: 0
            }
        ));
    }

    #[test]
    fn two_by_four_geometry_runs_via_config_alone() {
        // 8 CPUs in two clusters of four: intra-cluster sharing stays an
        // L1 hit across all four members; the fourth CPU of the other
        // cluster misses to the L2.
        let cfg = SystemConfig::paper_shared_l2(8).with_cpus_per_cluster(4);
        let mut s = ClusteredSystem::new(&cfg);
        assert_eq!(s.n_cpus(), 8);
        assert_eq!(s.n_clusters(), 2);
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        let r = s.access(Cycle(100), MemRequest::load(3, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L1, "same cluster of four");
        let r = s.access(Cycle(200), MemRequest::load(4, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L2, "other cluster");
        // A write by cluster 0 invalidates cluster 1's single copy.
        s.access(Cycle(300), MemRequest::store(0, 0x1000));
        assert_eq!(s.stats().invalidations_sent, 1);
        assert!(s.directory_consistent());
    }

    #[test]
    fn single_cluster_degenerates_to_one_pooled_l1() {
        // 4 CPUs in one cluster of four: no inter-cluster traffic exists,
        // so a write never sends invalidations.
        let cfg = SystemConfig::paper_shared_l2(4).with_cpus_per_cluster(4);
        let mut s = ClusteredSystem::new(&cfg);
        assert_eq!(s.n_clusters(), 1);
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        s.access(Cycle(100), MemRequest::load(3, 0x1000));
        s.access(Cycle(200), MemRequest::store(2, 0x1000));
        assert_eq!(s.stats().invalidations_sent, 0);
        let r = s.access(Cycle(300), MemRequest::load(1, 0x1000));
        assert_eq!(r.serviced_by, ServiceLevel::L1);
    }

    #[test]
    fn sentinel_clean_traffic_has_no_violations() {
        use crate::sentinel::SentinelSpec;
        use crate::Addr;
        let mut s = ClusteredSystem::new(
            &SystemConfig::paper_shared_l2(4).with_sentinel(SentinelSpec::on()),
        );
        for t in 0..200u64 {
            let cpu = (t % 4) as usize;
            let addr = 0x1000 + ((t * 52) % 4096) as Addr;
            if t % 3 == 0 {
                s.access(Cycle(t * 10), MemRequest::store(cpu, addr));
            } else {
                s.access(Cycle(t * 10), MemRequest::load(cpu, addr));
            }
        }
        assert!(s.violations().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn sentinel_detects_dropped_invalidations() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec = SentinelSpec::with_faults(
            17,
            1_000_000,
            FaultClassSet::only(FaultKind::DroppedInvalidation),
        );
        let mut s = ClusteredSystem::new(&SystemConfig::paper_shared_l2(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000)); // cluster 0
        s.access(Cycle(100), MemRequest::load(2, 0x1000)); // cluster 1
        s.access(Cycle(200), MemRequest::store(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::CopyWithoutPresence),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn sentinel_detects_spurious_directory_state() {
        use crate::sentinel::{FaultClassSet, FaultKind, SentinelSpec, ViolationKind};
        let spec =
            SentinelSpec::with_faults(19, 1_000_000, FaultClassSet::only(FaultKind::SpuriousState));
        let mut s = ClusteredSystem::new(&SystemConfig::paper_shared_l2(4).with_sentinel(spec));
        s.access(Cycle(0), MemRequest::load(0, 0x1000));
        assert!(!s.injected_faults().is_empty());
        assert!(
            s.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::PresenceWithoutCopy),
            "{:?}",
            s.violations()
        );
    }
}

//! Memory-system statistics: the numbers behind the paper's miss-rate
//! tables and execution-time breakdowns.

use crate::cache::MissKind;
use crate::ServiceLevel;
use cmpsim_engine::stats::ratio;
use cmpsim_engine::Histogram;

/// Hit/miss counts for one cache level, with the paper's R/I split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// References presented to this level.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Replacement (cold/capacity/conflict) misses — `L1R`/`L2R`.
    pub miss_repl: u64,
    /// Invalidation (coherence) misses — `L1I`/`L2I`.
    pub miss_inval: u64,
}

impl LevelStats {
    /// Records a hit.
    pub fn hit(&mut self) {
        self.accesses += 1;
        self.hits += 1;
    }

    /// Records a miss of the given kind.
    pub fn miss(&mut self, kind: MissKind) {
        self.accesses += 1;
        match kind {
            MissKind::Replacement => self.miss_repl += 1,
            MissKind::Invalidation => self.miss_inval += 1,
        }
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.miss_repl + self.miss_inval
    }

    /// Local miss rate (misses / references to this cache).
    pub fn miss_rate(&self) -> f64 {
        ratio(self.misses(), self.accesses)
    }

    /// Replacement component of the local miss rate.
    pub fn repl_rate(&self) -> f64 {
        ratio(self.miss_repl, self.accesses)
    }

    /// Invalidation component of the local miss rate.
    pub fn inval_rate(&self) -> f64 {
        ratio(self.miss_inval, self.accesses)
    }

    /// Zeroes the counts.
    pub fn reset(&mut self) {
        *self = LevelStats::default();
    }
}

/// Latency histogram bucket bounds (cycles): separates L1 hits, L2 hits,
/// memory accesses and heavily queued accesses.
const LAT_BOUNDS: [u64; 7] = [2, 4, 8, 16, 32, 64, 128];

/// Aggregate statistics for one memory system.
#[derive(Debug, Clone)]
pub struct MemStats {
    /// L1 data cache (aggregated across CPUs for private configurations).
    pub l1d: LevelStats,
    /// L1 instruction cache.
    pub l1i: LevelStats,
    /// Unified L2.
    pub l2: LevelStats,
    /// Accesses serviced by main memory.
    pub mem_accesses: u64,
    /// Cache-to-cache transfers (shared-memory architecture).
    pub c2c_transfers: u64,
    /// Upgrade (invalidate-only) bus transactions.
    pub upgrades: u64,
    /// Dirty-line write-backs issued.
    pub writebacks: u64,
    /// Lines invalidated in other caches by coherence actions.
    pub invalidations_sent: u64,
    /// Cycles requests spent waiting on busy L1 banks (shared-L1 crossbar
    /// contention, reported under MXS as pipeline stall).
    pub l1_bank_wait: u64,
    /// Cycles requests spent waiting on busy L2 banks / ports.
    pub l2_bank_wait: u64,
    /// Cycles requests spent waiting for the bus or memory ports.
    pub mem_wait: u64,
    /// End-to-end latency distribution of every access (issue to critical
    /// word), including queueing.
    pub latency: Histogram,
}

impl Default for MemStats {
    fn default() -> Self {
        MemStats {
            l1d: LevelStats::default(),
            l1i: LevelStats::default(),
            l2: LevelStats::default(),
            mem_accesses: 0,
            c2c_transfers: 0,
            upgrades: 0,
            writebacks: 0,
            invalidations_sent: 0,
            l1_bank_wait: 0,
            l2_bank_wait: 0,
            mem_wait: 0,
            latency: Histogram::new("access-latency", &LAT_BOUNDS),
        }
    }
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> MemStats {
        MemStats::default()
    }

    /// Records which level serviced an access.
    pub fn serviced(&mut self, level: ServiceLevel) {
        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => {}
            ServiceLevel::Memory => self.mem_accesses += 1,
            ServiceLevel::CacheToCache => self.c2c_transfers += 1,
        }
    }

    /// Zeroes every counter (region-of-interest reset).
    pub fn reset(&mut self) {
        *self = MemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_stats_rates() {
        let mut s = LevelStats::default();
        s.hit();
        s.hit();
        s.miss(MissKind::Replacement);
        s.miss(MissKind::Invalidation);
        assert_eq!(s.accesses, 4);
        assert_eq!(s.misses(), 2);
        assert_eq!(s.miss_rate(), 0.5);
        assert_eq!(s.repl_rate(), 0.25);
        assert_eq!(s.inval_rate(), 0.25);
        s.reset();
        assert_eq!(s.accesses, 0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn mem_stats_service_accounting() {
        let mut m = MemStats::new();
        m.serviced(ServiceLevel::Memory);
        m.serviced(ServiceLevel::CacheToCache);
        m.serviced(ServiceLevel::L1);
        assert_eq!(m.mem_accesses, 1);
        assert_eq!(m.c2c_transfers, 1);
        m.reset();
        assert_eq!(m.mem_accesses, 0);
        assert_eq!(m.c2c_transfers, 0);
        assert_eq!(m.latency.total(), 0);
    }
}

#[cfg(test)]
mod latency_tests {
    use crate::{MemRequest, MemorySystem, SharedL2System, SharedMemSystem, SystemConfig};
    use cmpsim_engine::Cycle;

    #[test]
    fn latency_histogram_separates_hit_classes() {
        let mut sys = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4));
        // Cold miss: ~50 cycles.
        sys.access(Cycle(0), MemRequest::load(0, 0x1000));
        // Warm hit: 1 cycle.
        sys.access(Cycle(1000), MemRequest::load(0, 0x1000));
        let h = &sys.stats().latency;
        assert_eq!(h.total(), 2);
        assert!(h.max() >= 50);
        // One sample in the 1-cycle bucket, one in the >=32 range.
        assert_eq!(h.counts()[0], 1, "the hit lands in the first bucket");
    }

    #[test]
    fn latency_mean_tracks_workload_locality() {
        let mut sys = SharedL2System::new(&SystemConfig::paper_shared_l2(4));
        // All-miss stream.
        for i in 0..64u32 {
            sys.access(
                Cycle(u64::from(i) * 100),
                MemRequest::load(0, 0x10_0000 + i * 64),
            );
        }
        let cold_mean = sys.stats().latency.mean();
        // Re-walk the same lines: hits.
        for i in 0..64u32 {
            sys.access(
                Cycle(100_000 + u64::from(i) * 100),
                MemRequest::load(0, 0x10_0000 + i * 64),
            );
        }
        let mixed_mean = sys.stats().latency.mean();
        assert!(mixed_mean < cold_mean, "hits must pull the mean down");
    }
}

//! Slice-local store journaling for the sharded run loop.
//!
//! The sharded runner (DESIGN.md §12) lets each shard *stage* its CPUs'
//! next instructions against a frozen memory snapshot, then commits all
//! staged steps serially in the canonical `(cycle, cpu)` order. A staged
//! step is valid exactly when no *other* CPU committed a store to any word
//! it read during the same round. [`SliceJournal`] answers that question:
//! the commit spine arms it on [`PhysMem`](crate::PhysMem), every store
//! records the word addresses it touches under the committing CPU's id,
//! and validation asks [`SliceJournal::written_by_other`] per staged read.
//!
//! The journal is word-granular (4-byte) and per-round: a round rarely
//! commits more than a few hundred stores, so a small open-addressed map
//! plus a 64-bit bloom filter in front keeps the common no-conflict case to
//! one multiply and one test.

use crate::cpuset::CpuSet;
use crate::{Addr, CpuId};
use cmpsim_engine::FastMap;

/// Per-round journal of stored words, attributed to the storing CPU.
///
/// # Examples
///
/// ```
/// use cmpsim_mem::slice::SliceJournal;
///
/// let mut j = SliceJournal::new();
/// j.set_cpu(1);
/// j.record(0x100);
/// assert!(j.written_by_other(0x100, 0)); // CPU 0's read conflicts
/// assert!(!j.written_by_other(0x100, 1)); // CPU 1 reads its own store
/// assert!(!j.written_by_other(0x104, 0)); // untouched word
/// j.begin_slice();
/// assert!(!j.written_by_other(0x100, 0)); // new round, journal clear
/// ```
#[derive(Debug, Clone, Default)]
pub struct SliceJournal {
    /// CPU id stamped onto subsequent [`SliceJournal::record`] calls.
    cpu: CpuId,
    /// 64-bit bloom over recorded words: a miss proves no conflict without
    /// touching the map.
    bloom: u64,
    /// Word address → set of CPUs that stored to it this round.
    words: FastMap<Addr, CpuSet>,
}

impl SliceJournal {
    /// An empty journal.
    pub fn new() -> SliceJournal {
        SliceJournal::default()
    }

    /// Starts a new round: forgets every recorded store.
    pub fn begin_slice(&mut self) {
        self.bloom = 0;
        self.words.clear();
    }

    /// Sets the CPU id attributed to subsequent stores.
    pub fn set_cpu(&mut self, cpu: CpuId) {
        debug_assert!(
            cpu < CpuSet::MAX_CPUS,
            "journal CPU id beyond the validated CpuSet ceiling"
        );
        self.cpu = cpu;
    }

    /// Records a store to the word at `word` (callers pass `addr & !3`) by
    /// the current CPU.
    pub fn record(&mut self, word: Addr) {
        self.bloom |= Self::bloom_bit(word);
        self.words.entry(word).or_default().set(self.cpu);
    }

    /// Whether any CPU other than `reader` stored to `word` this round.
    #[inline]
    pub fn written_by_other(&self, word: Addr, reader: CpuId) -> bool {
        if self.bloom & Self::bloom_bit(word) == 0 {
            return false;
        }
        match self.words.get(&word) {
            Some(set) => set.contains_other(reader),
            None => false,
        }
    }

    #[inline]
    fn bloom_bit(word: Addr) -> u64 {
        1u64 << ((word >> 2).wrapping_mul(0x9E37_79B1) >> 26)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_attribute_to_the_set_cpu() {
        let mut j = SliceJournal::new();
        j.set_cpu(0);
        j.record(0x40);
        j.set_cpu(3);
        j.record(0x40);
        // Both CPU 0 and CPU 3 wrote the word: everyone conflicts except a
        // hypothetical sole writer.
        assert!(j.written_by_other(0x40, 0));
        assert!(j.written_by_other(0x40, 3));
        assert!(j.written_by_other(0x40, 1));
    }

    #[test]
    fn own_writes_do_not_conflict() {
        let mut j = SliceJournal::new();
        j.set_cpu(2);
        j.record(0x80);
        j.record(0x84);
        assert!(!j.written_by_other(0x80, 2));
        assert!(!j.written_by_other(0x84, 2));
        assert!(j.written_by_other(0x80, 0));
    }

    #[test]
    fn begin_slice_clears_everything() {
        let mut j = SliceJournal::new();
        j.set_cpu(1);
        for w in (0..4096).step_by(4) {
            j.record(w);
        }
        assert!(j.written_by_other(0x100, 0));
        j.begin_slice();
        for w in (0..4096).step_by(4) {
            assert!(!j.written_by_other(w, 0));
        }
    }

    #[test]
    fn journal_hooks_into_physmem_stores() {
        use crate::PhysMem;
        let mut m = PhysMem::new(4);
        assert!(m.slice_journal().is_none());
        m.arm_slice_journal();
        m.slice_journal_mut().unwrap().set_cpu(1);
        m.write_u32(0x100, 7);
        m.write_u8(0x203, 9);
        // Unaligned word write spans two words.
        m.write_u32(0x306, 0xffff_ffff);
        let j = m.slice_journal().unwrap();
        assert!(j.written_by_other(0x100, 0));
        assert!(j.written_by_other(0x200, 0));
        assert!(j.written_by_other(0x304, 0));
        assert!(j.written_by_other(0x308, 0));
        assert!(!j.written_by_other(0x30c, 0));
        assert!(!j.written_by_other(0x100, 1));
        m.disarm_slice_journal();
        assert!(m.slice_journal().is_none());
    }

    #[test]
    fn page_crossing_write_records_both_pages_words() {
        use crate::PhysMem;
        let mut m = PhysMem::new(2);
        m.arm_slice_journal();
        m.slice_journal_mut().unwrap().set_cpu(0);
        let addr = 0x1000 - 2; // straddles a page boundary
        m.write_u32(addr, 0xa1b2_c3d4);
        let j = m.slice_journal().unwrap();
        assert!(j.written_by_other(0xffc, 1));
        assert!(j.written_by_other(0x1000, 1));
    }
}

//! Set-associative cache tag/state array with LRU replacement and
//! replacement-vs-invalidation miss classification.
//!
//! The paper's miss-rate tables split every cache's misses into a
//! *replacement* component (cold + capacity + conflict; `L1R`, `L2R`) and an
//! *invalidation* component caused by coherence actions (`L1I`, `L2I`).
//! [`CacheArray`] implements the classification the way the original
//! SimOS-era simulators did: when a line is invalidated by a coherence
//! action, its address is remembered; the next miss to that address is an
//! invalidation miss, any other miss is a replacement miss.
//!
//! The array is policy-free: the topology (its owner) decides what states
//! mean (write-through caches only use [`LineState::Shared`] as "valid") and
//! when to call [`CacheArray::set_state`], [`CacheArray::invalidate`], etc.

use crate::config::CacheSpec;
use crate::Addr;
use std::collections::HashSet;

/// MESI-style line states. Write-through caches use only `Invalid`/`Shared`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    Invalid,
    Shared,
    Exclusive,
    Modified,
}

impl LineState {
    /// Whether a line in this state holds valid data.
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }
    /// Whether the line must be written back on eviction.
    pub fn is_dirty(self) -> bool {
        self == LineState::Modified
    }
}

/// Why a miss happened, for the paper's R/I miss breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// Cold, capacity or conflict miss (`L1R`/`L2R`).
    Replacement,
    /// The line was previously invalidated by a coherence action
    /// (`L1I`/`L2I`).
    Invalidation,
}

/// A line evicted by [`CacheArray::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub addr: Addr,
    /// Whether the victim was modified (needs a write-back).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    line_addr: Addr,
    state: LineState,
    lru: u64,
}

const EMPTY: Line = Line {
    line_addr: 0,
    state: LineState::Invalid,
    lru: 0,
};

/// Result of [`CacheArray::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Present; carries the line state.
    Hit(LineState),
    /// Absent; carries the miss classification.
    Miss(MissKind),
}

/// A set-associative tag/state array.
///
/// # Examples
///
/// ```
/// use cmpsim_mem::{CacheArray, CacheSpec, LineState, AccessOutcome, MissKind};
///
/// let mut c = CacheArray::new("l1d", CacheSpec::new(1024, 2, 32));
/// assert_eq!(c.lookup(0x40), AccessOutcome::Miss(MissKind::Replacement));
/// c.fill(0x40, LineState::Exclusive);
/// assert_eq!(c.lookup(0x40), AccessOutcome::Hit(LineState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    name: &'static str,
    spec: CacheSpec,
    n_sets: usize,
    lines: Vec<Line>,
    tick: u64,
    invalidated: HashSet<Addr>,
}

impl CacheArray {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (see
    /// [`CacheSpec::new`]).
    pub fn new(name: &'static str, spec: CacheSpec) -> CacheArray {
        let n_sets = spec.n_sets();
        CacheArray {
            name,
            spec,
            n_sets,
            lines: vec![EMPTY; n_sets * spec.assoc],
            tick: 0,
            invalidated: HashSet::new(),
        }
    }

    /// Line-aligned address of `addr`.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr & !(self.spec.line_bytes - 1)
    }

    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = ((addr / self.spec.line_bytes) as usize) % self.n_sets;
        let start = set * self.spec.assoc;
        start..start + self.spec.assoc
    }

    fn find(&self, addr: Addr) -> Option<usize> {
        let la = self.line_addr(addr);
        self.set_range(addr)
            .find(|&i| self.lines[i].state.is_valid() && self.lines[i].line_addr == la)
    }

    /// Looks up `addr`, updating LRU on a hit. Misses are classified but no
    /// fill happens; the caller decides whether/what to fill.
    pub fn lookup(&mut self, addr: Addr) -> AccessOutcome {
        self.tick += 1;
        match self.find(addr) {
            Some(i) => {
                self.lines[i].lru = self.tick;
                AccessOutcome::Hit(self.lines[i].state)
            }
            None => {
                let la = self.line_addr(addr);
                let kind = if self.invalidated.contains(&la) {
                    MissKind::Invalidation
                } else {
                    MissKind::Replacement
                };
                AccessOutcome::Miss(kind)
            }
        }
    }

    /// State of the line containing `addr` without touching LRU (snoops).
    pub fn probe(&self, addr: Addr) -> LineState {
        self.find(addr)
            .map_or(LineState::Invalid, |i| self.lines[i].state)
    }

    /// Inserts the line containing `addr` with `state`, evicting the LRU way
    /// if the set is full. Returns the victim if a valid line was evicted.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (fills must follow misses).
    pub fn fill(&mut self, addr: Addr, state: LineState) -> Option<Victim> {
        assert!(
            self.find(addr).is_none(),
            "{}: fill of resident line {addr:#x}",
            self.name
        );
        let la = self.line_addr(addr);
        self.invalidated.remove(&la);
        self.tick += 1;
        let range = self.set_range(addr);
        // Prefer an invalid way; otherwise evict true-LRU.
        let slot = range
            .clone()
            .find(|&i| !self.lines[i].state.is_valid())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].lru)
                    .expect("assoc >= 1")
            });
        let victim = if self.lines[slot].state.is_valid() {
            Some(Victim {
                addr: self.lines[slot].line_addr,
                dirty: self.lines[slot].state.is_dirty(),
            })
        } else {
            None
        };
        self.lines[slot] = Line {
            line_addr: la,
            state,
            lru: self.tick,
        };
        victim
    }

    /// Sets the state of a resident line (e.g. `E -> M` on a write hit).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_state(&mut self, addr: Addr, state: LineState) {
        let i = self
            .find(addr)
            .unwrap_or_else(|| panic!("{}: set_state on absent line {addr:#x}", self.name));
        self.lines[i].state = state;
    }

    /// Invalidates the line due to a *coherence action* and remembers it so
    /// the next miss on it is classified as an invalidation miss. Returns
    /// the previous state (`Invalid` if it was not resident).
    pub fn invalidate(&mut self, addr: Addr) -> LineState {
        match self.find(addr) {
            Some(i) => {
                let old = self.lines[i].state;
                self.lines[i].state = LineState::Invalid;
                self.invalidated.insert(self.line_addr(addr));
                old
            }
            None => LineState::Invalid,
        }
    }

    /// Removes the line *without* marking it as coherence-invalidated (used
    /// for inclusion-driven back-invalidations accounted elsewhere, or for
    /// natural evictions driven by an outer level). Returns the old state.
    pub fn evict(&mut self, addr: Addr) -> LineState {
        match self.find(addr) {
            Some(i) => {
                let old = self.lines[i].state;
                self.lines[i].state = LineState::Invalid;
                old
            }
            None => LineState::Invalid,
        }
    }

    /// Downgrades a resident Modified/Exclusive line to Shared (snoop read).
    /// No-op if not resident.
    pub fn downgrade(&mut self, addr: Addr) {
        if let Some(i) = self.find(addr) {
            if self.lines[i].state.is_valid() {
                self.lines[i].state = LineState::Shared;
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident(&self) -> usize {
        self.lines.iter().filter(|l| l.state.is_valid()).count()
    }

    /// Line addresses of every valid resident line (diagnostics and
    /// invariant checks).
    pub fn valid_lines(&self) -> Vec<Addr> {
        self.lines
            .iter()
            .filter(|l| l.state.is_valid())
            .map(|l| l.line_addr)
            .collect()
    }

    /// Cache geometry.
    pub fn spec(&self) -> CacheSpec {
        self.spec
    }

    /// Label for diagnostics.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 2 sets x 2 ways x 32B lines = 128 B.
        CacheArray::new("t", CacheSpec::new(128, 2, 32))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x100), AccessOutcome::Miss(MissKind::Replacement));
        assert_eq!(c.fill(0x100, LineState::Shared), None);
        assert_eq!(c.lookup(0x11f), AccessOutcome::Hit(LineState::Shared));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Set 0 holds lines whose (addr/32) is even: 0x00, 0x40, 0x80...
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        // Touch 0x00 so 0x40 is LRU.
        assert!(matches!(c.lookup(0x00), AccessOutcome::Hit(_)));
        let v = c.fill(0x80, LineState::Shared).expect("conflict eviction");
        assert_eq!(v.addr, 0x40);
        assert!(!v.dirty);
        assert_eq!(c.probe(0x00), LineState::Shared);
        assert_eq!(c.probe(0x40), LineState::Invalid);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.fill(0x00, LineState::Modified);
        c.fill(0x40, LineState::Shared);
        let v = c.fill(0x80, LineState::Shared).expect("eviction");
        assert_eq!(v.addr, 0x00);
        assert!(v.dirty);
    }

    #[test]
    fn invalidation_miss_classification() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        assert_eq!(c.invalidate(0x00), LineState::Shared);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Invalidation));
        // After refill, a natural eviction makes the next miss a replacement.
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        c.fill(0x80, LineState::Shared); // evicts LRU (0x00)
        assert_eq!(c.probe(0x00), LineState::Invalid);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn evict_does_not_mark_invalidation() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        assert_eq!(c.evict(0x00), LineState::Shared);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        // Probing 0x00 must NOT make 0x40 the eviction victim.
        assert_eq!(c.probe(0x00), LineState::Shared);
        let v = c.fill(0x80, LineState::Shared).expect("eviction");
        assert_eq!(v.addr, 0x00, "probe must not refresh LRU");
    }

    #[test]
    fn invalidate_absent_line_is_noop() {
        let mut c = small();
        assert_eq!(c.invalidate(0x1000), LineState::Invalid);
        // Not resident when invalidated => still a replacement (cold) miss.
        // (The invalidated-set only tracks lines that were actually present.)
        assert_eq!(c.lookup(0x1000), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn set_and_downgrade_state() {
        let mut c = small();
        c.fill(0x00, LineState::Exclusive);
        c.set_state(0x00, LineState::Modified);
        assert_eq!(c.probe(0x00), LineState::Modified);
        c.downgrade(0x00);
        assert_eq!(c.probe(0x00), LineState::Shared);
        c.downgrade(0x40); // absent: no-op
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        c.fill(0x00, LineState::Shared); // set 0
        c.fill(0x20, LineState::Shared); // set 1
        c.fill(0x40, LineState::Shared); // set 0
        c.fill(0x60, LineState::Shared); // set 1
        assert_eq!(c.resident(), 4);
    }

    #[test]
    #[should_panic(expected = "fill of resident")]
    fn double_fill_panics() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        c.fill(0x00, LineState::Shared);
    }
}

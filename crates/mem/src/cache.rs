//! Set-associative cache tag/state array with LRU replacement and
//! replacement-vs-invalidation miss classification.
//!
//! The paper's miss-rate tables split every cache's misses into a
//! *replacement* component (cold + capacity + conflict; `L1R`, `L2R`) and an
//! *invalidation* component caused by coherence actions (`L1I`, `L2I`).
//! [`CacheArray`] implements the classification the way the original
//! SimOS-era simulators did: when a line is invalidated by a coherence
//! action, its address is remembered; the next miss to that address is an
//! invalidation miss, any other miss is a replacement miss.
//!
//! The array is policy-free: the topology (its owner) decides what states
//! mean (write-through caches only use [`LineState::Shared`] as "valid") and
//! when to call [`CacheArray::set_state`], [`CacheArray::invalidate`], etc.

use crate::config::CacheSpec;
use crate::Addr;
use std::collections::HashSet;

/// MESI-style line states. Write-through caches use only `Invalid`/`Shared`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    Invalid,
    Shared,
    Exclusive,
    Modified,
}

impl LineState {
    /// Whether a line in this state holds valid data.
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }
    /// Whether the line must be written back on eviction.
    pub fn is_dirty(self) -> bool {
        self == LineState::Modified
    }
}

/// Why a miss happened, for the paper's R/I miss breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// Cold, capacity or conflict miss (`L1R`/`L2R`).
    Replacement,
    /// The line was previously invalidated by a coherence action
    /// (`L1I`/`L2I`).
    Invalidation,
}

/// A line evicted by [`CacheArray::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub addr: Addr,
    /// Whether the victim was modified (needs a write-back).
    pub dirty: bool,
}

/// Result of [`CacheArray::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Present; carries the line state.
    Hit(LineState),
    /// Absent; carries the miss classification.
    Miss(MissKind),
}

/// A set-associative tag/state array.
///
/// # Examples
///
/// ```
/// use cmpsim_mem::{CacheArray, CacheSpec, LineState, AccessOutcome, MissKind};
///
/// let mut c = CacheArray::new("l1d", CacheSpec::new(1024, 2, 32));
/// assert_eq!(c.lookup(0x40), AccessOutcome::Miss(MissKind::Replacement));
/// c.fill(0x40, LineState::Exclusive);
/// assert_eq!(c.lookup(0x40), AccessOutcome::Hit(LineState::Exclusive));
/// ```
/// Tag, state and LRU storage is flattened into three contiguous arrays
/// (structure-of-arrays) indexed `set * assoc + way`: the hit fast path
/// touches one short `tags` span that shares a cache line with its
/// neighbors instead of striding over wider per-line structs, and the set
/// index is a shift-and-mask (power-of-two set counts — the common case —
/// pay no division).
#[derive(Debug, Clone)]
pub struct CacheArray {
    name: &'static str,
    spec: CacheSpec,
    n_sets: usize,
    /// `log2(line_bytes)`.
    line_shift: u32,
    /// `n_sets - 1` when the set count is a power of two, else `usize::MAX`
    /// as the "use modulo" sentinel (odd associativities).
    set_mask: usize,
    /// Line-aligned address per way (valid only where `states` is valid).
    tags: Vec<Addr>,
    states: Vec<LineState>,
    lru: Vec<u64>,
    tick: u64,
    invalidated: HashSet<Addr>,
}

impl CacheArray {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (see
    /// [`CacheSpec::new`]).
    pub fn new(name: &'static str, spec: CacheSpec) -> CacheArray {
        let n_sets = spec.n_sets();
        let n_lines = n_sets * spec.assoc;
        CacheArray {
            name,
            spec,
            n_sets,
            line_shift: spec.line_bytes.trailing_zeros(),
            set_mask: if n_sets.is_power_of_two() {
                n_sets - 1
            } else {
                usize::MAX
            },
            tags: vec![0; n_lines],
            states: vec![LineState::Invalid; n_lines],
            lru: vec![0; n_lines],
            tick: 0,
            invalidated: HashSet::new(),
        }
    }

    /// Line-aligned address of `addr`.
    #[inline]
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr & !(self.spec.line_bytes - 1)
    }

    #[inline]
    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let idx = (addr >> self.line_shift) as usize;
        let set = if self.set_mask != usize::MAX {
            idx & self.set_mask
        } else {
            idx % self.n_sets
        };
        let start = set * self.spec.assoc;
        start..start + self.spec.assoc
    }

    #[inline]
    fn find(&self, addr: Addr) -> Option<usize> {
        let la = self.line_addr(addr);
        self.set_range(addr)
            .find(|&i| self.states[i].is_valid() && self.tags[i] == la)
    }

    /// Looks up `addr`, updating LRU on a hit. Misses are classified but no
    /// fill happens; the caller decides whether/what to fill.
    #[inline]
    pub fn lookup(&mut self, addr: Addr) -> AccessOutcome {
        self.tick += 1;
        match self.find(addr) {
            Some(i) => {
                self.lru[i] = self.tick;
                AccessOutcome::Hit(self.states[i])
            }
            None => {
                let la = self.line_addr(addr);
                let kind = if self.invalidated.contains(&la) {
                    MissKind::Invalidation
                } else {
                    MissKind::Replacement
                };
                AccessOutcome::Miss(kind)
            }
        }
    }

    /// State of the line containing `addr` without touching LRU (snoops).
    #[inline]
    pub fn probe(&self, addr: Addr) -> LineState {
        self.find(addr)
            .map_or(LineState::Invalid, |i| self.states[i])
    }

    /// Inserts the line containing `addr` with `state`, evicting the LRU way
    /// if the set is full. Returns the victim if a valid line was evicted.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (fills must follow misses).
    pub fn fill(&mut self, addr: Addr, state: LineState) -> Option<Victim> {
        assert!(
            self.find(addr).is_none(),
            "{}: fill of resident line {addr:#x}",
            self.name
        );
        let la = self.line_addr(addr);
        self.invalidated.remove(&la);
        self.tick += 1;
        let range = self.set_range(addr);
        // Prefer an invalid way; otherwise evict true-LRU (first minimum).
        let slot = range
            .clone()
            .find(|&i| !self.states[i].is_valid())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lru[i])
                    .expect("set_range is non-empty: CacheSpec::try_new rejects assoc == 0")
            });
        let victim = if self.states[slot].is_valid() {
            Some(Victim {
                addr: self.tags[slot],
                dirty: self.states[slot].is_dirty(),
            })
        } else {
            None
        };
        self.tags[slot] = la;
        self.states[slot] = state;
        self.lru[slot] = self.tick;
        victim
    }

    /// Sets the state of a resident line (e.g. `E -> M` on a write hit).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_state(&mut self, addr: Addr, state: LineState) {
        let i = self
            .find(addr)
            .unwrap_or_else(|| panic!("{}: set_state on absent line {addr:#x}", self.name));
        self.states[i] = state;
    }

    /// Invalidates the line due to a *coherence action* and remembers it so
    /// the next miss on it is classified as an invalidation miss. Returns
    /// the previous state (`Invalid` if it was not resident).
    pub fn invalidate(&mut self, addr: Addr) -> LineState {
        match self.find(addr) {
            Some(i) => {
                let old = self.states[i];
                self.states[i] = LineState::Invalid;
                self.invalidated.insert(self.line_addr(addr));
                old
            }
            None => LineState::Invalid,
        }
    }

    /// Removes the line *without* marking it as coherence-invalidated (used
    /// for inclusion-driven back-invalidations accounted elsewhere, or for
    /// natural evictions driven by an outer level). Returns the old state.
    pub fn evict(&mut self, addr: Addr) -> LineState {
        match self.find(addr) {
            Some(i) => {
                let old = self.states[i];
                self.states[i] = LineState::Invalid;
                old
            }
            None => LineState::Invalid,
        }
    }

    /// Downgrades a resident Modified/Exclusive line to Shared (snoop read).
    /// No-op if not resident.
    pub fn downgrade(&mut self, addr: Addr) {
        if let Some(i) = self.find(addr) {
            if self.states[i].is_valid() {
                self.states[i] = LineState::Shared;
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident(&self) -> usize {
        self.states.iter().filter(|s| s.is_valid()).count()
    }

    /// Number of ways in `addr`'s set currently holding `addr`'s line —
    /// anything above 1 is a duplicate-residency bug. Used by the
    /// coherence sentinel; does not touch LRU.
    pub fn ways_holding(&self, addr: Addr) -> usize {
        let la = self.line_addr(addr);
        self.set_range(addr)
            .filter(|&i| self.states[i].is_valid() && self.tags[i] == la)
            .count()
    }

    /// Line addresses of every valid resident line (diagnostics and
    /// invariant checks).
    pub fn valid_lines(&self) -> Vec<Addr> {
        self.states
            .iter()
            .zip(&self.tags)
            .filter(|(s, _)| s.is_valid())
            .map(|(_, &t)| t)
            .collect()
    }

    /// Cache geometry.
    pub fn spec(&self) -> CacheSpec {
        self.spec
    }

    /// Label for diagnostics.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 2 sets x 2 ways x 32B lines = 128 B.
        CacheArray::new("t", CacheSpec::new(128, 2, 32))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x100), AccessOutcome::Miss(MissKind::Replacement));
        assert_eq!(c.fill(0x100, LineState::Shared), None);
        assert_eq!(c.lookup(0x11f), AccessOutcome::Hit(LineState::Shared));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Set 0 holds lines whose (addr/32) is even: 0x00, 0x40, 0x80...
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        // Touch 0x00 so 0x40 is LRU.
        assert!(matches!(c.lookup(0x00), AccessOutcome::Hit(_)));
        let v = c.fill(0x80, LineState::Shared).expect("conflict eviction");
        assert_eq!(v.addr, 0x40);
        assert!(!v.dirty);
        assert_eq!(c.probe(0x00), LineState::Shared);
        assert_eq!(c.probe(0x40), LineState::Invalid);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.fill(0x00, LineState::Modified);
        c.fill(0x40, LineState::Shared);
        let v = c.fill(0x80, LineState::Shared).expect("eviction");
        assert_eq!(v.addr, 0x00);
        assert!(v.dirty);
    }

    #[test]
    fn invalidation_miss_classification() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        assert_eq!(c.invalidate(0x00), LineState::Shared);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Invalidation));
        // After refill, a natural eviction makes the next miss a replacement.
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        c.fill(0x80, LineState::Shared); // evicts LRU (0x00)
        assert_eq!(c.probe(0x00), LineState::Invalid);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn evict_does_not_mark_invalidation() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        assert_eq!(c.evict(0x00), LineState::Shared);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        // Probing 0x00 must NOT make 0x40 the eviction victim.
        assert_eq!(c.probe(0x00), LineState::Shared);
        let v = c.fill(0x80, LineState::Shared).expect("eviction");
        assert_eq!(v.addr, 0x00, "probe must not refresh LRU");
    }

    #[test]
    fn invalidate_absent_line_is_noop() {
        let mut c = small();
        assert_eq!(c.invalidate(0x1000), LineState::Invalid);
        // Not resident when invalidated => still a replacement (cold) miss.
        // (The invalidated-set only tracks lines that were actually present.)
        assert_eq!(c.lookup(0x1000), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn set_and_downgrade_state() {
        let mut c = small();
        c.fill(0x00, LineState::Exclusive);
        c.set_state(0x00, LineState::Modified);
        assert_eq!(c.probe(0x00), LineState::Modified);
        c.downgrade(0x00);
        assert_eq!(c.probe(0x00), LineState::Shared);
        c.downgrade(0x40); // absent: no-op
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        c.fill(0x00, LineState::Shared); // set 0
        c.fill(0x20, LineState::Shared); // set 1
        c.fill(0x40, LineState::Shared); // set 0
        c.fill(0x60, LineState::Shared); // set 1
        assert_eq!(c.resident(), 4);
    }

    #[test]
    fn ways_holding_counts_duplicates() {
        let mut c = small();
        assert_eq!(c.ways_holding(0x00), 0);
        c.fill(0x00, LineState::Shared);
        assert_eq!(c.ways_holding(0x1f), 1, "same line, any byte");
        c.fill(0x40, LineState::Shared);
        assert_eq!(c.ways_holding(0x00), 1, "other ways do not count");
    }

    #[test]
    #[should_panic(expected = "fill of resident")]
    fn double_fill_panics() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        c.fill(0x00, LineState::Shared);
    }
}

//! Set-associative cache tag/state array with LRU replacement and
//! replacement-vs-invalidation miss classification.
//!
//! The paper's miss-rate tables split every cache's misses into a
//! *replacement* component (cold + capacity + conflict; `L1R`, `L2R`) and an
//! *invalidation* component caused by coherence actions (`L1I`, `L2I`).
//! [`CacheArray`] implements the classification the way the original
//! SimOS-era simulators did: when a line is invalidated by a coherence
//! action, its address is remembered; the next miss to that address is an
//! invalidation miss, any other miss is a replacement miss.
//!
//! The array is policy-free: the topology (its owner) decides what states
//! mean (write-through caches only use [`LineState::Shared`] as "valid") and
//! when to call [`CacheArray::set_state`], [`CacheArray::invalidate`], etc.

use crate::config::CacheSpec;
use crate::Addr;
use cmpsim_engine::FastSet;

/// MESI-style line states. Write-through caches use only `Invalid`/`Shared`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    Invalid,
    Shared,
    Exclusive,
    Modified,
}

impl LineState {
    /// Whether a line in this state holds valid data.
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }
    /// Whether the line must be written back on eviction.
    pub fn is_dirty(self) -> bool {
        self == LineState::Modified
    }
}

/// Why a miss happened, for the paper's R/I miss breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// Cold, capacity or conflict miss (`L1R`/`L2R`).
    Replacement,
    /// The line was previously invalidated by a coherence action
    /// (`L1I`/`L2I`).
    Invalidation,
}

/// A line evicted by [`CacheArray::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub addr: Addr,
    /// Whether the victim was modified (needs a write-back).
    pub dirty: bool,
}

/// Result of [`CacheArray::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Present; carries the line state.
    Hit(LineState),
    /// Absent; carries the miss classification.
    Miss(MissKind),
}

/// A set-associative tag/state array.
///
/// # Examples
///
/// ```
/// use cmpsim_mem::{CacheArray, CacheSpec, LineState, AccessOutcome, MissKind};
///
/// let mut c = CacheArray::new("l1d", CacheSpec::new(1024, 2, 32));
/// assert_eq!(c.lookup(0x40), AccessOutcome::Miss(MissKind::Replacement));
/// c.fill(0x40, LineState::Exclusive);
/// assert_eq!(c.lookup(0x40), AccessOutcome::Hit(LineState::Exclusive));
/// ```
/// Storage is one packed metadata word per way, indexed
/// `set * assoc + way`: the line-aligned tag OR'd with the 2-bit line
/// state in the low bits (lines are at least 4 bytes, so those bits are
/// free). A probe therefore touches a single contiguous array — one host
/// cache line per set — instead of striding over parallel tag/state/LRU
/// arrays, which matters when the simulated L2's metadata is megabytes
/// wide and probed at random. The LRU array exists only for associative
/// arrays (direct-mapped sets have no replacement choice), and the set
/// index is a shift-and-mask (power-of-two set counts — the common case —
/// pay no division).
#[derive(Debug, Clone)]
pub struct CacheArray {
    name: &'static str,
    spec: CacheSpec,
    n_sets: usize,
    /// `log2(line_bytes)`.
    line_shift: u32,
    /// `n_sets - 1` when the set count is a power of two, else `usize::MAX`
    /// as the "use modulo" sentinel (odd associativities).
    set_mask: usize,
    /// Per-way `line_addr | state_code`; `state_code == 0` ⇔ invalid.
    meta: Vec<Addr>,
    /// Last-touch tick per way; empty when `assoc == 1`.
    lru: Vec<u64>,
    tick: u64,
    invalidated: FastSet<Addr>,
}

/// Low metadata bits holding the [`LineState`] code.
const STATE_BITS: Addr = 0b11;

/// Packs a [`LineState`] into the low metadata bits (`Invalid` is 0, so a
/// zeroed array is an empty cache).
#[inline]
fn state_code(state: LineState) -> Addr {
    match state {
        LineState::Invalid => 0,
        LineState::Shared => 1,
        LineState::Exclusive => 2,
        LineState::Modified => 3,
    }
}

/// Decodes the low metadata bits back into a [`LineState`].
#[inline]
fn code_state(meta: Addr) -> LineState {
    match meta & STATE_BITS {
        0 => LineState::Invalid,
        1 => LineState::Shared,
        2 => LineState::Exclusive,
        _ => LineState::Modified,
    }
}

impl CacheArray {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (see
    /// [`CacheSpec::new`]).
    pub fn new(name: &'static str, spec: CacheSpec) -> CacheArray {
        let n_sets = spec.n_sets();
        let n_lines = n_sets * spec.assoc;
        debug_assert!(
            spec.line_bytes >= 4,
            "packed meta needs 2 free low address bits"
        );
        CacheArray {
            name,
            spec,
            n_sets,
            line_shift: spec.line_bytes.trailing_zeros(),
            set_mask: if n_sets.is_power_of_two() {
                n_sets - 1
            } else {
                usize::MAX
            },
            meta: vec![0; n_lines],
            lru: vec![0; if spec.assoc > 1 { n_lines } else { 0 }],
            tick: 0,
            invalidated: FastSet::default(),
        }
    }

    /// Line-aligned address of `addr`.
    #[inline]
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr & !(self.spec.line_bytes - 1)
    }

    #[inline]
    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let idx = (addr >> self.line_shift) as usize;
        let set = if self.set_mask != usize::MAX {
            idx & self.set_mask
        } else {
            idx % self.n_sets
        };
        let start = set * self.spec.assoc;
        start..start + self.spec.assoc
    }

    #[inline]
    fn find(&self, addr: Addr) -> Option<usize> {
        let la = self.line_addr(addr);
        self.set_range(addr)
            .find(|&i| self.meta[i] & !STATE_BITS == la && self.meta[i] & STATE_BITS != 0)
    }

    /// Records `i` as most recently used (no-op for direct-mapped arrays,
    /// which keep no recency state).
    #[inline]
    fn touch_way(&mut self, i: usize) {
        if self.spec.assoc > 1 {
            self.lru[i] = self.tick;
        }
    }

    /// Looks up `addr`, updating LRU on a hit. Misses are classified but no
    /// fill happens; the caller decides whether/what to fill.
    #[inline]
    pub fn lookup(&mut self, addr: Addr) -> AccessOutcome {
        self.tick += 1;
        match self.find(addr) {
            Some(i) => {
                self.touch_way(i);
                AccessOutcome::Hit(code_state(self.meta[i]))
            }
            None => {
                let la = self.line_addr(addr);
                let kind = if self.invalidated.contains(&la) {
                    MissKind::Invalidation
                } else {
                    MissKind::Replacement
                };
                AccessOutcome::Miss(kind)
            }
        }
    }

    /// Touches `addr` for LRU purposes without classifying a miss: the
    /// store path's L1 recency update, where the hit/miss outcome is
    /// unused and the invalidated-set probe would be wasted work. State
    /// evolution (tick, LRU) is identical to [`CacheArray::lookup`].
    #[inline]
    pub fn touch(&mut self, addr: Addr) {
        self.tick += 1;
        if let Some(i) = self.find(addr) {
            self.touch_way(i);
        }
    }

    /// Looks up `addr` and, on a hit, also sets the line's state — a
    /// store's lookup-and-modify in one set walk instead of two. The
    /// returned outcome carries the state *before* the update, exactly as
    /// a [`CacheArray::lookup`] followed by [`CacheArray::set_state`]
    /// would observe it.
    #[inline]
    pub fn lookup_set(&mut self, addr: Addr, state: LineState) -> AccessOutcome {
        self.tick += 1;
        match self.find(addr) {
            Some(i) => {
                self.touch_way(i);
                let old = code_state(self.meta[i]);
                self.meta[i] = (self.meta[i] & !STATE_BITS) | state_code(state);
                AccessOutcome::Hit(old)
            }
            None => {
                let la = self.line_addr(addr);
                let kind = if self.invalidated.contains(&la) {
                    MissKind::Invalidation
                } else {
                    MissKind::Replacement
                };
                AccessOutcome::Miss(kind)
            }
        }
    }

    /// State of the line containing `addr` without touching LRU (snoops).
    #[inline]
    pub fn probe(&self, addr: Addr) -> LineState {
        self.find(addr)
            .map_or(LineState::Invalid, |i| code_state(self.meta[i]))
    }

    /// Way slot holding `addr`'s line, if resident; does not touch LRU.
    /// Slots index side tables kept parallel to the array (the shared-L2
    /// directory keeps its presence bitmaps per L2 way, as the hardware
    /// would).
    #[inline]
    pub fn slot_of(&self, addr: Addr) -> Option<usize> {
        self.find(addr)
    }

    /// Line address resident in way `slot`, if any (inverse of
    /// [`CacheArray::slot_of`], for diagnostics walking a side table).
    pub fn line_at_slot(&self, slot: usize) -> Option<Addr> {
        let m = self.meta[slot];
        (m & STATE_BITS != 0).then_some(m & !STATE_BITS)
    }

    /// Total way slots (`n_sets * assoc`), the length of any parallel
    /// side table.
    pub fn n_slots(&self) -> usize {
        self.meta.len()
    }

    /// Inserts the line containing `addr` with `state`, evicting the LRU way
    /// if the set is full. Returns the victim if a valid line was evicted.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (fills must follow misses).
    pub fn fill(&mut self, addr: Addr, state: LineState) -> Option<Victim> {
        assert!(
            self.find(addr).is_none(),
            "{}: fill of resident line {addr:#x}",
            self.name
        );
        let la = self.line_addr(addr);
        self.invalidated.remove(&la);
        self.tick += 1;
        let range = self.set_range(addr);
        // Prefer an invalid way; otherwise evict true-LRU (first minimum).
        // Direct-mapped sets have exactly one candidate either way.
        let slot = if self.spec.assoc == 1 {
            range.start
        } else {
            range
                .clone()
                .find(|&i| self.meta[i] & STATE_BITS == 0)
                .unwrap_or_else(|| {
                    range
                        .min_by_key(|&i| self.lru[i])
                        .expect("set_range is non-empty: CacheSpec::try_new rejects assoc == 0")
                })
        };
        let m = self.meta[slot];
        let victim = if m & STATE_BITS != 0 {
            Some(Victim {
                addr: m & !STATE_BITS,
                dirty: code_state(m).is_dirty(),
            })
        } else {
            None
        };
        self.meta[slot] = la | state_code(state);
        self.touch_way(slot);
        victim
    }

    /// Sets the state of a resident line (e.g. `E -> M` on a write hit).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_state(&mut self, addr: Addr, state: LineState) {
        let i = self
            .find(addr)
            .unwrap_or_else(|| panic!("{}: set_state on absent line {addr:#x}", self.name));
        self.meta[i] = (self.meta[i] & !STATE_BITS) | state_code(state);
    }

    /// Invalidates the line due to a *coherence action* and remembers it so
    /// the next miss on it is classified as an invalidation miss. Returns
    /// the previous state (`Invalid` if it was not resident).
    pub fn invalidate(&mut self, addr: Addr) -> LineState {
        match self.find(addr) {
            Some(i) => {
                let old = code_state(self.meta[i]);
                self.meta[i] &= !STATE_BITS;
                self.invalidated.insert(self.line_addr(addr));
                old
            }
            None => LineState::Invalid,
        }
    }

    /// Removes the line *without* marking it as coherence-invalidated (used
    /// for inclusion-driven back-invalidations accounted elsewhere, or for
    /// natural evictions driven by an outer level). Returns the old state.
    pub fn evict(&mut self, addr: Addr) -> LineState {
        match self.find(addr) {
            Some(i) => {
                let old = code_state(self.meta[i]);
                self.meta[i] &= !STATE_BITS;
                old
            }
            None => LineState::Invalid,
        }
    }

    /// Downgrades a resident Modified/Exclusive line to Shared (snoop read).
    /// No-op if not resident.
    pub fn downgrade(&mut self, addr: Addr) {
        if let Some(i) = self.find(addr) {
            self.meta[i] = (self.meta[i] & !STATE_BITS) | state_code(LineState::Shared);
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident(&self) -> usize {
        self.meta.iter().filter(|&&m| m & STATE_BITS != 0).count()
    }

    /// Number of ways in `addr`'s set currently holding `addr`'s line —
    /// anything above 1 is a duplicate-residency bug. Used by the
    /// coherence sentinel; does not touch LRU.
    pub fn ways_holding(&self, addr: Addr) -> usize {
        let la = self.line_addr(addr);
        self.set_range(addr)
            .filter(|&i| self.meta[i] & !STATE_BITS == la && self.meta[i] & STATE_BITS != 0)
            .count()
    }

    /// Line addresses of every valid resident line (diagnostics and
    /// invariant checks).
    pub fn valid_lines(&self) -> Vec<Addr> {
        self.meta
            .iter()
            .filter(|&&m| m & STATE_BITS != 0)
            .map(|&m| m & !STATE_BITS)
            .collect()
    }

    /// Cache geometry.
    pub fn spec(&self) -> CacheSpec {
        self.spec
    }

    /// Label for diagnostics.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 2 sets x 2 ways x 32B lines = 128 B.
        CacheArray::new("t", CacheSpec::new(128, 2, 32))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x100), AccessOutcome::Miss(MissKind::Replacement));
        assert_eq!(c.fill(0x100, LineState::Shared), None);
        assert_eq!(c.lookup(0x11f), AccessOutcome::Hit(LineState::Shared));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Set 0 holds lines whose (addr/32) is even: 0x00, 0x40, 0x80...
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        // Touch 0x00 so 0x40 is LRU.
        assert!(matches!(c.lookup(0x00), AccessOutcome::Hit(_)));
        let v = c.fill(0x80, LineState::Shared).expect("conflict eviction");
        assert_eq!(v.addr, 0x40);
        assert!(!v.dirty);
        assert_eq!(c.probe(0x00), LineState::Shared);
        assert_eq!(c.probe(0x40), LineState::Invalid);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.fill(0x00, LineState::Modified);
        c.fill(0x40, LineState::Shared);
        let v = c.fill(0x80, LineState::Shared).expect("eviction");
        assert_eq!(v.addr, 0x00);
        assert!(v.dirty);
    }

    #[test]
    fn invalidation_miss_classification() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        assert_eq!(c.invalidate(0x00), LineState::Shared);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Invalidation));
        // After refill, a natural eviction makes the next miss a replacement.
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        c.fill(0x80, LineState::Shared); // evicts LRU (0x00)
        assert_eq!(c.probe(0x00), LineState::Invalid);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn evict_does_not_mark_invalidation() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        assert_eq!(c.evict(0x00), LineState::Shared);
        assert_eq!(c.lookup(0x00), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        c.fill(0x40, LineState::Shared);
        // Probing 0x00 must NOT make 0x40 the eviction victim.
        assert_eq!(c.probe(0x00), LineState::Shared);
        let v = c.fill(0x80, LineState::Shared).expect("eviction");
        assert_eq!(v.addr, 0x00, "probe must not refresh LRU");
    }

    #[test]
    fn invalidate_absent_line_is_noop() {
        let mut c = small();
        assert_eq!(c.invalidate(0x1000), LineState::Invalid);
        // Not resident when invalidated => still a replacement (cold) miss.
        // (The invalidated-set only tracks lines that were actually present.)
        assert_eq!(c.lookup(0x1000), AccessOutcome::Miss(MissKind::Replacement));
    }

    #[test]
    fn set_and_downgrade_state() {
        let mut c = small();
        c.fill(0x00, LineState::Exclusive);
        c.set_state(0x00, LineState::Modified);
        assert_eq!(c.probe(0x00), LineState::Modified);
        c.downgrade(0x00);
        assert_eq!(c.probe(0x00), LineState::Shared);
        c.downgrade(0x40); // absent: no-op
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        c.fill(0x00, LineState::Shared); // set 0
        c.fill(0x20, LineState::Shared); // set 1
        c.fill(0x40, LineState::Shared); // set 0
        c.fill(0x60, LineState::Shared); // set 1
        assert_eq!(c.resident(), 4);
    }

    #[test]
    fn ways_holding_counts_duplicates() {
        let mut c = small();
        assert_eq!(c.ways_holding(0x00), 0);
        c.fill(0x00, LineState::Shared);
        assert_eq!(c.ways_holding(0x1f), 1, "same line, any byte");
        c.fill(0x40, LineState::Shared);
        assert_eq!(c.ways_holding(0x00), 1, "other ways do not count");
    }

    #[test]
    #[should_panic(expected = "fill of resident")]
    fn double_fill_panics() {
        let mut c = small();
        c.fill(0x00, LineState::Shared);
        c.fill(0x00, LineState::Shared);
    }
}

//! A CPU/node bitset with a fixed small-size fast path.
//!
//! Every layer that tracks sharers — the directory's presence table, the
//! sentinel's residency checks, the slice journal's write-set map — used
//! to carry raw `u32`/`u64` bitmasks, structurally capping configurations
//! at 32 CPUs. [`CpuSet`] lifts that: the first 64 members live in one
//! inline word (no heap traffic, so ≤64-CPU configurations keep the old
//! single-word arithmetic), and larger configurations spill into extra
//! words allocated on first use. Results are identical either way — the
//! representation is invisible to digests.

/// A set of CPU (or node) indices, backed by 64-bit words.
///
/// Word 0 is stored inline; words for indices ≥64 live in a spill vector
/// that stays unallocated until a large index is inserted. All operations
/// on sets confined to the inline word are branch-plus-bit-arithmetic,
/// matching the cost of the raw bitmasks this type replaced.
#[derive(Debug, Clone, Default)]
pub struct CpuSet {
    /// Bits 0..64.
    word0: u64,
    /// Bits 64.. in 64-bit words: `spill[k]` holds indices `64*(k+1)..`.
    /// Empty (never allocated) for small configurations. Trailing zero
    /// words are permitted — equality is logical, ignoring them.
    spill: Vec<u64>,
}

impl PartialEq for CpuSet {
    fn eq(&self, other: &CpuSet) -> bool {
        let n = self.spill.len().max(other.spill.len()) + 1;
        self.word0 == other.word0 && (1..n).all(|w| self.word(w) == other.word(w))
    }
}

impl Eq for CpuSet {}

impl CpuSet {
    /// Largest CPU index + 1 the simulator accepts in a validated
    /// configuration. The representation itself is unbounded; this is the
    /// sanity ceiling `SystemConfig::validate` enforces so a typo'd CPU
    /// count fails fast instead of allocating gigabytes of cache model.
    pub const MAX_CPUS: usize = 1024;

    /// The empty set (usable in `const`/`static` position).
    pub const EMPTY: CpuSet = CpuSet {
        word0: 0,
        spill: Vec::new(),
    };

    /// An empty set.
    #[inline]
    pub fn new() -> CpuSet {
        CpuSet::EMPTY
    }

    /// A set containing exactly `i`.
    #[inline]
    pub fn single(i: usize) -> CpuSet {
        let mut s = CpuSet::new();
        s.set(i);
        s
    }

    #[inline]
    fn word(&self, w: usize) -> u64 {
        if w == 0 {
            self.word0
        } else {
            self.spill.get(w - 1).copied().unwrap_or(0)
        }
    }

    #[inline]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w == 0 {
            &mut self.word0
        } else {
            if self.spill.len() < w {
                self.spill.resize(w, 0);
            }
            &mut self.spill[w - 1]
        }
    }

    /// Inserts `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        *self.word_mut(i >> 6) |= 1u64 << (i & 63);
    }

    /// Removes `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        let w = i >> 6;
        if w == 0 {
            self.word0 &= !(1u64 << (i & 63));
        } else if let Some(word) = self.spill.get_mut(w - 1) {
            *word &= !(1u64 << (i & 63));
        }
    }

    /// Is `i` a member?
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.word(i >> 6) & (1u64 << (i & 63)) != 0
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.word0 == 0 && self.spill.iter().all(|&w| w == 0)
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.word0.count_ones() as usize
            + self
                .spill
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// The set minus member `i` — the "every sharer except the writer"
    /// victim mask the invalidation path computes on each store.
    #[inline]
    pub fn except(&self, i: usize) -> CpuSet {
        let mut out = self.clone();
        out.clear(i);
        out
    }

    /// Removes every member of `other` from `self`.
    #[inline]
    pub fn subtract(&mut self, other: &CpuSet) {
        self.word0 &= !other.word0;
        for (w, o) in self.spill.iter_mut().zip(&other.spill) {
            *w &= !o;
        }
    }

    /// Does the set contain any member other than `i`? This is the
    /// only-other-sharer probe: the slice journal's cross-CPU conflict
    /// test and the directory's "anyone else to invalidate?" early-out.
    #[inline]
    pub fn contains_other(&self, i: usize) -> bool {
        let w = i >> 6;
        let masked = self.word(w) & !(1u64 << (i & 63));
        if masked != 0 {
            return true;
        }
        if w == 0 {
            self.spill.iter().any(|&x| x != 0)
        } else {
            self.word0 != 0
                || self
                    .spill
                    .iter()
                    .enumerate()
                    .any(|(k, &x)| k + 1 != w && x != 0)
        }
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let words = std::iter::once(self.word0).chain(self.spill.iter().copied());
        words.enumerate().flat_map(|(wi, mut w)| {
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((wi << 6) | b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_engine::prop::{self, Source};

    /// A naive model: membership as `Vec<bool>`.
    fn model_of(set: &CpuSet, n: usize) -> Vec<bool> {
        (0..n).map(|i| set.contains(i)).collect()
    }

    fn arbitrary_indices(src: &mut Source) -> Vec<usize> {
        // Bias half the draws into the inline word and half into spill
        // territory so both representations shrink independently.
        src.vec(0..40, |s| {
            if s.bool() {
                s.usize(0..64)
            } else {
                s.usize(0..CpuSet::MAX_CPUS)
            }
        })
    }

    #[test]
    fn prop_set_clear_contains_matches_vec_bool_model() {
        prop::check("cpuset set/clear/contains vs Vec<bool>", |src| {
            let mut set = CpuSet::new();
            let mut model = vec![false; CpuSet::MAX_CPUS];
            for i in arbitrary_indices(src) {
                if src.bool() {
                    set.set(i);
                    model[i] = true;
                } else {
                    set.clear(i);
                    model[i] = false;
                }
            }
            assert_eq!(model_of(&set, CpuSet::MAX_CPUS), model);
            assert_eq!(set.is_empty(), model.iter().all(|&b| !b));
            assert_eq!(set.len(), model.iter().filter(|&&b| b).count());
        });
    }

    #[test]
    fn prop_iter_yields_exactly_the_members_in_order() {
        prop::check("cpuset iter vs Vec<bool>", |src| {
            let mut set = CpuSet::new();
            let mut model = vec![false; CpuSet::MAX_CPUS];
            for i in arbitrary_indices(src) {
                set.set(i);
                model[i] = true;
            }
            let from_iter: Vec<usize> = set.iter().collect();
            let from_model: Vec<usize> = (0..CpuSet::MAX_CPUS).filter(|&i| model[i]).collect();
            assert_eq!(from_iter, from_model);
        });
    }

    #[test]
    fn prop_only_other_sharer_matches_model() {
        prop::check("cpuset contains_other vs Vec<bool>", |src| {
            let mut set = CpuSet::new();
            let mut model = vec![false; CpuSet::MAX_CPUS];
            for i in arbitrary_indices(src) {
                set.set(i);
                model[i] = true;
            }
            let probe = src.usize(0..CpuSet::MAX_CPUS);
            let expect = (0..CpuSet::MAX_CPUS).any(|i| i != probe && model[i]);
            assert_eq!(set.contains_other(probe), expect, "probe {probe}");
        });
    }

    #[test]
    fn prop_except_and_subtract_match_model() {
        prop::check("cpuset except/subtract vs Vec<bool>", |src| {
            let mut a = CpuSet::new();
            let mut b = CpuSet::new();
            let mut ma = vec![false; CpuSet::MAX_CPUS];
            let mut mb = vec![false; CpuSet::MAX_CPUS];
            for i in arbitrary_indices(src) {
                a.set(i);
                ma[i] = true;
            }
            for i in arbitrary_indices(src) {
                b.set(i);
                mb[i] = true;
            }
            let writer = src.usize(0..CpuSet::MAX_CPUS);
            let victims = a.except(writer);
            let mut mv = ma.clone();
            mv[writer] = false;
            assert_eq!(model_of(&victims, CpuSet::MAX_CPUS), mv);
            // `except` leaves the source untouched.
            assert_eq!(model_of(&a, CpuSet::MAX_CPUS), ma);
            a.subtract(&b);
            for i in 0..CpuSet::MAX_CPUS {
                ma[i] &= !mb[i];
            }
            assert_eq!(model_of(&a, CpuSet::MAX_CPUS), ma);
        });
    }

    #[test]
    fn small_sets_never_touch_the_heap() {
        let mut s = CpuSet::new();
        for i in 0..64 {
            s.set(i);
        }
        s.clear(63);
        assert_eq!(s.spill.capacity(), 0, "inline fast path must not spill");
        assert_eq!(s.len(), 63);
        assert!(s.contains_other(0));
        assert!(!CpuSet::single(5).contains_other(5));
    }

    #[test]
    fn take_leaves_an_empty_set() {
        let mut s = CpuSet::single(70);
        let taken = std::mem::take(&mut s);
        assert!(taken.contains(70));
        assert!(s.is_empty());
    }
}

//! Physical memory contents and address spaces.
//!
//! [`PhysMem`] stores the actual bytes the simulated programs compute on,
//! independent of any timing model, plus the per-CPU LL/SC link registers
//! that make the synchronization runtime work. All reads are *total*: an
//! unmapped or unaligned address reads as zero bytes rather than faulting,
//! so speculative wrong-path execution under the MXS model is harmless.
//!
//! [`AddrSpace`] provides the minimal address translation the
//! multiprogramming workload needs: each process's private virtual range is
//! relocated to a disjoint physical range, while the kernel range above
//! [`KERNEL_BASE`] maps identically in every process (shared kernel code and
//! data, as in IRIX).

use crate::sentinel::{FaultInjector, FaultKind, SentinelSpec, SentinelViolation, ViolationKind};
use crate::slice::SliceJournal;
use crate::{Addr, CpuId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Virtual addresses at or above this value are kernel addresses, mapped
/// identically in every address space.
pub const KERNEL_BASE: Addr = 0xC000_0000;

/// Sparse physical memory with per-CPU LL/SC links.
///
/// # Examples
///
/// ```
/// use cmpsim_mem::PhysMem;
/// let mut m = PhysMem::new(4);
/// m.write_u32(0x100, 0xdeadbeef);
/// assert_eq!(m.read_u32(0x100), 0xdeadbeef);
/// assert_eq!(m.read_u32(0x9999_0000), 0, "unmapped reads as zero");
///
/// // LL/SC: a store by another CPU breaks the link.
/// m.set_link(0, 0x200);
/// m.write_u32_tracked(1, 0x200, 7);
/// assert!(!m.check_and_clear_link(0, 0x200));
/// ```
#[derive(Debug)]
pub struct PhysMem {
    /// Page frames; `index` maps page numbers to slots here.
    pages: Vec<Box<[u8; PAGE_BYTES]>>,
    index: HashMap<u32, u32>,
    /// One-entry translation cache, packed `page << 32 | (slot + 1)`; a
    /// zero slot field means invalid. Simulated memory access is the
    /// hottest loop in the whole simulator and exhibits strong page
    /// locality. Atomic (relaxed — it is only a cache) so sharded staging
    /// threads can read memory through a shared `&PhysMem`.
    last: AtomicU64,
    /// Per-CPU link register: line address of an outstanding LL.
    links: Vec<Option<Addr>>,
    line_mask: Addr,
    /// Flat-memory oracle (sentinel mode only): shadows every store and
    /// cross-checks every load. `None` in normal runs, so the hot paths
    /// pay one predictable branch.
    oracle: Option<Box<OracleMem>>,
    /// Per-slice store journal (sharded runs only): every committed store
    /// records its word addresses here so staged reads can be validated
    /// against cross-CPU writes. `None` in serial runs — one predictable
    /// branch per store.
    journal: Option<Box<SliceJournal>>,
}

impl Clone for PhysMem {
    fn clone(&self) -> PhysMem {
        PhysMem {
            pages: self.pages.clone(),
            index: self.index.clone(),
            last: AtomicU64::new(self.last.load(Ordering::Relaxed)),
            links: self.links.clone(),
            line_mask: self.line_mask,
            oracle: self.oracle.clone(),
            journal: self.journal.clone(),
        }
    }
}

/// The sentinel's flat-memory shadow: a second page array kept in slot
/// lockstep with [`PhysMem::pages`]. Stores mirror into it; loads compare
/// against it. On a divergence the *shadow* (true) value is returned to the
/// program — so an injected corruption is detected, reported and contained
/// rather than cascading — and the main copy is queued for healing, which
/// [`PhysMem::sentinel_heal`] applies at the next safe (`&mut`) point.
#[derive(Debug)]
struct OracleMem {
    shadow: Vec<Box<[u8; PAGE_BYTES]>>,
    /// (cpu, cycle) attribution for the next detected mismatch, set by the
    /// run loop before each CPU step. Atomics (relaxed) purely so `PhysMem`
    /// is `Sync`; sentinel runs are always serial.
    ctx_cpu: AtomicUsize,
    ctx_cycle: AtomicU64,
    violations: Mutex<Vec<SentinelViolation>>,
    /// Corrupted spans awaiting restoration: (slot, offset, length).
    pending_heal: Mutex<Vec<(usize, usize, usize)>>,
    /// Stale-write-back fault injector (None unless that class is armed).
    injector: Option<FaultInjector>,
}

impl Clone for OracleMem {
    fn clone(&self) -> OracleMem {
        OracleMem {
            shadow: self.shadow.clone(),
            ctx_cpu: AtomicUsize::new(self.ctx_cpu.load(Ordering::Relaxed)),
            ctx_cycle: AtomicU64::new(self.ctx_cycle.load(Ordering::Relaxed)),
            violations: Mutex::new(self.violations.lock().unwrap().clone()),
            pending_heal: Mutex::new(self.pending_heal.lock().unwrap().clone()),
            injector: self.injector.clone(),
        }
    }
}

impl OracleMem {
    fn report_mismatch(
        &self,
        addr: Addr,
        got: u64,
        want: u64,
        slot: usize,
        off: usize,
        len: usize,
    ) {
        let cpu = self.ctx_cpu.load(Ordering::Relaxed);
        let cycle = self.ctx_cycle.load(Ordering::Relaxed);
        self.violations.lock().unwrap().push(SentinelViolation {
            cycle,
            cpu,
            addr,
            kind: ViolationKind::OracleMismatch,
            detail: format!("load returned {got:#x} but the flat-memory oracle holds {want:#x}"),
        });
        self.pending_heal.lock().unwrap().push((slot, off, len));
    }
}

impl PhysMem {
    /// Creates empty memory serving `n_cpus` link registers. The LL/SC link
    /// granularity is the 32-byte cache line used throughout the paper.
    pub fn new(n_cpus: usize) -> PhysMem {
        PhysMem {
            pages: Vec::new(),
            index: HashMap::new(),
            last: AtomicU64::new(0),
            links: vec![None; n_cpus],
            line_mask: !31,
            oracle: None,
            journal: None,
        }
    }

    fn page_of(addr: Addr) -> (u32, usize) {
        (addr >> PAGE_SHIFT, (addr as usize) & (PAGE_BYTES - 1))
    }

    fn pack_last(page: u32, slot: u32) -> u64 {
        (u64::from(page) << 32) | u64::from(slot + 1)
    }

    /// Resolves a page number to a frame slot, if mapped (cached).
    fn slot_of(&self, page: u32) -> Option<usize> {
        let packed = self.last.load(Ordering::Relaxed);
        if packed as u32 != 0 && (packed >> 32) as u32 == page {
            return Some(packed as u32 as usize - 1);
        }
        let slot = *self.index.get(&page)?;
        self.last
            .store(Self::pack_last(page, slot), Ordering::Relaxed);
        Some(slot as usize)
    }

    /// Resolves or allocates the frame slot for `page`. The oracle's
    /// shadow pages grow in lockstep so slots always pair up.
    fn slot_or_alloc(&mut self, page: u32) -> usize {
        if let Some(s) = self.slot_of(page) {
            return s;
        }
        let slot = self.pages.len() as u32;
        self.pages.push(Box::new([0u8; PAGE_BYTES]));
        if let Some(o) = &mut self.oracle {
            o.shadow.push(Box::new([0u8; PAGE_BYTES]));
        }
        self.index.insert(page, slot);
        self.last
            .store(Self::pack_last(page, slot), Ordering::Relaxed);
        slot as usize
    }

    /// Reads one byte; unmapped memory reads as zero. In sentinel mode the
    /// byte is cross-checked against the oracle's shadow copy.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let (page, off) = Self::page_of(addr);
        match self.slot_of(page) {
            Some(s) => {
                let v = self.pages[s][off];
                if let Some(o) = &self.oracle {
                    let want = o.shadow[s][off];
                    if want != v {
                        o.report_mismatch(addr, u64::from(v), u64::from(want), s, off, 1);
                        return want;
                    }
                }
                v
            }
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on demand.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        if let Some(j) = &mut self.journal {
            j.record(addr & !3);
        }
        let (page, off) = Self::page_of(addr);
        let slot = self.slot_or_alloc(page);
        let mut stored = value;
        if let Some(o) = &mut self.oracle {
            o.shadow[slot][off] = value;
            if let Some(inj) = &mut o.injector {
                if inj.roll(FaultKind::StaleWriteback, addr) {
                    stored = value ^ 0xA5;
                }
            }
        }
        self.pages[slot][off] = stored;
    }

    /// Reads a little-endian `u32`. Works for unaligned addresses (byte-wise).
    /// In sentinel mode the word is cross-checked against the oracle.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let (page, off) = Self::page_of(addr);
        if off + 4 <= PAGE_BYTES {
            match self.slot_of(page) {
                Some(s) => {
                    let p = &self.pages[s];
                    let v = u32::from_le_bytes(
                        p[off..off + 4]
                            .try_into()
                            .expect("4-byte span: bounds checked against PAGE_BYTES above"),
                    );
                    if let Some(o) = &self.oracle {
                        let want = u32::from_le_bytes(
                            o.shadow[s][off..off + 4]
                                .try_into()
                                .expect("shadow pages mirror main page geometry"),
                        );
                        if want != v {
                            o.report_mismatch(addr, u64::from(v), u64::from(want), s, off, 4);
                            return want;
                        }
                    }
                    v
                }
                None => 0,
            }
        } else {
            let mut bytes = [0u8; 4];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u32));
            }
            u32::from_le_bytes(bytes)
        }
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        let (page, off) = Self::page_of(addr);
        if off + 4 <= PAGE_BYTES {
            if let Some(j) = &mut self.journal {
                // An unaligned in-page write touches two words.
                j.record(addr & !3);
                j.record(addr.wrapping_add(3) & !3);
            }
            let slot = self.slot_or_alloc(page);
            let mut stored = value;
            if let Some(o) = &mut self.oracle {
                o.shadow[slot][off..off + 4].copy_from_slice(&value.to_le_bytes());
                if let Some(inj) = &mut o.injector {
                    if inj.roll(FaultKind::StaleWriteback, addr) {
                        stored = value ^ 0xA5A5_A5A5;
                    }
                }
            }
            self.pages[slot][off..off + 4].copy_from_slice(&stored.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b);
            }
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        u64::from(self.read_u32(addr)) | (u64::from(self.read_u32(addr.wrapping_add(4))) << 32)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr.wrapping_add(4), (value >> 32) as u32);
    }

    /// Reads an `f64` stored by [`PhysMem::write_f64`].
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: Addr, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads an `f32` (widening to `f64` is up to the caller).
    pub fn read_f32(&self, addr: Addr) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: Addr, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copies a program image (assembled words) into memory at `base`.
    pub fn load_words(&mut self, base: Addr, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u32(base + (i as u32) * 4, w);
        }
    }

    /// Establishes CPU `cpu`'s LL link on the line containing `addr`.
    pub fn set_link(&mut self, cpu: CpuId, addr: Addr) {
        self.links[cpu] = Some(addr & self.line_mask);
    }

    /// Atomically checks and consumes the link for an SC. Returns whether
    /// the SC may proceed. The caller performs the store (tracked) on
    /// success.
    pub fn check_and_clear_link(&mut self, cpu: CpuId, addr: Addr) -> bool {
        let ok = self.links[cpu] == Some(addr & self.line_mask);
        self.links[cpu] = None;
        ok
    }

    /// A store that also breaks every CPU's link to the stored line — the
    /// path all simulated stores take.
    pub fn write_u32_tracked(&mut self, _cpu: CpuId, addr: Addr, value: u32) {
        self.snoop_store(addr);
        self.write_u32(addr, value);
    }

    /// Invalidates all links to `addr`'s line (any store, any size).
    pub fn snoop_store(&mut self, addr: Addr) {
        let line = addr & self.line_mask;
        for link in &mut self.links {
            if *link == Some(line) {
                *link = None;
            }
        }
    }

    /// Number of resident (allocated) pages; useful in tests.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// CPU `cpu`'s outstanding LL reservation, if any (watchdog diagnostics).
    pub fn link(&self, cpu: CpuId) -> Option<Addr> {
        self.links.get(cpu).copied().flatten()
    }

    /// Arms the flat-memory oracle: every byte currently resident is
    /// snapshotted into a shadow page array, subsequent stores mirror into
    /// it, and every load is cross-checked. The stale-write-back fault
    /// injector is armed only when `spec` requests that class.
    pub fn enable_sentinel(&mut self, spec: &SentinelSpec) {
        if !spec.enabled {
            return;
        }
        let injector = FaultInjector::from_spec(spec)
            .filter(|_| spec.fault_classes.contains(FaultKind::StaleWriteback));
        self.oracle = Some(Box::new(OracleMem {
            shadow: self.pages.clone(),
            ctx_cpu: AtomicUsize::new(0),
            ctx_cycle: AtomicU64::new(0),
            violations: Mutex::new(Vec::new()),
            pending_heal: Mutex::new(Vec::new()),
            injector,
        }));
    }

    /// Whether the oracle is armed.
    pub fn sentinel_enabled(&self) -> bool {
        self.oracle.is_some()
    }

    /// Sets the (cpu, cycle) attribution the oracle stamps onto the next
    /// detected mismatch. The run loop calls this before stepping each CPU.
    pub fn sentinel_context(&self, cpu: CpuId, cycle: u64) {
        if let Some(o) = &self.oracle {
            o.ctx_cpu.store(cpu, Ordering::Relaxed);
            o.ctx_cycle.store(cycle, Ordering::Relaxed);
        }
    }

    /// Restores any corrupted spans the oracle detected since the last call
    /// by copying the shadow (true) bytes back over the main copy. Returns
    /// the number of spans healed.
    pub fn sentinel_heal(&mut self) -> usize {
        let Some(o) = &mut self.oracle else { return 0 };
        let pending: Vec<(usize, usize, usize)> =
            o.pending_heal.lock().unwrap().drain(..).collect();
        for &(slot, off, len) in &pending {
            self.pages[slot][off..off + len].copy_from_slice(&o.shadow[slot][off..off + len]);
        }
        pending.len()
    }

    /// Oracle-detected violations so far (empty when the oracle is off).
    pub fn violations(&self) -> Vec<SentinelViolation> {
        self.oracle
            .as_ref()
            .map_or_else(Vec::new, |o| o.violations.lock().unwrap().clone())
    }

    /// Stale-write-back faults the oracle's injector introduced so far.
    pub fn injected_faults(&self) -> Vec<(FaultKind, Addr)> {
        self.oracle
            .as_ref()
            .and_then(|o| o.injector.as_ref())
            .map_or_else(Vec::new, |inj| inj.injected().to_vec())
    }

    /// Arms the per-slice store journal (sharded runs). From here on every
    /// store records its word addresses; see [`SliceJournal`].
    pub fn arm_slice_journal(&mut self) {
        self.journal = Some(Box::new(SliceJournal::new()));
    }

    /// Disarms the journal, returning stores to the plain path.
    pub fn disarm_slice_journal(&mut self) {
        self.journal = None;
    }

    /// The armed journal, if any (validation queries).
    pub fn slice_journal(&self) -> Option<&SliceJournal> {
        self.journal.as_deref()
    }

    /// The armed journal, mutably (slice begin / committing-CPU context).
    pub fn slice_journal_mut(&mut self) -> Option<&mut SliceJournal> {
        self.journal.as_deref_mut()
    }
}

/// Per-process address translation for the multiprogramming workload.
///
/// Virtual addresses below [`KERNEL_BASE`] are private to the process and
/// relocated by `asid * priv_bytes`; kernel addresses map identically.
///
/// # Examples
///
/// ```
/// use cmpsim_mem::{AddrSpace, KERNEL_BASE};
/// let a0 = AddrSpace::new(0, 0x0100_0000);
/// let a1 = AddrSpace::new(1, 0x0100_0000);
/// assert_eq!(a0.translate(0x1000), 0x1000);
/// assert_eq!(a1.translate(0x1000), 0x0100_1000);
/// assert_eq!(a1.translate(KERNEL_BASE + 8), KERNEL_BASE + 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrSpace {
    asid: u32,
    priv_bytes: u32,
}

impl AddrSpace {
    /// Creates the address space for process `asid`, giving each process
    /// `priv_bytes` of private physical memory.
    ///
    /// # Panics
    ///
    /// Panics if the private region of this `asid` would reach
    /// [`KERNEL_BASE`]. Use [`AddrSpace::try_new`] for a fallible variant.
    pub fn new(asid: u32, priv_bytes: u32) -> AddrSpace {
        AddrSpace::try_new(asid, priv_bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects an `asid` whose private region would
    /// reach [`KERNEL_BASE`].
    pub fn try_new(asid: u32, priv_bytes: u32) -> Result<AddrSpace, crate::ConfigError> {
        let end = (u64::from(asid) + 1) * u64::from(priv_bytes);
        if end > u64::from(KERNEL_BASE) {
            return Err(crate::ConfigError::KernelOverlap { asid });
        }
        Ok(AddrSpace { asid, priv_bytes })
    }

    /// The identity address space (parallel applications, asid 0).
    pub fn identity() -> AddrSpace {
        AddrSpace {
            asid: 0,
            priv_bytes: 0,
        }
    }

    /// Translates a virtual address to physical.
    pub fn translate(&self, va: Addr) -> Addr {
        if va >= KERNEL_BASE {
            va
        } else {
            va.wrapping_add(self.asid.wrapping_mul(self.priv_bytes))
        }
    }

    /// The process id this space belongs to.
    pub fn asid(&self) -> u32 {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_mem_is_send_and_sync() {
        // Sharded staging reads memory through a shared `&PhysMem` from
        // several threads; keep that capability pinned at compile time.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhysMem>();
    }

    #[test]
    fn read_write_roundtrip_all_widths() {
        let mut m = PhysMem::new(1);
        m.write_u8(10, 0xab);
        assert_eq!(m.read_u8(10), 0xab);
        m.write_u32(100, 0x1234_5678);
        assert_eq!(m.read_u32(100), 0x1234_5678);
        m.write_u64(200, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(200), 0xdead_beef_cafe_f00d);
        m.write_f64(300, -3.25);
        assert_eq!(m.read_f64(300), -3.25);
        m.write_f32(400, 1.5);
        assert_eq!(m.read_f32(400), 1.5);
    }

    #[test]
    fn unmapped_reads_zero_without_allocating() {
        let m = PhysMem::new(1);
        assert_eq!(m.read_u32(0xFFFF_0000), 0);
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = PhysMem::new(1);
        let addr = (1 << PAGE_SHIFT) - 2; // straddles page 0 and 1
        m.write_u32(addr, 0xa1b2_c3d4);
        assert_eq!(m.read_u32(addr), 0xa1b2_c3d4);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(1);
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn ll_sc_success_and_failure() {
        let mut m = PhysMem::new(2);
        m.set_link(0, 0x104);
        // Same line (0x100..0x120): SC succeeds.
        assert!(m.check_and_clear_link(0, 0x118));
        // Link consumed: a second SC fails.
        assert!(!m.check_and_clear_link(0, 0x118));
    }

    #[test]
    fn store_by_other_cpu_breaks_link() {
        let mut m = PhysMem::new(2);
        m.set_link(0, 0x100);
        m.write_u32_tracked(1, 0x11c, 5); // same 32-byte line
        assert!(!m.check_and_clear_link(0, 0x100));

        m.set_link(0, 0x100);
        m.write_u32_tracked(1, 0x120, 5); // different line
        assert!(m.check_and_clear_link(0, 0x100));
    }

    #[test]
    fn own_store_breaks_own_link() {
        let mut m = PhysMem::new(1);
        m.set_link(0, 0x40);
        m.write_u32_tracked(0, 0x44, 9);
        assert!(!m.check_and_clear_link(0, 0x40));
    }

    #[test]
    fn load_words_places_program() {
        let mut m = PhysMem::new(1);
        m.load_words(0x1000, &[1, 2, 3]);
        assert_eq!(m.read_u32(0x1000), 1);
        assert_eq!(m.read_u32(0x1008), 3);
    }

    #[test]
    fn addr_space_translation() {
        let a2 = AddrSpace::new(2, 0x10_0000);
        assert_eq!(a2.translate(0x100), 0x20_0100);
        assert_eq!(a2.translate(KERNEL_BASE), KERNEL_BASE);
        assert_eq!(AddrSpace::identity().translate(0xabc), 0xabc);
        assert_eq!(a2.asid(), 2);
    }

    #[test]
    #[should_panic(expected = "overlaps kernel")]
    fn addr_space_kernel_overlap_rejected() {
        let _ = AddrSpace::new(3, 0x4000_0000);
    }

    #[test]
    fn addr_space_try_new_returns_typed_error() {
        let err = AddrSpace::try_new(3, 0x4000_0000).unwrap_err();
        assert!(matches!(err, crate::ConfigError::KernelOverlap { asid: 3 }));
        assert!(AddrSpace::try_new(3, 0x1000_0000).is_ok());
    }

    #[test]
    fn oracle_mirrors_and_agrees_on_clean_runs() {
        let mut m = PhysMem::new(2);
        m.write_u32(0x100, 7); // pre-sentinel contents are snapshotted
        m.enable_sentinel(&SentinelSpec::on());
        assert!(m.sentinel_enabled());
        m.write_u32(0x200, 0xabcd_ef01);
        m.write_u8(0x5000, 0x3c); // fresh page: shadow grows in lockstep
        assert_eq!(m.read_u32(0x100), 7);
        assert_eq!(m.read_u32(0x200), 0xabcd_ef01);
        assert_eq!(m.read_u8(0x5000), 0x3c);
        assert!(m.violations().is_empty());
        assert_eq!(m.sentinel_heal(), 0);
    }

    #[test]
    fn oracle_detects_and_heals_stale_writebacks() {
        use crate::sentinel::FaultClassSet;
        let spec = SentinelSpec::with_faults(
            42,
            1_000_000, // every store corrupts
            FaultClassSet::only(FaultKind::StaleWriteback),
        );
        let mut m = PhysMem::new(1);
        m.enable_sentinel(&spec);
        m.sentinel_context(0, 123);
        m.write_u32(0x100, 0x1111_2222);
        // The main copy is corrupted but the oracle returns the true value.
        assert_eq!(m.read_u32(0x100), 0x1111_2222);
        let v = m.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::OracleMismatch);
        assert_eq!(v[0].cycle, 123);
        assert_eq!(v[0].cpu, 0);
        assert_eq!(v[0].addr, 0x100);
        assert!(!m.injected_faults().is_empty());
        // Healing restores the main copy; no new violation on re-read.
        assert_eq!(m.sentinel_heal(), 1);
        assert_eq!(m.read_u32(0x100), 0x1111_2222);
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn oracle_off_is_invisible() {
        let mut m = PhysMem::new(1);
        assert!(!m.sentinel_enabled());
        m.enable_sentinel(&SentinelSpec::off());
        assert!(!m.sentinel_enabled());
        m.write_u32(0x100, 5);
        assert!(m.violations().is_empty());
        assert!(m.injected_faults().is_empty());
        assert!(m.link(0).is_none());
        m.set_link(0, 0x104);
        assert_eq!(m.link(0), Some(0x100));
    }
}

//! Per-node L1 front-end helpers.
//!
//! A *node* is whatever owns one L1 in a topology: a single CPU
//! (shared-L2, shared-memory), a cluster of CPUs (clustered), or the whole
//! machine (shared-L1). [`NodeMap`] maps CPUs onto nodes; the fill helpers
//! implement the victim handling every write-back L1 shares.

use crate::cache::{CacheArray, LineState};
use crate::stats::MemStats;
use crate::{Addr, CpuId};
use cmpsim_engine::{Cycle, Port};

/// Maps CPUs onto the L1 nodes of a topology.
#[derive(Debug, Clone, Copy)]
pub struct NodeMap {
    n_nodes: usize,
    cpus_per_node: usize,
}

impl NodeMap {
    /// `n_cpus` CPUs grouped `cpus_per_node` at a time. The caller
    /// validates divisibility (see `ClusteredSystem::try_new`).
    pub fn new(n_cpus: usize, cpus_per_node: usize) -> NodeMap {
        debug_assert!(cpus_per_node > 0 && n_cpus.is_multiple_of(cpus_per_node));
        NodeMap {
            n_nodes: n_cpus / cpus_per_node,
            cpus_per_node,
        }
    }

    /// The node servicing `cpu`'s accesses. Private-L1 topologies
    /// (`cpus_per_node == 1`, the common case) skip the division — this
    /// sits on every access's fast path.
    #[inline]
    pub fn node_of(&self, cpu: CpuId) -> usize {
        if self.cpus_per_node == 1 {
            cpu
        } else {
            cpu / self.cpus_per_node
        }
    }

    /// Number of nodes (L1s) in the topology.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// CPUs sharing each node's L1.
    pub fn cpus_per_node(&self) -> usize {
        self.cpus_per_node
    }
}

/// Fills a write-back L1 with `addr` in `state` and retires the victim:
/// a dirty victim writes back into the local L2 (reserving `l2_port` at
/// `at` — victim buffers drain right behind the fill, off the critical
/// path), or past it onto `beyond` when the L2 no longer holds the line.
#[allow(clippy::too_many_arguments)] // disjoint &mut core fields, by design
pub fn fill_writeback_l1(
    cache: &mut CacheArray,
    addr: Addr,
    state: LineState,
    at: Cycle,
    l2: &mut CacheArray,
    l2_port: &mut Port,
    l2_occ: u64,
    beyond: &mut Port,
    beyond_occ: u64,
    stats: &mut MemStats,
) {
    if let Some(v) = cache.fill(addr, state) {
        if v.dirty {
            l2_port.reserve(at, l2_occ);
            stats.writebacks += 1;
            if l2.probe(v.addr).is_valid() {
                l2.set_state(v.addr, LineState::Modified);
            } else {
                beyond.reserve(at, beyond_occ);
            }
        }
    }
}

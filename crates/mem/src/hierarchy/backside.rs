//! What sits below the L1 front end.
//!
//! [`SharedL2Back`] is the banked shared L2 + memory port used by the
//! shared-L2 and clustered topologies; [`UniBack`] is the
//! uniprocessor-style single-ported L2 + memory pair below the shared L1.

use super::directory::Directory;
use crate::cache::{AccessOutcome, CacheArray, LineState};
use crate::config::{LatencySpec, SystemConfig};
use crate::stats::MemStats;
use crate::{Addr, ServiceLevel};
use cmpsim_engine::{BankedResource, Cycle, Port};

/// A banked, write-back shared L2 with main memory behind a single port.
/// Lines evicted from the L2 back-invalidate the L1 copies the directory
/// tracks (inclusion).
#[derive(Debug)]
pub struct SharedL2Back {
    /// The shared L2 tag/state array.
    pub l2: CacheArray,
    /// Address-interleaved L2 banks (the crossbar contention point).
    pub banks: BankedResource,
    /// The memory port below the L2.
    pub mem: Port,
}

impl SharedL2Back {
    /// Builds the backside from a configuration (L2 spec + bank count).
    pub fn new(cfg: &SystemConfig) -> SharedL2Back {
        SharedL2Back {
            l2: CacheArray::new("shared-l2", cfg.l2),
            banks: BankedResource::new("l2-bank", cfg.l2_banks, u64::from(cfg.l2.line_bytes)),
            mem: Port::new("mem"),
        }
    }

    /// The L2-line address containing `addr` (directory granularity).
    pub fn line(&self, addr: Addr) -> Addr {
        self.l2.line_addr(addr)
    }

    /// A read that missed the L1s: reserve the bank, look up the L2, walk
    /// to memory beyond it. Returns (finish, servicing level).
    #[allow(clippy::too_many_arguments)] // disjoint &mut core fields, by design
    pub fn read(
        &mut self,
        stats: &mut MemStats,
        dir: &mut Directory,
        l1d: &mut [CacheArray],
        l1i: &mut [CacheArray],
        lat: &LatencySpec,
        addr: Addr,
        at: Cycle,
    ) -> (Cycle, ServiceLevel) {
        let g2 = self.banks.reserve(u64::from(addr), at, lat.l2_occ);
        stats.l2_bank_wait += g2 - at;
        match self.l2.lookup(addr) {
            AccessOutcome::Hit(_) => {
                stats.l2.hit();
                (g2 + lat.l2_lat, ServiceLevel::L2)
            }
            AccessOutcome::Miss(k2) => {
                stats.l2.miss(k2);
                (
                    self.fill_from_memory(stats, dir, l1d, l1i, lat, addr, g2, false),
                    ServiceLevel::Memory,
                )
            }
        }
    }

    /// A write-through store arriving from an L1. The bank is held for the
    /// full request/response handshake including the directory
    /// lookup-and-update, so a store occupies it as long as a line transfer
    /// on the same datapath — the port contention the paper blames for the
    /// shared-L2 architecture's losses on store-heavy workloads. A store
    /// missing the L2 write-allocates there (fetch the line, merge the
    /// word). Returns (finish, servicing level).
    #[allow(clippy::too_many_arguments)] // disjoint &mut core fields, by design
    pub fn store(
        &mut self,
        stats: &mut MemStats,
        dir: &mut Directory,
        l1d: &mut [CacheArray],
        l1i: &mut [CacheArray],
        lat: &LatencySpec,
        addr: Addr,
        at: Cycle,
    ) -> (Cycle, ServiceLevel) {
        let store_occ = lat.l2_occ;
        let g2 = self.banks.reserve(u64::from(addr), at, store_occ);
        stats.l2_bank_wait += g2 - at;
        match self.l2.lookup_set(addr, LineState::Modified) {
            AccessOutcome::Hit(_) => {
                stats.l2.hit();
                (g2 + 1, ServiceLevel::L2)
            }
            AccessOutcome::Miss(k2) => {
                stats.l2.miss(k2);
                (
                    self.fill_from_memory(stats, dir, l1d, l1i, lat, addr, g2, true),
                    ServiceLevel::Memory,
                )
            }
        }
    }

    /// Fetches `addr`'s line into the L2 from memory, back-invalidating the
    /// victim's L1 copies (inclusion) and paying for a dirty write-back:
    /// the victim buffer drains right behind the fill, reserving the port
    /// at the grant rather than the finish to keep the timeline dense.
    /// Returns the completion time.
    #[allow(clippy::too_many_arguments)]
    fn fill_from_memory(
        &mut self,
        stats: &mut MemStats,
        dir: &mut Directory,
        l1d: &mut [CacheArray],
        l1i: &mut [CacheArray],
        lat: &LatencySpec,
        addr: Addr,
        at: Cycle,
        dirty: bool,
    ) -> Cycle {
        let g = self.mem.reserve(at, lat.mem_occ);
        stats.mem_wait += g - at;
        stats.mem_accesses += 1;
        let finish = g + lat.mem_lat;
        let state = if dirty {
            LineState::Modified
        } else {
            LineState::Exclusive
        };
        if let Some(v) = self.l2.fill(addr, state) {
            let slot = self.l2.slot_of(addr).expect("line was just filled");
            dir.back_invalidate_slot(l1d, l1i, slot, v.addr);
            if v.dirty {
                self.mem.reserve(g, lat.mem_occ);
                stats.writebacks += 1;
            }
        }
        finish
    }
}

/// The uniprocessor-style backside of the shared-L1 architecture: one L2
/// behind a single port, main memory behind another. No directory — with
/// the CPUs sharing the L1 there is nothing to keep coherent below it.
#[derive(Debug)]
pub struct UniBack {
    /// The L2 tag/state array.
    pub l2: CacheArray,
    /// The single L2 port.
    pub l2_port: Port,
    /// The memory port below the L2.
    pub mem_port: Port,
}

impl UniBack {
    /// Builds the backside from a configuration.
    pub fn new(cfg: &SystemConfig) -> UniBack {
        UniBack {
            l2: CacheArray::new("l2", cfg.l2),
            l2_port: Port::new("l2"),
            mem_port: Port::new("mem"),
        }
    }
}

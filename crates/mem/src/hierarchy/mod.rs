//! The shared coherent-hierarchy core behind the four memory systems.
//!
//! The paper's three architectures (plus the clustered extension) differ
//! only in *where* the CPUs interconnect; everything else — the L1 hit fast
//! path, fill/victim handling, directory bookkeeping, snoop arbitration,
//! sentinel hooks, statistics — is common machinery. This module owns that
//! machinery once:
//!
//! * [`HierarchyCore`] — configuration, statistics and the coherence
//!   sentinel, shared by every topology.
//! * [`Topology`] — the trait a topology description implements: which
//!   resources sit on the miss path and in what order. A topology only
//!   writes its access walk; [`HierarchySystem`] supplies the entire
//!   [`MemorySystem`] surface (latency histogram, sentinel dispatch,
//!   accessor boilerplate) on top.
//! * [`frontend`] — CPU→node mapping ([`NodeMap`]) and the write-back L1
//!   fill/victim helper shared by the shared-L1 and shared-memory designs.
//! * [`directory`] — the presence-bitmap [`Directory`] engine and
//!   [`DirectoryTopo`], the write-through-L1-over-shared-L2 family that
//!   covers both the shared-L2 architecture (one CPU per node) and the
//!   clustered extension (several CPUs per node), generic over geometry.
//! * [`backside`] — what sits below the L1s: a banked shared L2 with a
//!   memory port ([`SharedL2Back`]) or a uniprocessor-style L2/memory pair
//!   ([`UniBack`]).
//! * [`snoop`] — MESI snoop/invalidate/downgrade steps and the MESI
//!   legality check for bus-based private hierarchies.
//!
//! See DESIGN.md §10 for the recipe for adding a new topology.

pub mod backside;
pub mod directory;
pub mod frontend;
pub mod snoop;

pub use backside::{SharedL2Back, UniBack};
pub use directory::{Directory, DirectoryLayout, DirectoryTopo, NodeScheme, PerCluster, PerCpu};
pub use frontend::NodeMap;

use crate::config::SystemConfig;
use crate::sentinel::{FaultKind, Sentinel, SentinelViolation};
use crate::stats::MemStats;
use crate::{Addr, CpuId, MemRequest, MemResult, MemorySystem, PortUtil};
use cmpsim_engine::{BankedResource, Cycle, Port};

/// State every topology shares: the configuration it was built from, the
/// accumulated statistics, and the coherence sentinel.
#[derive(Debug)]
pub struct HierarchyCore {
    /// The configuration the system was built from.
    pub cfg: SystemConfig,
    /// Accumulated statistics (reset at the region-of-interest marker).
    pub stats: MemStats,
    /// Invariant checker + fault injector (off unless configured).
    pub sentinel: Sentinel,
}

impl HierarchyCore {
    /// Builds the shared core from a configuration.
    pub fn new(cfg: &SystemConfig) -> HierarchyCore {
        HierarchyCore {
            cfg: *cfg,
            stats: MemStats::new(),
            sentinel: Sentinel::from_spec(&cfg.sentinel),
        }
    }
}

/// A topology description: the resources on the access path and the order
/// they are walked in. Implementations write only the walk; the shared
/// [`HierarchySystem`] wrapper supplies everything else a [`MemorySystem`]
/// needs.
pub trait Topology {
    /// Architecture name reported by [`MemorySystem::name`].
    const NAME: &'static str;

    /// The untimed-record core of one access: walk the hierarchy, reserve
    /// contended resources, update caches/directories and `core.stats`.
    /// The wrapper records the latency histogram and runs the sentinel
    /// check afterwards.
    fn access(&mut self, core: &mut HierarchyCore, now: Cycle, req: MemRequest) -> MemResult;

    /// Sentinel invariant check scoped to the line `addr` falls in. Called
    /// by the wrapper after every access when the sentinel is on; report
    /// violations through `core.sentinel`.
    fn check_line(&self, core: &mut HierarchyCore, now: Cycle, cpu: CpuId, addr: Addr);

    /// Whether a load by `cpu` would hit its L1 right now (state untouched).
    fn load_would_hit_l1(&self, cpu: CpuId, addr: Addr) -> bool;

    /// Appends one [`PortUtil`] per contended resource, in report order.
    fn push_port_util(&self, out: &mut Vec<PortUtil>);

    /// Minimum cycles before one CPU's store can reach another CPU through
    /// this topology (see [`MemorySystem::cross_cpu_lookahead`]). The
    /// default is the fully conservative 1 cycle.
    fn cross_cpu_lookahead(&self, _core: &HierarchyCore) -> u64 {
        1
    }
}

/// A complete memory system assembled from the shared [`HierarchyCore`]
/// plus one topology description. This is the single [`MemorySystem`]
/// implementation all four architectures share.
#[derive(Debug)]
pub struct HierarchySystem<T> {
    core: HierarchyCore,
    topo: T,
}

impl<T: Topology> HierarchySystem<T> {
    /// Assembles a system from a configuration and its topology.
    pub fn from_parts(cfg: &SystemConfig, topo: T) -> HierarchySystem<T> {
        HierarchySystem {
            core: HierarchyCore::new(cfg),
            topo,
        }
    }

    /// The topology description (systems expose their own typed probes —
    /// `l1d()`, `l2()`, … — through this).
    pub fn topo(&self) -> &T {
        &self.topo
    }
}

impl<T: Topology> MemorySystem for HierarchySystem<T> {
    #[inline]
    fn access(&mut self, now: Cycle, req: MemRequest) -> MemResult {
        let res = self.topo.access(&mut self.core, now, req);
        self.core.stats.latency.record(res.finish - now);
        if self.core.sentinel.on() {
            self.topo.check_line(&mut self.core, now, req.cpu, req.addr);
        }
        res
    }

    #[inline]
    fn load_would_hit_l1(&self, cpu: CpuId, addr: Addr) -> bool {
        self.topo.load_would_hit_l1(cpu, addr)
    }

    fn line_bytes(&self) -> u32 {
        self.core.cfg.l1d.line_bytes
    }

    fn n_cpus(&self) -> usize {
        self.core.cfg.n_cpus
    }

    fn stats(&self) -> &MemStats {
        &self.core.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.core.stats
    }

    fn name(&self) -> &'static str {
        T::NAME
    }

    fn port_utilization(&self) -> Vec<PortUtil> {
        let mut v = Vec::new();
        self.topo.push_port_util(&mut v);
        v
    }

    fn violations(&self) -> &[SentinelViolation] {
        self.core.sentinel.violations()
    }

    fn injected_faults(&self) -> &[(FaultKind, Addr)] {
        self.core.sentinel.injected_faults()
    }

    fn cross_cpu_lookahead(&self) -> u64 {
        self.topo.cross_cpu_lookahead(&self.core)
    }
}

/// Utilization snapshot of a single port.
pub fn util_of_port(p: &Port) -> PortUtil {
    PortUtil {
        name: p.name(),
        grants: p.grants(),
        busy_cycles: p.busy_cycles(),
        wait_cycles: p.wait_cycles(),
    }
}

/// Utilization snapshot aggregated over a bank group, reported under the
/// group's label.
pub fn util_of_banks(b: &BankedResource) -> PortUtil {
    let mut u = PortUtil {
        name: b.name(),
        grants: 0,
        busy_cycles: 0,
        wait_cycles: 0,
    };
    for k in 0..b.n_banks() {
        let p = b.bank(k);
        u.grants += p.grants();
        u.busy_cycles += p.busy_cycles();
        u.wait_cycles += p.wait_cycles();
    }
    u
}

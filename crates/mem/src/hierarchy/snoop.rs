//! MESI snooping steps for bus-based private-hierarchy topologies.
//!
//! Free functions over slices of per-CPU cache arrays so a topology can
//! borrow its caches field-by-field. All of them mirror what the paper's
//! shared-memory architecture does on the snooping bus: probe every remote
//! hierarchy, invalidate on read-exclusive/upgrade, downgrade on a remote
//! read of a dirty line.

use crate::cache::{CacheArray, LineState};
use crate::sentinel::{FaultKind, Sentinel, ViolationKind};
use crate::stats::MemStats;
use crate::{Addr, CpuId};
use cmpsim_engine::Cycle;

/// The snoop result for a requested line across all remote CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopResult {
    /// No remote copy.
    None,
    /// Remote clean copies exist (Shared/Exclusive).
    Shared,
    /// A remote CPU holds the line Modified.
    Dirty(CpuId),
}

/// Snoops every remote CPU's caches for `addr`.
pub fn snoop(
    l1d: &[CacheArray],
    l1i: &[CacheArray],
    l2: &[CacheArray],
    me: CpuId,
    addr: Addr,
) -> SnoopResult {
    let mut shared = false;
    for cpu in 0..l1d.len() {
        if cpu == me {
            continue;
        }
        let s1 = l1d[cpu].probe(addr);
        let s2 = l2[cpu].probe(addr);
        let si = l1i[cpu].probe(addr);
        if s1 == LineState::Modified || s2 == LineState::Modified {
            return SnoopResult::Dirty(cpu);
        }
        if s1.is_valid() || s2.is_valid() || si.is_valid() {
            shared = true;
        }
    }
    if shared {
        SnoopResult::Shared
    } else {
        SnoopResult::None
    }
}

/// Invalidates the line in every remote CPU (read-exclusive / upgrade).
/// Fault injection (sentinel): may drop the invalidation to one remote
/// cache — the surviving stale copy coexists with the new owner.
pub fn invalidate_remote(
    sentinel: &mut Sentinel,
    stats: &mut MemStats,
    l1d: &mut [CacheArray],
    l1i: &mut [CacheArray],
    l2: &mut [CacheArray],
    me: CpuId,
    addr: Addr,
) {
    let n = l1d.len();
    let any_victim = (0..n).any(|cpu| {
        cpu != me
            && (l1d[cpu].probe(addr).is_valid()
                || l1i[cpu].probe(addr).is_valid()
                || l2[cpu].probe(addr).is_valid())
    });
    let mut drop_one = any_victim && sentinel.inject(FaultKind::DroppedInvalidation, addr);
    for cpu in 0..n {
        if cpu == me {
            continue;
        }
        for cache in [&mut l1d[cpu], &mut l1i[cpu], &mut l2[cpu]] {
            if cache.probe(addr).is_valid() {
                if drop_one {
                    drop_one = false;
                } else {
                    cache.invalidate(addr);
                }
                stats.invalidations_sent += 1;
            }
        }
    }
}

/// Downgrades remote copies to Shared (remote read of a dirty line).
/// Fault injection (sentinel): may spuriously promote a remote copy to
/// Exclusive instead of downgrading it.
pub fn downgrade_remote(
    sentinel: &mut Sentinel,
    l1d: &mut [CacheArray],
    l2: &mut [CacheArray],
    me: CpuId,
    addr: Addr,
) {
    for cpu in 0..l1d.len() {
        if cpu == me {
            continue;
        }
        if l1d[cpu].probe(addr).is_valid() && sentinel.inject(FaultKind::SpuriousState, addr) {
            l1d[cpu].set_state(addr, LineState::Exclusive);
            l2[cpu].downgrade(addr);
            continue;
        }
        l1d[cpu].downgrade(addr);
        l2[cpu].downgrade(addr);
    }
}

/// Sentinel check of MESI legality across the private hierarchies, scoped
/// to one line. Ownership (M/E) is judged from the D-side caches only —
/// [`downgrade_remote`] deliberately leaves I-caches alone, so a clean
/// Exclusive I-line coexisting with remote Shared copies is legal here.
pub fn check_mesi_line(
    sentinel: &mut Sentinel,
    l1d: &[CacheArray],
    l1i: &[CacheArray],
    l2: &[CacheArray],
    now: Cycle,
    cpu: CpuId,
    line: Addr,
) {
    let rank = |s: LineState| match s {
        LineState::Modified => 3,
        LineState::Exclusive => 2,
        LineState::Shared => 1,
        LineState::Invalid => 0,
    };
    let mut found: Vec<(ViolationKind, String)> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    let mut holders: Vec<usize> = Vec::new();
    for c in 0..l1d.len() {
        let r = rank(l1d[c].probe(line)).max(rank(l2[c].probe(line)));
        if r >= 2 {
            owners.push(c);
        }
        if r >= 1 || l1i[c].probe(line).is_valid() {
            holders.push(c);
        }
        if l1i[c].probe(line) == LineState::Modified {
            found.push((
                ViolationKind::WriteThroughDirty,
                format!("cpu {c} instruction cache holds the line dirty"),
            ));
        }
    }
    if owners.len() > 1 {
        found.push((
            ViolationKind::MultipleOwners,
            format!("cpus {owners:?} each hold the line in an ownership (M/E) state"),
        ));
    }
    if let [o] = owners[..] {
        let sharers: Vec<usize> = holders.iter().copied().filter(|&c| c != o).collect();
        if !sharers.is_empty() {
            found.push((
                ViolationKind::SharedAlongsideOwner,
                format!("cpu {o} owns the line while cpus {sharers:?} still hold copies"),
            ));
        }
    }
    for (kind, detail) in found {
        sentinel.report(now.0, cpu, line, kind, detail);
    }
}

//! The directory/invalidation engine and the directory topology family.
//!
//! [`Directory`] keeps per-line presence bitmaps over the *nodes* of a
//! topology — per-CPU L1s in the shared-L2 architecture, per-cluster L1s in
//! the clustered extension. [`DirectoryTopo`] is the complete
//! write-through-L1-over-shared-L2 access walk both architectures share;
//! the [`NodeScheme`] marker picks the reported name and the noun used in
//! sentinel violation details.

use super::backside::SharedL2Back;
use super::frontend::NodeMap;
use super::{util_of_banks, util_of_port, HierarchyCore, Topology};
use crate::cache::{AccessOutcome, CacheArray, LineState, MissKind};
use crate::config::{CacheSpec, SystemConfig};
use crate::cpuset::CpuSet;
use crate::sentinel::{FaultKind, Sentinel, ViolationKind};
use crate::stats::MemStats;
use crate::{AccessKind, Addr, CpuId, MemRequest, MemResult, PortUtil, ServiceLevel};
use cmpsim_engine::{BankedResource, Cycle};

use std::marker::PhantomData;

/// Per-line presence bitmaps over the nodes of a directory topology, with
/// the invalidation plumbing and fault-injection hooks that maintain them.
///
/// Presence lives in a table parallel to the shared L2's way slots — the
/// hardware arrangement, where directory state sits next to the L2 tags.
/// Inclusion means an L1 copy implies an L2-resident line, so a slot per
/// L2 way covers every line the directory can ever need, and the store
/// path's presence lookup rides the L2 set walk it was about to do anyway
/// instead of hashing into a side map.
#[derive(Debug)]
pub struct Directory {
    /// Per-L2-way (d-side presence set, i-side presence set), one
    /// [`CpuSet`] member per node. Empty pairs for ways holding no
    /// tracked line; invariant: both sets are empty whenever the way is
    /// invalid.
    slots: Vec<(CpuSet, CpuSet)>,
    n_nodes: usize,
}

impl Directory {
    /// An empty directory over `n_nodes` nodes, tracking an L2 with
    /// `n_slots` way slots.
    pub fn new(n_nodes: usize, n_slots: usize) -> Directory {
        Directory {
            slots: vec![(CpuSet::EMPTY, CpuSet::EMPTY); n_slots],
            n_nodes,
        }
    }

    /// Records `node`'s new L1 copy of `line` and clears its bit on the
    /// victim line the fill displaced. Fault injection (sentinel): may
    /// record a spurious sharer — a presence bit with no backing L1 copy.
    pub fn note_fill(
        &mut self,
        sentinel: &mut Sentinel,
        l2: &CacheArray,
        node: usize,
        line: Addr,
        ifetch: bool,
        victim: Option<Addr>,
    ) {
        let spurious = self.n_nodes > 1 && sentinel.inject(FaultKind::SpuriousState, line);
        if let Some(slot) = l2.slot_of(line) {
            let entry = &mut self.slots[slot];
            if ifetch {
                entry.1.set(node);
            } else {
                entry.0.set(node);
            }
            if spurious {
                let ghost = (node + 1) % self.n_nodes;
                entry.0.set(ghost);
            }
        }
        if let Some(v) = victim {
            if let Some(slot) = l2.slot_of(v) {
                let e = &mut self.slots[slot];
                if ifetch {
                    e.1.clear(node);
                } else {
                    e.0.clear(node);
                }
            }
        }
    }

    /// Invalidates every other node's L1 copies of `line` after a write by
    /// `writer` (directory-driven coherence). Fault injection (sentinel):
    /// may drop the invalidation message to one victim while still clearing
    /// its directory bit — the stale copy then shows up as a
    /// copy-without-presence violation.
    #[allow(clippy::too_many_arguments)] // disjoint &mut core fields, by design
    pub fn invalidate_sharers(
        &mut self,
        sentinel: &mut Sentinel,
        stats: &mut MemStats,
        l1d: &mut [CacheArray],
        l1i: &mut [CacheArray],
        l2: &CacheArray,
        writer: usize,
        line: Addr,
        addr: Addr,
    ) {
        let Some(slot) = l2.slot_of(line) else {
            // Not L2-resident: inclusion says no L1 holds it either.
            return;
        };
        let (d, i) = &mut self.slots[slot];
        if !d.contains_other(writer) && !i.contains_other(writer) {
            // Common case: only the writer holds the line — one map probe,
            // no victim walk. (Every store funnels through here.)
            return;
        }
        let d_victims = d.except(writer);
        let i_victims = i.except(writer);
        d.subtract(&d_victims);
        i.subtract(&i_victims);
        let mut drop_one = sentinel.inject(FaultKind::DroppedInvalidation, line);
        for node in 0..self.n_nodes {
            if d_victims.contains(node) {
                if drop_one {
                    drop_one = false;
                } else {
                    l1d[node].invalidate(addr);
                }
                stats.invalidations_sent += 1;
            }
            if i_victims.contains(node) {
                if drop_one {
                    drop_one = false;
                } else {
                    l1i[node].invalidate(addr);
                }
                stats.invalidations_sent += 1;
            }
        }
    }

    /// Enforces inclusion when the L2 evicts the line that sat in `slot`
    /// (now already overwritten by the incoming fill): every L1 copy of
    /// the victim `line` must go, and the slot's bits now belong to the
    /// new line, so they are taken and zeroed. These back-invalidations
    /// are capacity-driven, so the evicted lines are *not* marked as
    /// coherence-invalidated.
    pub fn back_invalidate_slot(
        &mut self,
        l1d: &mut [CacheArray],
        l1i: &mut [CacheArray],
        slot: usize,
        line: Addr,
    ) {
        let (d_bits, i_bits) = std::mem::take(&mut self.slots[slot]);
        if d_bits.is_empty() && i_bits.is_empty() {
            return;
        }
        for node in 0..self.n_nodes {
            if d_bits.contains(node) {
                l1d[node].evict(line);
            }
            if i_bits.contains(node) {
                l1i[node].evict(line);
            }
        }
    }

    /// Checks the directory invariant: every valid L1 line has its presence
    /// bit set, and every presence bit points at a valid L1 line backed by
    /// a valid L2 line (inclusion). Diagnostics / property tests.
    pub fn consistent(&self, l1d: &[CacheArray], l1i: &[CacheArray], l2: &CacheArray) -> bool {
        for node in 0..self.n_nodes {
            for (cache, side) in [(&l1d[node], 0usize), (&l1i[node], 1)] {
                for line in cache.valid_lines() {
                    let Some(slot) = l2.slot_of(line) else {
                        return false; // inclusion violated
                    };
                    let (d, i) = &self.slots[slot];
                    let bits = if side == 0 { d } else { i };
                    if !bits.contains(node) {
                        return false;
                    }
                }
            }
        }
        for (slot, (d_bits, i_bits)) in self.slots.iter().enumerate() {
            if d_bits.is_empty() && i_bits.is_empty() {
                continue;
            }
            let Some(line) = l2.line_at_slot(slot) else {
                return false; // presence bits on an invalid L2 way
            };
            for node in 0..self.n_nodes {
                if d_bits.contains(node) && !l1d[node].probe(line).is_valid() {
                    return false;
                }
                if i_bits.contains(node) && !l1i[node].probe(line).is_valid() {
                    return false;
                }
            }
        }
        true
    }

    /// Sentinel invariant check scoped to one line: presence bits must
    /// agree with actual L1 residency, every L1 copy must be backed by a
    /// valid L2 line (inclusion), and the write-through L1s must never hold
    /// dirty data. `noun` names the node kind ("cpu", "cluster") in
    /// violation details.
    #[allow(clippy::too_many_arguments)]
    pub fn check_line(
        &self,
        sentinel: &mut Sentinel,
        l1d: &[CacheArray],
        l1i: &[CacheArray],
        l2: &CacheArray,
        noun: &str,
        now: Cycle,
        cpu: CpuId,
        line: Addr,
    ) {
        static EMPTY: (CpuSet, CpuSet) = (CpuSet::EMPTY, CpuSet::EMPTY);
        let slot = l2.slot_of(line);
        let (d_bits, i_bits) = slot.map_or(&EMPTY, |s| &self.slots[s]);
        let l2_valid = slot.is_some();
        let mut found: Vec<(ViolationKind, String)> = Vec::new();
        for n in 0..self.n_nodes {
            for (cache, bits, side) in [(&l1d[n], d_bits, "l1d"), (&l1i[n], i_bits, "l1i")] {
                let state = cache.probe(line);
                let bit = bits.contains(n);
                if state.is_valid() && !bit {
                    found.push((
                        ViolationKind::CopyWithoutPresence,
                        format!("{noun} {n} {side} holds the line but its directory bit is clear"),
                    ));
                }
                if bit && !state.is_valid() {
                    found.push((
                        ViolationKind::PresenceWithoutCopy,
                        format!(
                            "directory marks {noun} {n} {side} as a sharer but it holds no copy"
                        ),
                    ));
                }
                if state.is_valid() && !l2_valid {
                    found.push((
                        ViolationKind::InclusionViolation,
                        format!("{noun} {n} {side} holds the line but the shared L2 does not"),
                    ));
                }
                if state == LineState::Modified {
                    found.push((
                        ViolationKind::WriteThroughDirty,
                        format!("write-through {noun} {n} {side} holds the line dirty"),
                    ));
                }
            }
        }
        for (kind, detail) in found {
            sentinel.report(now.0, cpu, line, kind, detail);
        }
    }
}

/// Node granularity of a [`DirectoryTopo`]: picks the architecture name
/// and the noun used in sentinel violation details.
pub trait NodeScheme: std::fmt::Debug + 'static {
    /// Architecture name ([`crate::MemorySystem::name`]).
    const NAME: &'static str;
    /// What one node is called in diagnostics.
    const NOUN: &'static str;
}

/// Shared-L2 scheme: every CPU is its own node with a private L1.
#[derive(Debug)]
pub enum PerCpu {}

impl NodeScheme for PerCpu {
    const NAME: &'static str = "shared-L2";
    const NOUN: &'static str = "cpu";
}

/// Clustered scheme: CPUs pool into cluster nodes sharing an L1.
#[derive(Debug)]
pub enum PerCluster {}

impl NodeScheme for PerCluster {
    const NAME: &'static str = "clustered";
    const NOUN: &'static str = "cluster";
}

/// Geometry of a directory topology's L1 front end.
#[derive(Debug, Clone, Copy)]
pub struct DirectoryLayout {
    /// CPUs sharing each node's L1 (1 = private L1s).
    pub cpus_per_node: usize,
    /// Per-node instruction-cache geometry.
    pub l1i_spec: CacheSpec,
    /// Per-node data-cache geometry.
    pub l1d_spec: CacheSpec,
    /// Instruction-cache label.
    pub l1i_name: &'static str,
    /// Data-cache label.
    pub l1d_name: &'static str,
    /// Intra-node crossbar, for nodes shared by several CPUs:
    /// (bank-group label, banks per node, crossbar hit latency). `None`
    /// means direct private L1s hitting in `lat.l1_lat`.
    pub node_xbar: Option<(&'static str, usize, u64)>,
}

/// Write-through L1s over a banked shared L2 with a per-line directory —
/// the topology family covering the shared-L2 architecture (one CPU per
/// node) and the clustered extension (several CPUs per node).
#[derive(Debug)]
pub struct DirectoryTopo<S: NodeScheme> {
    nodes: NodeMap,
    l1i: Vec<CacheArray>,
    l1d: Vec<CacheArray>,
    /// Per-node intra-node crossbar banks (empty for private L1s).
    l1_banks: Vec<BankedResource>,
    /// Hit latency through the front end when a crossbar is present.
    xbar_lat: u64,
    dir: Directory,
    back: SharedL2Back,
    _scheme: PhantomData<S>,
}

impl<S: NodeScheme> DirectoryTopo<S> {
    /// Builds the topology from a configuration and a front-end layout.
    pub fn build(cfg: &SystemConfig, layout: &DirectoryLayout) -> DirectoryTopo<S> {
        let nodes = NodeMap::new(cfg.n_cpus, layout.cpus_per_node);
        let n = nodes.n_nodes();
        let back = SharedL2Back::new(cfg);
        DirectoryTopo {
            nodes,
            l1i: (0..n)
                .map(|_| CacheArray::new(layout.l1i_name, layout.l1i_spec))
                .collect(),
            l1d: (0..n)
                .map(|_| CacheArray::new(layout.l1d_name, layout.l1d_spec))
                .collect(),
            l1_banks: match layout.node_xbar {
                Some((label, banks, _)) => (0..n)
                    .map(|_| {
                        BankedResource::new(label, banks, u64::from(layout.l1d_spec.line_bytes))
                    })
                    .collect(),
                None => Vec::new(),
            },
            xbar_lat: layout.node_xbar.map_or(cfg.lat.l1_lat, |(_, _, lat)| lat),
            dir: Directory::new(n, back.l2.n_slots()),
            back,
            _scheme: PhantomData,
        }
    }

    /// CPU→node mapping.
    pub fn nodes(&self) -> &NodeMap {
        &self.nodes
    }

    /// Read-only view of one node's L1 data cache (tests, probes).
    pub fn l1d_at(&self, node: usize) -> &CacheArray {
        &self.l1d[node]
    }

    /// Read-only view of the shared L2 (tests, probes).
    pub fn l2(&self) -> &CacheArray {
        &self.back.l2
    }

    /// Full-state directory consistency check (see
    /// [`Directory::consistent`]).
    pub fn directory_consistent(&self) -> bool {
        self.dir.consistent(&self.l1d, &self.l1i, &self.back.l2)
    }

    /// A load or ifetch that missed the node's L1: cross to the shared L2
    /// banks (and memory beyond), then refill the L1 and the directory.
    #[allow(clippy::too_many_arguments)] // disjoint &mut core fields, by design
    fn read_miss(
        &mut self,
        core: &mut HierarchyCore,
        at: Cycle,
        node: usize,
        addr: Addr,
        ifetch: bool,
        kind: MissKind,
        l1_extra: u64,
    ) -> MemResult {
        if ifetch {
            core.stats.l1i.miss(kind);
        } else {
            core.stats.l1d.miss(kind);
        }
        let (finish, level) = self.back.read(
            &mut core.stats,
            &mut self.dir,
            &mut self.l1d,
            &mut self.l1i,
            &core.cfg.lat,
            addr,
            at,
        );
        let cache = if ifetch {
            &mut self.l1i[node]
        } else {
            &mut self.l1d[node]
        };
        // Write-through L1: lines are never dirty.
        let victim = cache.fill(addr, LineState::Shared).map(|v| v.addr);
        let line = self.back.line(addr);
        self.dir.note_fill(
            &mut core.sentinel,
            &self.back.l2,
            node,
            line,
            ifetch,
            victim,
        );
        MemResult {
            finish,
            serviced_by: level,
            l1_miss: true,
            l1_extra,
        }
    }

    /// Write-through, no-write-allocate: the word always travels to the L2
    /// bank; a hit in the node's L1 just updates it in place. Store
    /// hit/miss outcomes are not folded into the L1 miss rate
    /// (no-allocate stores are not demand fetches).
    fn store(
        &mut self,
        core: &mut HierarchyCore,
        grant: Cycle,
        node: usize,
        addr: Addr,
        l1_extra: u64,
    ) -> MemResult {
        self.l1d[node].touch(addr);
        let line = self.back.line(addr);
        self.dir.invalidate_sharers(
            &mut core.sentinel,
            &mut core.stats,
            &mut self.l1d,
            &mut self.l1i,
            &self.back.l2,
            node,
            line,
            addr,
        );
        let (finish, level) = self.back.store(
            &mut core.stats,
            &mut self.dir,
            &mut self.l1d,
            &mut self.l1i,
            &core.cfg.lat,
            addr,
            grant,
        );
        MemResult {
            finish,
            serviced_by: level,
            l1_miss: false,
            l1_extra,
        }
    }
}

impl<S: NodeScheme> Topology for DirectoryTopo<S> {
    const NAME: &'static str = S::NAME;

    /// With one CPU per node the fastest cross-CPU path is the shared L2;
    /// with several CPUs per node (the clustered extension) it is the
    /// pooled intra-node L1 behind its small crossbar.
    fn cross_cpu_lookahead(&self, core: &HierarchyCore) -> u64 {
        if self.nodes.n_nodes() < core.cfg.n_cpus {
            self.xbar_lat
        } else {
            core.cfg.lat.l2_lat
        }
    }

    #[inline]
    fn access(&mut self, core: &mut HierarchyCore, now: Cycle, req: MemRequest) -> MemResult {
        let node = self.nodes.node_of(req.cpu);
        let addr = req.addr;
        let ifetch = req.kind == AccessKind::IFetch;

        // Front-end arbitration: the intra-node crossbar when the node is
        // shared by several CPUs (unless idealized, like the shared L1),
        // or a direct private-L1 access.
        let (grant, l1_lat) = if core.cfg.ideal_shared_l1 {
            (now, 1)
        } else if self.l1_banks.is_empty() {
            (now, core.cfg.lat.l1_lat)
        } else {
            let g = self.l1_banks[node].reserve(u64::from(addr), now, core.cfg.lat.l1_occ);
            (g, self.xbar_lat)
        };
        let l1_extra = (grant - now) + (l1_lat - 1);
        core.stats.l1_bank_wait += grant - now;

        match req.kind {
            AccessKind::IFetch | AccessKind::Load => {
                let outcome = if ifetch {
                    self.l1i[node].lookup(addr)
                } else {
                    self.l1d[node].lookup(addr)
                };
                match outcome {
                    AccessOutcome::Hit(_) => {
                        if ifetch {
                            core.stats.l1i.hit();
                        } else {
                            core.stats.l1d.hit();
                        }
                        MemResult {
                            finish: grant + l1_lat,
                            serviced_by: ServiceLevel::L1,
                            l1_miss: false,
                            l1_extra,
                        }
                    }
                    AccessOutcome::Miss(kind) => {
                        self.read_miss(core, grant, node, addr, ifetch, kind, l1_extra)
                    }
                }
            }
            AccessKind::Store => self.store(core, grant, node, addr, l1_extra),
        }
    }

    fn check_line(&self, core: &mut HierarchyCore, now: Cycle, cpu: CpuId, addr: Addr) {
        let line = self.back.line(addr);
        self.dir.check_line(
            &mut core.sentinel,
            &self.l1d,
            &self.l1i,
            &self.back.l2,
            S::NOUN,
            now,
            cpu,
            line,
        );
    }

    fn load_would_hit_l1(&self, cpu: CpuId, addr: Addr) -> bool {
        self.l1d[self.nodes.node_of(cpu)].probe(addr).is_valid()
    }

    fn push_port_util(&self, out: &mut Vec<PortUtil>) {
        out.extend(self.l1_banks.iter().map(util_of_banks));
        out.push(util_of_banks(&self.back.banks));
        out.push(util_of_port(&self.back.mem));
    }
}

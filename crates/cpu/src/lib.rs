//! CPU models for `cmpsim`.
//!
//! The paper evaluates every architecture under two CPU timing models, and
//! this crate reimplements both over a shared functional core:
//!
//! * [`MipsyCpu`] — the "simple" model: every instruction has a one-cycle
//!   result latency and repeat rate, and the CPU stalls for every memory
//!   operation that takes longer than a cycle. All memory time shows up
//!   directly in the execution-time breakdown.
//! * [`MxsCpu`] — the "detailed" model: a 2-way-issue dynamically scheduled
//!   superscalar with a 32-entry instruction window, 32-entry reorder
//!   buffer, register renaming, a 1024-entry BTB with speculative wrong-path
//!   fetch, and a non-blocking data cache supporting four outstanding
//!   misses. Functional-unit latencies follow Table 1 ([`FuLatencies`]).
//!
//! Both models execute the same programs against the same [`PhysMem`], so a
//! program's final architectural state is identical under either model —
//! a property the test suite checks with random programs.
//!
//! [`PhysMem`]: cmpsim_mem::PhysMem

pub mod arch;
pub mod btb;
pub mod counters;
pub mod decode;
pub mod func;
pub mod mipsy;
pub mod mxs;
pub mod stage;

pub use arch::ArchState;
pub use btb::Btb;
pub use counters::{CpuCounters, StallCategory};
pub use decode::DecodeCache;
pub use func::{DataMem, ExecEnv, Outcome, StepInfo};
pub use mipsy::MipsyCpu;
pub use mxs::{MxsConfig, MxsCpu};
pub use stage::{RegDelta, StagedAccess, StagedStep, StagingMem, StoreVal};

use cmpsim_engine::Cycle;
use cmpsim_isa::{FuClass, HcallNo};
use cmpsim_mem::{AddrSpace, MemorySystem, PhysMem};

/// Functional-unit result latencies in cycles — Table 1 of the paper.
///
/// Load latency is "1 or 3" in the table because it depends on the
/// architecture (shared-L1 hits take 3 cycles); the memory system supplies
/// it, so it does not appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuLatencies {
    pub int_alu: u64,
    pub int_mul: u64,
    pub int_div: u64,
    pub branch: u64,
    pub store: u64,
    pub fp_addsub_sp: u64,
    pub fp_mul_sp: u64,
    pub fp_div_sp: u64,
    pub fp_addsub_dp: u64,
    pub fp_mul_dp: u64,
    pub fp_div_dp: u64,
}

impl FuLatencies {
    /// The latencies of Table 1.
    pub fn table1() -> FuLatencies {
        FuLatencies {
            int_alu: 1,
            int_mul: 2,
            int_div: 12,
            branch: 2,
            store: 1,
            fp_addsub_sp: 2,
            fp_mul_sp: 2,
            fp_div_sp: 12,
            fp_addsub_dp: 2,
            fp_mul_dp: 2,
            fp_div_dp: 18,
        }
    }

    /// Latency for a functional-unit class. `Load` returns 1 (the memory
    /// system adds the real latency).
    pub fn of(&self, class: FuClass) -> u64 {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMul => self.int_mul,
            FuClass::IntDiv => self.int_div,
            FuClass::Branch => self.branch,
            FuClass::Load => 1,
            FuClass::Store => self.store,
            FuClass::FpAddSubSp => self.fp_addsub_sp,
            FuClass::FpMulSp => self.fp_mul_sp,
            FuClass::FpDivSp => self.fp_div_sp,
            FuClass::FpAddSubDp => self.fp_addsub_dp,
            FuClass::FpMulDp => self.fp_mul_dp,
            FuClass::FpDivDp => self.fp_div_dp,
        }
    }
}

impl Default for FuLatencies {
    fn default() -> Self {
        FuLatencies::table1()
    }
}

/// Events a CPU step can surface to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Nothing notable; keep stepping.
    None,
    /// The CPU executed `HALT` and stopped.
    Halted,
    /// The CPU committed a harness call the machine must service.
    Hcall(HcallNo),
}

/// A CPU timing model the machine can drive.
///
/// The machine advances CPUs in simulated-time order: each `step` executes
/// a unit of work (one instruction for Mipsy, one cycle for MXS) starting at
/// `now` and returns the cycle at which the CPU next wants to run. Keeping
/// all CPUs ordered by that time makes the functional memory interleaving
/// consistent with the timing model.
///
/// Models that additionally implement [`CpuModel::stage`] /
/// [`CpuModel::commit_staged`] (and report [`CpuModel::stageable`]) can be
/// driven by the sharded run loop: shards execute instructions ahead of time
/// against a frozen memory snapshot, and the commit spine replays the staged
/// records in canonical order with full timing (DESIGN.md §12). The defaults
/// opt a model out, which simply keeps it on the serial path.
///
/// `Send` is a supertrait so a machine full of models can cross the scoped
/// thread boundary that sharding uses.
pub trait CpuModel: Send {
    /// Advances the CPU. Returns the next cycle this CPU is runnable and
    /// any event the machine must handle.
    fn step(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemorySystem,
        phys: &mut PhysMem,
    ) -> (Cycle, StepEvent);

    /// Architectural register state (context-switch support).
    fn arch(&self) -> &ArchState;

    /// Mutable architectural state.
    ///
    /// For MXS this is only meaningful after a [`CpuModel::flush`].
    fn arch_mut(&mut self) -> &mut ArchState;

    /// Replaces the address space (context switch).
    fn set_space(&mut self, space: AddrSpace);

    /// Current address space.
    fn space(&self) -> AddrSpace;

    /// Drains/flushes any pipeline state (no-op for Mipsy).
    fn flush(&mut self);

    /// Whether the CPU has executed `HALT`.
    fn halted(&self) -> bool;

    /// Statistics counters.
    fn counters(&self) -> &CpuCounters;

    /// Mutable statistics counters (region-of-interest reset).
    fn counters_mut(&mut self) -> &mut CpuCounters;

    /// Whether this model supports stage-ahead execution. Models that
    /// return `false` are driven serially even inside a sharded run.
    fn stageable(&self) -> bool {
        false
    }

    /// Executes up to `budget` instructions functionally against the frozen
    /// snapshot `phys`, appending one [`StagedStep`] per instruction to
    /// `out`. Must not mutate anything shared and must stop early at any
    /// instruction that needs serial execution (`SC`, `HCALL`, `HALT`,
    /// staged-code fetch). Only called when [`CpuModel::stageable`] is true.
    fn stage(&self, phys: &PhysMem, budget: usize, out: &mut Vec<StagedStep>) {
        let _ = (phys, budget, out);
    }

    /// Commits one staged step at cycle `now` with exact serial timing and
    /// side effects, returning what [`CpuModel::step`] would have. Only
    /// called when [`CpuModel::stageable`] is true and the step's read set
    /// validated against the round's store journal.
    fn commit_staged(
        &mut self,
        now: Cycle,
        staged: &StagedStep,
        mem: &mut dyn MemorySystem,
        phys: &mut PhysMem,
    ) -> (Cycle, StepEvent) {
        let _ = (now, staged, mem, phys);
        unreachable!("commit_staged called on a model that is not stageable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies() {
        let t = FuLatencies::table1();
        assert_eq!(t.of(FuClass::IntAlu), 1);
        assert_eq!(t.of(FuClass::IntMul), 2);
        assert_eq!(t.of(FuClass::IntDiv), 12);
        assert_eq!(t.of(FuClass::Branch), 2);
        assert_eq!(t.of(FuClass::Store), 1);
        assert_eq!(
            t.of(FuClass::Load),
            1,
            "load latency comes from the memory system"
        );
        assert_eq!(t.of(FuClass::FpAddSubSp), 2);
        assert_eq!(t.of(FuClass::FpDivSp), 12);
        assert_eq!(t.of(FuClass::FpDivDp), 18);
        assert_eq!(t.of(FuClass::FpMulDp), 2);
        assert_eq!(FuLatencies::default(), t);
    }
}

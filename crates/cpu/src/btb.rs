//! Branch target buffer: 1024-entry direct-mapped, 2-bit counters.
//!
//! The paper's CPU predicts branches with a 1024-entry BTB. Conditional
//! branches predict taken when the counter is in the taken half and the tag
//! matches; indirect jumps predict the stored target on a tag match.

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u32,
    target: u32,
    ctr: u8,
}

/// The branch target buffer.
#[derive(Debug)]
pub struct Btb {
    entries: Vec<Option<BtbEntry>>,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Creates a BTB with `n` entries.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two.
    pub fn new(n: usize) -> Btb {
        assert!(n.is_power_of_two(), "BTB size must be a power of two");
        Btb {
            entries: vec![None; n],
            lookups: 0,
            hits: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Predicted target of the *conditional branch* at `pc`:
    /// `Some(target)` when predicted taken, `None` for fall-through.
    pub fn predict_branch(&mut self, pc: u32) -> Option<u32> {
        self.lookups += 1;
        let idx = self.index(pc);
        match self.entries[idx] {
            Some(e) if e.tag == pc && e.ctr >= 2 => {
                self.hits += 1;
                Some(e.target)
            }
            _ => None,
        }
    }

    /// Predicted target of the *indirect jump* at `pc` (tag match only).
    pub fn predict_indirect(&mut self, pc: u32) -> Option<u32> {
        self.lookups += 1;
        let idx = self.index(pc);
        match self.entries[idx] {
            Some(e) if e.tag == pc => {
                self.hits += 1;
                Some(e.target)
            }
            _ => None,
        }
    }

    /// Trains the BTB with the resolved outcome of the control instruction
    /// at `pc`.
    pub fn update(&mut self, pc: u32, taken: bool, target: u32) {
        let idx = self.index(pc);
        match &mut self.entries[idx] {
            Some(e) if e.tag == pc => {
                if taken {
                    e.ctr = (e.ctr + 1).min(3);
                    e.target = target;
                } else {
                    e.ctr = e.ctr.saturating_sub(1);
                }
            }
            slot => {
                if taken {
                    *slot = Some(BtbEntry {
                        tag: pc,
                        target,
                        ctr: 2,
                    });
                }
            }
        }
    }

    /// (lookups, hits) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_btb_predicts_fallthrough() {
        let mut b = Btb::new(16);
        assert_eq!(b.predict_branch(0x100), None);
        assert_eq!(b.predict_indirect(0x100), None);
    }

    #[test]
    fn learns_taken_branch() {
        let mut b = Btb::new(16);
        b.update(0x100, true, 0x80);
        assert_eq!(b.predict_branch(0x100), Some(0x80));
        // One not-taken drops to weakly-taken (ctr 1): predicts fall-through.
        b.update(0x100, false, 0);
        assert_eq!(b.predict_branch(0x100), None);
        // Re-train.
        b.update(0x100, true, 0x80);
        assert_eq!(b.predict_branch(0x100), Some(0x80));
    }

    #[test]
    fn counter_saturates() {
        let mut b = Btb::new(16);
        for _ in 0..10 {
            b.update(0x40, true, 0x0);
        }
        b.update(0x40, false, 0);
        assert_eq!(b.predict_branch(0x40), Some(0x0), "3 -> 2 still taken");
    }

    #[test]
    fn aliasing_replaces_entry() {
        let mut b = Btb::new(4);
        b.update(0x10, true, 0xaa);
        // 0x10 and 0x10 + 4*4 alias in a 4-entry BTB.
        b.update(0x20, true, 0xbb);
        assert_eq!(b.predict_branch(0x10), None, "tag mismatch");
        assert_eq!(b.predict_branch(0x20), Some(0xbb));
    }

    #[test]
    fn not_taken_branches_not_allocated() {
        let mut b = Btb::new(16);
        b.update(0x100, false, 0);
        assert_eq!(b.predict_branch(0x100), None);
        let (lookups, hits) = b.stats();
        assert_eq!(lookups, 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn indirect_prediction_ignores_counter() {
        let mut b = Btb::new(16);
        b.update(0x200, true, 0x1234);
        b.update(0x200, false, 0); // ctr drops to 1
        assert_eq!(b.predict_indirect(0x200), Some(0x1234));
    }
}

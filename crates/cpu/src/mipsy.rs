//! The Mipsy CPU model: simple in-order execution.
//!
//! Mipsy "models all instructions with a one cycle result latency and a one
//! cycle repeat rate" and stalls for every memory operation that takes
//! longer than a cycle, so all memory-system time contributes directly to
//! execution time. Stores retire through a write buffer (Table 1's 1-cycle
//! store latency); `SYNC` drains it. Every stall cycle is attributed to the
//! hierarchy level that serviced the access, which yields the breakdown
//! graphs of Figures 4–10.

use crate::arch::ArchState;
use crate::counters::{CpuCounters, StallCategory};
use crate::decode::DecodeCache;
use crate::func::{self, ExecEnv, Outcome};
use crate::stage::{apply_store, RegDelta, StagedAccess, StagedStep, StagingMem};
use crate::{CpuModel, StepEvent};
use cmpsim_engine::Cycle;
use cmpsim_isa::Instr;
use cmpsim_mem::{
    AccessKind, AddrSpace, CpuId, MemRequest, MemorySystem, PhysMem, ServiceLevel, WriteBuffer,
};

/// Write-buffer depth (entries). Deep enough that well-spaced stores never
/// stall, shallow enough that bursts expose L2 port contention (a 1996-era
/// depth; the R10000 has 4 entries).
const WRITE_BUFFER_ENTRIES: usize = 4;

/// The simple in-order CPU model.
///
/// # Examples
///
/// Drive a single Mipsy CPU over a shared-memory system:
///
/// ```
/// use cmpsim_cpu::{CpuModel, MipsyCpu};
/// use cmpsim_engine::Cycle;
/// use cmpsim_isa::{Asm, Reg};
/// use cmpsim_mem::{AddrSpace, MemorySystem, PhysMem, SharedMemSystem, SystemConfig};
///
/// # fn main() -> Result<(), cmpsim_isa::AsmError> {
/// let mut a = Asm::new(0x1000);
/// a.li(Reg::T0, 3);
/// a.halt();
/// let prog = a.assemble()?;
///
/// let mut phys = PhysMem::new(1);
/// phys.load_words(prog.base, &prog.words);
/// let mut mem = SharedMemSystem::new(&SystemConfig::paper_shared_mem(1));
/// let mut cpu = MipsyCpu::new(0, prog.base, AddrSpace::identity());
///
/// let mut now = Cycle(0);
/// while !cpu.halted() {
///     let (next, _event) = cpu.step(now, &mut mem, &mut phys);
///     now = next;
/// }
/// assert_eq!(cpu.arch().gpr(Reg::T0), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MipsyCpu {
    cpu: CpuId,
    state: ArchState,
    space: AddrSpace,
    wbuf: WriteBuffer,
    decode: DecodeCache,
    counters: CpuCounters,
    halted: bool,
}

impl MipsyCpu {
    /// Creates a CPU with id `cpu` starting at `pc` in `space`.
    pub fn new(cpu: CpuId, pc: u32, space: AddrSpace) -> MipsyCpu {
        MipsyCpu {
            cpu,
            state: ArchState::new(pc),
            space,
            wbuf: WriteBuffer::new(WRITE_BUFFER_ENTRIES),
            decode: DecodeCache::new(),
            counters: CpuCounters::new(),
            halted: false,
        }
    }

    fn data_stall_category(level: ServiceLevel) -> StallCategory {
        match level {
            ServiceLevel::L1 => StallCategory::L1Data,
            ServiceLevel::L2 => StallCategory::L2,
            ServiceLevel::Memory => StallCategory::Memory,
            ServiceLevel::CacheToCache => StallCategory::CacheToCache,
        }
    }
}

impl CpuModel for MipsyCpu {
    fn step(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemorySystem,
        phys: &mut PhysMem,
    ) -> (Cycle, StepEvent) {
        debug_assert!(!self.halted, "stepping a halted CPU");
        let mut t = now;

        // Instruction fetch. A 1-cycle hit is hidden by pipelining; anything
        // beyond that stalls the CPU and is charged to instruction time.
        let ipa = self.space.translate(self.state.pc);
        let ires = mem.access(t, MemRequest::ifetch(self.cpu, ipa));
        let iextra = (ires.finish - t).saturating_sub(1);
        self.counters.stall(StallCategory::Instruction, iextra);
        t += iextra;

        let instr = self.decode.fetch(phys, ipa);

        // Execute (one busy cycle).
        let mut env = ExecEnv {
            mem: phys,
            space: self.space,
            cpu: self.cpu,
        };
        let info = func::step(&mut self.state, &instr, &mut env);
        self.counters.instructions += 1;
        self.counters.busy_cycles += 1;
        if instr.is_control() && !instr.is_direct_jump() {
            self.counters.branches += 1;
        }
        let issue = t;
        t += 1;

        match info.mem_access {
            Some((AccessKind::Load, pa)) => {
                self.counters.loads += 1;
                let res = mem.access(issue, MemRequest::load(self.cpu, pa));
                let stall = (res.finish - issue).saturating_sub(1);
                self.counters
                    .stall(Self::data_stall_category(res.serviced_by), stall);
                t += stall;
            }
            Some((AccessKind::Store, pa)) => {
                self.counters.stores += 1;
                let mut at = issue;
                if self.wbuf.is_full(at) {
                    let free = self.wbuf.free_at(at);
                    self.counters.stall(StallCategory::StoreBuffer, free - at);
                    t += free - at;
                    at = free;
                }
                let res = mem.access(at, MemRequest::store(self.cpu, pa));
                self.wbuf.push(at, res.finish);
            }
            Some((AccessKind::IFetch, _)) => unreachable!("execute never ifetches"),
            None => {}
        }

        if info.sc_failed {
            self.counters.sc_failures += 1;
        }

        if matches!(instr, cmpsim_isa::Instr::Sync) {
            let drain = self.wbuf.drain_time(t);
            self.counters.stall(StallCategory::Fence, drain.since(t));
            t = t.max(drain);
        }

        let event = match info.outcome {
            Outcome::Normal => StepEvent::None,
            Outcome::Halt => {
                self.halted = true;
                StepEvent::Halted
            }
            Outcome::Hcall(no) => StepEvent::Hcall(no),
        };
        (t, event)
    }

    fn arch(&self) -> &ArchState {
        &self.state
    }

    fn arch_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    fn set_space(&mut self, space: AddrSpace) {
        self.space = space;
        // A new address space maps different code behind the same PCs.
        self.decode.clear();
    }

    fn space(&self) -> AddrSpace {
        self.space
    }

    fn flush(&mut self) {
        // Context switch: drop memoized decodes so a process image
        // overwritten in place can never serve stale instructions.
        self.decode.clear();
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn counters(&self) -> &CpuCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut CpuCounters {
        &mut self.counters
    }

    fn stageable(&self) -> bool {
        true
    }

    fn stage(&self, phys: &PhysMem, budget: usize, out: &mut Vec<StagedStep>) {
        debug_assert!(!self.halted, "staging a halted CPU");
        let mut scratch = self.state.clone();
        let mut sm = StagingMem::new(phys);
        for _ in 0..budget {
            let ipa = self.space.translate(scratch.pc);
            if sm.overlay_contains(ipa) {
                // Staged self-modifying code: the real fetch must see the
                // committed store, so hand back to the serial spine.
                break;
            }
            let probed = self.decode.probe(ipa);
            let instr = probed.unwrap_or_else(|| {
                cmpsim_isa::decode(phys.read_u32(ipa & !3)).unwrap_or(Instr::Nop)
            });
            if matches!(instr, Instr::Sc { .. } | Instr::Hcall { .. } | Instr::Halt) {
                // These read or steer shared machine state; they run
                // serially on the spine (before executing, so the spine
                // re-fetches them itself).
                break;
            }
            sm.begin_step();
            sm.note_read(ipa);
            let mut env = ExecEnv {
                mem: &mut sm,
                space: self.space,
                cpu: self.cpu,
            };
            let info = func::step(&mut scratch, &instr, &mut env);
            debug_assert!(!info.sc_failed);
            let ops = instr.reg_ops();
            let delta = if let Some(r) = ops.int_def {
                RegDelta::Gpr(r, scratch.gpr(r))
            } else if let Some(f) = ops.fp_def {
                RegDelta::Fpr(f, scratch.fpr(f))
            } else {
                RegDelta::None
            };
            let (reads, n_reads, ll, store) = sm.step_record();
            let access = match info.mem_access {
                Some((AccessKind::Load, pa)) => StagedAccess::Load(pa),
                Some((AccessKind::Store, pa)) => {
                    let (saddr, sval) = store.expect("store instruction captured its value");
                    debug_assert_eq!(saddr, pa);
                    StagedAccess::Store(pa, sval)
                }
                Some((AccessKind::IFetch, _)) => unreachable!("execute never ifetches"),
                None => StagedAccess::None,
            };
            out.push(StagedStep {
                ipa,
                instr,
                pc_after: scratch.pc,
                delta,
                access,
                ll,
                fresh_decode: probed.is_none(),
                reads,
                n_reads,
            });
        }
    }

    fn commit_staged(
        &mut self,
        now: Cycle,
        s: &StagedStep,
        mem: &mut dyn MemorySystem,
        phys: &mut PhysMem,
    ) -> (Cycle, StepEvent) {
        // An exact timing replay of `step` for a pre-executed instruction:
        // same accesses at the same cycles, same counter updates, with the
        // architectural effects applied from the staged record.
        debug_assert!(!self.halted, "committing on a halted CPU");
        debug_assert_eq!(self.space.translate(self.state.pc), s.ipa);
        let mut t = now;

        let ires = mem.access(t, MemRequest::ifetch(self.cpu, s.ipa));
        let iextra = (ires.finish - t).saturating_sub(1);
        self.counters.stall(StallCategory::Instruction, iextra);
        t += iextra;

        if s.fresh_decode {
            // The serial fetch would have missed and memoized here.
            self.decode.insert(s.ipa, s.instr);
        }

        match s.delta {
            RegDelta::None => {}
            RegDelta::Gpr(r, v) => self.state.set_gpr(r, v),
            RegDelta::Fpr(f, v) => self.state.set_fpr(f, v),
        }
        self.state.pc = s.pc_after;
        self.counters.instructions += 1;
        self.counters.busy_cycles += 1;
        if s.instr.is_control() && !s.instr.is_direct_jump() {
            self.counters.branches += 1;
        }
        let issue = t;
        t += 1;

        match s.access {
            StagedAccess::Load(pa) => {
                self.counters.loads += 1;
                if s.ll {
                    phys.set_link(self.cpu, pa);
                }
                let res = mem.access(issue, MemRequest::load(self.cpu, pa));
                let stall = (res.finish - issue).saturating_sub(1);
                self.counters
                    .stall(Self::data_stall_category(res.serviced_by), stall);
                t += stall;
            }
            StagedAccess::Store(pa, val) => {
                self.counters.stores += 1;
                apply_store(phys, self.cpu, pa, val);
                let mut at = issue;
                if self.wbuf.is_full(at) {
                    let free = self.wbuf.free_at(at);
                    self.counters.stall(StallCategory::StoreBuffer, free - at);
                    t += free - at;
                    at = free;
                }
                let res = mem.access(at, MemRequest::store(self.cpu, pa));
                self.wbuf.push(at, res.finish);
            }
            StagedAccess::None => {}
        }

        if matches!(s.instr, Instr::Sync) {
            let drain = self.wbuf.drain_time(t);
            self.counters.stall(StallCategory::Fence, drain.since(t));
            t = t.max(drain);
        }

        // SC/HCALL/HALT are never staged, so the outcome is always Normal.
        (t, StepEvent::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_isa::{Asm, Reg};
    use cmpsim_mem::{SharedMemSystem, SystemConfig};

    fn build(asm: &Asm) -> (PhysMem, SharedMemSystem, MipsyCpu) {
        let prog = asm.assemble().expect("assembles");
        let mut phys = PhysMem::new(4);
        phys.load_words(prog.base, &prog.words);
        let mem = SharedMemSystem::new(&SystemConfig::paper_shared_mem(4));
        let cpu = MipsyCpu::new(0, prog.base, AddrSpace::identity());
        (phys, mem, cpu)
    }

    fn run_to_halt(phys: &mut PhysMem, mem: &mut SharedMemSystem, cpu: &mut MipsyCpu) -> Cycle {
        let mut now = Cycle(0);
        for _ in 0..1_000_000 {
            if cpu.halted() {
                return now;
            }
            let (next, _) = cpu.step(now, mem, phys);
            now = next;
        }
        panic!("program did not halt");
    }

    #[test]
    fn computes_a_loop() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 10);
        a.label("loop");
        a.addi(Reg::T0, Reg::T0, 3);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, "loop");
        a.halt();
        let (mut phys, mut mem, mut cpu) = build(&a);
        run_to_halt(&mut phys, &mut mem, &mut cpu);
        assert_eq!(cpu.arch().gpr(Reg::T0), 30);
        assert_eq!(cpu.counters().instructions, 2 + 3 * 10 + 1);
    }

    #[test]
    fn memory_stalls_attributed_to_levels() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 0x10000);
        a.lw(Reg::T0, Reg::A0, 0); // cold miss -> memory
        a.lw(Reg::T1, Reg::A0, 4); // L1 hit
        a.halt();
        let (mut phys, mut mem, mut cpu) = build(&a);
        run_to_halt(&mut phys, &mut mem, &mut cpu);
        let c = cpu.counters();
        assert_eq!(c.loads, 2);
        // Cold load: 50-cycle service, 49 stall cycles charged to memory.
        assert_eq!(c.stall_memory, 49);
        assert_eq!(c.stall_l2, 0);
        assert_eq!(c.stall_l1_data, 0, "1-cycle hits cost nothing extra");
    }

    #[test]
    fn stores_do_not_stall_until_buffer_full() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 0x20000);
        // First touch so the line is present (avoid 16 cold misses).
        a.lw(Reg::T0, Reg::A0, 0);
        for k in 0..16 {
            a.sw(Reg::T0, Reg::A0, (k * 4) as i16);
        }
        a.halt();
        let (mut phys, mut mem, mut cpu) = build(&a);
        run_to_halt(&mut phys, &mut mem, &mut cpu);
        let c = cpu.counters();
        assert_eq!(c.stores, 16);
        // Write-back L1 hits complete in a cycle; buffer never fills.
        assert_eq!(c.stall_store_buffer, 0);
    }

    #[test]
    fn sync_drains_write_buffer() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 0x30000);
        a.sw(Reg::T0, Reg::A0, 0); // cold store miss: 50 cycles in flight
        a.sync();
        a.halt();
        let (mut phys, mut mem, mut cpu) = build(&a);
        run_to_halt(&mut phys, &mut mem, &mut cpu);
        assert!(cpu.counters().stall_fence > 0, "sync waited for the store");
    }

    #[test]
    fn instruction_fetch_miss_charged_to_istall() {
        let mut a = Asm::new(0x1000);
        a.halt();
        let (mut phys, mut mem, mut cpu) = build(&a);
        run_to_halt(&mut phys, &mut mem, &mut cpu);
        // The first fetch cold-misses all the way to memory.
        assert_eq!(cpu.counters().stall_instruction, 49);
    }

    #[test]
    fn spin_time_counts_as_busy() {
        // CPU time in the paper includes synchronization spin.
        let mut a = Asm::new(0x1000);
        a.li(Reg::T0, 100);
        a.label("spin");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "spin");
        a.halt();
        let (mut phys, mut mem, mut cpu) = build(&a);
        run_to_halt(&mut phys, &mut mem, &mut cpu);
        assert_eq!(cpu.counters().busy_cycles, cpu.counters().instructions);
    }
}

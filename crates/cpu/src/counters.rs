//! Per-CPU statistics: the raw material of the paper's figures.
//!
//! Under Mipsy every cycle of a CPU is either *busy* (executing; spin-lock
//! and barrier wait time counts as busy, exactly as in the paper) or stalled
//! in one [`StallCategory`]. Under MXS, the counters track graduated
//! instructions plus lost graduation slots per blame category, which yields
//! the IPC breakdown of Figure 11.

/// Where a stalled cycle is attributed in the breakdown graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCategory {
    /// Instruction-fetch stalls (I-cache misses and shared-L1 I-bank time).
    Instruction,
    /// Extra data-access time serviced at L1 (shared-L1's 3-cycle hits and
    /// bank conflicts under the non-ideal model).
    L1Data,
    /// Data stalls serviced by the L2.
    L2,
    /// Data stalls serviced by main memory.
    Memory,
    /// Data stalls serviced by a cache-to-cache transfer.
    CacheToCache,
    /// Store issued while the write buffer was full.
    StoreBuffer,
    /// `SYNC` waiting for outstanding stores to drain.
    Fence,
}

/// Counter block for one CPU.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpuCounters {
    /// Instructions executed (graduated, for MXS).
    pub instructions: u64,
    /// Cycles spent busy executing (Mipsy: 1 per instruction).
    pub busy_cycles: u64,
    /// Stall cycles per category (Mipsy).
    pub stall_instruction: u64,
    pub stall_l1_data: u64,
    pub stall_l2: u64,
    pub stall_memory: u64,
    pub stall_c2c: u64,
    pub stall_store_buffer: u64,
    pub stall_fence: u64,
    /// Loads / stores executed.
    pub loads: u64,
    pub stores: u64,
    /// Conditional branches executed and mispredicted (MXS).
    pub branches: u64,
    pub mispredicts: u64,
    /// Failed store-conditionals.
    pub sc_failures: u64,
    /// MXS: total cycles the core was clocked.
    pub mxs_cycles: u64,
    /// MXS: graduation slots lost to instruction-cache stalls.
    pub slots_icache: u64,
    /// MXS: graduation slots lost to data-cache stalls (L1 misses).
    pub slots_dcache: u64,
    /// MXS: graduation slots lost to pipeline stalls (dependences, FU
    /// conflicts, mispredict refill, shared-L1 extra hit time and bank
    /// contention).
    pub slots_pipeline: u64,
    /// MXS: dispatch opportunities lost to a full reorder buffer.
    pub dispatch_stall_rob: u64,
    /// MXS: dispatch opportunities lost to physical-register exhaustion.
    pub dispatch_stall_preg: u64,
    /// MXS: sum of per-cycle window occupancy (divide by `mxs_cycles` for
    /// the average).
    pub window_occupancy_sum: u64,
}

impl CpuCounters {
    /// Zeroed counters.
    pub fn new() -> CpuCounters {
        CpuCounters::default()
    }

    /// Adds `cycles` to the given stall bucket.
    pub fn stall(&mut self, cat: StallCategory, cycles: u64) {
        match cat {
            StallCategory::Instruction => self.stall_instruction += cycles,
            StallCategory::L1Data => self.stall_l1_data += cycles,
            StallCategory::L2 => self.stall_l2 += cycles,
            StallCategory::Memory => self.stall_memory += cycles,
            StallCategory::CacheToCache => self.stall_c2c += cycles,
            StallCategory::StoreBuffer => self.stall_store_buffer += cycles,
            StallCategory::Fence => self.stall_fence += cycles,
        }
    }

    /// Total stall cycles across all categories.
    pub fn total_stalls(&self) -> u64 {
        self.stall_instruction
            + self.stall_l1_data
            + self.stall_l2
            + self.stall_memory
            + self.stall_c2c
            + self.stall_store_buffer
            + self.stall_fence
    }

    /// Total accounted cycles (busy + stalled) for Mipsy.
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.total_stalls()
    }

    /// MXS average instruction-window occupancy.
    pub fn avg_window_occupancy(&self) -> f64 {
        if self.mxs_cycles == 0 {
            0.0
        } else {
            self.window_occupancy_sum as f64 / self.mxs_cycles as f64
        }
    }

    /// MXS instructions-per-cycle.
    pub fn ipc(&self) -> f64 {
        if self.mxs_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.mxs_cycles as f64
        }
    }

    /// Resets everything (region-of-interest marker).
    pub fn reset(&mut self) {
        *self = CpuCounters::default();
    }

    /// Merges another CPU's counters into this one (whole-machine totals).
    pub fn merge(&mut self, other: &CpuCounters) {
        self.instructions += other.instructions;
        self.busy_cycles += other.busy_cycles;
        self.stall_instruction += other.stall_instruction;
        self.stall_l1_data += other.stall_l1_data;
        self.stall_l2 += other.stall_l2;
        self.stall_memory += other.stall_memory;
        self.stall_c2c += other.stall_c2c;
        self.stall_store_buffer += other.stall_store_buffer;
        self.stall_fence += other.stall_fence;
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        self.sc_failures += other.sc_failures;
        self.mxs_cycles += other.mxs_cycles;
        self.slots_icache += other.slots_icache;
        self.slots_dcache += other.slots_dcache;
        self.slots_pipeline += other.slots_pipeline;
        self.dispatch_stall_rob += other.dispatch_stall_rob;
        self.dispatch_stall_preg += other.dispatch_stall_preg;
        self.window_occupancy_sum += other.window_occupancy_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_buckets_accumulate() {
        let mut c = CpuCounters::new();
        c.stall(StallCategory::L2, 10);
        c.stall(StallCategory::Memory, 50);
        c.stall(StallCategory::Instruction, 3);
        c.busy_cycles = 100;
        assert_eq!(c.total_stalls(), 63);
        assert_eq!(c.total_cycles(), 163);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CpuCounters::new();
        a.instructions = 10;
        a.slots_dcache = 4;
        let mut b = CpuCounters::new();
        b.instructions = 5;
        b.slots_dcache = 2;
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.slots_dcache, 6);
    }

    #[test]
    fn ipc_computation() {
        let mut c = CpuCounters::new();
        assert_eq!(c.ipc(), 0.0);
        c.instructions = 150;
        c.mxs_cycles = 100;
        assert_eq!(c.ipc(), 1.5);
        c.reset();
        assert_eq!(c.instructions, 0);
    }
}
